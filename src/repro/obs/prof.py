"""Phase profiler: wall *and* CPU accounting on the span API.

The paper's argument is a cost-attribution story — ordering time
trades against memory-stall time per workload — so the replication's
own phases need the same treatment: not just "how long did the greedy
loop take" (a span answers that) but "was that time compute or
waiting".  :func:`repro.obs.profile` is the span context manager with
CPU accounting bolted on:

* ``dur_s`` — wall-clock duration, exactly like a plain span;
* ``cpu_s`` — process CPU time over the same interval
  (:func:`time.process_time`: user + system, summed over every thread
  of this process; child processes report their own phases).

A profiled phase emits ordinary ``span_start``/``span_end`` events
(the end event carries the extra ``cpu_s`` field), so every trace
tool — the summary, the span tree, the critical path, flamegraphs —
sees phases and spans uniformly.  In-process, phases additionally
aggregate into the registry's :meth:`~repro.obs.core.Telemetry.
phase_stats` table (:class:`~repro.obs.core.PhaseStats`: count, wall,
CPU, max), the deterministic accounting later amortisation models
read.

Discipline (enforced by analysis rule REP005): ``obs.profile`` is
**context-manager-only** — a phase that is never exited reports
nothing — and phase names keep a literal, greppable segment.

Overhead: while telemetry is disabled ``profile()`` returns the
shared no-op span, so a hook site costs one enabled-check plus one
no-op context manager — the same budget (<5% per hundred sites,
guarded by ``bench_micro.py``) as plain spans.
"""

from __future__ import annotations

import time

from repro.obs.core import NOOP_SPAN, TELEMETRY, Span, Telemetry


class PhaseSpan(Span):
    """A span that also accounts process CPU time.

    Entered exactly like a span; on exit it records wall + CPU
    duration into the registry's phase table and emits a ``span_end``
    event carrying both ``dur_s`` and ``cpu_s``.
    """

    __slots__ = ("cpu_seconds", "_cpu_start")

    def __init__(
        self, telemetry: Telemetry, name: str, attrs: dict
    ) -> None:
        super().__init__(telemetry, name, attrs)
        self.cpu_seconds: float | None = None

    def __enter__(self) -> "PhaseSpan":
        super().__enter__()
        # CPU clock read last so the span_start emission (a sink
        # write) is not attributed to the phase's CPU account.
        self._cpu_start = time.process_time()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        cpu = time.process_time() - self._cpu_start
        self.duration = time.perf_counter() - self._start
        self.cpu_seconds = cpu
        telemetry = self._telemetry
        stack = telemetry._span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        telemetry._record_span(self.name, self.duration)
        telemetry._record_phase(self.name, self.duration, cpu)
        telemetry._emit(
            "span_end",
            self.name,
            attrs=self.attrs or None,
            span_id=self.span_id,
            parent_id=self.parent_id,
            dur_s=self.duration,
            cpu_s=cpu,
            ok=exc_type is None,
        )
        return False


def profile(name: str, **attrs):
    """A profiled phase: ``with obs.profile("x.phase", n=5): ...``.

    Returns the shared no-op span while telemetry is disabled, so the
    call site pays the same near-zero cost as :func:`repro.obs.span`.
    """
    if not TELEMETRY.enabled:
        return NOOP_SPAN
    return PhaseSpan(TELEMETRY, name, attrs)
