"""Telemetry core: the registry, spans, counters and event emission.

One process holds one :class:`Telemetry` registry (module singleton,
reached through the :mod:`repro.obs` package functions).  The registry
is **disabled by default** and every entry point begins with a plain
attribute test, so instrumented code pays one boolean check — or, for
hot loops, nothing at all when the caller hoists the check out of the
loop (the pattern used by the Gorder kernels).

Events travel through a dedicated stdlib :mod:`logging` logger
(``repro.obs``), one :class:`logging.LogRecord` per event with the
structured payload attached as ``record.telemetry``.  Sinks are plain
logging handlers (see :mod:`repro.obs.sinks`), so level filtering,
thread safety and handler fan-out are all inherited from the standard
library rather than reimplemented.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from dataclasses import dataclass

from repro.errors import ReproError

#: The logger every telemetry event is emitted through.
LOGGER_NAME = "repro.obs"

#: Accepted ``--log-level`` names mapped onto stdlib levels.
LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}


class TelemetryError(ReproError):
    """Telemetry could not be configured or a trace could not be read."""


@dataclass
class SpanStats:
    """In-process aggregate of one span name."""

    count: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0


@dataclass
class PhaseStats:
    """In-process wall/CPU aggregate of one profiled phase name.

    Recorded by :class:`repro.obs.prof.PhaseSpan` — the ``obs.profile``
    context manager — alongside the ordinary :class:`SpanStats` entry
    the same phase contributes to.
    """

    count: int = 0
    wall_seconds: float = 0.0
    cpu_seconds: float = 0.0
    max_wall_seconds: float = 0.0

    @property
    def cpu_fraction(self) -> float:
        """CPU seconds per wall second (1.0 = fully CPU-bound)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.cpu_seconds / self.wall_seconds


class Span:
    """One timed, attributed section of work (context manager).

    Spans nest: entering a span makes it the parent of any span opened
    on the same thread before it exits.  Both the start and the end
    are emitted as events (``span_start`` / ``span_end``); the end
    event carries the duration and whether the body raised.
    """

    __slots__ = (
        "name", "attrs", "span_id", "parent_id", "_telemetry", "_start",
        "duration",
    )

    def __init__(self, telemetry: "Telemetry", name: str, attrs: dict):
        self.name = name
        self.attrs = attrs
        self._telemetry = telemetry
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self.duration: float | None = None

    def set(self, **attrs) -> "Span":
        """Attach further attributes (appear on the ``span_end`` event)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        telemetry = self._telemetry
        stack = telemetry._span_stack()
        self.parent_id = stack[-1].span_id if stack else None
        self.span_id = next(telemetry._span_ids)
        stack.append(self)
        telemetry._emit(
            "span_start",
            self.name,
            attrs=self.attrs or None,
            span_id=self.span_id,
            parent_id=self.parent_id,
        )
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.duration = time.perf_counter() - self._start
        telemetry = self._telemetry
        stack = telemetry._span_stack()
        if stack and stack[-1] is self:
            stack.pop()
        telemetry._record_span(self.name, self.duration)
        telemetry._emit(
            "span_end",
            self.name,
            attrs=self.attrs or None,
            span_id=self.span_id,
            parent_id=self.parent_id,
            dur_s=self.duration,
            ok=exc_type is None,
        )
        return False


class _NoopSpan:
    """Returned by :func:`span` while telemetry is disabled."""

    __slots__ = ()
    duration = None
    span_id = None
    parent_id = None

    def set(self, **attrs) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


#: Singleton no-op span — ``span(...)`` allocates nothing when disabled.
NOOP_SPAN = _NoopSpan()


class Telemetry:
    """Thread-safe in-process registry of counters, spans and sinks."""

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._local = threading.local()
        self._span_ids = itertools.count(1)
        self._counters: dict[str, int] = {}
        self._span_stats: dict[str, SpanStats] = {}
        self._phase_stats: dict[str, PhaseStats] = {}
        self._handlers: list[logging.Handler] = []
        self._logger = logging.getLogger(LOGGER_NAME)
        self._logger.propagate = False

    # -- configuration -------------------------------------------------
    def add_handler(self, handler: logging.Handler) -> None:
        """Attach a sink and enable the registry."""
        with self._lock:
            self._logger.addHandler(handler)
            self._handlers.append(handler)
            self._logger.setLevel(logging.DEBUG)
            self.enabled = True

    def enable(self) -> None:
        """Enable recording without any sink (in-process registry only)."""
        with self._lock:
            self.enabled = True

    def shutdown(self) -> None:
        """Detach and close every sink and disable the registry.

        Counters and span aggregates survive (read them afterwards;
        :meth:`reset` clears them).  Idempotent.  The handler list is
        snapshotted and cleared atomically, so a sink attached
        concurrently is either fully shut down here or stays tracked
        for the next shutdown — never leaked half-attached; the
        (possibly blocking) ``close()`` calls run outside the lock.
        """
        with self._lock:
            self.enabled = False
            detached = list(self._handlers)
            self._handlers.clear()
        for handler in detached:
            self._logger.removeHandler(handler)
            handler.close()

    def reset(self) -> None:
        """Shut down and forget all recorded state (tests use this)."""
        self.shutdown()
        with self._lock:
            self._counters.clear()
            self._span_stats.clear()
            self._phase_stats.clear()
        self._local = threading.local()
        self._span_ids = itertools.count(1)

    # -- recording -----------------------------------------------------
    def _span_stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def _record_span(self, name: str, seconds: float) -> None:
        with self._lock:
            stats = self._span_stats.get(name)
            if stats is None:
                stats = self._span_stats[name] = SpanStats()
            stats.count += 1
            stats.total_seconds += seconds
            stats.max_seconds = max(stats.max_seconds, seconds)

    def _record_phase(
        self, name: str, wall: float, cpu: float
    ) -> None:
        with self._lock:
            stats = self._phase_stats.get(name)
            if stats is None:
                stats = self._phase_stats[name] = PhaseStats()
            stats.count += 1
            stats.wall_seconds += wall
            stats.cpu_seconds += cpu
            stats.max_wall_seconds = max(stats.max_wall_seconds, wall)

    def inc(self, name: str, amount: int = 1) -> None:
        """Add ``amount`` to counter ``name`` (no-op while disabled)."""
        if not self.enabled:
            return
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def counters(self) -> dict[str, int]:
        """Snapshot of all counter totals."""
        with self._lock:
            return dict(self._counters)

    def span_stats(self) -> dict[str, SpanStats]:
        """Snapshot of per-span-name aggregates."""
        with self._lock:
            return {
                name: SpanStats(s.count, s.total_seconds, s.max_seconds)
                for name, s in self._span_stats.items()
            }

    def phase_stats(self) -> dict[str, PhaseStats]:
        """Snapshot of per-phase wall/CPU aggregates."""
        with self._lock:
            return {
                name: PhaseStats(
                    s.count,
                    s.wall_seconds,
                    s.cpu_seconds,
                    s.max_wall_seconds,
                )
                for name, s in self._phase_stats.items()
            }

    # -- emission ------------------------------------------------------
    def _emit(
        self,
        kind: str,
        name: str,
        level: int = logging.INFO,
        attrs: dict | None = None,
        **fields,
    ) -> None:
        if not self.enabled:
            return
        payload = {
            "ts": time.time(),
            "kind": kind,
            "name": name,
            "level": logging.getLevelName(level).lower(),
        }
        if attrs:
            payload["attrs"] = attrs
        for key, value in fields.items():
            if value is not None:
                payload[key] = value
        self._logger.log(
            level, "%s %s", kind, name, extra={"telemetry": payload}
        )

    def event(self, name: str, level: str = "info", **attrs) -> None:
        """Emit one structured event."""
        if not self.enabled:
            return
        try:
            numeric = LEVELS[level]
        except KeyError:
            known = ", ".join(LEVELS)
            raise TelemetryError(
                f"unknown log level {level!r}; known levels: {known}"
            ) from None
        self._emit("event", name, level=numeric, attrs=attrs or None)

    def progress(self, name: str, **attrs) -> None:
        """Emit a progress event (replaces ad-hoc ``print`` reporting)."""
        if not self.enabled:
            return
        self._emit("progress", name, attrs=attrs or None)

    def span(self, name: str, **attrs):
        """A new :class:`Span`, or the shared no-op while disabled."""
        if not self.enabled:
            return NOOP_SPAN
        return Span(self, name, attrs)

    def emit_counters(self) -> None:
        """Emit the cumulative counter totals as one ``counters`` event."""
        if not self.enabled:
            return
        totals = self.counters()
        if totals:
            self._emit("counters", "counters", counters=totals)

    def emit_manifest(self, manifest: dict) -> None:
        """Emit a run manifest as one ``manifest`` event."""
        if not self.enabled:
            return
        self._emit("manifest", "manifest", manifest=manifest)


#: The process-wide registry used by all module-level helpers.
TELEMETRY = Telemetry()
