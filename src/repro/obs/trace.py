"""Trace analytics: span trees, critical paths, diffs, flamegraphs.

Where :mod:`repro.obs.summary` aggregates a JSONL trace by span
*name*, this module reconstructs the actual execution structure from
the ``span_id``/``parent_id`` links every span event carries:

* :func:`build_span_tree` — the forest of :class:`SpanNode` objects,
  with per-node total and self time (tolerant of interleaved
  multi-thread events, out-of-order lines, and unclosed spans from
  crashed runs);
* :func:`critical_path` — the chain of heaviest descendants from the
  heaviest root: "where did the run's wall clock actually go";
* :func:`diff_traces` — per-counter and per-span-name deltas between
  two traces ("did the replay backend get slower since the last
  recorded run");
* :func:`folded_stacks` — semicolon-folded stacks weighted by self
  time in microseconds, the input format of ``flamegraph.pl`` and
  speedscope's "folded stacks" importer.

Reconstruction matches events by ``span_id`` (unique per process),
never by nesting order, so a trace whose lines interleave across
threads — or arrive shuffled — builds the same tree.  A ``span_end``
without a ``span_start`` (torn head) still creates a node; a
``span_start`` without an end (crashed run) keeps ``duration=None``
and contributes only its children's time.

Surfaced as ``repro-gorder telemetry tree|critical-path|diff|
flamegraph``; see ``docs/observability.md`` for the cookbook.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable

from repro.errors import InvalidParameterError
from repro.obs.summary import iter_trace


@dataclass
class SpanNode:
    """One reconstructed span (or profiled phase) of a trace."""

    span_id: int
    name: str
    attrs: dict = field(default_factory=dict)
    parent_id: int | None = None
    start_ts: float | None = None
    #: Wall duration from the ``span_end`` event; ``None`` when the
    #: span never closed (crashed or still-running when killed).
    duration: float | None = None
    #: CPU seconds (``obs.profile`` phases only; ``None`` for spans).
    cpu_seconds: float | None = None
    ok: bool | None = None
    children: list["SpanNode"] = field(default_factory=list)

    @property
    def closed(self) -> bool:
        return self.duration is not None

    @property
    def total_seconds(self) -> float:
        """Wall time of this span; children's sum when unclosed."""
        if self.duration is not None:
            return self.duration
        return sum(child.total_seconds for child in self.children)

    @property
    def self_seconds(self) -> float:
        """Wall time not accounted to any child span."""
        if self.duration is None:
            return 0.0
        children = sum(c.total_seconds for c in self.children)
        return max(0.0, self.duration - children)

    @property
    def self_cpu_seconds(self) -> float | None:
        """CPU time not accounted to any profiled child phase."""
        if self.cpu_seconds is None:
            return None
        children = sum(
            c.cpu_seconds or 0.0 for c in self.children
        )
        return max(0.0, self.cpu_seconds - children)


@dataclass
class SpanTree:
    """The reconstructed forest of one trace, plus trace context."""

    path: str
    roots: list[SpanNode] = field(default_factory=list)
    nodes: dict[int, SpanNode] = field(default_factory=dict)
    counters: dict[str, int] = field(default_factory=dict)
    manifest: dict | None = None
    num_events: int = 0
    #: Spans that started but never ended (crashed run).
    unclosed: int = 0

    @property
    def num_spans(self) -> int:
        return len(self.nodes)

    @property
    def total_seconds(self) -> float:
        return sum(root.total_seconds for root in self.roots)


def _sort_key(node: SpanNode) -> tuple[float, int]:
    ts = node.start_ts if node.start_ts is not None else float("inf")
    return (ts, node.span_id)


def build_span_tree(
    path: str | os.PathLike | None = None,
    events: Iterable[dict] | None = None,
) -> SpanTree:
    """Reconstruct the span forest of one trace.

    Reads ``path`` (a ``--log-json`` JSONL trace) or, for callers that
    already hold payload dicts (tests, capture sinks), ``events``.
    """
    if events is None:
        if path is None:
            raise InvalidParameterError(
                "build_span_tree needs a path or events"
            )
        events = iter_trace(path)
    tree = SpanTree(path=str(path) if path is not None else "<events>")
    started: set[int] = set()
    ended: set[int] = set()
    for payload in events:
        tree.num_events += 1
        kind = payload.get("kind")
        if kind not in ("span_start", "span_end"):
            if kind == "counters":
                tree.counters = dict(payload.get("counters", {}))
            elif kind == "manifest" and tree.manifest is None:
                tree.manifest = payload.get("manifest", {})
            continue
        span_id = payload.get("span_id")
        if not isinstance(span_id, int):
            continue  # hand-written or foreign event; nothing to link
        node = tree.nodes.get(span_id)
        if node is None:
            node = tree.nodes[span_id] = SpanNode(
                span_id=span_id, name=str(payload.get("name", "?"))
            )
            node.parent_id = payload.get("parent_id")
        if payload.get("attrs"):
            node.attrs.update(payload["attrs"])
        if kind == "span_start":
            started.add(span_id)
            ts = payload.get("ts")
            if isinstance(ts, (int, float)):
                node.start_ts = float(ts)
        else:
            ended.add(span_id)
            dur = payload.get("dur_s")
            if isinstance(dur, (int, float)):
                node.duration = float(dur)
            cpu = payload.get("cpu_s")
            if isinstance(cpu, (int, float)):
                node.cpu_seconds = float(cpu)
            if "ok" in payload:
                node.ok = bool(payload["ok"])
    tree.unclosed = len(started - ended)
    # Link children after the full pass so out-of-order lines (a
    # child's events before its parent's start) still attach.
    for node in tree.nodes.values():
        parent = (
            tree.nodes.get(node.parent_id)
            if node.parent_id is not None
            else None
        )
        if parent is None or parent is node:
            tree.roots.append(node)
        else:
            parent.children.append(node)
    for node in tree.nodes.values():
        node.children.sort(key=_sort_key)
    tree.roots.sort(key=_sort_key)
    return tree


def critical_path(tree: SpanTree) -> list[SpanNode]:
    """The heaviest root-to-leaf chain of the span forest.

    At every level the child with the largest total time is followed
    (ties break to the earliest-started, then smallest span id — the
    sort order of ``children``), so the returned chain is the single
    call path that dominated the run's wall clock.
    """
    if not tree.roots:
        return []
    node = max(tree.roots, key=lambda n: (n.total_seconds, -n.span_id))
    chain = [node]
    while node.children:
        node = max(
            node.children,
            key=lambda n: (n.total_seconds, -n.span_id),
        )
        chain.append(node)
    return chain


def _frame(node: SpanNode) -> str:
    """The flamegraph frame label of one span.

    The stable ``part=`` attribute (partitioned-Gorder workers) is
    folded into the label so per-part cost stays attributable after
    stacks merge.  Semicolons separate frames in the folded format,
    so any in the name are replaced.
    """
    label = node.name
    if "part" in node.attrs:
        label = f"{label} part={node.attrs['part']}"
    return label.replace(";", ",")


def folded_stacks(
    tree: SpanTree, weight: str = "wall"
) -> list[tuple[str, int]]:
    """Semicolon-folded stacks weighted by self time in microseconds.

    One ``(stack, weight)`` pair per distinct stack, stacks sorted
    lexicographically (deterministic output for golden tests); zero
    self-time stacks are dropped, exactly as ``flamegraph.pl``
    expects.  ``weight`` selects wall self time (``"wall"``) or CPU
    self time (``"cpu"``, profiled phases only — spans without a CPU
    account weigh 0).
    """
    if weight not in ("wall", "cpu"):
        raise InvalidParameterError(
            f"unknown flamegraph weight {weight!r}; "
            "expected 'wall' or 'cpu'"
        )
    merged: dict[str, int] = {}

    def visit(node: SpanNode, prefix: str) -> None:
        stack = f"{prefix};{_frame(node)}" if prefix else _frame(node)
        if weight == "wall":
            self_seconds: float | None = node.self_seconds
        else:
            self_seconds = node.self_cpu_seconds
        micros = int(round((self_seconds or 0.0) * 1e6))
        if micros > 0:
            merged[stack] = merged.get(stack, 0) + micros
        for child in node.children:
            visit(child, stack)

    for root in tree.roots:
        visit(root, "")
    return sorted(merged.items())


def render_folded(stacks: list[tuple[str, int]]) -> str:
    """The folded stacks as ``flamegraph.pl`` input text."""
    return "\n".join(f"{stack} {count}" for stack, count in stacks)


# ----------------------------------------------------------------------
# Trace diffing
# ----------------------------------------------------------------------
@dataclass
class DiffRow:
    """One counter or span-name comparison between two traces."""

    name: str
    a: float
    b: float

    @property
    def delta(self) -> float:
        return self.b - self.a

    @property
    def ratio(self) -> float | None:
        if self.a == 0:
            return None
        return self.b / self.a


@dataclass
class TraceDiff:
    """Counter and per-span-name deltas between two traces."""

    path_a: str
    path_b: str
    counters: list[DiffRow] = field(default_factory=list)
    spans: list[DiffRow] = field(default_factory=list)


def diff_traces(
    path_a: str | os.PathLike, path_b: str | os.PathLike
) -> TraceDiff:
    """Compare two traces: counter totals and per-name span time.

    Rows cover the union of names; a name absent from one trace
    contributes 0 on that side.  Span rows compare total seconds per
    span name, sorted by the magnitude of the change.
    """
    from repro.obs.summary import summarize_trace

    a = summarize_trace(path_a)
    b = summarize_trace(path_b)
    diff = TraceDiff(path_a=a.path, path_b=b.path)
    for name in sorted(set(a.counters) | set(b.counters)):
        diff.counters.append(
            DiffRow(
                name,
                float(a.counters.get(name, 0)),
                float(b.counters.get(name, 0)),
            )
        )
    spans_a = {s.name: s.total_seconds for s in a.spans}
    spans_b = {s.name: s.total_seconds for s in b.spans}
    for name in set(spans_a) | set(spans_b):
        diff.spans.append(
            DiffRow(name, spans_a.get(name, 0.0), spans_b.get(name, 0.0))
        )
    diff.spans.sort(key=lambda row: (-abs(row.delta), row.name))
    return diff


# ----------------------------------------------------------------------
# Rendering (the ``telemetry tree|critical-path|diff`` subcommands)
# ----------------------------------------------------------------------
def _fmt_seconds(seconds: float) -> str:
    if seconds >= 1.0:
        return f"{seconds:.3f}s"
    return f"{1e3 * seconds:.2f}ms"


def render_tree(
    tree: SpanTree,
    max_depth: int | None = None,
    min_seconds: float = 0.0,
) -> str:
    """Indented span tree with total/self time per node."""
    lines = [
        f"trace       : {tree.path}",
        f"spans       : {tree.num_spans} in {len(tree.roots)} root(s)"
        + (f", {tree.unclosed} unclosed" if tree.unclosed else ""),
    ]

    def visit(node: SpanNode, depth: int) -> None:
        if max_depth is not None and depth > max_depth:
            return
        if node.total_seconds < min_seconds:
            return
        label = "  " * depth + node.name
        suffix = ""
        if node.cpu_seconds is not None:
            suffix = f"  cpu {_fmt_seconds(node.cpu_seconds)}"
        if not node.closed:
            suffix += "  [unclosed]"
        lines.append(
            f"{label:<44} total {_fmt_seconds(node.total_seconds):>9}"
            f"  self {_fmt_seconds(node.self_seconds):>9}{suffix}"
        )
        for child in node.children:
            visit(child, depth + 1)

    for root in tree.roots:
        visit(root, 0)
    return "\n".join(lines)


def render_critical_path(tree: SpanTree) -> str:
    """The critical path, one numbered hop per line."""
    chain = critical_path(tree)
    if not chain:
        return "no spans in this trace"
    total = chain[0].total_seconds
    lines = [
        f"critical path: {_fmt_seconds(total)} "
        f"across {len(chain)} span(s)"
    ]
    for step, node in enumerate(chain, start=1):
        share = (
            100.0 * node.self_seconds / total if total > 0 else 0.0
        )
        attrs = "".join(
            f" {key}={value}"
            for key, value in sorted(node.attrs.items())
            if key in ("part", "dataset", "algorithm", "ordering",
                       "backend", "n", "m")
        )
        lines.append(
            f"{step:>3}. {node.name:<32} "
            f"total {_fmt_seconds(node.total_seconds):>9}  "
            f"self {_fmt_seconds(node.self_seconds):>9} "
            f"({share:.0f}%){attrs}"
        )
    return "\n".join(lines)


def render_diff(diff: TraceDiff, top: int = 15) -> str:
    """Counter and span deltas, heaviest span changes first."""
    lines = [
        f"trace A     : {diff.path_a}",
        f"trace B     : {diff.path_b}",
    ]
    span_rows = [row for row in diff.spans if row.delta != 0][:top]
    if span_rows:
        lines.append("")
        lines.append("span time (seconds, B - A):")
        for row in span_rows:
            ratio = (
                f" ({row.ratio:.2f}x)" if row.ratio is not None else ""
            )
            lines.append(
                f"  {row.name:<32} {row.a:>10.4f} -> {row.b:>10.4f}  "
                f"{row.delta:+.4f}{ratio}"
            )
    counter_rows = [
        row for row in diff.counters if row.delta != 0
    ]
    if counter_rows:
        lines.append("")
        lines.append("counters (B - A):")
        for row in counter_rows:
            lines.append(
                f"  {row.name:<32} {int(row.a):>12,} -> "
                f"{int(row.b):>12,}  {int(row.delta):+,}"
            )
    if not span_rows and not counter_rows:
        lines.append("no differences in spans or counters")
    return "\n".join(lines)
