"""repro.obs — telemetry: events, spans, counters, run manifests.

The observability layer of the reproduction.  Every ordering kernel,
cache simulation and experiment sweep reports *what it did and how
long it took* through this package, as machine-readable JSON-lines
events plus an in-process registry of counters and span timings.

Telemetry is **off by default** and costs one boolean check per call
site when off (hot loops hoist even that, see
:func:`repro.ordering.gorder.gorder_sequence`).  Switch it on with
:func:`configure`::

    from repro import obs

    obs.configure(level="info", jsonl_path="trace.jsonl")
    with obs.span("my.phase", n=1000):
        obs.inc("my.counter", 3)
    obs.emit_counters()
    obs.shutdown()

or from the CLI with ``repro-gorder <cmd> --log-level info`` /
``--log-json trace.jsonl``; summarise a trace afterwards with
``repro-gorder telemetry trace.jsonl``.
"""

from __future__ import annotations

import sys
from typing import IO

from repro.obs.core import (
    LEVELS,
    LOGGER_NAME,
    NOOP_SPAN,
    TELEMETRY,
    PhaseStats,
    Span,
    SpanStats,
    Telemetry,
    TelemetryError,
)
from repro.obs.manifest import git_sha, run_manifest
from repro.obs.prof import PhaseSpan, profile
from repro.obs.sinks import (
    CaptureHandler,
    JsonlHandler,
    TextFormatter,
    text_handler,
)
from repro.obs.summary import (
    SpanSummary,
    TraceSummary,
    iter_trace,
    summarize_trace,
)
from repro.obs.trace import (
    SpanNode,
    SpanTree,
    TraceDiff,
    build_span_tree,
    critical_path,
    diff_traces,
    folded_stacks,
)

__all__ = [
    "configure",
    "shutdown",
    "reset",
    "enabled",
    "span",
    "profile",
    "event",
    "progress",
    "inc",
    "counters",
    "span_stats",
    "phase_stats",
    "emit_counters",
    "emit_manifest",
    "captured",
    "run_manifest",
    "git_sha",
    "summarize_trace",
    "iter_trace",
    "build_span_tree",
    "critical_path",
    "diff_traces",
    "folded_stacks",
    "Telemetry",
    "TelemetryError",
    "TELEMETRY",
    "Span",
    "SpanStats",
    "PhaseSpan",
    "PhaseStats",
    "SpanNode",
    "SpanTree",
    "TraceDiff",
    "SpanSummary",
    "TraceSummary",
    "CaptureHandler",
    "JsonlHandler",
    "TextFormatter",
    "NOOP_SPAN",
    "LEVELS",
    "LOGGER_NAME",
]

_capture: CaptureHandler | None = None


def configure(
    level: str = "info",
    jsonl_path: str | None = None,
    text_stream: IO[str] | None = None,
    capture: bool = False,
) -> Telemetry:
    """Enable telemetry and attach the requested sinks.

    Parameters
    ----------
    level:
        Minimum level for the *text* sink (``debug``/``info``/
        ``warning``/``error``).  The JSONL and capture sinks always
        record everything.
    jsonl_path:
        Write one JSON object per event to this file (truncates).
    text_stream:
        Render human-readable lines to this stream (commonly
        ``sys.stderr``).
    capture:
        Keep payload dicts in memory, readable via :func:`captured`
        — intended for tests.

    With no sink requested the registry alone is enabled: spans and
    counters aggregate in-process with nothing emitted.
    """
    global _capture
    try:
        numeric = LEVELS[level]
    except KeyError:
        known = ", ".join(LEVELS)
        raise TelemetryError(
            f"unknown log level {level!r}; known levels: {known}"
        ) from None
    if jsonl_path is not None:
        try:
            TELEMETRY.add_handler(JsonlHandler(jsonl_path))
        except OSError as exc:
            raise TelemetryError(
                f"cannot open {jsonl_path} for telemetry: {exc}"
            ) from exc
    if text_stream is not None:
        TELEMETRY.add_handler(text_handler(text_stream, numeric))
    if capture:
        _capture = CaptureHandler()
        TELEMETRY.add_handler(_capture)
    TELEMETRY.enable()
    return TELEMETRY


def configure_stderr(level: str = "info") -> Telemetry:
    """Shorthand: text sink on ``sys.stderr`` at ``level``."""
    return configure(level=level, text_stream=sys.stderr)


def shutdown() -> None:
    """Close all sinks and disable telemetry (idempotent)."""
    global _capture
    TELEMETRY.shutdown()
    _capture = None


def reset() -> None:
    """Shutdown and clear all counters/span aggregates (tests)."""
    global _capture
    TELEMETRY.reset()
    _capture = None


def enabled() -> bool:
    """Is telemetry recording right now?  (The hot-path guard.)"""
    return TELEMETRY.enabled


def span(name: str, **attrs):
    """A timed, attributed section: ``with obs.span("x", n=5): ...``."""
    return TELEMETRY.span(name, **attrs)


def phase_stats() -> dict[str, PhaseStats]:
    """Snapshot of per-phase wall/CPU aggregates (``obs.profile``)."""
    return TELEMETRY.phase_stats()


def event(name: str, level: str = "info", **attrs) -> None:
    """Emit one structured event."""
    TELEMETRY.event(name, level=level, **attrs)


def progress(name: str, **attrs) -> None:
    """Emit a progress event (the replacement for ad-hoc prints)."""
    TELEMETRY.progress(name, **attrs)


def inc(name: str, amount: int = 1) -> None:
    """Add ``amount`` to counter ``name`` (no-op while disabled)."""
    TELEMETRY.inc(name, amount)


def counters() -> dict[str, int]:
    """Snapshot of all counter totals."""
    return TELEMETRY.counters()


def span_stats() -> dict[str, SpanStats]:
    """Snapshot of per-span aggregates."""
    return TELEMETRY.span_stats()


def emit_counters() -> None:
    """Emit cumulative counter totals as one ``counters`` event."""
    TELEMETRY.emit_counters()


def emit_manifest(manifest: dict | None = None, **extra) -> None:
    """Emit a run manifest event (built fresh unless provided)."""
    if not TELEMETRY.enabled:
        return
    TELEMETRY.emit_manifest(manifest or run_manifest(**extra))


def captured() -> list[dict]:
    """Events collected by the capture sink (empty without one)."""
    return list(_capture.events) if _capture is not None else []
