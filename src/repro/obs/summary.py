"""Summarise a JSONL telemetry trace (the ``telemetry`` subcommand).

A trace is whatever ``--log-json`` wrote: one JSON object per line
following the event schema in ``docs/telemetry.md``.  The summary
aggregates span timings by name, takes the final cumulative counter
totals, and keeps the manifest so a reader can tell which code and
machine produced the trace.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.obs.core import TelemetryError


@dataclass
class SpanSummary:
    """Aggregate of every ``span_end`` event sharing one name."""

    name: str
    count: int = 0
    total_seconds: float = 0.0
    max_seconds: float = 0.0

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Everything the ``telemetry`` subcommand renders."""

    path: str
    num_events: int = 0
    kinds: dict[str, int] = field(default_factory=dict)
    spans: list[SpanSummary] = field(default_factory=list)
    counters: dict[str, int] = field(default_factory=dict)
    manifest: dict | None = None
    #: Span names seen starting but never ending (crashed run).
    unclosed: int = 0


def iter_trace(path: str | os.PathLike):
    """Yield the payload dicts of one JSONL trace, validating as it goes.

    A torn **final** line — a run killed mid-append leaves half a JSON
    object, the same failure mode as the sweep checkpoint journal —
    is discarded with a warning event rather than raised, so partial
    traces from crashed runs still summarise.  Corruption anywhere
    else in the file still raises :class:`TelemetryError`.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise TelemetryError(f"cannot read trace {path}: {exc}") from exc
    lines = text.splitlines()
    while lines and not lines[-1].strip():
        lines.pop()
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                # Torn tail: the writer died mid-append.  Same
                # semantics as the sweep checkpoint reader — drop the
                # partial record, keep everything before it.
                from repro.obs.core import TELEMETRY

                TELEMETRY.event(
                    "obs.trace_torn_tail",
                    level="warning",
                    path=str(path),
                    line=lineno,
                )
                return
            raise TelemetryError(
                f"{path}:{lineno}: not valid JSON ({exc.msg})"
            ) from exc
        if not isinstance(payload, dict):
            raise TelemetryError(
                f"{path}:{lineno}: expected a JSON object, "
                f"got {type(payload).__name__}"
            )
        yield payload


def summarize_trace(path: str | os.PathLike) -> TraceSummary:
    """Aggregate one trace file into a :class:`TraceSummary`."""
    summary = TraceSummary(path=str(path))
    spans: dict[str, SpanSummary] = {}
    started = 0
    ended = 0
    for payload in iter_trace(path):
        summary.num_events += 1
        kind = payload.get("kind", "unknown")
        summary.kinds[kind] = summary.kinds.get(kind, 0) + 1
        if kind == "span_start":
            started += 1
        elif kind == "span_end":
            ended += 1
            name = payload.get("name", "?")
            entry = spans.get(name)
            if entry is None:
                entry = spans[name] = SpanSummary(name=name)
            entry.count += 1
            seconds = float(payload.get("dur_s", 0.0))
            entry.total_seconds += seconds
            entry.max_seconds = max(entry.max_seconds, seconds)
        elif kind == "counters":
            # Counter events carry cumulative totals; the last one wins.
            summary.counters = dict(payload.get("counters", {}))
        elif kind == "manifest" and summary.manifest is None:
            summary.manifest = payload.get("manifest", {})
    summary.spans = sorted(
        spans.values(), key=lambda s: s.total_seconds, reverse=True
    )
    summary.unclosed = max(0, started - ended)
    return summary
