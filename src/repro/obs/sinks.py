"""Telemetry sinks: logging handlers for text, JSONL and capture.

Every sink is a standard :class:`logging.Handler`; the structured
payload built by :class:`repro.obs.core.Telemetry` rides on each
record as ``record.telemetry``.  Records without a payload (anything
a third party logs through the same logger) degrade gracefully.
"""

from __future__ import annotations

import json
import logging
from typing import IO


def _payload(record: logging.LogRecord) -> dict:
    payload = getattr(record, "telemetry", None)
    if payload is None:
        payload = {
            "ts": record.created,
            "kind": "log",
            "name": record.name,
            "level": record.levelname.lower(),
            "msg": record.getMessage(),
        }
    return payload


class TextFormatter(logging.Formatter):
    """One human-readable line per event, for terminals."""

    def format(self, record: logging.LogRecord) -> str:
        payload = _payload(record)
        parts = [
            self.formatTime(record, "%H:%M:%S"),
            f"{payload['kind']:<10}",
            payload["name"],
        ]
        if "dur_s" in payload:
            parts.append(f"dur={1e3 * payload['dur_s']:.2f}ms")
        for key, value in (payload.get("attrs") or {}).items():
            parts.append(f"{key}={value}")
        if payload.get("counters"):
            parts.extend(
                f"{key}={value}"
                for key, value in sorted(payload["counters"].items())
            )
        if "msg" in payload:
            parts.append(payload["msg"])
        return " ".join(str(part) for part in parts)


def text_handler(stream: IO[str], level: int) -> logging.Handler:
    """A stderr-style sink rendering events as text lines."""
    handler = logging.StreamHandler(stream)
    handler.setLevel(level)
    handler.setFormatter(TextFormatter())
    return handler


class JsonlHandler(logging.FileHandler):
    """A sink appending one compact JSON object per event to a file."""

    def __init__(self, path: str) -> None:
        super().__init__(path, mode="w", encoding="utf-8")
        self.setLevel(logging.DEBUG)

    def format(self, record: logging.LogRecord) -> str:
        return json.dumps(
            _payload(record), default=str, separators=(",", ":")
        )


class CaptureHandler(logging.Handler):
    """An in-memory sink collecting payload dicts (tests, summaries)."""

    def __init__(self) -> None:
        super().__init__(level=logging.DEBUG)
        self.events: list[dict] = []

    def emit(self, record: logging.LogRecord) -> None:
        self.events.append(_payload(record))
