"""Run manifests: the environment fingerprint of one measurement.

The paper's numbers only mean something relative to the machine and
code revision that produced them, so every archive and trace carries
a manifest: git SHA, interpreter and numpy versions, platform, the
chosen profile/seed and the wall-clock moment the run started.
"""

from __future__ import annotations

import platform
import subprocess
import sys
import time
from pathlib import Path

import numpy as np


def git_sha() -> str | None:
    """The repository HEAD revision, or ``None`` outside a checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def run_manifest(
    profile: str | None = None,
    seed: int | None = None,
    **extra,
) -> dict:
    """Environment + run-identity fields, JSON-ready.

    ``extra`` keyword fields (e.g. ``command=``, ``argv=``) are merged
    in verbatim, letting call sites stamp their own identity.
    """
    from repro import __version__

    manifest = {
        "created_unix": time.time(),
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "repro_version": __version__,
        "git_sha": git_sha(),
        "python": sys.version.split()[0],
        "numpy": np.__version__,
        "platform": platform.platform(),
        "machine": platform.machine(),
        "profile": profile,
        "seed": seed,
    }
    manifest.update(extra)
    return manifest
