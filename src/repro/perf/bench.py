"""Benchmark-regression harness for the Gorder kernels.

Times the loop and batched greedy kernels (plus the partitioned
multiprocess ordering) on a deterministic generated graph, verifies
they agree byte-for-byte, and emits a machine-readable
``BENCH_gorder.json`` so every future change has a perf trajectory to
compare against.  Schema (version 1, documented in
``docs/performance.md``)::

    {
      "schema_version": 1,
      "bench": "gorder_kernel",
      "quick": bool,
      "manifest": {...},             # repro.obs.run_manifest()
      "graph": {"generator", "nodes", "edges", "edges_per_node", "seed"},
      "window": int,
      "kernels": {
        "loop":    {"seconds", "heap_pops", "unit_updates",
                    "updates_per_second"},
        "batched": {..., "batched_moves"}
      },
      "speedup_batched_vs_loop": float,
      "identical": true,             # divergence raises instead
      "partitioned": {               # null when skipped
        "num_parts", "workers", "workers_1_seconds",
        "workers_n_seconds", "speedup", "identical"
      }
    }

Entry points: the ``repro-gorder bench`` CLI subcommand and the
pytest harness ``benchmarks/bench_gorder_kernel.py`` both call
:func:`run_gorder_bench`.

The module also hosts the **cache trace-replay benchmark**
(:func:`run_cache_bench`, ``BENCH_cache.json``): a traced PageRank
records one access trace, then the scalar path
(:meth:`CacheHierarchy.step_trace`) and the vectorised path
(:meth:`CacheHierarchy.replay`) simulate that same trace; the harness
enforces identical serving levels and per-level counters before it
reports a speedup.  Schema (version 1)::

    {
      "schema_version": 1,
      "bench": "cache_replay",
      "quick": bool,
      "manifest": {...},
      "workload": {"algorithm", "dataset", "iterations", "hierarchy",
                   "accesses", "demand_accesses", "total_refs"},
      "backends": {
        "step":   {"seconds", "accesses_per_second"},
        "replay": {"seconds", "accesses_per_second"}
      },
      "speedup_replay_vs_step": float,   # the headline number
      "level_counts": [...],             # identical across backends
      "identical": true,                 # divergence raises instead
      "end_to_end": {                    # record+simulate wall clock
        "step_seconds", "replay_seconds", "speedup"
      }
    }

Finally the **algorithm-runtime benchmark**
(:func:`run_algos_bench`, ``BENCH_algos.json``): every frontier-shaped
traced algorithm runs twice over the same dataset — once through its
scalar per-touch oracle, once through the vectorised frontier runtime
(:mod:`repro.algorithms.runtime`) — and the harness enforces identical
results *and* per-level cache counters before reporting.  The headline
timing covers the traced run through trace materialisation (algorithm
body + touch recording + buffer freeze); the downstream LRU simulation
is the same work for both emitters (it is ``cache_replay``'s subject)
and is reported separately.  Schema (version 1)::

    {
      "schema_version": 1,
      "bench": "algos_runtime",
      "quick": bool,
      "manifest": {...},
      "workload": {"dataset", "hierarchy", "iterations", "num_sources",
                   "nodes", "edges", "algorithms"},
      "algorithms": {
        "<name>": {"scalar_seconds", "runtime_seconds", "speedup",
                   "simulate_seconds": {"scalar", "runtime"},
                   "level_counts", "total_refs", "prefetched_refs",
                   "identical"}
      },
      "totals": {"scalar_seconds", "runtime_seconds"},
      "speedup_runtime_vs_scalar": float,  # the headline number
      "with_simulation": {                 # incl. LRU simulation
        "scalar_seconds", "runtime_seconds", "speedup"
      },
      "identical": true                    # divergence raises instead
    }
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro.errors import InvalidParameterError, ReproError
from repro.graph.generators import social_graph
from repro.ioutil import atomic_write_text
from repro.ordering.gorder import DEFAULT_WINDOW, gorder_sequence
from repro.ordering.parallel import gorder_partitioned

#: Current BENCH_gorder.json schema version.
BENCH_SCHEMA_VERSION = 1

#: Counters attributed to each kernel (diffed around one metered run,
#: separate from the timed runs — see :func:`_counted`).
_KERNEL_COUNTERS = {
    "heap_pops": "gorder.heap_pops",
    "unit_updates": "gorder.priority_updates",
    "batched_moves": "gorder.batched_moves",
}


class BenchRegressionError(ReproError):
    """Two benchmark backends that must agree produced different
    results (Gorder sequences, or cache counters/serving levels)."""


@dataclass(frozen=True)
class GorderBenchConfig:
    """Shape of one Gorder kernel benchmark run."""

    #: Benchmark graph size (the acceptance graph is 50k nodes /
    #: ~500k+ edges; ``quick_config`` shrinks it for CI smoke).
    nodes: int = 50_000
    edges_per_node: int = 10
    window: int = DEFAULT_WINDOW
    num_parts: int = 4
    workers: int = 4
    seed: int = 3
    #: Best-of-N timing; 2 absorbs first-run allocator cold start.
    repeats: int = 2
    quick: bool = False
    include_partitioned: bool = True


def quick_config(**overrides) -> GorderBenchConfig:
    """The CI smoke configuration (small graph, same schema)."""
    settings = dict(
        nodes=2_000, edges_per_node=8, num_parts=4, workers=2,
        repeats=1, quick=True,
    )
    settings.update(overrides)
    return GorderBenchConfig(**settings)


def _timed(fn, repeats: int):
    """Best-of-``repeats`` wall time of ``fn`` (monotonic clock)."""
    start = time.perf_counter()
    result = fn()
    best = time.perf_counter() - start
    for _ in range(max(repeats, 1) - 1):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _counted(fn) -> dict:
    """Run ``fn`` once with the counter registry active and return the
    diffed kernel counters.

    Kept separate from :func:`_timed` on purpose: metering swaps in
    the instrumented heap, whose per-event accounting would otherwise
    leak into the timings (the benchmark must measure the production
    path, not the telemetry path).
    """
    owns_telemetry = not obs.enabled()
    if owns_telemetry:
        obs.configure()  # registry-only: counters without sinks
    try:
        before = dict(obs.counters())
        fn()
        after = dict(obs.counters())
    finally:
        if owns_telemetry:
            obs.shutdown()
    return {
        field: int(after.get(name, 0)) - int(before.get(name, 0))
        for field, name in _KERNEL_COUNTERS.items()
    }


def run_gorder_bench(
    config: GorderBenchConfig | None = None,
) -> dict:
    """Run the kernel benchmark and return the JSON-ready payload.

    Raises :class:`BenchRegressionError` if the batched and loop
    backends (or the partitioned worker counts) disagree — a perf
    harness must never bless a wrong answer.
    """
    config = config or GorderBenchConfig()
    graph = social_graph(
        config.nodes,
        edges_per_node=config.edges_per_node,
        seed=config.seed,
        name=f"bench-social-{config.nodes}",
    )
    # Force the shared lazy structures before any timing so neither
    # kernel pays the in-CSR/degree build inside its measurement.
    graph.in_adjacency
    graph.out_degrees()
    graph.in_degrees()

    # Timing runs leave telemetry exactly as the caller configured it
    # (normally disabled) so both kernels take their production path;
    # counters come from one separate metered run per kernel.
    with obs.span(
        "bench.gorder_kernel", n=graph.num_nodes,
        m=graph.num_edges, window=config.window,
        quick=config.quick,
    ):
        run_loop = lambda: gorder_sequence(  # noqa: E731
            graph, window=config.window, backend="loop"
        )
        run_batched = lambda: gorder_sequence(  # noqa: E731
            graph, window=config.window, backend="batched"
        )
        loop_seq, loop_seconds = _timed(run_loop, config.repeats)
        batched_seq, batched_seconds = _timed(
            run_batched, config.repeats
        )
        identical = bool(np.array_equal(loop_seq, batched_seq))
        if not identical:
            raise BenchRegressionError(
                "batched and loop Gorder backends diverged on "
                f"{graph.name} (window={config.window})"
            )
        partitioned = None
        if config.include_partitioned:
            partitioned = _bench_partitioned(graph, config)
        loop_counters = _counted(run_loop)
        batched_counters = _counted(run_batched)

    loop_kernel = _kernel_payload(
        loop_seconds, loop_counters, batched=False
    )
    batched_kernel = _kernel_payload(
        batched_seconds, batched_counters, batched=True
    )
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": "gorder_kernel",
        "quick": config.quick,
        "manifest": obs.run_manifest(
            seed=config.seed, command="bench",
        ),
        "graph": {
            "generator": "social_graph",
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "edges_per_node": config.edges_per_node,
            "seed": config.seed,
        },
        "window": config.window,
        "kernels": {"loop": loop_kernel, "batched": batched_kernel},
        "speedup_batched_vs_loop": (
            loop_seconds / batched_seconds if batched_seconds else None
        ),
        "identical": identical,
        "partitioned": partitioned,
    }


def _kernel_payload(
    seconds: float, counters: dict, batched: bool
) -> dict:
    payload = {
        "seconds": seconds,
        "heap_pops": counters["heap_pops"],
        "unit_updates": counters["unit_updates"],
        "updates_per_second": (
            counters["unit_updates"] / seconds if seconds else None
        ),
    }
    if batched:
        payload["batched_moves"] = counters["batched_moves"]
    return payload


def _bench_partitioned(graph, config: GorderBenchConfig) -> dict:
    """Time workers=1 vs workers=N and verify they agree."""

    def run(workers: int) -> np.ndarray:
        return gorder_partitioned(
            graph,
            num_parts=config.num_parts,
            window=config.window,
            workers=workers,
        )

    serial, serial_seconds = _timed(lambda: run(1), config.repeats)
    parallel, parallel_seconds = _timed(
        lambda: run(config.workers), config.repeats
    )
    identical = bool(np.array_equal(serial, parallel))
    if not identical:
        raise BenchRegressionError(
            f"gorder_partitioned(workers={config.workers}) diverged "
            f"from workers=1 on {graph.name}"
        )
    return {
        "num_parts": config.num_parts,
        "workers": config.workers,
        "workers_1_seconds": serial_seconds,
        "workers_n_seconds": parallel_seconds,
        "speedup": (
            serial_seconds / parallel_seconds
            if parallel_seconds
            else None
        ),
        "identical": identical,
    }


# ----------------------------------------------------------------------
# Cache trace-replay benchmark
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CacheBenchConfig:
    """Shape of one cache trace-replay benchmark run."""

    #: Dataset whose traced PageRank supplies the access trace (the
    #: acceptance workload is the largest analogue, ``sdarc``).
    dataset: str = "sdarc"
    #: PageRank iterations for the recorded trace.
    iterations: int = 5
    #: Hierarchy the trace is simulated against: ``"paper"`` (the
    #: replication's 32KiB/256KiB/16MiB geometry) or ``"scaled"``.
    hierarchy: str = "paper"
    #: Best-of-N timing; 3 absorbs allocator cold start and the
    #: single-core host's scheduling jitter.
    repeats: int = 3
    quick: bool = False


def quick_cache_config(**overrides) -> CacheBenchConfig:
    """The CI smoke configuration (small dataset, same schema)."""
    settings = dict(
        dataset="epinion", iterations=2, hierarchy="scaled",
        repeats=1, quick=True,
    )
    settings.update(overrides)
    return CacheBenchConfig(**settings)


def _hierarchy_factory(name: str):
    from repro.cache import paper_hierarchy, scaled_hierarchy

    try:
        return {
            "paper": paper_hierarchy, "scaled": scaled_hierarchy
        }[name]
    except KeyError:
        raise InvalidParameterError(
            f"unknown bench hierarchy {name!r}; "
            "expected 'paper' or 'scaled'"
        ) from None


def _simulate_counts(hierarchy, serving, trace) -> list[int]:
    """Serving levels -> ``Memory.level_counts``-shaped counters."""
    counts = np.bincount(
        serving[trace.demand_idx],
        minlength=hierarchy.num_levels + 1,
    )
    counts = [int(c) for c in counts]
    counts[1] += trace.extra_l1
    return counts


def run_cache_bench(config: CacheBenchConfig | None = None) -> dict:
    """Run the trace-replay benchmark and return the JSON payload.

    Both backends simulate the *same* recorded traced-PageRank trace;
    :class:`BenchRegressionError` is raised unless their serving
    levels, per-level refs/misses, and assembled level counts are all
    identical — a perf harness must never bless a wrong answer.
    """
    from repro.algorithms.pagerank import pagerank_traced
    from repro.cache import Memory
    from repro.graph import datasets

    config = config or CacheBenchConfig()
    factory = _hierarchy_factory(config.hierarchy)
    graph = datasets.load(config.dataset)

    with obs.span(
        "bench.cache_replay", dataset=config.dataset,
        iterations=config.iterations, hierarchy=config.hierarchy,
        quick=config.quick,
    ):
        # One recorded trace feeds both simulation paths.
        memory = Memory(factory(), cache_backend="replay")
        pagerank_traced(graph, memory, iterations=config.iterations)
        trace = memory.recorded_trace()

        def run_step():
            hierarchy = factory()
            serving = hierarchy.step_trace(trace.lines)
            return hierarchy, serving, _simulate_counts(
                hierarchy, serving, trace
            )

        def run_replay():
            hierarchy = factory()
            serving = hierarchy.replay(trace.lines)
            return hierarchy, serving, _simulate_counts(
                hierarchy, serving, trace
            )

        (h_step, serving_step, counts_step), step_seconds = _timed(
            run_step, config.repeats
        )
        (h_replay, serving_replay, counts_replay), replay_seconds = (
            _timed(run_replay, config.repeats)
        )

        level_counters = lambda h: [  # noqa: E731
            (level.refs, level.misses) for level in h.levels
        ]
        identical = (
            bool(np.array_equal(serving_step, serving_replay))
            and counts_step == counts_replay
            and level_counters(h_step) == level_counters(h_replay)
        )
        if not identical:
            raise BenchRegressionError(
                "replay and step cache backends diverged on "
                f"{config.dataset} ({config.hierarchy} hierarchy)"
            )
        end_to_end = _bench_end_to_end(graph, factory, config)

    backends = {
        "step": {
            "seconds": step_seconds,
            "accesses_per_second": (
                trace.num_accesses / step_seconds
                if step_seconds else None
            ),
        },
        "replay": {
            "seconds": replay_seconds,
            "accesses_per_second": (
                trace.num_accesses / replay_seconds
                if replay_seconds else None
            ),
        },
    }
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": "cache_replay",
        "quick": config.quick,
        "manifest": obs.run_manifest(command="bench"),
        "workload": {
            "algorithm": "pr",
            "dataset": config.dataset,
            "iterations": config.iterations,
            "hierarchy": config.hierarchy,
            "accesses": trace.num_accesses,
            "demand_accesses": trace.num_demand,
            "total_refs": trace.total_refs,
        },
        "backends": backends,
        "speedup_replay_vs_step": (
            step_seconds / replay_seconds if replay_seconds else None
        ),
        "level_counts": counts_step,
        "identical": identical,
        "end_to_end": end_to_end,
    }


def _bench_end_to_end(graph, factory, config: CacheBenchConfig) -> dict:
    """Record+simulate wall clock per backend (informational).

    Unlike the headline simulate-only numbers this includes the traced
    algorithm's own Python body and the trace recording, which both
    backends' users pay identically.
    """
    from repro.algorithms.pagerank import pagerank_traced
    from repro.cache import Memory

    def run(backend: str):
        def body():
            memory = Memory(factory(), cache_backend=backend)
            pagerank_traced(
                graph, memory, iterations=config.iterations
            )
            return memory.level_counts

        return _timed(body, config.repeats)

    counts_step, step_seconds = run("step")
    counts_replay, replay_seconds = run("replay")
    if counts_step != counts_replay:
        raise BenchRegressionError(
            "replay and step backends diverged end-to-end on "
            f"{config.dataset}"
        )
    return {
        "step_seconds": step_seconds,
        "replay_seconds": replay_seconds,
        "speedup": (
            step_seconds / replay_seconds if replay_seconds else None
        ),
        "identical": True,  # divergence raises instead
    }


# ----------------------------------------------------------------------
# Frontier-runtime algorithm benchmark
# ----------------------------------------------------------------------
#: Algorithms with a vectorised runtime port (scalar oracle retained);
#: the traced acceptance workload of ``BENCH_algos.json``.
RUNTIME_ALGORITHMS: tuple[str, ...] = (
    "nq", "bfs", "sp", "pr", "lp", "diam"
)


@dataclass(frozen=True)
class AlgosBenchConfig:
    """Shape of one frontier-runtime algorithm benchmark run."""

    #: Dataset the traced suite runs on (the acceptance workload is
    #: the largest analogue, ``sdarc``).
    dataset: str = "sdarc"
    #: Hierarchy the runs simulate against (``"paper"``/``"scaled"``).
    hierarchy: str = "scaled"
    #: PageRank / label-propagation sweep count.
    iterations: int = 5
    #: Diameter SP repetitions.
    num_sources: int = 4
    #: Best-of-N timing; 2 absorbs allocator cold start.
    repeats: int = 2
    quick: bool = False


def quick_algos_config(**overrides) -> AlgosBenchConfig:
    """The CI smoke configuration (small dataset, same schema)."""
    settings = dict(
        dataset="epinion", iterations=2, num_sources=2, repeats=1,
        quick=True,
    )
    settings.update(overrides)
    return AlgosBenchConfig(**settings)


def _algo_params(config: AlgosBenchConfig) -> dict[str, dict]:
    return {
        "sp": {"source": 0},
        "pr": {"iterations": config.iterations},
        "lp": {"iterations": config.iterations},
        "diam": {"num_sources": config.num_sources, "seed": 0},
    }


def run_algos_bench(config: AlgosBenchConfig | None = None) -> dict:
    """Run the traced algorithm suite under both emitters; the payload.

    Every algorithm runs twice over the same dataset and hierarchy —
    once through its scalar-loop oracle, once through the vectorised
    frontier runtime — and :class:`BenchRegressionError` is raised
    unless the results **and** the per-level cache counters are
    identical: the runtime's whole contract is emitting the exact
    touch sequence the scalar code does, so any divergence is a
    correctness bug, not a perf trade-off.

    The headline timing covers the traced run end-to-end through
    trace *materialisation* (the algorithm body, all touch recording,
    and the buffer freeze) — the phase the frontier runtime
    vectorises.  The downstream LRU simulation of the materialised
    trace is byte-for-byte the same work for both emitters (it is the
    cache-replay benchmark's subject, ``BENCH_cache.json``), so it is
    timed separately and reported as ``simulate_seconds`` /
    ``with_simulation`` rather than folded into the emitter ratio.
    """
    from repro.algorithms import base as algorithms
    from repro.cache import Memory
    from repro.graph import datasets

    config = config or AlgosBenchConfig()
    factory = _hierarchy_factory(config.hierarchy)
    graph = datasets.load(config.dataset)
    params_by_algo = _algo_params(config)

    per_algorithm: dict[str, dict] = {}
    scalar_total = 0.0
    runtime_total = 0.0
    scalar_sim_total = 0.0
    runtime_sim_total = 0.0
    with obs.span(
        "bench.algos_runtime", dataset=config.dataset,
        hierarchy=config.hierarchy, quick=config.quick,
    ):
        for name in RUNTIME_ALGORITHMS:
            algorithm = algorithms.spec(name)
            params = params_by_algo.get(name, {})

            def run(backend: str):
                traced = algorithms.traced_fn(algorithm, backend)

                def body():
                    memory = Memory(factory(), cache_backend="replay")
                    result = traced(graph, memory, **params)
                    # Materialise the trace inside the timed region:
                    # the runtime defers block expansion to the
                    # freeze, so stopping the clock earlier would
                    # credit it with work it has not done yet.
                    memory.recorded_trace()
                    return result, memory

                (result, memory), seconds = _timed(
                    body, config.repeats
                )
                # The LRU simulation of the frozen trace, timed
                # separately (identical input either way).
                sim_start = time.perf_counter()
                counts = list(memory.level_counts)
                sim_seconds = time.perf_counter() - sim_start
                return (
                    result, counts, memory.total_refs,
                    memory.prefetched_refs, seconds, sim_seconds,
                )

            (
                s_result, s_counts, s_refs, s_prefetched,
                scalar_seconds, scalar_sim,
            ) = run("scalar")
            (
                r_result, r_counts, r_refs, r_prefetched,
                runtime_seconds, runtime_sim,
            ) = run("runtime")
            identical = (
                bool(np.array_equal(
                    np.asarray(s_result), np.asarray(r_result)
                ))
                and s_counts == r_counts
                and s_refs == r_refs
                and s_prefetched == r_prefetched
            )
            if not identical:
                raise BenchRegressionError(
                    f"runtime and scalar emitters diverged for "
                    f"{name!r} on {config.dataset} "
                    f"({config.hierarchy} hierarchy)"
                )
            scalar_total += scalar_seconds
            runtime_total += runtime_seconds
            scalar_sim_total += scalar_sim
            runtime_sim_total += runtime_sim
            per_algorithm[name] = {
                "scalar_seconds": scalar_seconds,
                "runtime_seconds": runtime_seconds,
                "speedup": (
                    scalar_seconds / runtime_seconds
                    if runtime_seconds else None
                ),
                "simulate_seconds": {
                    "scalar": scalar_sim, "runtime": runtime_sim,
                },
                "level_counts": s_counts,
                "total_refs": s_refs,
                "prefetched_refs": s_prefetched,
                "identical": identical,
            }

    with_simulation_scalar = scalar_total + scalar_sim_total
    with_simulation_runtime = runtime_total + runtime_sim_total
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": "algos_runtime",
        "quick": config.quick,
        "manifest": obs.run_manifest(command="bench"),
        "workload": {
            "dataset": config.dataset,
            "hierarchy": config.hierarchy,
            "iterations": config.iterations,
            "num_sources": config.num_sources,
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "algorithms": list(RUNTIME_ALGORITHMS),
        },
        "algorithms": per_algorithm,
        "totals": {
            "scalar_seconds": scalar_total,
            "runtime_seconds": runtime_total,
        },
        "speedup_runtime_vs_scalar": (
            scalar_total / runtime_total if runtime_total else None
        ),
        "with_simulation": {
            "scalar_seconds": with_simulation_scalar,
            "runtime_seconds": with_simulation_runtime,
            "speedup": (
                with_simulation_scalar / with_simulation_runtime
                if with_simulation_runtime else None
            ),
        },
        "identical": True,  # divergence raises instead
    }


# ----------------------------------------------------------------------
# Selector cost/quality frontier benchmark
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class FrontierBenchConfig:
    """Shape of one selector-frontier benchmark run."""

    #: Acceptance datasets the selector is judged on.
    datasets: tuple[str, ...] = ("epinion", "pokec", "wiki")
    #: Modelled workload size for the amortisation decision; the
    #: default models a query-heavy serving deployment.
    query_volume: float = 100_000.0
    #: Acceptance band: the chosen configuration's probe cycles must
    #: land within this fraction of the measured oracle best.
    tolerance: float = 0.10
    cache_backend: str = "replay"
    algo_backend: str = "runtime"
    seed: int = 0
    quick: bool = False


def quick_frontier_config(**overrides) -> FrontierBenchConfig:
    """The CI smoke configuration (one dataset, same schema)."""
    settings = dict(datasets=("epinion",), quick=True)
    settings.update(overrides)
    return FrontierBenchConfig(**settings)


def run_frontier_bench(
    config: FrontierBenchConfig | None = None,
) -> dict:
    """Run the cost/quality frontier experiment; the JSON payload.

    On every acceptance dataset the adaptive selector probes its
    candidate frontier (measured ordering wall-time + simulated NQ
    probe cycles) and picks the configuration minimising amortised
    cost at the configured query volume.  The payload records the
    full frontier — each candidate's cycles, ordering seconds and
    break-even query volume against the original arrangement — plus
    the selection itself.  :class:`BenchRegressionError` is raised if
    any chosen configuration's probe cycles exceed the measured
    oracle best by more than ``tolerance`` — a selector that misses
    the frontier must fail the harness, not report around it.

    Schema (version 1)::

        {
          "schema_version": 1,
          "bench": "selector_frontier",
          "quick": bool,
          "manifest": {...},
          "workload": {"datasets", "query_volume", "clock_hz",
                       "cache_backend", "algo_backend", "tolerance"},
          "datasets": {
            "<name>": {"nodes", "edges", "predictors", "probes",
                       "pruned", "selected", "oracle", "regret",
                       "break_even_queries", "within_tolerance",
                       "selection_seconds"}
          },
          "totals": {"selection_seconds"},
          "max_regret": float,        # the headline number
          "within_tolerance": true    # divergence raises instead
        }
    """
    from repro.graph import datasets
    from repro.ordering.select import select_ordering

    config = config or FrontierBenchConfig()
    if not config.datasets:
        raise InvalidParameterError(
            "the frontier benchmark needs at least one dataset"
        )
    if config.tolerance < 0:
        raise InvalidParameterError(
            f"tolerance must be non-negative, got {config.tolerance}"
        )
    per_dataset: dict[str, dict] = {}
    total_selection_seconds = 0.0
    max_regret = 0.0
    clock_hz: float | None = None
    with obs.span(
        "bench.selector_frontier",
        datasets=len(config.datasets),
        query_volume=config.query_volume, quick=config.quick,
    ):
        for name in config.datasets:
            graph = datasets.load(name)
            decision = select_ordering(
                graph,
                query_volume=config.query_volume,
                seed=config.seed,
                cache_backend=config.cache_backend,
                algo_backend=config.algo_backend,
                dataset=name,
            )
            clock_hz = decision.clock_hz
            oracle = decision.oracle_probe
            regret = (
                decision.chosen.probe_cycles / oracle.probe_cycles
                - 1.0
                if oracle.probe_cycles else 0.0
            )
            within = regret <= config.tolerance
            if not within:
                raise BenchRegressionError(
                    f"selector missed the frontier on {name}: chose "
                    f"{decision.chosen.label} at "
                    f"{decision.chosen.probe_cycles:.0f} cycles, "
                    f"{100 * regret:.1f}% above oracle "
                    f"{oracle.label} (tolerance "
                    f"{100 * config.tolerance:.0f}%)"
                )
            max_regret = max(max_regret, regret)
            total_selection_seconds += decision.selection_seconds
            per_dataset[name] = {
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
                "predictors": decision.predictors.as_dict(),
                "probes": [
                    probe.as_dict() for probe in decision.probes
                ],
                "pruned": list(decision.pruned),
                "selected": decision.chosen.as_dict(),
                "oracle": oracle.as_dict(),
                "regret": regret,
                "break_even_queries": (
                    decision.chosen.break_even_queries
                ),
                "within_tolerance": within,
                "selection_seconds": decision.selection_seconds,
            }
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": "selector_frontier",
        "quick": config.quick,
        "manifest": obs.run_manifest(
            seed=config.seed, command="bench",
        ),
        "workload": {
            "datasets": list(config.datasets),
            "query_volume": config.query_volume,
            "clock_hz": clock_hz,
            "cache_backend": config.cache_backend,
            "algo_backend": config.algo_backend,
            "tolerance": config.tolerance,
        },
        "datasets": per_dataset,
        "totals": {"selection_seconds": total_selection_seconds},
        "max_regret": max_regret,
        "within_tolerance": True,  # divergence raises instead
    }


def _format_break_even(value: float | None) -> str:
    if value is None or value == float("inf"):
        return "never"
    if value == 0:
        return "baseline"
    return f"{value:,.0f} queries"


def render_frontier_bench(payload: dict) -> str:
    """Human-readable summary of one frontier benchmark payload."""
    workload = payload["workload"]
    lines = [
        f"workload    : NQ x{workload['query_volume']:,.0f} on "
        f"{', '.join(workload['datasets'])} "
        f"({workload['cache_backend']}/{workload['algo_backend']})",
    ]
    for name, entry in payload["datasets"].items():
        lines.append(
            f"{name:<12}: n={entry['nodes']:,} m={entry['edges']:,}"
        )
        for probe in entry["probes"]:
            marker = (
                ">" if probe["label"] == entry["selected"]["label"]
                else " "
            )
            lines.append(
                f"  {marker} {probe['label']:<20}"
                f"{probe['probe_cycles'] / 1e6:8.2f}M cycles  "
                f"{probe['ordering_seconds']:8.4f}s  "
                f"break-even "
                f"{_format_break_even(probe['break_even_queries'])}"
            )
        for label in entry["pruned"]:
            lines.append(f"    {label:<20}(pruned by predictor gate)")
        lines.append(
            f"  selected {entry['selected']['label']} "
            f"(oracle {entry['oracle']['label']}, "
            f"regret {100 * entry['regret']:.1f}%)"
        )
    lines.append(
        f"max regret  : {100 * payload['max_regret']:.1f}% "
        f"(tolerance {100 * workload['tolerance']:.0f}%)"
    )
    lines.append(
        "within tol  : "
        + ("yes" if payload["within_tolerance"] else "NO")
    )
    return "\n".join(lines)


def render_algos_bench(payload: dict) -> str:
    """Human-readable summary of one algos benchmark payload."""
    workload = payload["workload"]
    lines = [
        f"workload    : {', '.join(workload['algorithms'])} on "
        f"{workload['dataset']} ({workload['hierarchy']} hierarchy)",
        f"graph       : n={workload['nodes']:,} "
        f"m={workload['edges']:,}",
    ]
    for name, algo in payload["algorithms"].items():
        speedup = algo["speedup"]
        speedup_text = (
            f"{speedup:.2f}x" if speedup is not None else "n/a"
        )
        lines.append(
            f"{name:<12}: scalar {algo['scalar_seconds']:.3f}s vs "
            f"runtime {algo['runtime_seconds']:.3f}s "
            f"({speedup_text}, {algo['total_refs']:,} refs)"
        )
    totals = payload["totals"]
    speedup = payload["speedup_runtime_vs_scalar"]
    lines.append(
        f"total       : scalar {totals['scalar_seconds']:.3f}s vs "
        f"runtime {totals['runtime_seconds']:.3f}s"
    )
    if speedup is not None:
        lines.append(
            f"speedup     : {speedup:.2f}x runtime vs scalar"
        )
    with_sim = payload.get("with_simulation")
    if with_sim and with_sim["speedup"] is not None:
        lines.append(
            f"with sim    : scalar "
            f"{with_sim['scalar_seconds']:.3f}s vs runtime "
            f"{with_sim['runtime_seconds']:.3f}s "
            f"({with_sim['speedup']:.2f}x incl. LRU simulation)"
        )
    lines.append(
        "identical   : " + ("yes" if payload["identical"] else "NO")
    )
    return "\n".join(lines)


def render_cache_bench(payload: dict) -> str:
    """Human-readable summary of one cache benchmark payload."""
    workload = payload["workload"]
    backends = payload["backends"]
    lines = [
        f"workload    : pr x{workload['iterations']} on "
        f"{workload['dataset']} ({workload['hierarchy']} hierarchy)",
        f"trace       : {workload['accesses']:,} accesses "
        f"({workload['demand_accesses']:,} demand, "
        f"{workload['total_refs']:,} refs)",
    ]
    for name in ("step", "replay"):
        backend = backends[name]
        rate = backend["accesses_per_second"]
        rate_text = f"{rate:,.0f}/s" if rate else "n/a"
        lines.append(
            f"{name:<12}: {backend['seconds']:.3f}s  ({rate_text})"
        )
    speedup = payload["speedup_replay_vs_step"]
    if speedup is not None:
        lines.append(f"speedup     : {speedup:.2f}x replay vs step")
    end_to_end = payload.get("end_to_end")
    if end_to_end:
        lines.append(
            f"end-to-end  : step {end_to_end['step_seconds']:.3f}s vs "
            f"replay {end_to_end['replay_seconds']:.3f}s "
            f"({end_to_end['speedup']:.2f}x)"
        )
    lines.append(
        "identical   : " + ("yes" if payload["identical"] else "NO")
    )
    return "\n".join(lines)


def write_bench_json(payload: dict, path: str | Path) -> Path:
    """Write the benchmark payload as pretty-printed JSON (atomically)."""
    path = Path(path)
    atomic_write_text(path, json.dumps(payload, indent=2) + "\n")
    return path


def render_gorder_bench(payload: dict) -> str:
    """Human-readable summary of one benchmark payload (CLI output)."""
    graph = payload["graph"]
    kernels = payload["kernels"]
    lines = [
        f"graph       : {graph['generator']} n={graph['nodes']:,} "
        f"m={graph['edges']:,} (seed {graph['seed']})",
        f"window      : {payload['window']}",
    ]
    for name in ("loop", "batched"):
        kernel = kernels[name]
        rate = kernel["updates_per_second"]
        rate_text = f"{rate:,.0f}/s" if rate else "n/a"
        lines.append(
            f"{name:<12}: {kernel['seconds']:.3f}s  "
            f"{kernel['unit_updates']:,} updates ({rate_text}), "
            f"{kernel['heap_pops']:,} pops"
        )
    speedup = payload["speedup_batched_vs_loop"]
    if speedup is not None:
        lines.append(f"speedup     : {speedup:.2f}x batched vs loop")
    partitioned = payload.get("partitioned")
    if partitioned:
        lines.append(
            f"partitioned : parts={partitioned['num_parts']} "
            f"workers=1 {partitioned['workers_1_seconds']:.3f}s vs "
            f"workers={partitioned['workers']} "
            f"{partitioned['workers_n_seconds']:.3f}s "
            f"({partitioned['speedup']:.2f}x)"
        )
    lines.append(
        "identical   : " + ("yes" if payload["identical"] else "NO")
    )
    return "\n".join(lines)
