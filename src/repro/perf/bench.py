"""Benchmark-regression harness for the Gorder kernels.

Times the loop and batched greedy kernels (plus the partitioned
multiprocess ordering) on a deterministic generated graph, verifies
they agree byte-for-byte, and emits a machine-readable
``BENCH_gorder.json`` so every future change has a perf trajectory to
compare against.  Schema (version 1, documented in
``docs/performance.md``)::

    {
      "schema_version": 1,
      "bench": "gorder_kernel",
      "quick": bool,
      "manifest": {...},             # repro.obs.run_manifest()
      "graph": {"generator", "nodes", "edges", "edges_per_node", "seed"},
      "window": int,
      "kernels": {
        "loop":    {"seconds", "heap_pops", "unit_updates",
                    "updates_per_second"},
        "batched": {..., "batched_moves"}
      },
      "speedup_batched_vs_loop": float,
      "identical": true,             # divergence raises instead
      "partitioned": {               # null when skipped
        "num_parts", "workers", "workers_1_seconds",
        "workers_n_seconds", "speedup", "identical"
      }
    }

Entry points: the ``repro-gorder bench`` CLI subcommand and the
pytest harness ``benchmarks/bench_gorder_kernel.py`` both call
:func:`run_gorder_bench`.
"""

from __future__ import annotations

import json
import time
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro.errors import ReproError
from repro.graph.generators import social_graph
from repro.ordering.gorder import DEFAULT_WINDOW, gorder_sequence
from repro.ordering.parallel import gorder_partitioned

#: Current BENCH_gorder.json schema version.
BENCH_SCHEMA_VERSION = 1

#: Counters attributed to each kernel (diffed around one metered run,
#: separate from the timed runs — see :func:`_counted`).
_KERNEL_COUNTERS = {
    "heap_pops": "gorder.heap_pops",
    "unit_updates": "gorder.priority_updates",
    "batched_moves": "gorder.batched_moves",
}


class BenchRegressionError(ReproError):
    """The two Gorder backends produced different sequences."""


@dataclass(frozen=True)
class GorderBenchConfig:
    """Shape of one Gorder kernel benchmark run."""

    #: Benchmark graph size (the acceptance graph is 50k nodes /
    #: ~500k+ edges; ``quick_config`` shrinks it for CI smoke).
    nodes: int = 50_000
    edges_per_node: int = 10
    window: int = DEFAULT_WINDOW
    num_parts: int = 4
    workers: int = 4
    seed: int = 3
    #: Best-of-N timing; 2 absorbs first-run allocator cold start.
    repeats: int = 2
    quick: bool = False
    include_partitioned: bool = True


def quick_config(**overrides) -> GorderBenchConfig:
    """The CI smoke configuration (small graph, same schema)."""
    settings = dict(
        nodes=2_000, edges_per_node=8, num_parts=4, workers=2,
        repeats=1, quick=True,
    )
    settings.update(overrides)
    return GorderBenchConfig(**settings)


def _timed(fn, repeats: int):
    """Best-of-``repeats`` wall time of ``fn`` (monotonic clock)."""
    start = time.perf_counter()
    result = fn()
    best = time.perf_counter() - start
    for _ in range(max(repeats, 1) - 1):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return result, best


def _counted(fn) -> dict:
    """Run ``fn`` once with the counter registry active and return the
    diffed kernel counters.

    Kept separate from :func:`_timed` on purpose: metering swaps in
    the instrumented heap, whose per-event accounting would otherwise
    leak into the timings (the benchmark must measure the production
    path, not the telemetry path).
    """
    owns_telemetry = not obs.enabled()
    if owns_telemetry:
        obs.configure()  # registry-only: counters without sinks
    try:
        before = dict(obs.counters())
        fn()
        after = dict(obs.counters())
    finally:
        if owns_telemetry:
            obs.shutdown()
    return {
        field: int(after.get(name, 0)) - int(before.get(name, 0))
        for field, name in _KERNEL_COUNTERS.items()
    }


def run_gorder_bench(
    config: GorderBenchConfig | None = None,
) -> dict:
    """Run the kernel benchmark and return the JSON-ready payload.

    Raises :class:`BenchRegressionError` if the batched and loop
    backends (or the partitioned worker counts) disagree — a perf
    harness must never bless a wrong answer.
    """
    config = config or GorderBenchConfig()
    graph = social_graph(
        config.nodes,
        edges_per_node=config.edges_per_node,
        seed=config.seed,
        name=f"bench-social-{config.nodes}",
    )
    # Force the shared lazy structures before any timing so neither
    # kernel pays the in-CSR/degree build inside its measurement.
    graph.in_adjacency
    graph.out_degrees()
    graph.in_degrees()

    # Timing runs leave telemetry exactly as the caller configured it
    # (normally disabled) so both kernels take their production path;
    # counters come from one separate metered run per kernel.
    with obs.span(
        "bench.gorder_kernel", n=graph.num_nodes,
        m=graph.num_edges, window=config.window,
        quick=config.quick,
    ):
        run_loop = lambda: gorder_sequence(  # noqa: E731
            graph, window=config.window, backend="loop"
        )
        run_batched = lambda: gorder_sequence(  # noqa: E731
            graph, window=config.window, backend="batched"
        )
        loop_seq, loop_seconds = _timed(run_loop, config.repeats)
        batched_seq, batched_seconds = _timed(
            run_batched, config.repeats
        )
        identical = bool(np.array_equal(loop_seq, batched_seq))
        if not identical:
            raise BenchRegressionError(
                "batched and loop Gorder backends diverged on "
                f"{graph.name} (window={config.window})"
            )
        partitioned = None
        if config.include_partitioned:
            partitioned = _bench_partitioned(graph, config)
        loop_counters = _counted(run_loop)
        batched_counters = _counted(run_batched)

    loop_kernel = _kernel_payload(
        loop_seconds, loop_counters, batched=False
    )
    batched_kernel = _kernel_payload(
        batched_seconds, batched_counters, batched=True
    )
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "bench": "gorder_kernel",
        "quick": config.quick,
        "manifest": obs.run_manifest(
            seed=config.seed, command="bench",
        ),
        "graph": {
            "generator": "social_graph",
            "nodes": graph.num_nodes,
            "edges": graph.num_edges,
            "edges_per_node": config.edges_per_node,
            "seed": config.seed,
        },
        "window": config.window,
        "kernels": {"loop": loop_kernel, "batched": batched_kernel},
        "speedup_batched_vs_loop": (
            loop_seconds / batched_seconds if batched_seconds else None
        ),
        "identical": identical,
        "partitioned": partitioned,
    }


def _kernel_payload(
    seconds: float, counters: dict, batched: bool
) -> dict:
    payload = {
        "seconds": seconds,
        "heap_pops": counters["heap_pops"],
        "unit_updates": counters["unit_updates"],
        "updates_per_second": (
            counters["unit_updates"] / seconds if seconds else None
        ),
    }
    if batched:
        payload["batched_moves"] = counters["batched_moves"]
    return payload


def _bench_partitioned(graph, config: GorderBenchConfig) -> dict:
    """Time workers=1 vs workers=N and verify they agree."""

    def run(workers: int) -> np.ndarray:
        return gorder_partitioned(
            graph,
            num_parts=config.num_parts,
            window=config.window,
            workers=workers,
        )

    serial, serial_seconds = _timed(lambda: run(1), config.repeats)
    parallel, parallel_seconds = _timed(
        lambda: run(config.workers), config.repeats
    )
    identical = bool(np.array_equal(serial, parallel))
    if not identical:
        raise BenchRegressionError(
            f"gorder_partitioned(workers={config.workers}) diverged "
            f"from workers=1 on {graph.name}"
        )
    return {
        "num_parts": config.num_parts,
        "workers": config.workers,
        "workers_1_seconds": serial_seconds,
        "workers_n_seconds": parallel_seconds,
        "speedup": (
            serial_seconds / parallel_seconds
            if parallel_seconds
            else None
        ),
        "identical": identical,
    }


def write_bench_json(payload: dict, path: str | Path) -> Path:
    """Write the benchmark payload as pretty-printed JSON."""
    path = Path(path)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def render_gorder_bench(payload: dict) -> str:
    """Human-readable summary of one benchmark payload (CLI output)."""
    graph = payload["graph"]
    kernels = payload["kernels"]
    lines = [
        f"graph       : {graph['generator']} n={graph['nodes']:,} "
        f"m={graph['edges']:,} (seed {graph['seed']})",
        f"window      : {payload['window']}",
    ]
    for name in ("loop", "batched"):
        kernel = kernels[name]
        rate = kernel["updates_per_second"]
        rate_text = f"{rate:,.0f}/s" if rate else "n/a"
        lines.append(
            f"{name:<12}: {kernel['seconds']:.3f}s  "
            f"{kernel['unit_updates']:,} updates ({rate_text}), "
            f"{kernel['heap_pops']:,} pops"
        )
    speedup = payload["speedup_batched_vs_loop"]
    if speedup is not None:
        lines.append(f"speedup     : {speedup:.2f}x batched vs loop")
    partitioned = payload.get("partitioned")
    if partitioned:
        lines.append(
            f"partitioned : parts={partitioned['num_parts']} "
            f"workers=1 {partitioned['workers_1_seconds']:.3f}s vs "
            f"workers={partitioned['workers']} "
            f"{partitioned['workers_n_seconds']:.3f}s "
            f"({partitioned['speedup']:.2f}x)"
        )
    lines.append(
        "identical   : " + ("yes" if payload["identical"] else "NO")
    )
    return "\n".join(lines)
