"""Deterministic fault injection for the sweep engine.

The fault-tolerant engine (:mod:`repro.perf.engine`) makes strong
promises — a killed sweep resumes losslessly, a crashing cell cannot
abort the run — which are only worth having if they are testable.
This module injects failures *deterministically*: a
:class:`FaultPlan` names exact cells of the experiment matrix and
what should go wrong there, so a test (or the CI smoke job) can
reproduce an OOM at cell 7 or a kill at cell 3 on every run.

Four fault kinds are supported:

* ``error`` — the cell raises :class:`InjectedFault` (or any
  exception type given via ``error_type``) for its first ``times``
  attempts.  ``times=-1`` means every attempt, a permanently broken
  cell.
* ``delay`` — the cell sleeps ``delay_seconds`` before running, for
  exercising the ``cell_timeout`` budget.
* ``hang`` — the cell sleeps *past any deadline*: a long cancellable
  sleep (``delay_seconds`` when given, else effectively forever)
  polled in small increments through an optional ``cancel_check``
  callback.  This is how the serve daemon's deadline enforcement is
  proven: a hung worker must be cancelled by its request deadline,
  never waited out.
* ``kill`` — the whole sweep dies (a :class:`SweepKill`, derived from
  ``BaseException`` so the engine's failure isolation cannot catch
  it) immediately *after* the matching cell is checkpointed — the
  moment a real ``kill -9`` would be most costly.

Error and delay faults trigger inside the cell body, so they fire in
the worker thread or subprocess when isolation is on; kill faults
trigger in the sweep process itself.
"""

from __future__ import annotations

import time
from collections.abc import Callable
from dataclasses import asdict, dataclass

from repro.errors import InvalidParameterError, ReproError

#: Fault kinds a :class:`FaultSpec` may name.
FAULT_KINDS = ("error", "delay", "hang", "kill")

#: ``hang`` duration when the spec gives no ``delay_seconds``; long
#: enough to outlive any reasonable deadline without trapping a test
#: run forever if cancellation is broken.
DEFAULT_HANG_SECONDS = 300.0

#: Poll interval of the cancellable ``hang`` sleep.
HANG_POLL_SECONDS = 0.01


class InjectedFault(ReproError):
    """The deliberate failure raised by ``error`` fault specs."""


class SweepKill(BaseException):
    """A simulated hard kill of the sweep process.

    Derives from ``BaseException`` (like ``KeyboardInterrupt``) so
    the engine's per-cell ``except Exception`` isolation can never
    swallow it — exactly like a real SIGKILL.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injection: which cell, what goes wrong, how often.

    ``seed=None`` matches every seed of the named cell.  ``times``
    bounds how many *attempts* trigger: an ``error`` spec with
    ``times=2`` fails attempts 0 and 1 and lets attempt 2 succeed —
    the flaky-cell shape ``--retries`` exists for.  ``times=-1``
    triggers forever.
    """

    dataset: str
    algorithm: str
    ordering: str
    kind: str = "error"
    seed: int | None = None
    times: int = -1
    delay_seconds: float = 0.0
    message: str = "injected fault"
    #: Exception class raised by ``error`` faults ("InjectedFault",
    #: "MemoryError", ...); resolved from builtins or this module.
    error_type: str = "InjectedFault"

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            known = ", ".join(FAULT_KINDS)
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; known kinds: {known}"
            )

    def matches(
        self, dataset: str, algorithm: str, ordering: str, seed: int
    ) -> bool:
        return (
            self.dataset == dataset
            and self.algorithm == algorithm
            and self.ordering == ordering
            and (self.seed is None or self.seed == seed)
        )

    def triggers(self, attempt: int) -> bool:
        return self.times < 0 or attempt < self.times

    def exception(self) -> BaseException:
        exc_type = _resolve_error_type(self.error_type)
        return exc_type(self.message)


def _cancellable_sleep(
    seconds: float, cancel_check: Callable[[], None] | None
) -> None:
    """Sleep ``seconds``, polling ``cancel_check`` every few ms."""
    end = time.monotonic() + seconds
    while True:
        if cancel_check is not None:
            cancel_check()
        remaining = end - time.monotonic()
        if remaining <= 0:
            return
        time.sleep(min(HANG_POLL_SECONDS, remaining))


def _resolve_error_type(name: str) -> type[BaseException]:
    if name == "InjectedFault":
        return InjectedFault
    import builtins

    candidate = getattr(builtins, name, None)
    if isinstance(candidate, type) and issubclass(
        candidate, BaseException
    ):
        return candidate
    raise InvalidParameterError(
        f"unknown fault error type {name!r} "
        "(use InjectedFault or a builtin exception name)"
    )


class FaultPlan:
    """An ordered set of :class:`FaultSpec` injections.

    Stateless by design: whether a fault fires depends only on the
    cell key and the attempt number, never on accumulated counters —
    so a plan behaves identically in the sweep process, a worker
    thread and a spawned subprocess, and identically again after a
    kill/resume cycle.
    """

    def __init__(self, specs: tuple[FaultSpec, ...] = ()) -> None:
        self.specs = tuple(specs)

    def __bool__(self) -> bool:
        return bool(self.specs)

    def _matching(
        self, dataset: str, algorithm: str, ordering: str, seed: int
    ) -> list[FaultSpec]:
        return [
            spec
            for spec in self.specs
            if spec.matches(dataset, algorithm, ordering, seed)
        ]

    def apply_in_cell(
        self,
        dataset: str,
        algorithm: str,
        ordering: str,
        seed: int,
        attempt: int,
        cancel_check: Callable[[], None] | None = None,
    ) -> None:
        """Fire delay/error/hang faults for one cell attempt (in order).

        ``cancel_check`` is a callable that raises when the caller's
        deadline has expired or the request was cancelled; ``hang``
        faults poll it between short sleeps so deadline enforcement
        can interrupt them.  Without one a hang sleeps its full
        duration (``delay_seconds`` or :data:`DEFAULT_HANG_SECONDS`).
        """
        for spec in self._matching(dataset, algorithm, ordering, seed):
            if not spec.triggers(attempt):
                continue
            if spec.kind == "delay":
                time.sleep(spec.delay_seconds)
            elif spec.kind == "hang":
                _cancellable_sleep(
                    spec.delay_seconds or DEFAULT_HANG_SECONDS,
                    cancel_check,
                )
            elif spec.kind == "error":
                raise spec.exception()

    def kill_after_cell(
        self, dataset: str, algorithm: str, ordering: str, seed: int
    ) -> None:
        """Fire a kill fault after the cell was checkpointed."""
        for spec in self._matching(dataset, algorithm, ordering, seed):
            if spec.kind == "kill" and spec.triggers(0):
                raise SweepKill(
                    f"injected kill after cell "
                    f"({dataset}, {algorithm}, {ordering}, seed={seed})"
                )

    # -- transport (for subprocess isolation) --------------------------
    def to_payload(self) -> list[dict]:
        return [asdict(spec) for spec in self.specs]

    @classmethod
    def from_payload(cls, payload: list[dict]) -> "FaultPlan":
        return cls(tuple(FaultSpec(**fields) for fields in payload))


def parse_fault_spec(text: str) -> FaultSpec:
    """Parse a CLI ``--inject`` argument into a :class:`FaultSpec`.

    Format: comma-separated ``key=value`` pairs, e.g.::

        dataset=epinion,algorithm=nq,ordering=gorder,kind=error,times=2
        dataset=epinion,algorithm=nq,ordering=rcm,kind=kill
        dataset=epinion,algorithm=nq,ordering=bfs,kind=delay,delay=5

    ``dataset``, ``algorithm`` and ``ordering`` are required.
    """
    fields: dict[str, object] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise InvalidParameterError(
                f"bad fault spec fragment {part!r} (expected key=value)"
            )
        key, _, value = part.partition("=")
        key = key.strip()
        value = value.strip()
        if key in ("times", "seed"):
            fields[key] = int(value)
        elif key in ("delay", "delay_seconds"):
            fields["delay_seconds"] = float(value)
        elif key in (
            "dataset", "algorithm", "ordering", "kind", "message",
            "error_type",
        ):
            fields[key] = value
        else:
            raise InvalidParameterError(
                f"unknown fault spec key {key!r}"
            )
    for required in ("dataset", "algorithm", "ordering"):
        if required not in fields:
            raise InvalidParameterError(
                f"fault spec {text!r} is missing {required}="
            )
    return FaultSpec(**fields)  # type: ignore[arg-type]
