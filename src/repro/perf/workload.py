"""Workloads and amortisation analysis.

A :class:`Workload` is a named mix of algorithm runs (e.g. "the
nightly pipeline: 3-iteration PageRank + SCC + two diameter probes").
It provides the library-level answer to the question the replication's
discussion raises, following "When is Graph Reordering an
Optimization?": a heavyweight ordering only pays off once its one-off
cost has been amortised by per-run savings.

:func:`amortization_table` runs a workload under every requested
ordering and reports cycles, speedup, ordering cost and the break-even
run count.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.algorithms import base as algorithms
from repro.cache import Memory, scaled_hierarchy
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.permute import relabel
from repro.ordering import base as orderings

# Single definition lives with the adaptive selector, which shares
# the same cycles-to-seconds amortisation model; re-exported here for
# the existing perf-layer consumers.
from repro.ordering.select import DEFAULT_CLOCK_HZ

__all__ = [
    "DEFAULT_CLOCK_HZ",
    "Workload",
    "AmortizationRow",
    "amortization_table",
]


@dataclass(frozen=True)
class Workload:
    """A repeatable mix of algorithm runs over one graph."""

    name: str
    steps: tuple[tuple[str, dict], ...]

    @classmethod
    def of(cls, name: str, *steps) -> "Workload":
        """Build from ``("algorithm", {params})`` or ``"algorithm"``."""
        normalised: list[tuple[str, dict]] = []
        for step in steps:
            if isinstance(step, str):
                normalised.append((step, {}))
            else:
                algorithm, params = step
                normalised.append((algorithm, dict(params)))
        if not normalised:
            raise InvalidParameterError(
                "a workload needs at least one step"
            )
        for algorithm, _ in normalised:
            algorithms.spec(algorithm)  # validate names eagerly
        return cls(name, tuple(normalised))

    def cycles(
        self,
        graph: CSRGraph,
        hierarchy_factory=scaled_hierarchy,
        cache_backend: str = "replay",
        algo_backend: str = "runtime",
    ) -> float:
        """Total simulated cycles of one workload execution."""
        total = 0.0
        for algorithm, params in self.steps:
            memory = Memory(
                hierarchy_factory(), cache_backend=cache_backend
            )
            traced = algorithms.traced_fn(
                algorithms.spec(algorithm), algo_backend
            )
            traced(graph, memory, **params)
            total += memory.cost().total_cycles
        return total


@dataclass(frozen=True)
class AmortizationRow:
    """Result of evaluating one ordering against a workload."""

    ordering: str
    cycles: float
    speedup: float  # vs the baseline ordering
    ordering_seconds: float
    #: Workload executions needed to pay the ordering cost back;
    #: ``inf`` when the ordering does not help.
    break_even_runs: float


def amortization_table(
    workload: Workload,
    graph: CSRGraph,
    ordering_names,
    baseline: str = "original",
    clock_hz: float = DEFAULT_CLOCK_HZ,
    seed: int = 0,
) -> list[AmortizationRow]:
    """Evaluate orderings against a workload, with break-even runs."""
    if clock_hz <= 0:
        raise InvalidParameterError(
            f"clock_hz must be positive, got {clock_hz}"
        )
    baseline_perm = orderings.compute_ordering(
        baseline, graph, seed=seed
    )
    baseline_cycles = workload.cycles(relabel(graph, baseline_perm))
    rows = []
    for name in ordering_names:
        start = time.perf_counter()
        perm = orderings.compute_ordering(name, graph, seed=seed)
        ordering_seconds = time.perf_counter() - start
        cycles = workload.cycles(relabel(graph, perm))
        saved_seconds = (baseline_cycles - cycles) / clock_hz
        if saved_seconds > 0:
            break_even = ordering_seconds / saved_seconds
        else:
            break_even = float("inf")
        rows.append(
            AmortizationRow(
                ordering=name,
                cycles=cycles,
                speedup=baseline_cycles / cycles if cycles else (
                    float("inf")
                ),
                ordering_seconds=ordering_seconds,
                break_even_runs=break_even,
            )
        )
    return rows
