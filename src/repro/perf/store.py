"""Persist and compare experiment results as JSON.

The text renderings in ``benchmarks/results/`` are for humans; this
store keeps the underlying numbers machine-readable so runs can be
archived, diffed across code changes, and post-processed (plots,
regression gates) without re-simulating.

Schema history
--------------
* **v1** — ``{schema, metadata, results}``.
* **v2** — adds a ``manifest`` object (git SHA, Python/numpy
  versions, platform, profile, seed, wall-clock; see
  :func:`repro.obs.run_manifest`) stamping every archive with the
  environment that produced it.  v1 archives remain readable — they
  simply load with ``manifest=None``.
"""

from __future__ import annotations

import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.cache import CacheStats, RunCost
from repro.errors import ReproError
from repro.obs.manifest import run_manifest
from repro.perf.runner import RunResult

#: Format marker written into every archive.
SCHEMA_VERSION = 2

#: Versions :func:`read_archive` can still load.
SUPPORTED_SCHEMAS = (1, 2)


class ResultStoreError(ReproError):
    """An archive could not be read or did not match the schema."""


@dataclass
class ResultArchive:
    """One loaded archive: results plus its provenance."""

    schema: int
    results: dict[tuple[str, str, str], RunResult]
    #: Environment fingerprint (``None`` for v1 archives).
    manifest: dict | None = None
    metadata: dict = field(default_factory=dict)


def result_to_dict(result: RunResult) -> dict:
    """Flatten one :class:`RunResult` into JSON-ready primitives."""
    return {
        "dataset": result.dataset,
        "algorithm": result.algorithm,
        "ordering": result.ordering,
        "cost": asdict(result.cost),
        "stats": asdict(result.stats),
        "ordering_seconds": result.ordering_seconds,
        "simulation_seconds": result.simulation_seconds,
    }


def result_from_dict(payload: dict) -> RunResult:
    """Inverse of :func:`result_to_dict`."""
    try:
        return RunResult(
            dataset=payload["dataset"],
            algorithm=payload["algorithm"],
            ordering=payload["ordering"],
            cost=RunCost(**payload["cost"]),
            stats=CacheStats(**payload["stats"]),
            ordering_seconds=payload["ordering_seconds"],
            simulation_seconds=payload["simulation_seconds"],
        )
    except (KeyError, TypeError) as exc:
        raise ResultStoreError(
            f"malformed result record: {exc}"
        ) from exc


def save_results(
    results: dict[tuple[str, str, str], RunResult] | list[RunResult],
    path: str | os.PathLike,
    metadata: dict | None = None,
    manifest: dict | None = None,
) -> None:
    """Write a result collection to a JSON archive (schema v2).

    A fresh :func:`repro.obs.run_manifest` is stamped in unless an
    explicit ``manifest`` is given (pass one to carry profile/seed
    fields).
    """
    records = (
        list(results.values())
        if isinstance(results, dict)
        else list(results)
    )
    payload = {
        "schema": SCHEMA_VERSION,
        "manifest": manifest if manifest is not None else run_manifest(),
        "metadata": metadata or {},
        "results": [result_to_dict(result) for result in records],
    }
    Path(path).write_text(json.dumps(payload, indent=1))


def read_archive(path: str | os.PathLike) -> ResultArchive:
    """Read an archive of any supported schema version."""
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ResultStoreError(f"cannot read {path}: {exc}") from exc
    schema = payload.get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        supported = ", ".join(str(v) for v in SUPPORTED_SCHEMAS)
        raise ResultStoreError(
            f"{path}: unsupported schema {schema!r} "
            f"(this build reads versions {supported}); "
            "re-save the archive with a matching repro version"
        )
    results = {}
    for record in payload.get("results", []):
        result = result_from_dict(record)
        results[(result.dataset, result.algorithm, result.ordering)] = (
            result
        )
    return ResultArchive(
        schema=schema,
        results=results,
        manifest=payload.get("manifest"),
        metadata=payload.get("metadata") or {},
    )


def load_results(
    path: str | os.PathLike,
) -> dict[tuple[str, str, str], RunResult]:
    """Read an archive back, keyed by (dataset, algorithm, ordering)."""
    return read_archive(path).results


def compare_runs(
    before: dict[tuple[str, str, str], RunResult],
    after: dict[tuple[str, str, str], RunResult],
) -> dict[tuple[str, str, str], float]:
    """Cycle ratios ``after / before`` for cells present in both runs.

    Values above 1 mean the cell got slower.  Cells present in only
    one run are ignored (they carry no comparison).
    """
    ratios = {}
    for key, old in before.items():
        new = after.get(key)
        if new is None or old.cycles == 0:
            continue
        ratios[key] = new.cycles / old.cycles
    return ratios
