"""Persist and compare experiment results as JSON.

The text renderings in ``benchmarks/results/`` are for humans; this
store keeps the underlying numbers machine-readable so runs can be
archived, diffed across code changes, and post-processed (plots,
regression gates) without re-simulating.

Schema history
--------------
* **v1** — ``{schema, metadata, results}``.
* **v2** — adds a ``manifest`` object (git SHA, Python/numpy
  versions, platform, profile, seed, wall-clock; see
  :func:`repro.obs.run_manifest`) stamping every archive with the
  environment that produced it.
* **v3** — per-cell status: every result record carries
  ``status: "ok"`` and a ``failures`` list records cells that never
  produced a result (``status: "failed"``, exception type, traceback
  tail, attempts, elapsed) — the sweep engine's graceful-degradation
  records.  v1/v2 archives remain readable; they load with
  ``manifest=None`` and/or ``failures=[]``.

All archive writes are atomic (temp file in the same directory, then
``os.replace``), so a kill mid-write can never leave a truncated
archive behind.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.cache import CacheStats, RunCost
from repro.errors import ReproError
from repro.ioutil import atomic_write_text
from repro.obs.manifest import run_manifest
from repro.perf.runner import RunResult

#: Format marker written into every archive.
SCHEMA_VERSION = 3

#: Versions :func:`read_archive` can still load.
SUPPORTED_SCHEMAS = (1, 2, 3)

#: Manifest fields that vary run-to-run without changing the results.
VOLATILE_MANIFEST_FIELDS = ("created", "created_unix")


class ResultStoreError(ReproError):
    """An archive could not be read or did not match the schema."""


@dataclass(frozen=True)
class CellFailure:
    """A cell that produced no result: what went wrong, structurally.

    Recorded by the sweep engine instead of aborting the run; rendered
    as explicit gaps in reports.  ``seed`` identifies the exact run
    for non-deterministic orderings.
    """

    dataset: str
    algorithm: str
    ordering: str
    seed: int
    error_type: str
    message: str
    traceback_tail: str = ""
    attempts: int = 1
    elapsed_seconds: float = 0.0
    timed_out: bool = False

    @property
    def key(self) -> tuple[str, str, str, int]:
        return (self.dataset, self.algorithm, self.ordering, self.seed)

    def describe(self) -> str:
        """One-line human-readable summary."""
        cause = "timeout" if self.timed_out else self.error_type
        return (
            f"({self.dataset}, {self.algorithm}, {self.ordering}, "
            f"seed={self.seed}): {cause}: {self.message} "
            f"[{self.attempts} attempt(s), {self.elapsed_seconds:.2f}s]"
        )


@dataclass
class ResultArchive:
    """One loaded archive: results plus its provenance."""

    schema: int
    results: dict[tuple[str, str, str], RunResult]
    #: Environment fingerprint (``None`` for v1 archives).
    manifest: dict | None = None
    metadata: dict = field(default_factory=dict)
    #: Cells that failed (empty for v1/v2 archives).
    failures: list[CellFailure] = field(default_factory=list)


def result_to_dict(result: RunResult) -> dict:
    """Flatten one :class:`RunResult` into JSON-ready primitives."""
    return {
        "status": "ok",
        "dataset": result.dataset,
        "algorithm": result.algorithm,
        "ordering": result.ordering,
        "cost": asdict(result.cost),
        "stats": asdict(result.stats),
        "ordering_seconds": result.ordering_seconds,
        "simulation_seconds": result.simulation_seconds,
    }


def result_from_dict(payload: dict) -> RunResult:
    """Inverse of :func:`result_to_dict`."""
    try:
        return RunResult(
            dataset=payload["dataset"],
            algorithm=payload["algorithm"],
            ordering=payload["ordering"],
            cost=RunCost(**payload["cost"]),
            stats=CacheStats(**payload["stats"]),
            ordering_seconds=payload["ordering_seconds"],
            simulation_seconds=payload["simulation_seconds"],
        )
    except (KeyError, TypeError) as exc:
        raise ResultStoreError(
            f"malformed result record: {exc}"
        ) from exc


def failure_to_dict(failure: CellFailure) -> dict:
    """Flatten one :class:`CellFailure` into JSON-ready primitives."""
    payload = asdict(failure)
    payload["status"] = "failed"
    return payload


def failure_from_dict(payload: dict) -> CellFailure:
    """Inverse of :func:`failure_to_dict`."""
    fields = {
        key: value
        for key, value in payload.items()
        if key != "status"
    }
    try:
        return CellFailure(**fields)
    except TypeError as exc:
        raise ResultStoreError(
            f"malformed failure record: {exc}"
        ) from exc


def save_results(
    results: dict[tuple[str, str, str], RunResult] | list[RunResult],
    path: str | os.PathLike,
    metadata: dict | None = None,
    manifest: dict | None = None,
    failures: list[CellFailure] | None = None,
) -> None:
    """Write a result collection to a JSON archive (schema v3).

    A fresh :func:`repro.obs.run_manifest` is stamped in unless an
    explicit ``manifest`` is given (pass one to carry profile/seed
    fields).  ``failures`` records cells that produced no result.
    The write is atomic.
    """
    records = (
        list(results.values())
        if isinstance(results, dict)
        else list(results)
    )
    payload = {
        "schema": SCHEMA_VERSION,
        "manifest": manifest if manifest is not None else run_manifest(),
        "metadata": metadata or {},
        "results": [result_to_dict(result) for result in records],
        "failures": [
            failure_to_dict(failure) for failure in (failures or [])
        ],
    }
    atomic_write_text(path, json.dumps(payload, indent=1))


def read_archive(path: str | os.PathLike) -> ResultArchive:
    """Read an archive of any supported schema version.

    A missing, truncated or otherwise corrupt file raises a clean
    :class:`ResultStoreError` naming the path.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ResultStoreError(f"cannot read {path}: {exc}") from exc
    if not isinstance(payload, dict):
        raise ResultStoreError(
            f"{path}: not a result archive (top level is not an object)"
        )
    schema = payload.get("schema")
    if schema not in SUPPORTED_SCHEMAS:
        supported = ", ".join(str(v) for v in SUPPORTED_SCHEMAS)
        raise ResultStoreError(
            f"{path}: unsupported schema {schema!r} "
            f"(this build reads versions {supported}); "
            "re-save the archive with a matching repro version"
        )
    results = {}
    for record in payload.get("results", []):
        result = result_from_dict(record)
        results[(result.dataset, result.algorithm, result.ordering)] = (
            result
        )
    failures = [
        failure_from_dict(record)
        for record in payload.get("failures", [])
    ]
    return ResultArchive(
        schema=schema,
        results=results,
        manifest=payload.get("manifest"),
        metadata=payload.get("metadata") or {},
        failures=failures,
    )


def load_results(
    path: str | os.PathLike,
) -> dict[tuple[str, str, str], RunResult]:
    """Read an archive back, keyed by (dataset, algorithm, ordering)."""
    return read_archive(path).results


def archive_digest(path: str | os.PathLike) -> str:
    """Content hash of an archive, ignoring wall-clock fields.

    Two archives holding the same simulated results digest
    identically even though manifest timestamps and the wall-clock
    diagnostics (``ordering_seconds``, ``simulation_seconds``,
    failure ``elapsed_seconds``) differ between runs — the equality
    the engine's kill/resume guarantee is stated in.
    """
    try:
        payload = json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise ResultStoreError(f"cannot read {path}: {exc}") from exc
    manifest = payload.get("manifest")
    if isinstance(manifest, dict):
        for key in VOLATILE_MANIFEST_FIELDS:
            manifest.pop(key, None)
    for record in payload.get("results", []):
        record.pop("ordering_seconds", None)
        record.pop("simulation_seconds", None)
    for record in payload.get("failures", []):
        record.pop("elapsed_seconds", None)
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def compare_runs(
    before: dict[tuple[str, str, str], RunResult],
    after: dict[tuple[str, str, str], RunResult],
) -> dict[tuple[str, str, str], float]:
    """Cycle ratios ``after / before`` for cells present in both runs.

    Values above 1 mean the cell got slower.  Cells present in only
    one run are ignored (they carry no comparison).
    """
    ratios = {}
    for key, old in before.items():
        new = after.get(key)
        if new is None or old.cycles == 0:
            continue
        ratios[key] = new.cycles / old.cycles
    return ratios
