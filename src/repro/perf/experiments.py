"""Experiment definitions: profiles + one function per paper artifact.

Profiles bound the experiment matrix so the full reproduction scales
from a quick smoke run to the complete 9 x 9 x 10 sweep:

* ``quick``    — 3 datasets, short PR/Diam; minutes.  CI-friendly.
* ``standard`` — 5 datasets covering both categories; the default.
* ``full``     — all 9 datasets, the complete matrix; the long run
  recorded in EXPERIMENTS.md.

Select with the ``REPRO_PROFILE`` environment variable or pass a
profile object explicitly.  All experiments are deterministic for a
fixed profile (seeded generators, seeded source draws).
"""

from __future__ import annotations

import dataclasses
import os
import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.algorithms import ALGORITHM_NAMES, pick_sources
from repro.algorithms import base as algorithms_base
from repro.cache import CacheHierarchy, Memory, scaled_hierarchy
from repro.errors import InvalidParameterError
from repro.graph import datasets
from repro.graph.csr import CSRGraph
from repro.graph.permute import relabel
from repro.ordering import ORDERING_NAMES
from repro.ordering.gorder import gorder_order
from repro.ordering.metrics import minla_energy, minloga_energy
from repro.ordering.minla import minla_order, minloga_order
from repro.perf.runner import (
    GLOBAL_ORDERING_CACHE,
    OrderingCache,
    RunResult,
    run_cell,
    time_ordering,
)


@dataclass(frozen=True)
class Profile:
    """Bounds for one experiment sweep."""

    name: str
    datasets: tuple[str, ...]
    orderings: tuple[str, ...] = ORDERING_NAMES
    algorithms: tuple[str, ...] = ALGORITHM_NAMES
    pr_iterations: int = 3
    diam_num_sources: int = 4
    seed: int = 7
    #: Seeds used for non-deterministic orderings (random, minla,
    #: minloga); the run with median cycles represents the cell, the
    #: replication's repetition-with-median methodology.
    random_seeds: tuple[int, ...] = (7,)
    #: Keyword arguments forwarded to every ordering computation
    #: (signature-filtered per ordering), as sorted (name, value)
    #: pairs so the profile stays hashable and JSON-roundtrippable.
    #: The CLI's ``--ordering-backend``/``--workers`` flags land here.
    ordering_params: tuple[tuple[str, object], ...] = ()
    #: Cache simulation backend for every cell
    #: (:data:`repro.cache.layout.CACHE_BACKENDS`).  Profiles default
    #: to the vectorised ``"replay"`` path — counter-identical to
    #: ``"step"`` for the all-LRU profile hierarchies, much faster.
    #: The CLI's ``--cache-backend`` flag overrides it.
    cache_backend: str = "replay"
    #: Trace emitter for every cell
    #: (:data:`repro.algorithms.base.ALGO_BACKENDS`): the vectorised
    #: frontier ``"runtime"`` or the scalar-loop ``"scalar"`` oracle
    #: (counter-identical).  The CLI's ``--algo-backend`` flag
    #: overrides it.
    algo_backend: str = "runtime"

    def hierarchy(self) -> CacheHierarchy:
        """A fresh cache hierarchy for one run."""
        return scaled_hierarchy()


PROFILES: dict[str, Profile] = {
    "quick": Profile(
        name="quick",
        datasets=("epinion", "pokec", "wiki"),
        pr_iterations=2,
        diam_num_sources=2,
    ),
    "standard": Profile(
        name="standard",
        datasets=("epinion", "pokec", "flickr", "wiki", "sdarc"),
        pr_iterations=3,
        diam_num_sources=4,
    ),
    "full": Profile(
        name="full",
        datasets=datasets.DATASET_NAMES,
        pr_iterations=3,
        diam_num_sources=4,
        random_seeds=(5, 7, 9),
    ),
}


def get_profile(name: str | None = None) -> Profile:
    """Resolve a profile by name, ``REPRO_PROFILE``, or the default.

    The ``REPRO_DATASETS`` environment variable (comma-separated
    dataset names) narrows the chosen profile's dataset list — handy
    for focusing a long benchmark run on one or two graphs.
    """
    chosen = name or os.environ.get("REPRO_PROFILE", "quick")
    try:
        profile = PROFILES[chosen]
    except KeyError:
        known = ", ".join(PROFILES)
        raise InvalidParameterError(
            f"unknown profile {chosen!r}; known profiles: {known}"
        ) from None
    override = os.environ.get("REPRO_DATASETS")
    if override:
        names = tuple(
            part.strip() for part in override.split(",") if part.strip()
        )
        for dataset_name in names:
            datasets.spec(dataset_name)  # validate eagerly
        if not names:
            raise InvalidParameterError(
                "REPRO_DATASETS is set but names no datasets"
            )
        profile = dataclasses.replace(profile, datasets=names)
    return profile


def algorithm_params(
    algorithm: str, graph: CSRGraph, profile: Profile
) -> dict:
    """Logical (pre-relabeling) parameters for one algorithm run."""
    rng = np.random.default_rng(profile.seed)
    if algorithm == "pr":
        return {"iterations": profile.pr_iterations}
    if algorithm == "sp":
        return {"source": int(rng.integers(0, graph.num_nodes))}
    if algorithm == "diam":
        sources = pick_sources(
            graph, profile.diam_num_sources, seed=profile.seed
        )
        return {"sources": [int(s) for s in sources]}
    return {}


# ----------------------------------------------------------------------
# F5 / F6 / S1: the speedup matrix
# ----------------------------------------------------------------------
def speedup_matrix(
    profile: Profile,
    cache: OrderingCache | None = None,
    engine=None,
) -> dict[tuple[str, str, str], RunResult]:
    """All (dataset, algorithm, ordering) cells of the profile.

    Keys are ``(dataset, algorithm, ordering)``; the replication's
    Figure 5 divides each cell's cycles by the Gorder cell of the same
    series.  Progress is reported per cell through :mod:`repro.obs`
    (enable with ``--log-level info`` / ``-v`` on the CLI).

    Passing a :class:`repro.perf.engine.SweepEngine` routes the run
    through the fault-tolerant engine (per-cell guards, graceful
    degradation) and returns its aggregated, possibly partial matrix;
    for checkpoint/resume use :meth:`SweepEngine.run` directly.
    """
    if engine is not None:
        return engine.run(profile).matrix()
    # None check, not truthiness: an empty OrderingCache is falsy.
    cache = GLOBAL_ORDERING_CACHE if cache is None else cache
    results: dict[tuple[str, str, str], RunResult] = {}
    total = (
        len(profile.datasets)
        * len(profile.algorithms)
        * len(profile.orderings)
    )
    done = 0
    with obs.span(
        "experiment.speedup_matrix", profile=profile.name, cells=total
    ):
        for dataset_name in profile.datasets:
            graph = datasets.load(dataset_name)
            for algorithm in profile.algorithms:
                params = algorithm_params(algorithm, graph, profile)
                for ordering in profile.orderings:
                    result = _representative_run(
                        graph, algorithm, ordering, params, profile,
                        cache, dataset_name,
                    )
                    results[(dataset_name, algorithm, ordering)] = result
                    done += 1
                    obs.progress(
                        "speedup.cell",
                        dataset=dataset_name,
                        algorithm=algorithm,
                        ordering=ordering,
                        mcycles=round(result.cycles / 1e6, 1),
                        cell=done,
                        cells=total,
                    )
    return results


def _representative_run(
    graph, algorithm, ordering, params, profile, cache, dataset_name
) -> RunResult:
    """One cell; non-deterministic orderings take the median run.

    Deterministic orderings run once.  For seeded ones the cell is
    represented by the run whose cycle count is the median over
    ``profile.random_seeds`` — the replication's repetition protocol.
    """
    from repro.ordering import base as ordering_base

    deterministic = ordering_base.spec(ordering).deterministic
    seeds = (
        (profile.seed,) if deterministic else profile.random_seeds
    )
    runs = [
        run_cell(
            graph,
            algorithm,
            ordering,
            seed=seed,
            params=params,
            hierarchy=profile.hierarchy(),
            cache=cache,
            dataset_name=dataset_name,
            ordering_params=dict(profile.ordering_params),
            cache_backend=profile.cache_backend,
            algo_backend=profile.algo_backend,
        )
        for seed in seeds
    ]
    runs.sort(key=lambda run: run.cycles)
    return runs[len(runs) // 2]


def relative_to_gorder(
    matrix: dict[tuple[str, str, str], RunResult],
) -> dict[tuple[str, str, str], float]:
    """Each cell's cycles divided by its series' Gorder cycles.

    Tolerates partial matrices (a degraded fault-tolerant sweep):
    cells whose series lacks a Gorder reference are omitted rather
    than raising, so the remaining series still render.
    """
    relative: dict[tuple[str, str, str], float] = {}
    for (dataset, algorithm, ordering), result in matrix.items():
        reference = matrix.get((dataset, algorithm, "gorder"))
        if reference is None or reference.cycles == 0:
            continue
        relative[(dataset, algorithm, ordering)] = (
            result.cycles / reference.cycles
        )
    return relative


def rank_orderings(
    matrix: dict[tuple[str, str, str], RunResult],
) -> dict[str, list[int]]:
    """Replication Figure 6: rank histogram per ordering.

    ``result[ordering][r]`` counts the series in which the ordering
    was the (r+1)-th fastest.
    """
    series: dict[tuple[str, str], list[tuple[float, str]]] = {}
    for (dataset, algorithm, ordering), result in matrix.items():
        series.setdefault((dataset, algorithm), []).append(
            (result.cycles, ordering)
        )
    orderings = sorted({key[2] for key in matrix})
    histogram = {name: [0] * len(orderings) for name in orderings}
    for entries in series.values():
        entries.sort()
        for rank, (_, ordering) in enumerate(entries):
            histogram[ordering][rank] += 1
    return histogram


# ----------------------------------------------------------------------
# F1: CPU execute vs cache stall
# ----------------------------------------------------------------------
def cache_stall_split(
    profile: Profile,
    dataset_name: str = "sdarc",
    orderings: tuple[str, str] = ("original", "gorder"),
) -> dict[tuple[str, str], RunResult]:
    """Figure 1 data: per algorithm, execute/stall for two orderings."""
    graph = datasets.load(dataset_name)
    results: dict[tuple[str, str], RunResult] = {}
    for algorithm in profile.algorithms:
        params = algorithm_params(algorithm, graph, profile)
        for ordering in orderings:
            results[(algorithm, ordering)] = run_cell(
                graph,
                algorithm,
                ordering,
                seed=profile.seed,
                params=params,
                hierarchy=profile.hierarchy(),
                dataset_name=dataset_name,
                cache_backend=profile.cache_backend,
                algo_backend=profile.algo_backend,
            )
    return results


# ----------------------------------------------------------------------
# T2: ordering computation time
# ----------------------------------------------------------------------
def ordering_times(
    profile: Profile, repeats: int = 1
) -> dict[tuple[str, str], float]:
    """Replication Table 2: seconds to compute each ordering."""
    times: dict[tuple[str, str], float] = {}
    with obs.span("experiment.ordering_times", profile=profile.name):
        for dataset_name in profile.datasets:
            graph = datasets.load(dataset_name)
            for ordering in profile.orderings:
                times[(ordering, dataset_name)] = time_ordering(
                    graph,
                    ordering,
                    seed=profile.seed,
                    repeats=repeats,
                    ordering_params=dict(profile.ordering_params),
                )
                obs.progress(
                    "ordering_time.cell",
                    dataset=dataset_name,
                    ordering=ordering,
                    seconds=round(times[(ordering, dataset_name)], 4),
                )
    return times


# ----------------------------------------------------------------------
# T3: cache statistics for PageRank
# ----------------------------------------------------------------------
def cache_stats_table(
    profile: Profile, dataset_name: str
) -> dict[str, RunResult]:
    """Replication Table 3 rows: PR cache stats per ordering."""
    graph = datasets.load(dataset_name)
    params = algorithm_params("pr", graph, profile)
    return {
        ordering: run_cell(
            graph,
            "pr",
            ordering,
            seed=profile.seed,
            params=params,
            hierarchy=profile.hierarchy(),
            dataset_name=dataset_name,
            cache_backend=profile.cache_backend,
            algo_backend=profile.algo_backend,
        )
        for ordering in profile.orderings
    }


# ----------------------------------------------------------------------
# F4: Gorder window-size sweep
# ----------------------------------------------------------------------
def window_sweep(
    profile: Profile,
    dataset_name: str = "flickr",
    windows: tuple[int, ...] = (1, 2, 3, 5, 8, 16, 64, 256, 1024),
) -> dict[int, RunResult]:
    """Replication Figure 4: PR cycles per Gorder window size."""
    graph = datasets.load(dataset_name)
    params = algorithm_params("pr", graph, profile)
    pagerank_spec = algorithms_base.spec("pr")
    results: dict[int, RunResult] = {}
    for window in windows:
        with obs.span(
            "ordering.compute", ordering="gorder", window=window,
            dataset=dataset_name, n=graph.num_nodes,
        ):
            start = time.perf_counter()
            perm = gorder_order(graph, window=window)
            ordering_seconds = time.perf_counter() - start
        memory = Memory(
            profile.hierarchy(), cache_backend=profile.cache_backend
        )
        with obs.span(
            "run.simulate", dataset=dataset_name, algorithm="pr",
            ordering=f"gorder(w={window})",
            cache_backend=profile.cache_backend,
        ):
            pagerank_spec.traced(relabel(graph, perm), memory, **params)
        obs.progress(
            "window.cell", window=window,
            mcycles=round(memory.cost().total_cycles / 1e6, 1),
        )
        results[window] = RunResult(
            dataset=dataset_name,
            algorithm="pr",
            ordering=f"gorder(w={window})",
            cost=memory.cost(),
            stats=memory.stats(),
            ordering_seconds=ordering_seconds,
            simulation_seconds=0.0,
        )
    return results


# ----------------------------------------------------------------------
# F3: simulated-annealing tuning heat map
# ----------------------------------------------------------------------
def annealing_sweep(
    dataset_name: str = "epinion",
    step_factors: tuple[float, ...] = (0.25, 1.0, 4.0),
    energy_factors: tuple[float, ...] = (0.0, 0.01, 1.0, 100.0),
    logarithmic: bool = False,
    seed: int = 7,
) -> dict[tuple[float, float], float]:
    """Replication Figure 3: final energy per (steps, k) combination.

    ``step_factors`` scale the default step budget ``m``;
    ``energy_factors`` scale the default standard energy ``m / n``
    (0 = pure local search).  Returns the achieved energy.
    """
    graph = datasets.load(dataset_name)
    energy = minloga_energy if logarithmic else minla_energy
    order = minloga_order if logarithmic else minla_order
    results: dict[tuple[float, float], float] = {}
    for step_factor in step_factors:
        steps = max(1, int(graph.num_edges * step_factor))
        for energy_factor in energy_factors:
            k = energy_factor * graph.num_edges / graph.num_nodes
            perm = order(
                graph, seed=seed, steps=steps, standard_energy=k
            )
            results[(step_factor, energy_factor)] = float(
                energy(graph, perm)
            )
    return results


# ----------------------------------------------------------------------
# T1: dataset features
# ----------------------------------------------------------------------
def dataset_table() -> list[dict[str, object]]:
    """Replication Table 1: analogue + paper sizes for every dataset."""
    rows = []
    for name in datasets.DATASET_NAMES:
        spec = datasets.spec(name)
        graph = datasets.load(name)
        rows.append(
            {
                "dataset": name,
                "category": spec.category,
                "nodes": graph.num_nodes,
                "edges": graph.num_edges,
                "paper_nodes_M": spec.paper_nodes,
                "paper_edges_M": spec.paper_edges,
                "source": spec.source,
            }
        )
    return rows
