"""Experiment harness: runners, experiment matrix and reporting."""

from repro.perf.experiments import (
    PROFILES,
    Profile,
    algorithm_params,
    annealing_sweep,
    cache_stall_split,
    cache_stats_table,
    dataset_table,
    get_profile,
    ordering_times,
    rank_orderings,
    relative_to_gorder,
    speedup_matrix,
    window_sweep,
)
from repro.perf.runner import (
    GLOBAL_ORDERING_CACHE,
    OrderingCache,
    RunResult,
    run_cell,
    time_ordering,
)
from repro.perf.workload import (
    AmortizationRow,
    Workload,
    amortization_table,
)
from repro.perf.store import (
    ResultStoreError,
    compare_runs,
    load_results,
    save_results,
)
from repro.perf.report import (
    render_bar,
    render_cache_stats,
    render_heatmap,
    render_rank_histogram,
    render_speedup_series,
    render_stall_split,
    render_table,
)

__all__ = [
    "Profile",
    "PROFILES",
    "get_profile",
    "algorithm_params",
    "speedup_matrix",
    "relative_to_gorder",
    "rank_orderings",
    "cache_stall_split",
    "ordering_times",
    "cache_stats_table",
    "window_sweep",
    "annealing_sweep",
    "dataset_table",
    "run_cell",
    "time_ordering",
    "RunResult",
    "OrderingCache",
    "GLOBAL_ORDERING_CACHE",
    "Workload",
    "AmortizationRow",
    "amortization_table",
    "save_results",
    "load_results",
    "compare_runs",
    "ResultStoreError",
    "render_table",
    "render_bar",
    "render_speedup_series",
    "render_stall_split",
    "render_cache_stats",
    "render_rank_histogram",
    "render_heatmap",
]
