"""Fault-tolerant sweep engine: checkpointed, guarded matrix runs.

The paper's headline artifact is a (datasets x algorithms x
orderings) matrix; run monolithically, one pathological cell — an
OOM in a heavy ordering, a hung anneal, a Ctrl-C at hour three —
throws away every completed cell.  This engine runs any experiment
matrix as a set of independent, addressable **cells** with the
operational hardening a training-job runner would have:

* **Checkpoint/resume** — every finished cell (result *or* failure)
  is appended to an on-disk JSONL journal keyed by
  ``(dataset, algorithm, ordering, seed)`` plus a fingerprint of the
  profile configuration.  A killed sweep resumes exactly where it
  stopped; an uninterrupted and an interrupted+resumed run produce
  archives with the same :func:`repro.perf.store.archive_digest`.
  Appends are flushed and fsynced per cell; a torn final line (the
  kill landed mid-append) is detected and discarded on load.
* **Per-cell guards** — a configurable wall-clock ``cell_timeout``,
  ``retries`` with exponential backoff for flaky cells, and optional
  subprocess isolation (``multiprocessing`` *spawn*) so a hard crash
  or ``MemoryError`` in one cell cannot take down the sweep.
* **Graceful degradation** — a cell that exhausts its budget is
  recorded as a structured :class:`~repro.perf.store.CellFailure`
  (exception type, traceback tail, attempts, elapsed) and the sweep
  continues; ``strict=True`` restores fail-fast.  Failures surface
  as explicit gaps in reports, never as silently missing data.

Faults are injectable deterministically via
:mod:`repro.perf.faults`, which is how all of the above is tested.
"""

from __future__ import annotations

import hashlib
import json
import multiprocessing
import os
import threading
import time
import traceback
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro import obs
from repro.errors import ReproError
from repro.graph import datasets
from repro.ioutil import atomic_write_text
from repro.ordering import base as ordering_base
from repro.perf.experiments import Profile, algorithm_params
from repro.perf.faults import FaultPlan
from repro.perf.runner import (
    GLOBAL_ORDERING_CACHE,
    OrderingCache,
    RunResult,
    run_cell,
)
from repro.perf.store import (
    CellFailure,
    failure_from_dict,
    failure_to_dict,
    result_from_dict,
    result_to_dict,
)

#: Journal format marker in the checkpoint header line.
CHECKPOINT_VERSION = 1


class SweepError(ReproError):
    """The sweep engine could not run or resume a sweep."""


class CheckpointError(SweepError):
    """A checkpoint journal is unusable (corrupt or mismatched)."""


class StrictCellError(SweepError):
    """A cell failed while the sweep was running in strict mode."""

    def __init__(self, failure: CellFailure) -> None:
        super().__init__(
            f"cell failed in strict mode — {failure.describe()}"
        )
        self.failure = failure


class CellTimeout(SweepError):
    """A cell exceeded its wall-clock budget."""


@dataclass(frozen=True)
class CellSpec:
    """One addressable unit of sweep work."""

    dataset: str
    algorithm: str
    ordering: str
    seed: int

    @property
    def key(self) -> tuple[str, str, str, int]:
        return (self.dataset, self.algorithm, self.ordering, self.seed)


@dataclass(frozen=True)
class SweepGuards:
    """Per-cell budgets and isolation policy.

    ``cell_timeout`` is wall-clock seconds per attempt; with
    ``isolate=False`` the timed-out cell's thread is abandoned (it
    cannot be killed from Python), with ``isolate=True`` the cell's
    subprocess is terminated for real.  ``retries`` re-attempts a
    failed or timed-out cell with ``backoff_seconds * 2**attempt``
    sleeps in between.  ``strict`` restores fail-fast: the first
    exhausted cell aborts the sweep with :class:`StrictCellError`
    (after being checkpointed).
    """

    cell_timeout: float | None = None
    retries: int = 0
    backoff_seconds: float = 0.0
    isolate: bool = False
    strict: bool = False


def enumerate_cells(profile: Profile) -> list[CellSpec]:
    """The profile's cells in canonical (deterministic) sweep order.

    Deterministic orderings contribute one cell per (dataset,
    algorithm); seeded ones contribute one cell per seed in
    ``profile.random_seeds`` — the replication's
    repetition-with-median protocol, made addressable.
    """
    cells: list[CellSpec] = []
    for dataset in profile.datasets:
        for algorithm in profile.algorithms:
            for ordering in profile.orderings:
                deterministic = ordering_base.spec(
                    ordering
                ).deterministic
                seeds = (
                    (profile.seed,)
                    if deterministic
                    else profile.random_seeds
                )
                for seed in seeds:
                    cells.append(
                        CellSpec(dataset, algorithm, ordering, seed)
                    )
    return cells


def profile_fingerprint(profile: Profile) -> str:
    """A short stable hash of everything that shapes the matrix.

    Two sweeps may share a checkpoint only if their fingerprints
    match; resuming a ``quick`` checkpoint with a ``full`` profile is
    refused instead of silently mixing configurations.
    """
    payload = {
        "checkpoint_version": CHECKPOINT_VERSION,
        "profile": asdict(profile),
    }
    canonical = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()[:16]


# ----------------------------------------------------------------------
# Checkpoint journal
# ----------------------------------------------------------------------
@dataclass
class CheckpointState:
    """Parsed contents of one checkpoint journal."""

    header: dict
    results: dict[tuple[str, str, str, int], RunResult] = field(
        default_factory=dict
    )
    failures: dict[tuple[str, str, str, int], CellFailure] = field(
        default_factory=dict
    )

    @property
    def completed(self) -> set[tuple[str, str, str, int]]:
        return set(self.results) | set(self.failures)


class SweepCheckpoint:
    """Append-only JSONL journal of completed cells.

    Line 1 is a header (journal version, profile name, config
    fingerprint, total cell count); each further line is one
    completed cell: ``{"kind": "cell", "cell": {...}, "record":
    {...}}`` where the record is a result or failure in the archive
    schema.  Appends are flushed and fsynced so a completed cell
    survives any subsequent kill; a torn final line is discarded on
    load (that cell simply re-runs).
    """

    def __init__(self, path: str | os.PathLike) -> None:
        self.path = Path(path)

    # -- reading -------------------------------------------------------
    @staticmethod
    def _parse_lines(path: Path) -> list[dict]:
        try:
            text = path.read_text(encoding="utf-8")
        except OSError as exc:
            raise CheckpointError(
                f"cannot read checkpoint {path}: {exc}"
            ) from exc
        lines = text.split("\n")
        if lines and lines[-1] == "":
            lines.pop()
        records: list[dict] = []
        for index, line in enumerate(lines):
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                if index == len(lines) - 1:
                    # A torn final append — the kill landed mid-write.
                    # Discard it; that cell re-runs on resume.
                    obs.event(
                        "sweep.checkpoint_torn_tail",
                        level="warning",
                        path=str(path),
                        line=index + 1,
                    )
                    break
                raise CheckpointError(
                    f"checkpoint {path} is corrupt at line "
                    f"{index + 1}: {exc}"
                ) from exc
        return records

    def load(self) -> CheckpointState:
        """Parse the journal into a :class:`CheckpointState`."""
        records = self._parse_lines(self.path)
        if not records or records[0].get("kind") != "header":
            raise CheckpointError(
                f"checkpoint {self.path} has no header line"
            )
        header = records[0]
        version = header.get("version")
        if version != CHECKPOINT_VERSION:
            raise CheckpointError(
                f"checkpoint {self.path} has journal version "
                f"{version!r}; this build writes "
                f"{CHECKPOINT_VERSION}"
            )
        state = CheckpointState(header=header)
        for record in records[1:]:
            if record.get("kind") != "cell":
                continue
            cell = record.get("cell", {})
            key = (
                cell.get("dataset"),
                cell.get("algorithm"),
                cell.get("ordering"),
                cell.get("seed"),
            )
            payload = record.get("record", {})
            if payload.get("status") == "failed":
                state.failures[key] = failure_from_dict(payload)
            else:
                state.results[key] = result_from_dict(payload)
        return state

    # -- writing -------------------------------------------------------
    def _append(self, record: dict) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(record) + "\n")
            handle.flush()
            os.fsync(handle.fileno())

    def start(
        self, profile: Profile, fingerprint: str, total_cells: int
    ) -> None:
        """Truncate and write a fresh header."""
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(self.path, "")
        self._append(
            {
                "kind": "header",
                "version": CHECKPOINT_VERSION,
                "profile": profile.name,
                "fingerprint": fingerprint,
                "total_cells": total_cells,
                "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
            }
        )

    def record(
        self, cell: CellSpec, record: dict
    ) -> None:
        """Append one completed cell (result or failure record)."""
        self._append(
            {"kind": "cell", "cell": asdict(cell), "record": record}
        )


# ----------------------------------------------------------------------
# Sweep outcome
# ----------------------------------------------------------------------
@dataclass
class SweepOutcome:
    """Everything a sweep produced: per-seed results and failures."""

    profile: Profile
    results: dict[tuple[str, str, str, int], RunResult] = field(
        default_factory=dict
    )
    failures: dict[tuple[str, str, str, int], CellFailure] = field(
        default_factory=dict
    )
    #: Cells replayed from a checkpoint rather than executed.
    resumed_cells: int = 0

    def matrix(self) -> dict[tuple[str, str, str], RunResult]:
        """Aggregate per-seed runs into the paper's 3-key matrix.

        Non-deterministic orderings are represented by their median
        run over the seeds that *succeeded* (the replication's
        protocol); cells with zero successful runs are absent — see
        :meth:`failed_cells` for their structured failures.
        """
        grouped: dict[
            tuple[str, str, str], list[RunResult]
        ] = {}
        for (ds, alg, order, _seed), result in self.results.items():
            grouped.setdefault((ds, alg, order), []).append(result)
        matrix: dict[tuple[str, str, str], RunResult] = {}
        for key, runs in grouped.items():
            runs.sort(key=lambda run: run.cycles)
            matrix[key] = runs[len(runs) // 2]
        return matrix

    def failed_cells(self) -> dict[tuple[str, str, str], CellFailure]:
        """3-key cells with **no** successful run, with one failure.

        A seeded cell where some seeds failed but one succeeded still
        yields a (degraded) matrix entry, so it does not appear here.
        """
        succeeded = {
            (ds, alg, order)
            for (ds, alg, order, _seed) in self.results
        }
        gaps: dict[tuple[str, str, str], CellFailure] = {}
        for (ds, alg, order, _seed), failure in self.failures.items():
            key = (ds, alg, order)
            if key not in succeeded and key not in gaps:
                gaps[key] = failure
        return gaps


# ----------------------------------------------------------------------
# Subprocess isolation worker (must be importable at module top level
# for the multiprocessing *spawn* start method)
# ----------------------------------------------------------------------
def _isolated_cell_worker(conn, payload: dict) -> None:
    try:
        fields = dict(payload["profile"])
        for key in (
            "datasets", "orderings", "algorithms", "random_seeds"
        ):
            fields[key] = tuple(fields[key])
        # JSON round-trips the (name, value) pairs as lists.
        fields["ordering_params"] = tuple(
            tuple(pair) for pair in fields.get("ordering_params", ())
        )
        profile = Profile(**fields)
        plan = FaultPlan.from_payload(payload["plan"])
        cell = CellSpec(**payload["cell"])
        result = _execute_cell_body(
            profile, cell, payload["attempt"], plan, cache=None
        )
        conn.send(("ok", result_to_dict(result)))
    except BaseException as exc:  # repro: noqa[REP003] — reported
        # over the pipe as a structured record; the parent converts
        # it into a CellFailure.
        conn.send(
            (
                "error",
                type(exc).__name__,
                str(exc),
                _traceback_tail(),
            )
        )
    finally:
        conn.close()


def _traceback_tail(limit: int = 6) -> str:
    lines = traceback.format_exc().strip().splitlines()
    return "\n".join(lines[-limit:])


def _execute_cell_body(
    profile: Profile,
    cell: CellSpec,
    attempt: int,
    plan: FaultPlan,
    cache: OrderingCache | None,
) -> RunResult:
    """One attempt of one cell: faults, then the real run."""
    plan.apply_in_cell(
        cell.dataset, cell.algorithm, cell.ordering, cell.seed, attempt
    )
    graph = datasets.load(cell.dataset)
    params = algorithm_params(cell.algorithm, graph, profile)
    return run_cell(
        graph,
        cell.algorithm,
        cell.ordering,
        seed=cell.seed,
        params=params,
        hierarchy=profile.hierarchy(),
        cache=cache,
        dataset_name=cell.dataset,
        ordering_params=dict(profile.ordering_params),
        cache_backend=profile.cache_backend,
        algo_backend=profile.algo_backend,
    )


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------
class SweepEngine:
    """Runs an experiment matrix cell by cell, surviving bad cells.

    Parameters
    ----------
    guards:
        Per-cell budgets and isolation policy.
    plan:
        Optional deterministic :class:`~repro.perf.faults.FaultPlan`
        (tests and the CI smoke job).
    cache:
        Ordering memo shared across cells; defaults to the bounded
        global cache.  Ignored by isolated cells (each subprocess is
        a fresh interpreter).
    """

    def __init__(
        self,
        guards: SweepGuards | None = None,
        plan: FaultPlan | None = None,
        cache: OrderingCache | None = None,
    ) -> None:
        self.guards = guards or SweepGuards()
        self.plan = plan or FaultPlan()
        # Explicit None check: an *empty* OrderingCache is falsy
        # (len() == 0), and ``cache or GLOBAL`` would silently swap a
        # caller's fresh private cache for the shared one.
        self.cache = GLOBAL_ORDERING_CACHE if cache is None else cache

    # -- public API ----------------------------------------------------
    def run(
        self,
        profile: Profile,
        checkpoint: str | os.PathLike | None = None,
        resume: bool = False,
    ) -> SweepOutcome:
        """Run every cell of ``profile``, returning a SweepOutcome.

        With ``checkpoint`` set, completed cells are journaled there;
        ``resume=True`` replays a compatible existing journal instead
        of re-running its cells (a missing journal starts fresh).
        Without a checkpoint the engine still guards and degrades,
        it just cannot resume.
        """
        cells = enumerate_cells(profile)
        fingerprint = profile_fingerprint(profile)
        journal, done = self._open_journal(
            profile, checkpoint, resume, fingerprint, len(cells)
        )
        outcome = SweepOutcome(profile=profile)
        with obs.span(
            "sweep.run",
            profile=profile.name,
            cells=len(cells),
            fingerprint=fingerprint,
        ):
            for index, cell in enumerate(cells):
                if done is not None and cell.key in done.completed:
                    self._replay(outcome, done, cell)
                    continue
                self._run_one(
                    profile, cell, index, len(cells), journal, outcome
                )
        if outcome.resumed_cells:
            obs.event(
                "sweep.resumed",
                cells=outcome.resumed_cells,
                checkpoint=str(checkpoint),
            )
        return outcome

    # -- internals -----------------------------------------------------
    def _open_journal(
        self,
        profile: Profile,
        checkpoint: str | os.PathLike | None,
        resume: bool,
        fingerprint: str,
        total_cells: int,
    ) -> tuple[SweepCheckpoint | None, CheckpointState | None]:
        if checkpoint is None:
            return None, None
        journal = SweepCheckpoint(checkpoint)
        if resume and journal.path.exists():
            state = journal.load()
            recorded = state.header.get("fingerprint")
            if recorded != fingerprint:
                raise CheckpointError(
                    f"checkpoint {journal.path} was written by a "
                    f"different configuration (fingerprint "
                    f"{recorded} != {fingerprint}); refusing to mix "
                    "results — delete it or rerun without --resume"
                )
            return journal, state
        journal.start(profile, fingerprint, total_cells)
        return journal, None

    def _replay(
        self,
        outcome: SweepOutcome,
        done: CheckpointState,
        cell: CellSpec,
    ) -> None:
        if cell.key in done.results:
            outcome.results[cell.key] = done.results[cell.key]
        else:
            outcome.failures[cell.key] = done.failures[cell.key]
        outcome.resumed_cells += 1

    def _run_one(
        self,
        profile: Profile,
        cell: CellSpec,
        index: int,
        total: int,
        journal: SweepCheckpoint | None,
        outcome: SweepOutcome,
    ) -> None:
        result, failure = self._run_cell_guarded(profile, cell)
        if result is not None:
            outcome.results[cell.key] = result
            if journal is not None:
                journal.record(cell, result_to_dict(result))
            obs.inc("sweep.cells_ok")
            obs.progress(
                "sweep.cell",
                dataset=cell.dataset,
                algorithm=cell.algorithm,
                ordering=cell.ordering,
                seed=cell.seed,
                mcycles=round(result.cycles / 1e6, 1),
                cell=index + 1,
                cells=total,
            )
        else:
            assert failure is not None
            outcome.failures[cell.key] = failure
            if journal is not None:
                journal.record(cell, failure_to_dict(failure))
            obs.inc("sweep.cells_failed")
            obs.event(
                "sweep.cell_failed",
                level="warning",
                dataset=cell.dataset,
                algorithm=cell.algorithm,
                ordering=cell.ordering,
                seed=cell.seed,
                error=failure.error_type,
                attempts=failure.attempts,
                timed_out=failure.timed_out,
            )
            if self.guards.strict:
                raise StrictCellError(failure)
        # The cell is durably recorded — the moment an injected kill
        # is most informative to fire.
        self.plan.kill_after_cell(
            cell.dataset, cell.algorithm, cell.ordering, cell.seed
        )

    def _run_cell_guarded(
        self, profile: Profile, cell: CellSpec
    ) -> tuple[RunResult | None, CellFailure | None]:
        attempts = max(0, self.guards.retries) + 1
        started = time.perf_counter()
        last: tuple[str, str, str, bool] | None = None
        for attempt in range(attempts):
            if attempt:
                backoff = self.guards.backoff_seconds * (
                    2 ** (attempt - 1)
                )
                if backoff > 0:
                    time.sleep(backoff)
                obs.inc("sweep.retries")
                obs.event(
                    "sweep.cell_retry",
                    level="warning",
                    dataset=cell.dataset,
                    algorithm=cell.algorithm,
                    ordering=cell.ordering,
                    seed=cell.seed,
                    attempt=attempt,
                )
            try:
                with obs.profile(
                    "sweep.cell",
                    dataset=cell.dataset,
                    algorithm=cell.algorithm,
                    ordering=cell.ordering,
                    seed=cell.seed,
                    attempt=attempt,
                ):
                    return self._attempt(profile, cell, attempt), None
            except (KeyboardInterrupt, SystemExit):
                raise
            except CellTimeout as exc:
                obs.event(
                    "sweep.cell_timeout",
                    level="warning",
                    dataset=cell.dataset,
                    algorithm=cell.algorithm,
                    ordering=cell.ordering,
                    seed=cell.seed,
                    attempt=attempt,
                    timeout_s=self.guards.cell_timeout,
                )
                last = ("CellTimeout", str(exc), "", True)
            except Exception as exc:
                obs.event(
                    "sweep.cell_error",
                    level="warning",
                    dataset=cell.dataset,
                    algorithm=cell.algorithm,
                    ordering=cell.ordering,
                    seed=cell.seed,
                    attempt=attempt,
                    error=type(exc).__name__,
                )
                last = (
                    type(exc).__name__,
                    str(exc),
                    _traceback_tail(),
                    False,
                )
        assert last is not None
        error_type, message, tail, timed_out = last
        return None, CellFailure(
            dataset=cell.dataset,
            algorithm=cell.algorithm,
            ordering=cell.ordering,
            seed=cell.seed,
            error_type=error_type,
            message=message,
            traceback_tail=tail,
            attempts=attempts,
            elapsed_seconds=time.perf_counter() - started,
            timed_out=timed_out,
        )

    def _attempt(
        self, profile: Profile, cell: CellSpec, attempt: int
    ) -> RunResult:
        if self.guards.isolate:
            return self._attempt_isolated(profile, cell, attempt)
        if self.guards.cell_timeout is not None:
            return self._attempt_with_thread_timeout(
                profile, cell, attempt
            )
        return _execute_cell_body(
            profile, cell, attempt, self.plan, self.cache
        )

    def _attempt_with_thread_timeout(
        self, profile: Profile, cell: CellSpec, attempt: int
    ) -> RunResult:
        """Soft timeout: run in a worker thread, abandon on expiry.

        Python threads cannot be killed, so a timed-out cell's thread
        keeps running as a daemon until it finishes or the process
        exits — use ``isolate=True`` for a hard stop.  The abandoned
        attempt gets a private ordering cache so it cannot race the
        sweep's shared memo.
        """
        box: dict[str, object] = {}
        private_cache = OrderingCache()

        def target() -> None:
            try:
                box["result"] = _execute_cell_body(
                    profile, cell, attempt, self.plan, private_cache
                )
            except BaseException as exc:  # repro: noqa[REP003] —
                # transported to the sweep thread, which re-raises.
                box["error"] = exc

        worker = threading.Thread(
            target=target,
            name=f"sweep-cell-{cell.dataset}-{cell.algorithm}",
            daemon=True,
        )
        worker.start()
        worker.join(self.guards.cell_timeout)
        if worker.is_alive():
            raise CellTimeout(
                f"cell exceeded {self.guards.cell_timeout}s "
                "(thread abandoned; use isolate for a hard stop)"
            )
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box["result"]  # type: ignore[return-value]

    def _attempt_isolated(
        self, profile: Profile, cell: CellSpec, attempt: int
    ) -> RunResult:
        """Hard isolation: the attempt runs in a spawned subprocess.

        A crash (segfault, OOM-kill, ``os._exit``) surfaces as an
        ordinary cell failure; a timeout terminates the child.
        """
        context = multiprocessing.get_context("spawn")
        parent_conn, child_conn = context.Pipe(duplex=False)
        payload = {
            "profile": asdict(profile),
            "cell": asdict(cell),
            "attempt": attempt,
            "plan": self.plan.to_payload(),
        }
        process = context.Process(
            target=_isolated_cell_worker,
            args=(child_conn, payload),
            daemon=True,
        )
        process.start()
        child_conn.close()
        timeout = self.guards.cell_timeout
        try:
            if parent_conn.poll(timeout):
                message = parent_conn.recv()
            else:
                process.terminate()
                process.join(5)
                raise CellTimeout(
                    f"isolated cell exceeded {timeout}s; "
                    "subprocess terminated"
                )
        except EOFError:
            message = None
        finally:
            parent_conn.close()
        process.join(5)
        if message is None:
            raise SweepError(
                "isolated cell subprocess died without reporting "
                f"(exit code {process.exitcode})"
            )
        if message[0] == "ok":
            return result_from_dict(message[1])
        _status, error_type, text, tail = message
        exc_type = _rehydrate_exception_type(error_type)
        exc = exc_type(f"{text}\n[subprocess traceback]\n{tail}")
        raise exc


def _rehydrate_exception_type(name: str) -> type[Exception]:
    """Best-effort mapping of a child's exception name to a type."""
    import builtins

    from repro.perf import faults

    candidate = getattr(faults, name, None) or getattr(
        builtins, name, None
    )
    if (
        isinstance(candidate, type)
        and issubclass(candidate, Exception)
    ):
        return candidate
    return SweepError


# ----------------------------------------------------------------------
# Checkpoint status (the CLI `sweep status` view)
# ----------------------------------------------------------------------
@dataclass
class CheckpointStatus:
    """Summary of one checkpoint journal for human display."""

    path: str
    profile: str
    fingerprint: str
    total_cells: int
    ok: int
    failed: int
    failures: list[CellFailure]

    @property
    def pending(self) -> int:
        return max(0, self.total_cells - self.ok - self.failed)


def checkpoint_status(path: str | os.PathLike) -> CheckpointStatus:
    """Inspect a checkpoint journal without running anything."""
    state = SweepCheckpoint(path).load()
    header = state.header
    return CheckpointStatus(
        path=str(path),
        profile=header.get("profile", "?"),
        fingerprint=header.get("fingerprint", "?"),
        total_cells=int(header.get("total_cells", 0)),
        ok=len(state.results),
        failed=len(state.failures),
        failures=list(state.failures.values()),
    )
