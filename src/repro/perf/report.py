"""Plain-text rendering of the paper's tables and figures.

The benchmarks print their results in the same row/series layout the
paper uses, so a reader can put the two side by side.  Everything here
is presentation only — no measurement logic.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from repro.perf.runner import RunResult

if TYPE_CHECKING:  # pragma: no cover
    from repro.perf.store import CellFailure


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str | None = None,
) -> str:
    """A fixed-width ASCII table (right-aligned numbers)."""
    cells = [[_fmt(value) for value in row] for row in rows]
    widths = [
        max(len(str(header)), *(len(row[i]) for row in cells))
        if cells
        else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append(
            "  ".join(value.rjust(w) for value, w in zip(row, widths))
        )
    return "\n".join(lines)


def render_bar(value: float, scale: float, width: int = 40) -> str:
    """A one-line horizontal bar, for figure-like output."""
    if scale <= 0:
        return ""
    filled = max(0, min(width, round(width * value / scale)))
    return "#" * filled


def render_speedup_series(
    title: str,
    relatives: Mapping[str, float | None],
    limit: float = 2.0,
) -> str:
    """One Figure 5 panel: orderings as bars relative to Gorder (=1).

    A ``None`` value marks a cell the fault-tolerant sweep could not
    produce; it renders as an explicit gap rather than being dropped.
    """
    lines = [title]
    for ordering, value in relatives.items():
        if value is None:
            lines.append(f"  {ordering:>10s}   -   |(failed)")
            continue
        bar = render_bar(min(value, limit), limit)
        clipped = "+" if value > limit else ""
        lines.append(f"  {ordering:>10s} {value:5.2f} |{bar}{clipped}")
    return "\n".join(lines)


def render_failures(
    title: str, failures: Sequence["CellFailure"]
) -> str:
    """A table of structured cell failures (graceful-degradation view)."""
    headers = [
        "dataset", "algorithm", "ordering", "seed", "error",
        "attempts", "elapsed(s)",
    ]
    rows = [
        [
            failure.dataset,
            failure.algorithm,
            failure.ordering,
            failure.seed,
            "timeout" if failure.timed_out else failure.error_type,
            failure.attempts,
            f"{failure.elapsed_seconds:.2f}",
        ]
        for failure in failures
    ]
    return render_table(headers, rows, title=title)


def render_stall_split(
    title: str, results: Mapping[str, RunResult]
) -> str:
    """One Figure 1 panel: execute vs stall share per algorithm."""
    lines = [title]
    lines.append(
        f"  {'algorithm':>10s} {'total(M)':>9s} {'execute%':>9s} "
        f"{'stall%':>7s}"
    )
    for algorithm, result in results.items():
        total = result.cost.total_cycles
        stall = result.cost.stall_fraction
        lines.append(
            f"  {algorithm:>10s} {total / 1e6:9.1f} "
            f"{100 * (1 - stall):8.1f}% {100 * stall:6.1f}%"
        )
    return "\n".join(lines)


def render_cache_stats(
    title: str, results: Mapping[str, RunResult]
) -> str:
    """A Table 3-shaped block: one row per ordering."""
    headers = ["Order", "L1-ref", "L1-mr", "L3-ref", "L3-r", "Cache-mr"]
    rows = []
    for ordering, result in results.items():
        stats = result.stats
        rows.append(
            [
                ordering,
                stats.l1_refs,
                f"{100 * stats.l1_miss_rate:.1f} %",
                stats.l3_refs,
                f"{100 * stats.l3_ratio:.1f} %",
                f"{100 * stats.cache_miss_rate:.1f} %",
            ]
        )
    return render_table(headers, rows, title=title)


def render_rank_histogram(
    title: str, histogram: Mapping[str, Sequence[int]]
) -> str:
    """Figure 6: per-ordering counts of each achieved rank."""
    orderings = list(histogram)
    num_ranks = len(next(iter(histogram.values()))) if histogram else 0
    headers = ["Order"] + [f"#{r + 1}" for r in range(num_ranks)]
    # Sort by quality: best orderings (low mean rank) first.
    def mean_rank(name: str) -> float:
        counts = histogram[name]
        total = sum(counts)
        if not total:
            return float("inf")
        return sum(r * c for r, c in enumerate(counts)) / total

    rows = [
        [name] + list(histogram[name])
        for name in sorted(orderings, key=mean_rank)
    ]
    return render_table(headers, rows, title=title)


def render_heatmap(
    title: str,
    values: Mapping[tuple[float, float], float],
    row_label: str = "rows",
    col_label: str = "cols",
) -> str:
    """ASCII heat map for two-parameter sweeps (Figure 3's shape).

    Cells are shaded by quintile of the value range using
    `` .:*#@`` (low to high).  Exact values belong in a table; the
    heat map shows the landscape.
    """
    shades = " .:*#@"
    rows = sorted({key[0] for key in values})
    cols = sorted({key[1] for key in values})
    lows = min(values.values())
    highs = max(values.values())
    span = highs - lows
    lines = [title, f"  rows={row_label}, cols={col_label}"]
    header = "  " + " ".join(f"{col:>8g}" for col in cols)
    lines.append(header)
    for row in rows:
        cells = []
        for col in cols:
            value = values[(row, col)]
            level = (
                int(5 * (value - lows) / span) if span else 0
            )
            cells.append(shades[min(level, 5)] * 8)
        lines.append(f"{row:>8g} " + " ".join(cells))
    lines.append(
        f"  scale: '{shades[1]}' = low ({lows:,.0f}) ... "
        f"'{shades[5]}' = high ({highs:,.0f})"
    )
    return "\n".join(lines)


def _fmt(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3g}" if abs(value) < 1000 else f"{value:,.0f}"
    return str(value)
