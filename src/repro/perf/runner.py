"""Run (algorithm x ordering x dataset) cells through the simulator.

One *run* = take a dataset analogue, relabel it with an ordering,
declare its arrays in a fresh simulated memory and execute the traced
algorithm.  The result bundles the simulated cycle cost (the paper's
"runtime"), the cache statistics (the paper's Tables 3/4 columns) and
the wall-clock time of the ordering computation (its Table 9 / the
replication's Table 2).

Orderings and relabeled graphs are memoised per (graph, ordering,
seed) because the big experiments revisit the same cell many times.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro import obs
from repro.algorithms import base as algorithms
from repro.cache import (
    CacheHierarchy,
    CacheStats,
    CostModel,
    DEFAULT_COST_MODEL,
    Memory,
    RunCost,
    scaled_hierarchy,
)
from repro.graph.csr import CSRGraph
from repro.graph.permute import relabel
from repro.ordering import base as orderings


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated algorithm run."""

    dataset: str
    algorithm: str
    ordering: str
    cost: RunCost
    stats: CacheStats
    #: Wall-clock seconds to compute the ordering (0 when memoised).
    ordering_seconds: float
    #: Wall-clock seconds spent simulating (diagnostic only).
    simulation_seconds: float

    @property
    def cycles(self) -> float:
        """Total simulated cycles — the runtime the figures compare."""
        return self.cost.total_cycles


@dataclass
class OrderingCache:
    """Memoises permutations and relabeled graphs per graph object.

    Keys include ``id(graph)``; the keyed graph object is pinned in
    ``_pinned`` so its id cannot be recycled by the allocator while
    the cache entry lives (a classic stale-memoisation hazard).
    """

    _perms: dict[tuple[int, str, int], np.ndarray] = field(
        default_factory=dict
    )
    _graphs: dict[tuple[int, str, int], CSRGraph] = field(
        default_factory=dict
    )
    _seconds: dict[tuple[int, str, int], float] = field(
        default_factory=dict
    )
    _pinned: dict[int, CSRGraph] = field(default_factory=dict)

    def permutation(
        self, graph: CSRGraph, ordering: str, seed: int
    ) -> tuple[np.ndarray, float]:
        """The arrangement for (graph, ordering, seed) + compute time."""
        key = (id(graph), ordering, seed)
        if key not in self._perms:
            obs.inc("runner.ordering_memo_misses")
            with obs.span(
                "ordering.compute",
                ordering=ordering,
                dataset=graph.name,
                n=graph.num_nodes,
                seed=seed,
            ):
                start = time.perf_counter()
                perm = orderings.compute_ordering(
                    ordering, graph, seed=seed
                )
                self._seconds[key] = time.perf_counter() - start
            self._perms[key] = perm
            self._pinned[id(graph)] = graph
        else:
            obs.inc("runner.ordering_memo_hits")
        return self._perms[key], self._seconds[key]

    def relabeled(
        self, graph: CSRGraph, ordering: str, seed: int
    ) -> tuple[CSRGraph, np.ndarray, float]:
        """Relabeled graph, arrangement and ordering compute time."""
        key = (id(graph), ordering, seed)
        perm, seconds = self.permutation(graph, ordering, seed)
        if key not in self._graphs:
            self._graphs[key] = relabel(graph, perm)
        return self._graphs[key], perm, seconds

    def clear(self) -> None:
        self._perms.clear()
        self._graphs.clear()
        self._seconds.clear()
        self._pinned.clear()


#: Default shared cache (cleared freely; it is only a memoisation).
GLOBAL_ORDERING_CACHE = OrderingCache()


def run_cell(
    graph: CSRGraph,
    algorithm: str,
    ordering: str,
    seed: int = 0,
    params: dict | None = None,
    hierarchy: CacheHierarchy | None = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    cache: OrderingCache | None = None,
    dataset_name: str | None = None,
) -> RunResult:
    """Execute one experiment cell and return its :class:`RunResult`.

    ``params`` are forwarded to the traced algorithm; any parameter
    named in the algorithm's ``source_params`` is interpreted as
    *logical* node ids on the original graph and mapped through the
    ordering's permutation, so every ordering does identical work.
    """
    cache = cache or GLOBAL_ORDERING_CACHE
    algorithm_spec = algorithms.spec(algorithm)
    relabeled, perm, ordering_seconds = cache.relabeled(
        graph, ordering, seed
    )
    run_params = dict(params or {})
    for key in algorithm_spec.source_params:
        if key in run_params:
            value = run_params[key]
            if np.isscalar(value):
                run_params[key] = int(perm[int(value)])
            else:
                run_params[key] = [int(perm[int(v)]) for v in value]
    hierarchy = hierarchy or scaled_hierarchy()
    memory = Memory(hierarchy, cost_model=cost_model)
    with obs.span(
        "run.simulate",
        dataset=dataset_name or graph.name,
        algorithm=algorithm_spec.name,
        ordering=orderings.spec(ordering).name,
        seed=seed,
    ):
        start = time.perf_counter()
        algorithm_spec.traced(relabeled, memory, **run_params)
        simulation_seconds = time.perf_counter() - start
    hierarchy.publish_telemetry()
    return RunResult(
        dataset=dataset_name or graph.name,
        algorithm=algorithm_spec.name,
        ordering=orderings.spec(ordering).name,
        cost=memory.cost(),
        stats=memory.stats(),
        ordering_seconds=ordering_seconds,
        simulation_seconds=simulation_seconds,
    )


def time_ordering(
    graph: CSRGraph, ordering: str, seed: int = 0, repeats: int = 1
) -> float:
    """Wall-clock seconds to compute an ordering (no memoisation).

    Returns the minimum over ``repeats`` timings, the standard
    noise-robust estimator for Table 2.
    """
    best = float("inf")
    for _ in range(max(repeats, 1)):
        with obs.span(
            "ordering.compute",
            ordering=ordering,
            dataset=graph.name,
            n=graph.num_nodes,
            seed=seed,
        ):
            start = time.perf_counter()
            orderings.compute_ordering(ordering, graph, seed=seed)
            best = min(best, time.perf_counter() - start)
    return best
