"""Run (algorithm x ordering x dataset) cells through the simulator.

One *run* = take a dataset analogue, relabel it with an ordering,
declare its arrays in a fresh simulated memory and execute the traced
algorithm.  The result bundles the simulated cycle cost (the paper's
"runtime"), the cache statistics (the paper's Tables 3/4 columns) and
the wall-clock time of the ordering computation (its Table 9 / the
replication's Table 2).

Orderings and relabeled graphs are memoised per (graph, ordering,
seed) because the big experiments revisit the same cell many times.
The memo is a bounded LRU (entry and byte caps) so unattended
full-profile sweeps cannot grow memory without limit.
"""

from __future__ import annotations

import os
import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.algorithms import base as algorithms
from repro.cache import (
    DEFAULT_COST_MODEL,
    CacheHierarchy,
    CacheStats,
    CostModel,
    Memory,
    RunCost,
    scaled_hierarchy,
)
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.permute import relabel
from repro.ordering import base as orderings


@dataclass(frozen=True)
class RunResult:
    """Outcome of one simulated algorithm run."""

    dataset: str
    algorithm: str
    ordering: str
    cost: RunCost
    stats: CacheStats
    #: Wall-clock seconds to compute the ordering (0 when memoised).
    ordering_seconds: float
    #: Wall-clock seconds spent simulating (diagnostic only).
    simulation_seconds: float

    @property
    def cycles(self) -> float:
        """Total simulated cycles — the runtime the figures compare."""
        return self.cost.total_cycles


def _params_key(
    params: dict | None,
) -> tuple[tuple[str, object], ...]:
    """Canonical, hashable form of an ordering-parameter dict."""
    if not params:
        return ()
    return tuple(sorted(params.items()))


@dataclass
class _CacheEntry:
    """One memoised (graph, ordering, seed, params) cell."""

    perm: np.ndarray
    seconds: float
    graph: CSRGraph | None = None

    @property
    def nbytes(self) -> int:
        total = int(self.perm.nbytes)
        if self.graph is not None:
            total += int(self.graph.offsets.nbytes)
            total += int(self.graph.adjacency.nbytes)
        return total


def _env_int(name: str) -> int | None:
    value = os.environ.get(name)
    return int(value) if value else None


class OrderingCache:
    """Memoises permutations and relabeled graphs per graph object.

    Keys include ``id(graph)``; the keyed graph object is pinned in
    ``_pinned`` so its id cannot be recycled by the allocator while
    any cache entry for it lives (a classic stale-memoisation hazard).

    The cache is a bounded LRU: ``max_entries`` caps the number of
    memoised (graph, ordering, seed) triples and ``max_bytes`` caps
    the approximate array bytes held, so a full-profile sweep cannot
    grow memory without limit.  Evictions only cost a recompute and
    are counted on the ``runner.ordering_cache_evictions`` telemetry
    counter.  Either cap may be ``None`` (unbounded).

    The cache is **thread-safe**: every structural mutation (insert,
    LRU move-to-end, eviction, pin bookkeeping, clear) happens under
    one reentrant lock, so the serve daemon's worker threads can
    share :data:`GLOBAL_ORDERING_CACHE` without corrupting the LRU
    order or double-evicting pins.  Ordering computation and graph
    relabeling run *outside* the lock — two threads missing on the
    same key may both compute, and the first insert wins; that costs
    a duplicate compute, never a corrupted cache.
    """

    def __init__(
        self,
        max_entries: int | None = 128,
        max_bytes: int | None = None,
    ) -> None:
        if max_entries is not None and max_entries < 1:
            raise InvalidParameterError(
                "max_entries must be >= 1 or None"
            )
        if max_bytes is not None and max_bytes < 1:
            raise InvalidParameterError("max_bytes must be >= 1 or None")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._entries: OrderedDict[
            tuple[int, str, int, tuple], _CacheEntry
        ] = OrderedDict()
        self._pinned: dict[int, CSRGraph] = {}
        self._pin_counts: dict[int, int] = {}

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def nbytes(self) -> int:
        """Approximate bytes held by memoised arrays."""
        with self._lock:
            return sum(
                entry.nbytes for entry in self._entries.values()
            )

    def _pin(self, graph: CSRGraph) -> None:
        graph_id = id(graph)
        self._pinned[graph_id] = graph
        self._pin_counts[graph_id] = (
            self._pin_counts.get(graph_id, 0) + 1
        )

    def _unpin(self, graph_id: int) -> None:
        remaining = self._pin_counts.get(graph_id, 0) - 1
        if remaining <= 0:
            self._pin_counts.pop(graph_id, None)
            self._pinned.pop(graph_id, None)
        else:
            self._pin_counts[graph_id] = remaining

    def _evict_over_caps(self) -> None:
        def over() -> bool:
            if (
                self.max_entries is not None
                and len(self._entries) > self.max_entries
            ):
                return True
            return (
                self.max_bytes is not None
                and self.nbytes() > self.max_bytes
            )

        # Keep at least the newest entry so the current lookup's
        # result is always returned memoised.
        while len(self._entries) > 1 and over():
            key, _ = self._entries.popitem(last=False)
            self._unpin(key[0])
            obs.inc("runner.ordering_cache_evictions")

    def _lookup(
        self, key: tuple[int, str, int, tuple]
    ) -> _CacheEntry | None:
        entry = self._entries.get(key)
        if entry is not None:
            self._entries.move_to_end(key)
        return entry

    def permutation(
        self,
        graph: CSRGraph,
        ordering: str,
        seed: int,
        params: dict | None = None,
    ) -> tuple[np.ndarray, float]:
        """The arrangement for (graph, ordering, seed, params) + time.

        ``params`` are ordering keyword arguments (e.g. ``backend``,
        ``workers``); they are part of the memo key so runs with
        different knobs never share a cached arrangement.
        """
        key = (id(graph), ordering, seed, _params_key(params))
        with self._lock:
            entry = self._lookup(key)
        if entry is not None:
            obs.inc("runner.ordering_memo_hits")
            return entry.perm, entry.seconds
        obs.inc("runner.ordering_memo_misses")
        with obs.span(
            "ordering.compute",
            ordering=ordering,
            dataset=graph.name,
            n=graph.num_nodes,
            seed=seed,
        ):
            start = time.perf_counter()
            perm = orderings.compute_ordering(
                ordering, graph, seed=seed, **(params or {})
            )
            seconds = time.perf_counter() - start
        entry = _CacheEntry(perm=perm, seconds=seconds)
        with self._lock:
            existing = self._lookup(key)
            if existing is not None:
                # Another thread computed and inserted first; its
                # entry (and pin) stands, ours is discarded.
                return existing.perm, existing.seconds
            self._entries[key] = entry
            self._pin(graph)
            self._evict_over_caps()
        return entry.perm, entry.seconds

    def insert(
        self,
        graph: CSRGraph,
        ordering: str,
        seed: int,
        perm: np.ndarray,
        seconds: float,
        params: dict | None = None,
    ) -> None:
        """Pre-seed the memo with an externally computed arrangement.

        The serve daemon's shared :class:`~repro.serve.store.\
OrderingStore` computes (or disk-loads) orderings once per logical
        key; inserting them here lets :func:`run_cell` reuse them
        without recomputing.  An existing entry is kept.
        """
        key = (id(graph), ordering, seed, _params_key(params))
        with self._lock:
            if key in self._entries:
                return
            self._entries[key] = _CacheEntry(
                perm=perm, seconds=seconds
            )
            self._pin(graph)
            self._evict_over_caps()

    def relabeled(
        self,
        graph: CSRGraph,
        ordering: str,
        seed: int,
        params: dict | None = None,
    ) -> tuple[CSRGraph, np.ndarray, float]:
        """Relabeled graph, arrangement and ordering compute time."""
        key = (id(graph), ordering, seed, _params_key(params))
        perm, seconds = self.permutation(graph, ordering, seed, params)
        with self._lock:
            entry = self._entries.get(key)
            cached = entry.graph if entry is not None else None
        if cached is not None:
            return cached, perm, seconds
        relabeled = relabel(graph, perm)
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                # Evicted while relabeling: return the fresh graph
                # uncached rather than resurrect the entry.
                return relabeled, perm, seconds
            if entry.graph is None:
                entry.graph = relabeled
                self._evict_over_caps()
            return entry.graph, perm, seconds

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._pinned.clear()
            self._pin_counts.clear()


#: Default shared cache (cleared freely; it is only a memoisation).
#: Bound it via ``REPRO_ORDERING_CACHE_ENTRIES`` /
#: ``REPRO_ORDERING_CACHE_BYTES`` (defaults: 128 entries, no byte cap).
GLOBAL_ORDERING_CACHE = OrderingCache(
    max_entries=_env_int("REPRO_ORDERING_CACHE_ENTRIES") or 128,
    max_bytes=_env_int("REPRO_ORDERING_CACHE_BYTES"),
)


def run_cell(
    graph: CSRGraph,
    algorithm: str,
    ordering: str,
    seed: int = 0,
    params: dict | None = None,
    hierarchy: CacheHierarchy | None = None,
    cost_model: CostModel = DEFAULT_COST_MODEL,
    cache: OrderingCache | None = None,
    dataset_name: str | None = None,
    ordering_params: dict | None = None,
    cache_backend: str = "step",
    algo_backend: str = "runtime",
    cancel_check: Callable[[], None] | None = None,
) -> RunResult:
    """Execute one experiment cell and return its :class:`RunResult`.

    ``params`` are forwarded to the traced algorithm; any parameter
    named in the algorithm's ``source_params`` is interpreted as
    *logical* node ids on the original graph and mapped through the
    ordering's permutation, so every ordering does identical work.
    ``ordering_params`` are forwarded to the ordering computation
    (signature-filtered, see
    :func:`repro.ordering.base.compute_ordering`).
    ``cache_backend`` selects the cache simulation strategy
    (:data:`repro.cache.layout.CACHE_BACKENDS`): ``"step"`` scalar
    stepping, ``"replay"`` recorded-trace vectorised replay with
    byte-identical counters for all-LRU hierarchies.
    ``algo_backend`` selects the trace emitter
    (:data:`repro.algorithms.base.ALGO_BACKENDS`): ``"runtime"`` the
    vectorised frontier runtime, ``"scalar"`` the scalar-loop oracle
    (counter-identical by construction; kept for cross-checks).
    ``cancel_check`` is a cooperative cancellation hook (the serve
    daemon's deadline enforcement): it is invoked at the phase
    boundaries of the run — before the ordering is computed, after
    relabeling, and before the simulation — and should raise to
    abandon the run.
    """
    # None check, not truthiness: an empty OrderingCache is falsy.
    cache = GLOBAL_ORDERING_CACHE if cache is None else cache
    algorithm_spec = algorithms.spec(algorithm)
    traced = algorithms.traced_fn(algorithm_spec, algo_backend)
    if cancel_check is not None:
        cancel_check()
    relabeled, perm, ordering_seconds = cache.relabeled(
        graph, ordering, seed, ordering_params
    )
    if cancel_check is not None:
        cancel_check()
    run_params = dict(params or {})
    for key in algorithm_spec.source_params:
        if key in run_params:
            value = run_params[key]
            if np.isscalar(value):
                run_params[key] = int(perm[int(value)])
            else:
                run_params[key] = [int(perm[int(v)]) for v in value]
    hierarchy = hierarchy or scaled_hierarchy()
    memory = Memory(
        hierarchy, cost_model=cost_model, cache_backend=cache_backend
    )
    if cancel_check is not None:
        cancel_check()
    with obs.span(
        "run.simulate",
        dataset=dataset_name or graph.name,
        algorithm=algorithm_spec.name,
        ordering=orderings.spec(ordering).name,
        seed=seed,
        cache_backend=cache_backend,
        algo_backend=algo_backend,
    ):
        start = time.perf_counter()
        traced(relabeled, memory, **run_params)
        # Reading cost/stats triggers the lazy replay (if any) inside
        # the timed simulate span, and before the counter publish.
        cost = memory.cost()
        stats = memory.stats()
        simulation_seconds = time.perf_counter() - start
    hierarchy.publish_telemetry()
    return RunResult(
        dataset=dataset_name or graph.name,
        algorithm=algorithm_spec.name,
        ordering=orderings.spec(ordering).name,
        cost=cost,
        stats=stats,
        ordering_seconds=ordering_seconds,
        simulation_seconds=simulation_seconds,
    )


def time_ordering(
    graph: CSRGraph,
    ordering: str,
    seed: int = 0,
    repeats: int = 1,
    ordering_params: dict | None = None,
) -> float:
    """Wall-clock seconds to compute an ordering (no memoisation).

    Returns the minimum over ``repeats`` timings, the standard
    noise-robust estimator for Table 2.
    """
    best = float("inf")
    for _ in range(max(repeats, 1)):
        with obs.span(
            "ordering.compute",
            ordering=ordering,
            dataset=graph.name,
            n=graph.num_nodes,
            seed=seed,
        ):
            start = time.perf_counter()
            orderings.compute_ordering(
                ordering, graph, seed=seed, **(ordering_params or {})
            )
            best = min(best, time.perf_counter() - start)
    return best
