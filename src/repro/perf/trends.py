"""Benchmark trend store: a longitudinal perf record with a gate.

The two committed ``BENCH_*.json`` snapshots answer "how fast is this
commit"; they cannot answer "did the replay backend get slower since
they were written".  This module turns bench results into an
**append-only JSONL history** — one line per ingested schema-v1 bench
payload, keyed by its manifest (git SHA, machine, platform, quick
flag) — and reads per-metric trends back out of it:

* :func:`append_history` — ``repro-gorder bench --append-history``
  ingests a just-produced payload (flushed + fsynced per line, the
  same durability contract as the sweep checkpoint journal);
* :func:`load_history` — torn-tail tolerant reader (a killed append
  loses at most the half-written line);
* :func:`trend_report` — per-metric deltas of each series' latest
  entry against a **rolling baseline** (median of the preceding
  ``window`` entries of the same series), flagging regressions past
  a configurable threshold;
* ``repro-gorder trends [--check]`` — the CLI, whose ``--check`` mode
  exits non-zero on any regression (enforced by the CI bench-smoke
  job).

A *series* is ``(bench, quick, machine)``: quick CI smoke numbers
never baseline full acceptance runs, and one machine's timings never
gate another's.  Direction is per metric — ``*_seconds`` regress by
growing, ``speedup_*``/``*_per_second`` by shrinking.  A series with
no prior entries reports ``n/a`` and passes: the first record of a
fresh history (e.g. the committed BENCH files ingested once) is a
baseline, not a regression.
"""

from __future__ import annotations

import json
import os
import statistics
from dataclasses import dataclass, field
from pathlib import Path

from repro import obs
from repro.errors import InvalidParameterError, ReproError

#: Current history-record schema version.
HISTORY_SCHEMA_VERSION = 1

#: Default history file (repo root; CI keeps one as a build artifact).
DEFAULT_HISTORY = "bench_history.jsonl"

#: Default regression threshold: fail past 20% worse than baseline.
DEFAULT_TREND_THRESHOLD = 0.20

#: Default rolling-baseline width (median of up to N prior entries).
DEFAULT_TREND_WINDOW = 5


class TrendError(ReproError):
    """A bench payload or trend history could not be used."""


#: metric name -> direction: ``lower`` is better, or ``higher``.
METRIC_DIRECTIONS = {
    "loop_seconds": "lower",
    "batched_seconds": "lower",
    "speedup_batched_vs_loop": "higher",
    "batched_updates_per_second": "higher",
    "partitioned_workers_n_seconds": "lower",
    "step_seconds": "lower",
    "replay_seconds": "lower",
    "speedup_replay_vs_step": "higher",
    "replay_accesses_per_second": "higher",
    "scalar_seconds_total": "lower",
    "runtime_seconds_total": "lower",
    "speedup_runtime_vs_scalar": "higher",
    "selector_max_regret": "lower",
    "selector_selection_seconds": "lower",
    "selector_chosen_cycles_total": "lower",
}


def bench_metrics(payload: dict) -> dict[str, float]:
    """The trend-tracked metrics of one schema-v1 bench payload."""
    bench = payload.get("bench")
    try:
        if bench == "gorder_kernel":
            kernels = payload["kernels"]
            metrics = {
                "loop_seconds": kernels["loop"]["seconds"],
                "batched_seconds": kernels["batched"]["seconds"],
                "speedup_batched_vs_loop": payload[
                    "speedup_batched_vs_loop"
                ],
                "batched_updates_per_second": kernels["batched"][
                    "updates_per_second"
                ],
            }
            partitioned = payload.get("partitioned")
            if partitioned:
                metrics["partitioned_workers_n_seconds"] = partitioned[
                    "workers_n_seconds"
                ]
        elif bench == "cache_replay":
            backends = payload["backends"]
            metrics = {
                "step_seconds": backends["step"]["seconds"],
                "replay_seconds": backends["replay"]["seconds"],
                "speedup_replay_vs_step": payload[
                    "speedup_replay_vs_step"
                ],
                "replay_accesses_per_second": backends["replay"][
                    "accesses_per_second"
                ],
            }
        elif bench == "algos_runtime":
            totals = payload["totals"]
            metrics = {
                "scalar_seconds_total": totals["scalar_seconds"],
                "runtime_seconds_total": totals["runtime_seconds"],
                "speedup_runtime_vs_scalar": payload[
                    "speedup_runtime_vs_scalar"
                ],
            }
        elif bench == "selector_frontier":
            metrics = {
                # max_regret is 0 when the selector matched the
                # oracle everywhere; the rolling-median gate treats a
                # 0 -> 0 sequence as flat, and any sustained miss
                # shows up long before the in-payload tolerance.
                "selector_max_regret": payload["max_regret"],
                "selector_selection_seconds": payload["totals"][
                    "selection_seconds"
                ],
                "selector_chosen_cycles_total": sum(
                    entry["selected"]["probe_cycles"]
                    for entry in payload["datasets"].values()
                ),
            }
        else:
            raise TrendError(
                f"unknown bench suite {bench!r}; expected "
                "'gorder_kernel', 'cache_replay', 'algos_runtime' or "
                "'selector_frontier'"
            )
    except (KeyError, TypeError) as exc:
        raise TrendError(
            f"bench payload for {bench!r} is missing {exc}"
        ) from exc
    return {
        name: float(value)
        for name, value in metrics.items()
        if value is not None
    }


def history_record(payload: dict) -> dict:
    """One JSON-ready history line for a schema-v1 bench payload."""
    version = payload.get("schema_version")
    if version != 1:
        raise TrendError(
            f"bench payload has schema_version {version!r}; the "
            "trend store ingests version 1"
        )
    manifest = payload.get("manifest") or {}
    return {
        "schema_version": HISTORY_SCHEMA_VERSION,
        "kind": "bench",
        "bench": payload.get("bench"),
        "quick": bool(payload.get("quick", False)),
        "recorded_unix": manifest.get("created_unix"),
        "git_sha": manifest.get("git_sha"),
        "machine": manifest.get("machine"),
        "platform": manifest.get("platform"),
        "python": manifest.get("python"),
        "profile": manifest.get("profile"),
        "metrics": bench_metrics(payload),
    }


def append_history(
    payload: dict, path: str | os.PathLike
) -> dict:
    """Append one bench payload to the history journal; the record.

    Each line is flushed and fsynced before the call returns, so a
    recorded measurement survives any subsequent kill — the same
    contract as the sweep checkpoint journal.
    """
    record = history_record(payload)
    line = json.dumps(record, separators=(",", ":"), default=str)
    history = Path(path)
    try:
        with open(history, "a", encoding="utf-8") as handle:
            handle.write(line + "\n")
            handle.flush()
            os.fsync(handle.fileno())
    except OSError as exc:
        raise TrendError(
            f"cannot append to history {history}: {exc}"
        ) from exc
    obs.event(
        "trends.appended",
        path=str(history),
        bench=record["bench"],
        quick=record["quick"],
        git_sha=record["git_sha"],
    )
    return record


def load_history(path: str | os.PathLike) -> list[dict]:
    """Parse the history journal, tolerating a torn final line.

    Raises :class:`TrendError` on a missing file or corruption
    anywhere except the final line (a killed append).  Records with a
    newer schema version are rejected rather than misread.
    """
    history = Path(path)
    try:
        text = history.read_text(encoding="utf-8")
    except OSError as exc:
        raise TrendError(
            f"cannot read history {history}: {exc}"
        ) from exc
    lines = text.splitlines()
    while lines and not lines[-1].strip():
        lines.pop()
    records: list[dict] = []
    for lineno, line in enumerate(lines, start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if lineno == len(lines):
                obs.event(
                    "trends.torn_tail",
                    level="warning",
                    path=str(history),
                    line=lineno,
                )
                break
            raise TrendError(
                f"history {history} is corrupt at line {lineno}: "
                f"{exc.msg}"
            ) from exc
        if not isinstance(record, dict):
            raise TrendError(
                f"history {history}:{lineno}: expected a JSON "
                f"object, got {type(record).__name__}"
            )
        if record.get("kind") != "bench":
            continue
        version = record.get("schema_version")
        if version != HISTORY_SCHEMA_VERSION:
            raise TrendError(
                f"history {history}:{lineno} has schema_version "
                f"{version!r}; this build reads "
                f"{HISTORY_SCHEMA_VERSION}"
            )
        records.append(record)
    return records


# ----------------------------------------------------------------------
# Trend analysis
# ----------------------------------------------------------------------
@dataclass
class TrendRow:
    """The latest value of one metric series against its baseline."""

    bench: str
    quick: bool
    metric: str
    direction: str
    latest: float
    #: Rolling-baseline value; ``None`` with no prior entries.
    baseline: float | None
    #: Prior entries the baseline summarises.
    samples: int
    git_sha: str | None = None
    machine: str | None = None

    @property
    def change(self) -> float | None:
        """Relative change of the metric vs. baseline (signed)."""
        if self.baseline is None or self.baseline == 0:
            return None
        return (self.latest - self.baseline) / self.baseline

    def regressed(self, threshold: float) -> bool:
        """Worse than baseline by more than ``threshold``?"""
        change = self.change
        if change is None:
            return False
        if self.direction == "lower":
            return change > threshold
        return change < -threshold


@dataclass
class TrendReport:
    """Every series' latest-vs-baseline row, plus the failing ones."""

    path: str
    threshold: float
    window: int
    rows: list[TrendRow] = field(default_factory=list)

    @property
    def regressions(self) -> list[TrendRow]:
        return [
            row for row in self.rows if row.regressed(self.threshold)
        ]

    @property
    def ok(self) -> bool:
        return not self.regressions


def _series_key(record: dict) -> tuple:
    return (
        record.get("bench"),
        bool(record.get("quick", False)),
        record.get("machine"),
    )


def trend_report(
    history: list[dict],
    path: str | os.PathLike = DEFAULT_HISTORY,
    threshold: float = DEFAULT_TREND_THRESHOLD,
    window: int = DEFAULT_TREND_WINDOW,
) -> TrendReport:
    """Compare each series' newest entry to its rolling baseline.

    The baseline of a metric is the **median** of its value over the
    up-to-``window`` entries preceding the newest one within the same
    ``(bench, quick, machine)`` series — robust to one outlier run
    and tolerant of drift across many.
    """
    if threshold <= 0:
        raise InvalidParameterError(
            f"trend threshold must be positive, got {threshold}"
        )
    if window < 1:
        raise InvalidParameterError(
            f"trend window must be at least 1, got {window}"
        )
    series: dict[tuple, list[dict]] = {}
    for record in history:
        series.setdefault(_series_key(record), []).append(record)
    report = TrendReport(
        path=str(path), threshold=threshold, window=window
    )
    for key in sorted(
        series, key=lambda k: tuple(str(part) for part in k)
    ):
        records = series[key]
        latest = records[-1]
        prior = records[:-1][-window:]
        for metric in sorted(latest.get("metrics", {})):
            value = latest["metrics"][metric]
            baseline_values = [
                record["metrics"][metric]
                for record in prior
                if metric in record.get("metrics", {})
            ]
            baseline = (
                statistics.median(baseline_values)
                if baseline_values
                else None
            )
            report.rows.append(
                TrendRow(
                    bench=str(latest.get("bench")),
                    quick=bool(latest.get("quick", False)),
                    metric=metric,
                    direction=METRIC_DIRECTIONS.get(metric, "lower"),
                    latest=float(value),
                    baseline=baseline,
                    samples=len(baseline_values),
                    git_sha=latest.get("git_sha"),
                    machine=latest.get("machine"),
                )
            )
    for row in report.regressions:
        obs.event(
            "trends.regression",
            level="warning",
            bench=row.bench,
            metric=row.metric,
            baseline=row.baseline,
            latest=row.latest,
            change=row.change,
        )
    return report


def check_trends(
    path: str | os.PathLike = DEFAULT_HISTORY,
    threshold: float = DEFAULT_TREND_THRESHOLD,
    window: int = DEFAULT_TREND_WINDOW,
) -> TrendReport:
    """Load ``path`` and produce its :class:`TrendReport`."""
    return trend_report(
        load_history(path), path=path, threshold=threshold,
        window=window,
    )


def render_trends(report: TrendReport) -> str:
    """Human-readable trend table plus the gate verdict."""
    from repro.perf.report import render_table

    if not report.rows:
        return (
            f"history     : {report.path}\n"
            "no bench records in this history"
        )
    rows = []
    for row in report.rows:
        change = row.change
        rows.append([
            row.bench + (" (quick)" if row.quick else ""),
            row.metric,
            "n/a" if row.baseline is None else f"{row.baseline:.4g}",
            f"{row.latest:.4g}",
            "n/a" if change is None else f"{100 * change:+.1f}%",
            (
                "REGRESSED"
                if row.regressed(report.threshold)
                else "ok"
            ),
        ])
    table = render_table(
        ["bench", "metric", "baseline", "latest", "change", "gate"],
        rows,
        title=(
            f"Benchmark trends ({report.path}; threshold "
            f"{100 * report.threshold:.0f}%, window {report.window})"
        ),
    )
    verdict = (
        "gate        : ok"
        if report.ok
        else f"gate        : {len(report.regressions)} metric(s) "
        f"regressed past {100 * report.threshold:.0f}%"
    )
    return f"{table}\n{verdict}"
