"""Structural statistics of graphs.

The original paper's dataset table reports more than raw sizes
(average degree, etc.), and the generators' realism claims (skew,
reciprocity, locality) deserve numbers.  Everything here is exact or
an explicitly-sampled estimate with a seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class GraphSummary:
    """One row of an extended dataset table."""

    name: str
    num_nodes: int
    num_edges: int
    average_degree: float
    max_in_degree: int
    max_out_degree: int
    reciprocity: float
    degree_skew: float  # max in-degree / mean degree
    locality: float  # fraction of edges with |u - v| <= 16

    def as_row(self) -> list:
        return [
            self.name,
            self.num_nodes,
            self.num_edges,
            f"{self.average_degree:.1f}",
            self.max_in_degree,
            self.max_out_degree,
            f"{self.reciprocity:.2f}",
            f"{self.degree_skew:.1f}",
            f"{self.locality:.2f}",
        ]


def reciprocity(graph: CSRGraph) -> float:
    """Fraction of edges whose reverse edge also exists."""
    if graph.num_edges == 0:
        return 0.0
    mutual = sum(
        1 for u, v in graph.edges() if graph.has_edge(v, u)
    )
    return mutual / graph.num_edges


def id_locality(graph: CSRGraph, radius: int = 16) -> float:
    """Fraction of edges with endpoint ids within ``radius``.

    Measures how cache-friendly the *current* labeling is — a cache
    line holds 16 four-byte entries, hence the default radius.
    """
    if radius < 0:
        raise InvalidParameterError(
            f"radius must be non-negative, got {radius}"
        )
    if graph.num_edges == 0:
        return 0.0
    sources, targets = graph.edge_array()
    return float((np.abs(sources - targets) <= radius).mean())


def effective_diameter(
    graph: CSRGraph,
    num_sources: int = 8,
    percentile: float = 90.0,
    seed: int = 0,
) -> float:
    """Sampled effective diameter (distance percentile over pairs).

    The standard robust alternative to the exact diameter on graphs
    with stray long tails; sampled from ``num_sources`` BFS trees.
    """
    if graph.num_nodes == 0:
        raise InvalidParameterError(
            "effective diameter of an empty graph is undefined"
        )
    if not 0 < percentile <= 100:
        raise InvalidParameterError(
            f"percentile must be in (0, 100], got {percentile}"
        )
    # Imported here: the graph layer must not depend on algorithms at
    # import time (it would be circular through the package inits).
    from repro.algorithms.sp import INFINITY, shortest_paths

    rng = np.random.default_rng(seed)
    sources = rng.integers(0, graph.num_nodes, size=num_sources)
    finite: list[np.ndarray] = []
    for source in sources:
        distance = shortest_paths(graph, int(source))
        reached = distance[distance != INFINITY]
        if reached.shape[0]:
            finite.append(reached)
    if not finite:
        return 0.0
    return float(np.percentile(np.concatenate(finite), percentile))


def summarize(graph: CSRGraph) -> GraphSummary:
    """Compute the full summary row for one graph."""
    n = graph.num_nodes
    m = graph.num_edges
    in_degrees = graph.in_degrees()
    out_degrees = graph.out_degrees()
    mean_degree = m / n if n else 0.0
    return GraphSummary(
        name=graph.name,
        num_nodes=n,
        num_edges=m,
        average_degree=mean_degree,
        max_in_degree=int(in_degrees.max()) if n else 0,
        max_out_degree=int(out_degrees.max()) if n else 0,
        reciprocity=reciprocity(graph),
        degree_skew=(
            float(in_degrees.max()) / mean_degree
            if mean_degree
            else 0.0
        ),
        locality=id_locality(graph),
    )
