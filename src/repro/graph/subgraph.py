"""Induced subgraph extraction.

Needed by partitioned Gorder (each partition is ordered on its induced
subgraph) and generally useful for downstream analysis.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.builder import from_arrays
from repro.graph.csr import CSRGraph


def induced_subgraph(
    graph: CSRGraph, nodes: np.ndarray, name: str | None = None
) -> tuple[CSRGraph, np.ndarray]:
    """The subgraph induced by ``nodes``.

    Parameters
    ----------
    graph:
        The host graph.
    nodes:
        Distinct node ids to keep.  Their order defines the local ids:
        ``nodes[i]`` becomes local node ``i``.

    Returns
    -------
    ``(subgraph, local_of)`` where ``subgraph`` has ``len(nodes)``
    nodes and every edge of ``graph`` with both endpoints kept, and
    ``local_of`` maps host ids to local ids (−1 for dropped nodes).
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.ndim != 1:
        raise InvalidParameterError(
            f"nodes must be one-dimensional, got shape {nodes.shape}"
        )
    if nodes.shape[0]:
        if nodes.min() < 0 or nodes.max() >= graph.num_nodes:
            raise InvalidParameterError(
                "subgraph nodes must be valid ids of the host graph"
            )
    local_of = np.full(graph.num_nodes, -1, dtype=np.int64)
    if np.any(local_of[nodes] != -1) or (
        np.unique(nodes).shape[0] != nodes.shape[0]
    ):
        raise InvalidParameterError("subgraph nodes must be distinct")
    local_of[nodes] = np.arange(nodes.shape[0], dtype=np.int64)
    sources, targets = graph.edge_array()
    keep = (local_of[sources] >= 0) & (local_of[targets] >= 0)
    subgraph = from_arrays(
        local_of[sources[keep]],
        local_of[targets[keep]],
        num_nodes=nodes.shape[0],
        name=name or f"{graph.name}-sub",
    )
    return subgraph, local_of
