"""Seeded synthetic graph generators.

The paper evaluates on two families of real-world graphs that we cannot
ship (30M-2B edges, network downloads): **online social networks**
(pokec, flickr, livejournal, gplus, twitter, epinion) and **web graphs**
(wiki, pldarc, sdarc).  These generators produce scaled analogues with
the structural properties the paper's experiments rely on:

* skewed (heavy-tailed) degree distributions,
* small diameter and sparsity,
* a meaningful *original* ordering: real datasets are "collected in a
  way that is not random" and their default order already has locality.
  The social generator's ids follow arrival time of a preferential-
  attachment process (recent nodes attach to recent popular nodes); the
  web generator groups pages into hosts with consecutive ids and mostly
  intra-host links, mirroring URLs listed alphabetically.

Every generator takes an explicit ``seed`` and is deterministic for a
given (parameters, seed) pair, so experiments are reproducible.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.builder import from_arrays
from repro.graph.csr import CSRGraph


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise InvalidParameterError(message)


# ----------------------------------------------------------------------
# Deterministic toy graphs (used heavily by tests)
# ----------------------------------------------------------------------
def ring(num_nodes: int, name: str = "ring") -> CSRGraph:
    """Directed cycle ``0 -> 1 -> ... -> n-1 -> 0``."""
    _require(num_nodes >= 1, "ring needs at least one node")
    sources = np.arange(num_nodes, dtype=np.int64)
    targets = (sources + 1) % num_nodes
    return from_arrays(sources, targets, num_nodes=num_nodes, name=name)


def path(num_nodes: int, name: str = "path") -> CSRGraph:
    """Directed path ``0 -> 1 -> ... -> n-1``."""
    _require(num_nodes >= 1, "path needs at least one node")
    sources = np.arange(num_nodes - 1, dtype=np.int64)
    return from_arrays(
        sources, sources + 1, num_nodes=num_nodes, name=name
    )


def star(num_leaves: int, name: str = "star") -> CSRGraph:
    """Hub node 0 pointing at ``num_leaves`` leaves (and back)."""
    _require(num_leaves >= 0, "star needs a non-negative leaf count")
    leaves = np.arange(1, num_leaves + 1, dtype=np.int64)
    hub = np.zeros(num_leaves, dtype=np.int64)
    sources = np.concatenate([hub, leaves])
    targets = np.concatenate([leaves, hub])
    return from_arrays(
        sources, targets, num_nodes=num_leaves + 1, name=name
    )


def complete(num_nodes: int, name: str = "complete") -> CSRGraph:
    """Complete directed graph without self-loops."""
    _require(num_nodes >= 1, "complete graph needs at least one node")
    grid_u, grid_v = np.meshgrid(
        np.arange(num_nodes, dtype=np.int64),
        np.arange(num_nodes, dtype=np.int64),
        indexing="ij",
    )
    keep = grid_u != grid_v
    return from_arrays(
        grid_u[keep], grid_v[keep], num_nodes=num_nodes, name=name
    )


def grid(rows: int, cols: int, name: str = "grid") -> CSRGraph:
    """Bidirected 4-neighbour grid, row-major node ids."""
    _require(rows >= 1 and cols >= 1, "grid needs positive dimensions")
    ids = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    right = np.stack(
        [ids[:, :-1].ravel(), ids[:, 1:].ravel()], axis=1
    )
    down = np.stack(
        [ids[:-1, :].ravel(), ids[1:, :].ravel()], axis=1
    )
    forward = np.concatenate([right, down], axis=0)
    both = np.concatenate([forward, forward[:, ::-1]], axis=0)
    return from_arrays(
        both[:, 0], both[:, 1], num_nodes=rows * cols, name=name
    )


def binary_tree(depth: int, name: str = "tree") -> CSRGraph:
    """Complete binary out-tree of the given depth (root is node 0)."""
    _require(depth >= 0, "tree depth must be non-negative")
    num_nodes = 2 ** (depth + 1) - 1
    parents = np.arange((num_nodes - 1) // 2, dtype=np.int64)
    left = 2 * parents + 1
    right = 2 * parents + 2
    sources = np.concatenate([parents, parents])
    targets = np.concatenate([left, right])
    return from_arrays(sources, targets, num_nodes=num_nodes, name=name)


# ----------------------------------------------------------------------
# Random graph families
# ----------------------------------------------------------------------
def erdos_renyi(
    num_nodes: int,
    num_edges: int,
    seed: int = 0,
    name: str = "erdos-renyi",
) -> CSRGraph:
    """Uniform random directed graph with ~``num_edges`` distinct edges.

    Edges are sampled with replacement and deduplicated, so the final
    edge count can be slightly below ``num_edges`` (exact for sparse
    graphs in expectation; tests only rely on approximate density).
    """
    _require(num_nodes >= 1, "erdos_renyi needs at least one node")
    _require(num_edges >= 0, "erdos_renyi needs a non-negative edge count")
    rng = np.random.default_rng(seed)
    sources = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    targets = rng.integers(0, num_nodes, size=num_edges, dtype=np.int64)
    return from_arrays(sources, targets, num_nodes=num_nodes, name=name)


def social_graph(
    num_nodes: int,
    edges_per_node: int = 12,
    reciprocity: float = 0.4,
    community_bias: float = 0.35,
    uniform_mix: float = 0.35,
    id_noise: float = 0.15,
    seed: int = 0,
    name: str = "social",
) -> CSRGraph:
    """Directed social-network analogue (pokec/flickr/twitter family).

    A preferential-attachment process: node ``t`` arrives and creates
    ``edges_per_node`` out-edges.  Each target is chosen

    * with probability ``community_bias``, *locally* — a node with a
      nearby (recent) arrival index, modelling friends who joined
      together and giving the original id order its locality;
    * otherwise by *preferential attachment* (endpoint of a uniformly
      random existing edge — the classic heavy-tail construction),
      softened by ``uniform_mix``: that fraction of the non-local
      draws picks a uniformly random node instead, so popularity is
      skewed without collapsing onto a handful of celebrities.

    Each new edge is reciprocated with probability ``reciprocity``
    (social ties are frequently mutual).  Ids equal arrival order, up
    to ``id_noise``: that fraction of nodes get ids shuffled among
    themselves — export orders of real platforms are good but noisy.
    """
    _require(num_nodes >= 2, "social_graph needs at least two nodes")
    _require(edges_per_node >= 1, "edges_per_node must be positive")
    _require(0.0 <= reciprocity <= 1.0, "reciprocity must be in [0, 1]")
    _require(
        0.0 <= community_bias <= 1.0, "community_bias must be in [0, 1]"
    )
    _require(0.0 <= uniform_mix <= 1.0, "uniform_mix must be in [0, 1]")
    _require(0.0 <= id_noise <= 1.0, "id_noise must be in [0, 1]")
    rng = np.random.default_rng(seed)
    seed_size = min(edges_per_node + 1, num_nodes)
    sources: list[int] = []
    targets: list[int] = []
    # Seed clique so early preferential draws have endpoints to copy.
    for u in range(seed_size):
        for v in range(seed_size):
            if u != v:
                sources.append(u)
                targets.append(v)
    # endpoint pool for preferential attachment (edge endpoints occur in
    # proportion to degree)
    pool: list[int] = list(range(seed_size)) * 2
    for t in range(seed_size, num_nodes):
        drawn = 0
        attempts = 0
        chosen: set[int] = set()
        while drawn < edges_per_node and attempts < 4 * edges_per_node:
            attempts += 1
            coin = rng.random()
            if coin < community_bias:
                # Local target: geometric-ish distance back in arrival
                # order keeps ids of linked nodes close.
                back = int(rng.geometric(0.05))
                v = max(0, t - back)
            elif coin < community_bias + (1 - community_bias) * uniform_mix:
                v = int(rng.integers(0, t))
            else:
                v = int(pool[int(rng.integers(0, len(pool)))])
            if v == t or v in chosen:
                continue
            chosen.add(v)
            drawn += 1
            sources.append(t)
            targets.append(v)
            pool.append(t)
            pool.append(v)
            if rng.random() < reciprocity:
                sources.append(v)
                targets.append(t)
    source_array = np.array(sources, dtype=np.int64)
    target_array = np.array(targets, dtype=np.int64)
    num_noisy = int(round(id_noise * num_nodes))
    if num_noisy >= 2:
        noisy = rng.choice(num_nodes, size=num_noisy, replace=False)
        noise_map = np.arange(num_nodes, dtype=np.int64)
        noise_map[noisy] = noisy[rng.permutation(num_noisy)]
        source_array = noise_map[source_array]
        target_array = noise_map[target_array]
    return from_arrays(
        source_array,
        target_array,
        num_nodes=num_nodes,
        name=name,
    )


def web_graph(
    num_nodes: int,
    pages_per_host: int = 32,
    out_degree: int = 10,
    intra_host_fraction: float = 0.75,
    nearby_fraction: float = 0.15,
    id_noise: float = 0.2,
    seed: int = 0,
    name: str = "web",
) -> CSRGraph:
    """Directed web-graph analogue (wiki/pldarc/sdarc family).

    Pages are grouped into hosts of ``pages_per_host`` consecutive ids
    (URLs sorted alphabetically share a host prefix).  Each page emits
    ``out_degree`` links drawn from three pools:

    * ``intra_host_fraction`` stay inside the host (navigation
      templates) — the locality that makes the *original* order of
      real crawls a strong baseline,
    * ``nearby_fraction`` point into hosts a few positions away
      (sister sites, alphabetically close domains),
    * the rest follow a Zipf popularity law over **hosts** (authority
      concentrates on popular sites, uniformly over their pages), with
      popular hosts spread across the id space by multiplicative
      hashing so authority is not id-adjacent.  In-degree is heavy-
      tailed without all of it collapsing onto one page.
    """
    _require(num_nodes >= 2, "web_graph needs at least two nodes")
    _require(pages_per_host >= 2, "pages_per_host must be at least 2")
    _require(out_degree >= 1, "out_degree must be positive")
    _require(
        0.0 <= intra_host_fraction <= 1.0,
        "intra_host_fraction must be in [0, 1]",
    )
    _require(
        0.0 <= nearby_fraction <= 1.0
        and intra_host_fraction + nearby_fraction <= 1.0,
        "intra_host_fraction + nearby_fraction must be in [0, 1]",
    )
    rng = np.random.default_rng(seed)
    total_links = num_nodes * out_degree
    sources = np.repeat(
        np.arange(num_nodes, dtype=np.int64), out_degree
    )
    hosts = sources // pages_per_host
    host_starts = hosts * pages_per_host
    host_sizes = np.minimum(num_nodes - host_starts, pages_per_host)
    kind = rng.random(total_links)
    # Page popularity within a host follows a Zipf law: navigation
    # pages (the host's first ids, crawled first) absorb most internal
    # links — the degree structure InDegSort/SlashBurn exploit.
    page_ranks = (rng.zipf(1.3, size=total_links).astype(np.int64) - 1)
    intra_targets = host_starts + page_ranks % host_sizes
    # Nearby links: a popular page of a host within +-4 positions.
    drift = rng.integers(-4, 5, size=total_links) * pages_per_host
    nearby_starts = np.abs(host_starts + drift) % num_nodes
    nearby_sizes = np.minimum(num_nodes - nearby_starts, pages_per_host)
    nearby_targets = nearby_starts + page_ranks % nearby_sizes
    # Global links: Zipf popularity over hosts (spread across the id
    # space by a multiplicative hash), uniform over the host's pages.
    num_hosts = (num_nodes + pages_per_host - 1) // pages_per_host
    host_ranks = rng.zipf(1.4, size=total_links).astype(np.int64)
    global_hosts = (host_ranks * np.int64(2654435761)) % num_hosts
    global_starts = global_hosts * pages_per_host
    global_sizes = np.minimum(num_nodes - global_starts, pages_per_host)
    global_targets = global_starts + page_ranks % global_sizes
    targets = np.where(
        kind < intra_host_fraction,
        intra_targets,
        np.where(
            kind < intra_host_fraction + nearby_fraction,
            nearby_targets,
            global_targets,
        ),
    )
    # Crawl order preserves host *blocks* but not popularity order
    # within a host (URLs are alphabetical, not sorted by in-degree):
    # scatter each host's popularity ranks over its page slots.  This
    # leaves the original order block-local (a strong baseline, as the
    # paper observes) while leaving line-level packing of hot pages to
    # the orderings under study.
    page_map = np.empty(num_nodes, dtype=np.int64)
    for start in range(0, num_nodes, pages_per_host):
        size = min(pages_per_host, num_nodes - start)
        page_map[start:start + size] = start + rng.permutation(size)
    targets = page_map[targets]
    # Crawl noise: a fraction ``id_noise`` of pages receive ids far
    # from their host block (re-crawls, redirects, frontier effects).
    # Real default orders are good but not perfect; this is the slack
    # that topology-driven orderings like Gorder recover.
    _require(0.0 <= id_noise <= 1.0, "id_noise must be in [0, 1]")
    num_noisy = int(round(id_noise * num_nodes))
    if num_noisy >= 2:
        noisy = rng.choice(num_nodes, size=num_noisy, replace=False)
        noise_map = np.arange(num_nodes, dtype=np.int64)
        noise_map[noisy] = noisy[rng.permutation(num_noisy)]
        sources = noise_map[sources]
        targets = noise_map[targets]
    return from_arrays(
        sources, targets, num_nodes=num_nodes, name=name
    )


def rmat(
    scale: int,
    edge_factor: int = 16,
    a: float = 0.57,
    b: float = 0.19,
    c: float = 0.19,
    seed: int = 0,
    name: str = "rmat",
) -> CSRGraph:
    """Recursive-matrix (R-MAT / Graph500-style) power-law graph.

    ``2**scale`` nodes and ``edge_factor * 2**scale`` sampled edges.
    The (a, b, c, d) quadrant probabilities default to the Graph500
    parameters; ``d = 1 - a - b - c``.
    """
    _require(scale >= 1, "rmat scale must be at least 1")
    _require(edge_factor >= 1, "edge_factor must be positive")
    d = 1.0 - a - b - c
    _require(
        min(a, b, c, d) >= 0.0, "rmat probabilities must be non-negative"
    )
    rng = np.random.default_rng(seed)
    num_nodes = 1 << scale
    num_edges = edge_factor * num_nodes
    sources = np.zeros(num_edges, dtype=np.int64)
    targets = np.zeros(num_edges, dtype=np.int64)
    for bit in range(scale):
        draw = rng.random(num_edges)
        src_bit = (draw >= a + b).astype(np.int64)
        # Conditional target bit: quadrants (a,b) in the top half,
        # (c,d) in the bottom half.
        in_top = draw < a + b
        tgt_bit = np.where(
            in_top, (draw >= a).astype(np.int64),
            (draw >= a + b + c).astype(np.int64),
        )
        sources |= src_bit << bit
        targets |= tgt_bit << bit
    return from_arrays(sources, targets, num_nodes=num_nodes, name=name)
