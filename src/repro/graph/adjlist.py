"""Pointer-based adjacency-list representation (paper Figure 2).

The paper motivates CSR by contrasting it with the classic linked
adjacency list: CSR stores all neighbour lists in one dense array,
while a linked list chases pointers through separately allocated
cells.  This module models that alternative so the contrast can be
*measured* on the cache simulator: each node has a head pointer and
its neighbours live in fixed-size cells linked by ``next`` indices.

Cell allocation order is the crucial degree of freedom:

* ``"grouped"``   — cells allocated list-by-list (what you get from a
  bulk load); chains are contiguous, close to CSR.
* ``"interleaved"`` — cells allocated in a shuffled order (what a
  dynamically grown graph looks like after many updates); chasing a
  chain hops across the heap.

The traced neighbour-query over this layout quantifies the paper's
"CSR ... allows for faster memory access" claim.
"""

from __future__ import annotations

import numpy as np

from repro.cache.layout import Memory
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

#: Next-pointer value terminating a chain.
NIL = -1


class AdjacencyListLayout:
    """A linked adjacency list materialised over a simulated heap.

    Attributes
    ----------
    heads:
        ``int64`` array, node -> first cell index (or :data:`NIL`).
    cell_neighbor / cell_next:
        Per-cell payload and chain pointer, indexed by cell id; the
        cell id *is* its heap position.
    """

    def __init__(self, graph: CSRGraph, order: str = "grouped",
                 seed: int = 0) -> None:
        if order not in ("grouped", "interleaved"):
            raise InvalidParameterError(
                f"order must be 'grouped' or 'interleaved', got {order!r}"
            )
        n = graph.num_nodes
        m = graph.num_edges
        self.graph = graph
        self.order = order
        self.heads = np.full(n, NIL, dtype=np.int64)
        self.cell_neighbor = np.empty(m, dtype=np.int64)
        self.cell_next = np.full(m, NIL, dtype=np.int64)
        # Choose each logical cell's heap slot.
        slots = np.arange(m, dtype=np.int64)
        if order == "interleaved":
            slots = np.random.default_rng(seed).permutation(m)
        position = 0
        for u in range(n):
            row = graph.out_neighbors(u)
            previous = NIL
            for v in row.tolist():
                slot = int(slots[position])
                position += 1
                self.cell_neighbor[slot] = v
                if previous == NIL:
                    self.heads[u] = slot
                else:
                    self.cell_next[previous] = slot
                previous = slot

    def neighbors(self, u: int) -> list[int]:
        """Walk node ``u``'s chain (reference/testing path)."""
        result = []
        cell = int(self.heads[u])
        while cell != NIL:
            result.append(int(self.cell_neighbor[cell]))
            cell = int(self.cell_next[cell])
        return result


def neighbor_query_adjlist_traced(
    layout: AdjacencyListLayout, memory: Memory
) -> np.ndarray:
    """The NQ benchmark over the linked layout, cache-traced.

    Models one 16-byte cell per neighbour (payload + next pointer on
    the same line slot) plus the per-node head array and the degree
    lookups — directly comparable to
    :func:`repro.algorithms.nq.neighbor_query_traced` over CSR.
    """
    graph = layout.graph
    n = graph.num_nodes
    traced_heads = memory.array("heads", n, 8)
    traced_cells = memory.array("cells", graph.num_edges, 16)
    traced_degree = memory.array("degree", n, 4)
    traced_q = memory.array("q", n, 8)
    degrees = graph.out_degrees()
    q = np.zeros(n, dtype=np.int64)
    heads = layout.heads
    cell_neighbor = layout.cell_neighbor
    cell_next = layout.cell_next
    touch_cell = traced_cells.touch
    touch_degree = traced_degree.touch
    for u in range(n):
        traced_heads.touch(u)
        total = 0
        cell = int(heads[u])
        while cell != NIL:
            touch_cell(cell)  # pointer chase: payload + next pointer
            v = int(cell_neighbor[cell])
            touch_degree(v)
            total += int(degrees[v])
            cell = int(cell_next[cell])
        traced_q.touch(u)
        q[u] = total
    return q
