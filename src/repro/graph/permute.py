"""Permutations of node ids and graph relabeling.

Convention (matching the paper's notation): an *arrangement* pi is an
integer array ``perm`` of length *n* with ``perm[u]`` the **new index**
of node ``u`` — the paper's ``pi_u``.  The inverse view, a *sequence*
``seq`` with ``seq[i]`` the old node placed at position ``i``, is what
greedy procedures like Gorder naturally produce;
:func:`permutation_from_sequence` converts between the two.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidPermutationError
from repro.graph.builder import from_arrays
from repro.graph.csr import CSRGraph


def validate_permutation(perm: np.ndarray, num_nodes: int) -> np.ndarray:
    """Check that ``perm`` is a permutation of ``range(num_nodes)``.

    Returns the validated array as ``int64``.

    Raises
    ------
    InvalidPermutationError
        If the length is wrong or any index is missing/duplicated.
    """
    perm = np.asarray(perm)
    if perm.ndim != 1 or perm.shape[0] != num_nodes:
        raise InvalidPermutationError(
            f"permutation must have length {num_nodes}, "
            f"got shape {perm.shape}"
        )
    if not np.issubdtype(perm.dtype, np.integer):
        raise InvalidPermutationError(
            f"permutation must be integer-typed, got dtype {perm.dtype}"
        )
    perm = perm.astype(np.int64, copy=False)
    if num_nodes == 0:
        return perm
    seen = np.zeros(num_nodes, dtype=bool)
    if perm.min() < 0 or perm.max() >= num_nodes:
        raise InvalidPermutationError(
            f"permutation values must lie in [0, {num_nodes - 1}]"
        )
    seen[perm] = True
    if not seen.all():
        missing = int(np.flatnonzero(~seen)[0])
        raise InvalidPermutationError(
            f"not a permutation: index {missing} never assigned"
        )
    return perm


def identity_permutation(num_nodes: int) -> np.ndarray:
    """The identity arrangement (the dataset's *original* order)."""
    return np.arange(num_nodes, dtype=np.int64)


def invert_permutation(perm: np.ndarray) -> np.ndarray:
    """Inverse arrangement: ``inv[perm[u]] == u``."""
    perm = np.asarray(perm, dtype=np.int64)
    inverse = np.empty_like(perm)
    inverse[perm] = np.arange(perm.shape[0], dtype=np.int64)
    return inverse


def permutation_from_sequence(sequence: np.ndarray) -> np.ndarray:
    """Convert a placement sequence to an arrangement.

    ``sequence[i]`` is the old node id placed at new position ``i``;
    the result ``perm`` satisfies ``perm[sequence[i]] == i``.
    """
    return invert_permutation(np.asarray(sequence, dtype=np.int64))


def compose(outer: np.ndarray, inner: np.ndarray) -> np.ndarray:
    """Arrangement equivalent to applying ``inner`` then ``outer``.

    ``result[u] == outer[inner[u]]``.
    """
    inner = np.asarray(inner, dtype=np.int64)
    outer = np.asarray(outer, dtype=np.int64)
    if inner.shape != outer.shape:
        raise InvalidPermutationError(
            "cannot compose permutations of different lengths "
            f"({outer.shape[0]} and {inner.shape[0]})"
        )
    return outer[inner]


def relabel(
    graph: CSRGraph, perm: np.ndarray, name: str | None = None
) -> CSRGraph:
    """Return a copy of ``graph`` with node ``u`` renamed to ``perm[u]``.

    The relabeled graph is structurally isomorphic to the input; only
    the memory layout of the CSR arrays (and hence cache behaviour)
    changes.  Neighbour lists are re-sorted under the new ids.
    """
    perm = validate_permutation(perm, graph.num_nodes)
    sources, targets = graph.edge_array()
    return from_arrays(
        perm[sources],
        perm[targets],
        num_nodes=graph.num_nodes,
        name=name or graph.name,
    )
