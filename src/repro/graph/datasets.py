"""Registry of scaled synthetic analogues of the paper's datasets.

The paper benchmarks eight real graphs (Table 1 of the replication;
Table 2 of the original) plus the small *epinion* network the
replication adds.  None are shippable offline and all are beyond
pure-Python scale, so each is substituted by a **seeded synthetic
analogue** at roughly 1/2000 of the original size (1/100 for epinion),
generated with the matching category model from
:mod:`repro.graph.generators`:

* *Social* datasets use :func:`~repro.graph.generators.social_graph`
  (preferential attachment + reciprocity + arrival-order locality).
* *Web* datasets use :func:`~repro.graph.generators.web_graph`
  (host-grouped ids + hub-skewed cross links).

The analogues keep the paper's *relative* size ordering (epinion ≪
pokec < flickr < livejournal < wiki ... < sdarc), which is what the
experiments depend on: larger graphs overflow more cache levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Callable

from repro.errors import UnknownDatasetError
from repro.graph import generators
from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class DatasetSpec:
    """Metadata and build recipe for one dataset analogue."""

    name: str
    category: str  # "social" or "web"
    paper_nodes: float  # node count in the real dataset (millions)
    paper_edges: float  # edge count in the real dataset (millions)
    source: str  # where the paper obtained the real data
    build: Callable[[], CSRGraph]

    def describe(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.name}: {self.category}, paper size "
            f"{self.paper_nodes:g}M nodes / {self.paper_edges:g}M edges"
        )


def _social(name, num_nodes, edges_per_node, reciprocity, seed):
    def build() -> CSRGraph:
        return generators.social_graph(
            num_nodes,
            edges_per_node=edges_per_node,
            reciprocity=reciprocity,
            seed=seed,
            name=name,
        )

    return build


def _web(name, num_nodes, out_degree, pages_per_host, seed):
    def build() -> CSRGraph:
        return generators.web_graph(
            num_nodes,
            out_degree=out_degree,
            pages_per_host=pages_per_host,
            seed=seed,
            name=name,
        )

    return build


#: The nine datasets, smallest to largest, mirroring replication Table 1.
REGISTRY: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in [
        DatasetSpec(
            "epinion", "social", 0.0759, 0.509, "SNAP",
            _social("epinion", 760, 5, 0.3, seed=101),
        ),
        DatasetSpec(
            "pokec", "social", 1.63, 30.6, "SNAP",
            _social("pokec", 1600, 13, 0.4, seed=102),
        ),
        DatasetSpec(
            "flickr", "social", 2.30, 33.1, "Konect",
            _social("flickr", 2300, 10, 0.45, seed=103),
        ),
        DatasetSpec(
            "livejournal", "social", 4.85, 69.0, "SNAP",
            _social("livejournal", 4900, 10, 0.4, seed=104),
        ),
        DatasetSpec(
            "wiki", "web", 13.6, 437.0, "Konect",
            _web("wiki", 6800, 20, 100, seed=105),
        ),
        DatasetSpec(
            "gplus", "social", 28.9, 463.0, "Gong",
            _social("gplus", 7200, 12, 0.35, seed=106),
        ),
        DatasetSpec(
            "pldarc", "web", 42.9, 623.0, "WDC",
            _web("pldarc", 8600, 22, 125, seed=107),
        ),
        DatasetSpec(
            "twitter", "social", 61.6, 1470.0, "Kaist",
            _social("twitter", 9800, 17, 0.35, seed=108),
        ),
        DatasetSpec(
            "sdarc", "web", 94.9, 1940.0, "WDC",
            _web("sdarc", 12000, 30, 150, seed=109),
        ),
    ]
}

#: Dataset names in replication Table 1 order (small to large).
DATASET_NAMES: tuple[str, ...] = tuple(REGISTRY)

#: Subset used by quick benchmark profiles (one per category + tiny).
QUICK_DATASETS: tuple[str, ...] = ("epinion", "pokec", "wiki")


def spec(name: str) -> DatasetSpec:
    """Look up a dataset's metadata by name."""
    try:
        return REGISTRY[name]
    except KeyError:
        known = ", ".join(REGISTRY)
        raise UnknownDatasetError(
            f"unknown dataset {name!r}; known datasets: {known}"
        ) from None


@lru_cache(maxsize=None)
def load(name: str) -> CSRGraph:
    """Build (and memoise) the analogue graph for ``name``."""
    return spec(name).build()
