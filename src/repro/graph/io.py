"""Read and write graphs in the two on-disk formats the project uses.

* **Text edge lists** — the SNAP / Konect style used by the paper's
  dataset sources: one ``u v`` pair per line, ``#`` or ``%`` comment
  lines ignored, arbitrary whitespace separators.
* **Binary ``.npz``** — a compact numpy container holding the CSR arrays
  directly, used to cache generated datasets between benchmark runs.
"""

from __future__ import annotations

import gzip
import os
from pathlib import Path

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.builder import from_arrays
from repro.graph.csr import CSRGraph
from repro.ioutil import atomic_open

_COMMENT_PREFIXES = ("#", "%", "//")


def read_edge_list(
    path: str | os.PathLike,
    num_nodes: int | None = None,
    name: str | None = None,
) -> CSRGraph:
    """Parse a whitespace-separated directed edge-list file.

    Lines beginning with ``#``, ``%`` or ``//`` and blank lines are
    skipped.  Each remaining line must contain at least two integer
    fields (extra fields, e.g. timestamps in Konect dumps, are ignored).

    Files ending in ``.gz`` are decompressed transparently (SNAP and
    Konect distribute their dumps gzipped).

    Raises
    ------
    GraphFormatError
        On an unparsable line, with the line number in the message.
    """
    path = Path(path)
    sources: list[int] = []
    targets: list[int] = []
    opener = gzip.open if path.suffix == ".gz" else open
    with opener(path, "rt", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(_COMMENT_PREFIXES):
                continue
            fields = stripped.split()
            if len(fields) < 2:
                raise GraphFormatError(
                    f"{path}:{line_number}: expected 'u v', got {stripped!r}"
                )
            try:
                u = int(fields[0])
                v = int(fields[1])
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{line_number}: non-integer node id in "
                    f"{stripped!r}"
                ) from exc
            sources.append(u)
            targets.append(v)
    return from_arrays(
        np.array(sources, dtype=np.int64),
        np.array(targets, dtype=np.int64),
        num_nodes=num_nodes,
        name=name or path.stem,
    )


def write_edge_list(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Write a graph as a ``# name n m`` header plus one edge per line.

    The write is atomic (:func:`repro.ioutil.atomic_open`): a kill
    mid-write never leaves a truncated edge list behind.
    """
    path = Path(path)
    with atomic_open(path, "w", encoding="utf-8") as handle:
        handle.write(
            f"# {graph.name} nodes={graph.num_nodes} "
            f"edges={graph.num_edges}\n"
        )
        for u, v in graph.edges():
            handle.write(f"{u} {v}\n")


def save_permutation(
    perm: "np.ndarray", path: str | os.PathLike
) -> None:
    """Write an arrangement as one new-index per line.

    Line ``u`` holds the new id of old node ``u`` — the format the
    original Gorder tool and the CLI use.  The write is atomic.
    """
    from repro.graph.permute import validate_permutation

    perm = validate_permutation(np.asarray(perm), len(perm))
    with atomic_open(Path(path), "w", encoding="utf-8") as handle:
        for value in perm:
            handle.write(f"{int(value)}\n")


def load_permutation(
    path: str | os.PathLike, num_nodes: int | None = None
) -> "np.ndarray":
    """Read an arrangement written by :func:`save_permutation`.

    Validates that the file holds a permutation (of ``num_nodes``
    when given, of its own length otherwise).
    """
    from repro.graph.permute import validate_permutation

    path = Path(path)
    values: list[int] = []
    with open(path, "r", encoding="utf-8") as handle:
        for line_number, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith(_COMMENT_PREFIXES):
                continue
            try:
                values.append(int(stripped))
            except ValueError as exc:
                raise GraphFormatError(
                    f"{path}:{line_number}: not an integer: "
                    f"{stripped!r}"
                ) from exc
    perm = np.array(values, dtype=np.int64)
    return validate_permutation(
        perm, num_nodes if num_nodes is not None else perm.shape[0]
    )


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Save the CSR arrays to a compressed ``.npz`` file.

    The write is atomic (temp file in the same directory, then
    ``os.replace``): a kill mid-write never leaves a truncated cache
    file for the next run to trip over.
    """
    path = Path(path)
    if path.suffix != ".npz":
        # Mirror numpy's implicit suffix so the final name is known
        # before the atomic rename.
        path = path.with_name(path.name + ".npz")
    with atomic_open(path, "wb") as handle:
        np.savez_compressed(
            handle,
            num_nodes=np.int64(graph.num_nodes),
            offsets=graph.offsets,
            adjacency=graph.adjacency,
            name=np.str_(graph.name),
        )


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Load a graph previously written by :func:`save_npz`.

    A missing, truncated or otherwise corrupt file raises a clean
    :class:`GraphFormatError` naming the path.
    """
    import zipfile

    path = Path(path)
    try:
        with np.load(path, allow_pickle=False) as data:
            return CSRGraph(
                int(data["num_nodes"]),
                data["offsets"],
                data["adjacency"],
                name=str(data["name"]),
            )
    except KeyError as exc:
        raise GraphFormatError(
            f"{path} is not a repro graph archive (missing {exc})"
        ) from exc
    except (zipfile.BadZipFile, OSError, ValueError, EOFError) as exc:
        raise GraphFormatError(
            f"cannot read graph archive {path}: {exc}"
        ) from exc
