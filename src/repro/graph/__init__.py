"""Graph substrate: CSR storage, construction, I/O, generators, datasets."""

from repro.graph.builder import empty_graph, from_arrays, from_edges
from repro.graph.csr import NODE_DTYPE, OFFSET_DTYPE, CSRGraph
from repro.graph.io import (
    load_npz,
    load_permutation,
    read_edge_list,
    save_npz,
    save_permutation,
    write_edge_list,
)
from repro.graph.permute import (
    compose,
    identity_permutation,
    invert_permutation,
    permutation_from_sequence,
    relabel,
    validate_permutation,
)
from repro.graph.stats import GraphSummary, summarize
from repro.graph.subgraph import induced_subgraph
from repro.graph.validation import ValidationReport, validate_graph

__all__ = [
    "CSRGraph",
    "NODE_DTYPE",
    "OFFSET_DTYPE",
    "from_edges",
    "from_arrays",
    "empty_graph",
    "read_edge_list",
    "write_edge_list",
    "save_npz",
    "load_npz",
    "relabel",
    "induced_subgraph",
    "save_permutation",
    "load_permutation",
    "summarize",
    "GraphSummary",
    "validate_graph",
    "ValidationReport",
    "validate_permutation",
    "identity_permutation",
    "invert_permutation",
    "permutation_from_sequence",
    "compose",
]
