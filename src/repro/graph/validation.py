"""Deep validation of user-supplied graphs.

:class:`CSRGraph` validates structural well-formedness at
construction; this module answers the *quality* questions a user with
an externally produced edge list has before running experiments:
duplicates, self-loops, isolated nodes, degenerate shapes.  Returns
findings instead of raising, so callers can decide what is acceptable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.csr import CSRGraph


@dataclass(frozen=True)
class ValidationReport:
    """Findings about a graph's content."""

    num_nodes: int
    num_edges: int
    num_self_loops: int
    num_duplicate_edges: int
    num_isolated_nodes: int
    num_sink_nodes: int  # out-degree 0 (PageRank dangling mass)
    num_source_nodes: int  # in-degree 0
    is_sorted: bool  # neighbour lists ascending (CSR contract)

    @property
    def is_clean(self) -> bool:
        """No self-loops or duplicates and the CSR contract holds."""
        return (
            self.num_self_loops == 0
            and self.num_duplicate_edges == 0
            and self.is_sorted
        )

    def issues(self) -> list[str]:
        """Human-readable list of findings (empty when clean)."""
        found = []
        if self.num_self_loops:
            found.append(f"{self.num_self_loops} self-loop(s)")
        if self.num_duplicate_edges:
            found.append(
                f"{self.num_duplicate_edges} duplicate edge(s)"
            )
        if not self.is_sorted:
            found.append("neighbour lists are not sorted")
        if self.num_isolated_nodes:
            found.append(
                f"{self.num_isolated_nodes} isolated node(s)"
            )
        return found


def validate_graph(graph: CSRGraph) -> ValidationReport:
    """Inspect a graph and report content findings."""
    n = graph.num_nodes
    offsets = graph.offsets
    adjacency = graph.adjacency
    sources, targets = graph.edge_array()
    self_loops = int((sources == targets).sum())
    duplicates = 0
    is_sorted = True
    for u in range(n):
        row = adjacency[offsets[u]:offsets[u + 1]]
        if row.shape[0] > 1:
            deltas = np.diff(row)
            if np.any(deltas < 0):
                is_sorted = False
            duplicates += int((deltas == 0).sum())
    out_degrees = graph.out_degrees()
    in_degrees = graph.in_degrees()
    isolated = int(((out_degrees == 0) & (in_degrees == 0)).sum())
    return ValidationReport(
        num_nodes=n,
        num_edges=graph.num_edges,
        num_self_loops=self_loops,
        num_duplicate_edges=duplicates,
        num_isolated_nodes=isolated,
        num_sink_nodes=int((out_degrees == 0).sum()),
        num_source_nodes=int((in_degrees == 0).sum()),
        is_sorted=is_sorted,
    )
