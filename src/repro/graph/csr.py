"""Directed graph stored in Compressed Sparse Row (CSR) form.

The paper stores graphs exactly this way (its Figure 2): one shared
``adjacency`` array of length *m* holding the concatenated out-neighbour
lists, plus an ``offsets`` array of length *n + 1* so the out-neighbours
of node ``u`` are ``adjacency[offsets[u]:offsets[u + 1]]``.  Both the
benchmark algorithms and the cache model depend on this layout: the
whole point of a node ordering is to control which node ids land on the
same cache line inside these arrays.

A :class:`CSRGraph` is immutable once built.  It carries both the
out-CSR and the in-CSR (Gorder's score needs in-neighbours), with the
in-CSR built lazily on first use.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import GraphFormatError

#: dtype used for node ids inside adjacency arrays.  32-bit ids mirror the
#: original C++ implementation and mean 16 ids fit on a 64-byte cache line.
NODE_DTYPE = np.int32

#: dtype used for the CSR offsets array (64-bit, like a C ``size_t``).
OFFSET_DTYPE = np.int64


class CSRGraph:
    """An immutable directed graph in CSR form.

    Parameters
    ----------
    num_nodes:
        Number of nodes *n*; node ids are ``0 .. n - 1``.
    offsets:
        ``int64`` array of length ``n + 1``; monotone, starts at 0 and
        ends at *m*.
    adjacency:
        ``int32`` array of length *m* with the concatenated, per-node
        **sorted** out-neighbour lists.

    Use :func:`repro.graph.builder.from_edges` (or the I/O and generator
    helpers) rather than calling this constructor with raw arrays.
    """

    __slots__ = (
        "_n", "_offsets", "_adjacency", "_in_csr",
        "_out_degrees", "_in_degrees", "name",
    )

    def __init__(
        self,
        num_nodes: int,
        offsets: np.ndarray,
        adjacency: np.ndarray,
        name: str = "graph",
        validate: bool = True,
    ) -> None:
        offsets = np.ascontiguousarray(offsets, dtype=OFFSET_DTYPE)
        adjacency = np.ascontiguousarray(adjacency, dtype=NODE_DTYPE)
        if validate:
            _validate_csr(num_nodes, offsets, adjacency)
        self._n = int(num_nodes)
        self._offsets = offsets
        self._adjacency = adjacency
        self._in_csr: tuple[np.ndarray, np.ndarray] | None = None
        self._out_degrees: np.ndarray | None = None
        self._in_degrees: np.ndarray | None = None
        self.name = name
        self._offsets.setflags(write=False)
        self._adjacency.setflags(write=False)

    # ------------------------------------------------------------------
    # Basic properties
    # ------------------------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Number of nodes *n*."""
        return self._n

    @property
    def num_edges(self) -> int:
        """Number of directed edges *m*."""
        return int(self._adjacency.shape[0])

    @property
    def offsets(self) -> np.ndarray:
        """The read-only CSR offsets array (length ``n + 1``)."""
        return self._offsets

    @property
    def adjacency(self) -> np.ndarray:
        """The read-only shared out-neighbour array (length *m*)."""
        return self._adjacency

    def __len__(self) -> int:
        return self._n

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CSRGraph(name={self.name!r}, n={self.num_nodes}, "
            f"m={self.num_edges})"
        )

    # ------------------------------------------------------------------
    # Out-adjacency
    # ------------------------------------------------------------------
    def out_neighbors(self, u: int) -> np.ndarray:
        """Sorted out-neighbours of ``u`` as a read-only array view."""
        return self._adjacency[self._offsets[u]:self._offsets[u + 1]]

    def out_degree(self, u: int) -> int:
        """Out-degree of node ``u``."""
        return int(self._offsets[u + 1] - self._offsets[u])

    def out_degrees(self) -> np.ndarray:
        """Out-degrees of every node as a read-only ``int64`` array.

        Cached on the instance (the graph is immutable); callers that
        need a private mutable copy must ``.copy()``.
        """
        if self._out_degrees is None:
            degrees = np.diff(self._offsets)
            degrees.setflags(write=False)
            self._out_degrees = degrees
        return self._out_degrees

    def has_edge(self, u: int, v: int) -> bool:
        """Whether the directed edge ``u -> v`` exists (binary search)."""
        row = self.out_neighbors(u)
        i = int(np.searchsorted(row, v))
        return i < row.shape[0] and int(row[i]) == v

    def edges(self) -> Iterator[tuple[int, int]]:
        """Iterate over all directed edges as ``(u, v)`` pairs."""
        offsets = self._offsets
        adjacency = self._adjacency
        for u in range(self._n):
            for i in range(offsets[u], offsets[u + 1]):
                yield u, int(adjacency[i])

    def edge_array(self) -> tuple[np.ndarray, np.ndarray]:
        """All edges as a ``(sources, targets)`` pair of arrays."""
        sources = np.repeat(
            np.arange(self._n, dtype=NODE_DTYPE), np.diff(self._offsets)
        )
        return sources, self._adjacency.copy()

    # ------------------------------------------------------------------
    # In-adjacency (built lazily; Gorder and InDegSort need it)
    # ------------------------------------------------------------------
    def _ensure_in_csr(self) -> tuple[np.ndarray, np.ndarray]:
        if self._in_csr is None:
            sources, targets = self.edge_array()
            in_offsets, in_adjacency = _group_by_target(
                self._n, sources, targets
            )
            in_offsets.setflags(write=False)
            in_adjacency.setflags(write=False)
            self._in_csr = (in_offsets, in_adjacency)
        return self._in_csr

    @property
    def in_offsets(self) -> np.ndarray:
        """CSR offsets of the in-adjacency (length ``n + 1``)."""
        return self._ensure_in_csr()[0]

    @property
    def in_adjacency(self) -> np.ndarray:
        """Shared sorted in-neighbour array (length *m*)."""
        return self._ensure_in_csr()[1]

    def in_neighbors(self, u: int) -> np.ndarray:
        """Sorted in-neighbours of ``u`` as a read-only array view."""
        in_offsets, in_adjacency = self._ensure_in_csr()
        return in_adjacency[in_offsets[u]:in_offsets[u + 1]]

    def in_degree(self, u: int) -> int:
        """In-degree of node ``u``."""
        in_offsets, _ = self._ensure_in_csr()
        return int(in_offsets[u + 1] - in_offsets[u])

    def in_degrees(self) -> np.ndarray:
        """In-degrees of every node as a read-only ``int64`` array.

        Cached on the instance, like :meth:`out_degrees`.
        """
        if self._in_degrees is None:
            degrees = np.diff(self._ensure_in_csr()[0])
            degrees.setflags(write=False)
            self._in_degrees = degrees
        return self._in_degrees

    # ------------------------------------------------------------------
    # Derived graphs
    # ------------------------------------------------------------------
    def reversed(self) -> "CSRGraph":
        """The transpose graph (every edge ``u -> v`` becomes ``v -> u``)."""
        in_offsets, in_adjacency = self._ensure_in_csr()
        return CSRGraph(
            self._n,
            in_offsets.copy(),
            in_adjacency.copy(),
            name=f"{self.name}-reversed",
            validate=False,
        )

    def undirected(self) -> "CSRGraph":
        """Symmetrised copy: ``u -> v`` iff either direction exists.

        Self-loops are dropped and duplicate (symmetrised) edges merged.
        RCM, SlashBurn, LDG and the MinLA energies all operate on this
        undirected view, as in the replication.
        """
        sources, targets = self.edge_array()
        all_sources = np.concatenate([sources, targets])
        all_targets = np.concatenate([targets, sources])
        keep = all_sources != all_targets
        all_sources = all_sources[keep]
        all_targets = all_targets[keep]
        order = np.lexsort((all_targets, all_sources))
        all_sources = all_sources[order]
        all_targets = all_targets[order]
        if all_sources.shape[0]:
            first = np.empty(all_sources.shape[0], dtype=bool)
            first[0] = True
            np.not_equal(
                all_sources[1:], all_sources[:-1], out=first[1:]
            )
            same_target = all_targets[1:] == all_targets[:-1]
            first[1:] |= ~same_target
            all_sources = all_sources[first]
            all_targets = all_targets[first]
        counts = np.bincount(all_sources, minlength=self._n)
        offsets = np.zeros(self._n + 1, dtype=OFFSET_DTYPE)
        np.cumsum(counts, out=offsets[1:])
        return CSRGraph(
            self._n,
            offsets,
            all_targets.astype(NODE_DTYPE),
            name=f"{self.name}-undirected",
            validate=False,
        )

    # ------------------------------------------------------------------
    # Equality (structural)
    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self._n == other._n
            and np.array_equal(self._offsets, other._offsets)
            and np.array_equal(self._adjacency, other._adjacency)
        )

    def __hash__(self) -> int:  # pragma: no cover - identity hash is fine
        return id(self)


def _validate_csr(
    num_nodes: int, offsets: np.ndarray, adjacency: np.ndarray
) -> None:
    """Raise :class:`GraphFormatError` unless the arrays form a valid CSR."""
    if num_nodes < 0:
        raise GraphFormatError(f"negative node count: {num_nodes}")
    if offsets.ndim != 1 or offsets.shape[0] != num_nodes + 1:
        raise GraphFormatError(
            f"offsets must have length n + 1 = {num_nodes + 1}, "
            f"got shape {offsets.shape}"
        )
    if adjacency.ndim != 1:
        raise GraphFormatError(
            f"adjacency must be one-dimensional, got shape {adjacency.shape}"
        )
    if num_nodes == 0:
        if adjacency.shape[0] != 0 or int(offsets[0]) != 0:
            raise GraphFormatError("empty graph must have empty adjacency")
        return
    if int(offsets[0]) != 0:
        raise GraphFormatError("offsets must start at 0")
    if int(offsets[-1]) != adjacency.shape[0]:
        raise GraphFormatError(
            f"offsets end at {int(offsets[-1])} but adjacency has "
            f"{adjacency.shape[0]} entries"
        )
    if np.any(np.diff(offsets) < 0):
        raise GraphFormatError("offsets must be non-decreasing")
    if adjacency.shape[0]:
        low = int(adjacency.min())
        high = int(adjacency.max())
        if low < 0 or high >= num_nodes:
            raise GraphFormatError(
                f"neighbour ids must lie in [0, {num_nodes - 1}], "
                f"found range [{low}, {high}]"
            )


def _group_by_target(
    num_nodes: int, sources: np.ndarray, targets: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Build in-CSR arrays (offsets, sorted in-neighbour lists)."""
    counts = np.bincount(targets, minlength=num_nodes)
    in_offsets = np.zeros(num_nodes + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=in_offsets[1:])
    order = np.lexsort((sources, targets))
    in_adjacency = sources[order].astype(NODE_DTYPE)
    return in_offsets, in_adjacency
