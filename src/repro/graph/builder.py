"""Build :class:`~repro.graph.csr.CSRGraph` objects from edge lists.

The datasets in the paper arrive as directed edge lists; this module is
the single funnel that turns any ``(source, target)`` collection into a
clean CSR graph.  Cleaning policy (matching the replication's loader):

* duplicate edges are merged,
* self-loops are dropped by default (they carry no locality signal and
  several of the benchmark algorithms assume their absence),
* per-node neighbour lists are sorted ascending, which both the paper's
  "lexicographic" traversal order and :meth:`CSRGraph.has_edge` rely on.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.errors import GraphFormatError
from repro.graph.csr import NODE_DTYPE, OFFSET_DTYPE, CSRGraph

EdgeLike = tuple[int, int]


def from_edges(
    edges: Iterable[EdgeLike] | Sequence[EdgeLike] | np.ndarray,
    num_nodes: int | None = None,
    name: str = "graph",
    keep_self_loops: bool = False,
) -> CSRGraph:
    """Build a directed CSR graph from an iterable of ``(u, v)`` pairs.

    Parameters
    ----------
    edges:
        Any iterable of integer pairs, or an ``(m, 2)`` numpy array.
    num_nodes:
        Total node count.  Defaults to ``max node id + 1``; pass it
        explicitly to include isolated trailing nodes.
    name:
        Stored on the graph for reporting.
    keep_self_loops:
        When false (default) edges ``(u, u)`` are silently dropped.

    Raises
    ------
    GraphFormatError
        On negative ids, ids ``>= num_nodes``, or a malformed array.
    """
    array = _as_edge_array(edges)
    if array.shape[0] and int(array.min()) < 0:
        raise GraphFormatError("edge list contains negative node ids")
    inferred = int(array.max()) + 1 if array.shape[0] else 0
    if num_nodes is None:
        num_nodes = inferred
    elif inferred > num_nodes:
        raise GraphFormatError(
            f"edge list references node {inferred - 1} but num_nodes is "
            f"{num_nodes}"
        )
    sources = array[:, 0]
    targets = array[:, 1]
    if not keep_self_loops and sources.shape[0]:
        keep = sources != targets
        sources = sources[keep]
        targets = targets[keep]
    return _compress(num_nodes, sources, targets, name)


def from_arrays(
    sources: np.ndarray,
    targets: np.ndarray,
    num_nodes: int | None = None,
    name: str = "graph",
    keep_self_loops: bool = False,
) -> CSRGraph:
    """Build a graph from parallel source/target arrays (COO form)."""
    sources = np.asarray(sources)
    targets = np.asarray(targets)
    if sources.shape != targets.shape or sources.ndim != 1:
        raise GraphFormatError(
            "sources and targets must be one-dimensional arrays of equal "
            f"length, got {sources.shape} and {targets.shape}"
        )
    stacked = np.stack([sources, targets], axis=1)
    return from_edges(
        stacked, num_nodes=num_nodes, name=name,
        keep_self_loops=keep_self_loops,
    )


def empty_graph(num_nodes: int, name: str = "empty") -> CSRGraph:
    """A graph with ``num_nodes`` nodes and no edges."""
    return CSRGraph(
        num_nodes,
        np.zeros(num_nodes + 1, dtype=OFFSET_DTYPE),
        np.zeros(0, dtype=NODE_DTYPE),
        name=name,
        validate=False,
    )


def _as_edge_array(edges) -> np.ndarray:
    """Normalise any edge collection to an ``(m, 2)`` int64 array."""
    if isinstance(edges, np.ndarray):
        array = edges
    else:
        array = np.array(list(edges), dtype=np.int64)
    if array.size == 0:
        return np.zeros((0, 2), dtype=np.int64)
    if array.ndim != 2 or array.shape[1] != 2:
        raise GraphFormatError(
            f"edge array must have shape (m, 2), got {array.shape}"
        )
    if not np.issubdtype(array.dtype, np.integer):
        raise GraphFormatError(
            f"edge array must be integer-typed, got dtype {array.dtype}"
        )
    return array.astype(np.int64, copy=False)


def _compress(
    num_nodes: int,
    sources: np.ndarray,
    targets: np.ndarray,
    name: str,
) -> CSRGraph:
    """Sort, dedup and pack COO edges into a CSR graph."""
    if sources.shape[0]:
        order = np.lexsort((targets, sources))
        sources = sources[order]
        targets = targets[order]
        distinct = np.empty(sources.shape[0], dtype=bool)
        distinct[0] = True
        distinct[1:] = (sources[1:] != sources[:-1]) | (
            targets[1:] != targets[:-1]
        )
        sources = sources[distinct]
        targets = targets[distinct]
    counts = np.bincount(sources, minlength=num_nodes)
    offsets = np.zeros(num_nodes + 1, dtype=OFFSET_DTYPE)
    np.cumsum(counts, out=offsets[1:])
    return CSRGraph(
        num_nodes,
        offsets,
        targets.astype(NODE_DTYPE),
        name=name,
        validate=False,
    )
