"""Shared helpers for the instrumented benchmark algorithms.

Every traced algorithm declares the arrays a C implementation would
allocate and *touches* them as it runs (see :mod:`repro.cache.layout`).
The CSR arrays are shared by all algorithms and declared here with the
element sizes of the original implementation: 8-byte offsets, 4-byte
node ids.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.layout import Memory, TracedArray
from repro.graph.csr import CSRGraph

#: Bytes per node id in traced arrays (int32, as in the C original).
NODE_BYTES = 4
#: Bytes per CSR offset (size_t).
OFFSET_BYTES = 8
#: Bytes per floating-point rank (double).
FLOAT_BYTES = 8


@dataclass(frozen=True)
class TracedGraph:
    """Traced handles for the CSR arrays of one graph."""

    offsets: TracedArray
    adjacency: TracedArray
    in_offsets: TracedArray | None = None
    in_adjacency: TracedArray | None = None


def declare_graph(
    memory: Memory, graph: CSRGraph, include_in_csr: bool = False
) -> TracedGraph:
    """Declare the graph's CSR arrays in the simulated address space."""
    offsets = memory.array("offsets", graph.num_nodes + 1, OFFSET_BYTES)
    adjacency = memory.array("adjacency", graph.num_edges, NODE_BYTES)
    if not include_in_csr:
        return TracedGraph(offsets, adjacency)
    in_offsets = memory.array(
        "in_offsets", graph.num_nodes + 1, OFFSET_BYTES
    )
    in_adjacency = memory.array("in_adjacency", graph.num_edges, NODE_BYTES)
    return TracedGraph(offsets, adjacency, in_offsets, in_adjacency)


def touch_neighbor_list(
    traced: TracedGraph, graph: CSRGraph, u: int
) -> None:
    """Model reading node ``u``'s offset pair and scanning its list."""
    traced.offsets.touch(u)  # offsets[u + 1] shares the line or the next
    start = int(graph.offsets[u])
    degree = int(graph.offsets[u + 1]) - start
    traced.adjacency.touch_run(start, degree)
