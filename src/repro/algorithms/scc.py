"""SCC — strongly connected components via Tarjan's algorithm.

Iterative Tarjan [Tarjan 1972] with an explicit work stack (the
datasets are far deeper than CPython's recursion limit).  Returns a
component id per node; ids are assigned in the order components
complete, so they are deterministic.  Nodes in the same component get
the same id, and the partition is invariant under relabeling — the
integration tests rely on both properties.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import NODE_BYTES, declare_graph
from repro.cache.layout import Memory
from repro.graph.csr import CSRGraph

_UNSET = -1


def strongly_connected_components(graph: CSRGraph) -> np.ndarray:
    """Tarjan SCC; returns the component id of every node."""
    n = graph.num_nodes
    offsets = graph.offsets
    adjacency = graph.adjacency
    disc = np.full(n, _UNSET, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    component = np.full(n, _UNSET, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    tarjan_stack: list[int] = []
    counter = 0
    components = 0
    for root in range(n):
        if disc[root] != _UNSET:
            continue
        work: list[list[int]] = [[root, 0]]
        while work:
            u, edge_index = work[-1]
            if edge_index == 0:
                disc[u] = low[u] = counter
                counter += 1
                tarjan_stack.append(u)
                on_stack[u] = True
            start = int(offsets[u])
            end = int(offsets[u + 1])
            descended = False
            i = start + edge_index
            while i < end:
                v = int(adjacency[i])
                i += 1
                if disc[v] == _UNSET:
                    work[-1][1] = i - start
                    work.append([v, 0])
                    descended = True
                    break
                if on_stack[v] and disc[v] < low[u]:
                    low[u] = disc[v]
            if descended:
                continue
            if low[u] == disc[u]:
                while True:
                    w = tarjan_stack.pop()
                    on_stack[w] = False
                    component[w] = components
                    if w == u:
                        break
                components += 1
            work.pop()
            if work:
                parent = work[-1][0]
                if low[u] < low[parent]:
                    low[parent] = low[u]
        # edge_index bookkeeping: loop resumed via the stored value.
    return component


def strongly_connected_components_traced(
    graph: CSRGraph, memory: Memory
) -> np.ndarray:
    """Tarjan SCC with traced memory accesses."""
    n = graph.num_nodes
    traced = declare_graph(memory, graph)
    traced_disc = memory.array("disc", n, NODE_BYTES)
    traced_low = memory.array("low", n, NODE_BYTES)
    traced_component = memory.array("component", n, NODE_BYTES)
    traced_on_stack = memory.array("on_stack", n, 1)
    traced_stack = memory.array("tarjan_stack", n, NODE_BYTES)
    offsets = graph.offsets
    adjacency = graph.adjacency
    disc = np.full(n, _UNSET, dtype=np.int64)
    low = np.zeros(n, dtype=np.int64)
    component = np.full(n, _UNSET, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    tarjan_stack: list[int] = []
    counter = 0
    components = 0
    touch_disc = traced_disc.touch
    touch_low = traced_low.touch
    touch_on_stack = traced_on_stack.touch
    touch_stack = traced_stack.touch
    touch_adjacency = traced.adjacency.touch
    for root in range(n):
        touch_disc(root)  # restart scan  # repro: noqa[REP007]
        if disc[root] != _UNSET:
            continue
        work: list[list[int]] = [[root, 0]]
        while work:
            u, edge_index = work[-1]
            if edge_index == 0:
                touch_disc(u)  # repro: noqa[REP007]
                touch_low(u)  # repro: noqa[REP007]
                disc[u] = low[u] = counter
                counter += 1
                tarjan_stack.append(u)
                touch_stack(len(tarjan_stack) - 1)  # repro: noqa[REP007]
                on_stack[u] = True
                touch_on_stack(u)  # repro: noqa[REP007]
                traced.offsets.touch(u)  # repro: noqa[REP007]
            start = int(offsets[u])
            end = int(offsets[u + 1])
            descended = False
            i = start + edge_index
            while i < end:
                touch_adjacency(i)  # repro: noqa[REP007]
                v = int(adjacency[i])
                i += 1
                touch_disc(v)  # repro: noqa[REP007]
                if disc[v] == _UNSET:
                    work[-1][1] = i - start
                    work.append([v, 0])
                    descended = True
                    break
                touch_on_stack(v)  # repro: noqa[REP007]
                if on_stack[v] and disc[v] < low[u]:
                    touch_low(u)  # repro: noqa[REP007]
                    low[u] = disc[v]
            if descended:
                continue
            touch_low(u)  # repro: noqa[REP007]
            touch_disc(u)  # repro: noqa[REP007]
            if low[u] == disc[u]:
                while True:
                    touch_stack(len(tarjan_stack) - 1)  # repro: noqa[REP007]
                    w = tarjan_stack.pop()
                    on_stack[w] = False
                    touch_on_stack(w)  # repro: noqa[REP007]
                    component[w] = components
                    traced_component.touch(w)  # repro: noqa[REP007]
                    if w == u:
                        break
                components += 1
            work.pop()
            if work:
                parent = work[-1][0]
                touch_low(parent)  # repro: noqa[REP007]
                if low[u] < low[parent]:
                    low[parent] = low[u]
    return component
