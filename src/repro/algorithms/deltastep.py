"""DSSSP — delta-stepping single-source shortest paths (weighted).

Extension algorithm exercising the bucket side of the frontier
runtime: distances advance bucket-by-bucket through a
:class:`~repro.algorithms.runtime.BucketQueue`, light edges
(weight <= delta) are relaxed with *bucket fusion* — re-draining the
active bucket until no light relaxation lands back in it — and heavy
edges once per settled node, as in Meyer & Sanders' algorithm.

Edge weights are synthesised deterministically (no RNG, no stored
weight data) by hashing the endpoint pair, symmetric in the endpoints
so an undirected edge has one weight in both directions; see
:func:`edge_weights`.

The pure oracle is Dijkstra (binary heap), so the parity tests check
delta-stepping against an independently correct algorithm rather than
a restructured copy of itself.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.algorithms.common import NODE_BYTES, declare_graph
from repro.algorithms.runtime import (
    BucketQueue,
    TraceEmitter,
    interleave_fields,
    run_field,
    segment_sums,
)
from repro.cache.layout import Memory
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

#: Distance assigned to unreachable nodes.
INFINITY = np.iinfo(np.int64).max
#: Largest synthesised edge weight (weights are 1..MAX_WEIGHT).
MAX_WEIGHT = 15
#: Default bucket width; light edges have weight <= delta.
DEFAULT_DELTA = 4

_MIX_A = np.uint64(0x9E3779B97F4A7C15)
_MIX_B = np.uint64(0xC2B2AE3D27D4EB4F)
_MIX_C = np.uint64(0xFF51AFD7ED558CCD)


def edge_weights(
    graph: CSRGraph, max_weight: int = MAX_WEIGHT
) -> np.ndarray:
    """Deterministic per-edge weights in ``1..max_weight``.

    Hash of the *unordered* endpoint pair, so the weight is symmetric:
    an edge and its reverse always agree, which keeps undirected
    graphs consistent.  Aligned with ``graph.adjacency`` (the
    flattened CSR edge order).
    """
    if max_weight < 1:
        raise InvalidParameterError(
            f"max_weight must be positive, got {max_weight}"
        )
    sources, targets = graph.edge_array()
    lo = np.minimum(sources, targets).astype(np.uint64)
    hi = np.maximum(sources, targets).astype(np.uint64)
    with np.errstate(over="ignore"):
        mixed = lo * _MIX_A + hi * _MIX_B
        mixed ^= mixed >> np.uint64(33)
        mixed *= _MIX_C
        mixed ^= mixed >> np.uint64(29)
    return (mixed % np.uint64(max_weight)).astype(np.int64) + 1


def delta_stepping(
    graph: CSRGraph,
    source: int = 0,
    delta: int = DEFAULT_DELTA,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """Weighted SSSP distances (Dijkstra oracle; see module doc)."""
    _check_params(graph, source, delta)
    if weights is None:
        weights = edge_weights(graph)
    n = graph.num_nodes
    offsets = graph.offsets
    adjacency = graph.adjacency
    distance = np.full(n, INFINITY, dtype=np.int64)
    distance[source] = 0
    heap: list[tuple[int, int]] = [(0, source)]
    while heap:
        dist_u, u = heapq.heappop(heap)
        if dist_u != distance[u]:
            continue  # stale heap entry
        start = int(offsets[u])
        end = int(offsets[u + 1])
        for i, v in enumerate(adjacency[start:end].tolist()):
            candidate = dist_u + int(weights[start + i])
            if candidate < distance[v]:
                distance[v] = candidate
                heapq.heappush(heap, (candidate, v))
    return distance


def delta_stepping_traced(
    graph: CSRGraph,
    memory: Memory,
    source: int = 0,
    delta: int = DEFAULT_DELTA,
) -> np.ndarray:
    """Delta-stepping with traced memory accesses.

    Runtime-backed throughout: each relaxation round pops the minimum
    bucket, advances the valid nodes as one frontier (light edges
    only, re-draining the bucket until no light relaxation lands back
    in it — bucket fusion), then relaxes the settled nodes' heavy
    edges in one batch.  Emits per round one block: per node the
    ``distance`` read and ``offsets`` touch, the adjacency and
    ``weights`` spans, then per relaxed edge the ``distance`` probe
    and (on improvement) the ``distance`` write.

    Distances equal :func:`delta_stepping` (the Dijkstra oracle); the
    touch *sequence* is delta-stepping's own, there is no scalar trace
    twin — the algorithm exists to exercise the bucket runtime.
    """
    _check_params(graph, source, delta)
    weights = edge_weights(graph)
    n = graph.num_nodes
    traced = declare_graph(memory, graph)
    traced_weights = memory.array("weights", graph.num_edges, NODE_BYTES)
    traced_distance = memory.array("distance", n, NODE_BYTES)
    offsets = graph.offsets
    adjacency = graph.adjacency.astype(np.int64, copy=False)
    starts_all = offsets[:-1].astype(np.int64, copy=False)
    degrees_all = (
        offsets[1:].astype(np.int64, copy=False) - starts_all
    )
    light = weights <= delta
    emitter = TraceEmitter(memory)
    distance = np.full(n, INFINITY, dtype=np.int64)
    distance[source] = 0
    #: Bucket each node currently waits in (-1 = none).
    pending = np.full(n, -1, dtype=np.int64)
    pending[source] = 0
    queue = BucketQueue()
    queue.push(
        np.zeros(1, dtype=np.int64), np.array([source], dtype=np.int64)
    )
    emitter.flush(
        traced_distance.element_lines(np.array([source], dtype=np.int64))
    )

    def relax(nodes: np.ndarray, edge_mask: np.ndarray) -> None:
        """Relax the masked out-edges of ``nodes``; emit one block."""
        starts = starts_all[nodes]
        degrees = degrees_all[nodes]
        total = int(degrees.sum())
        flat = np.repeat(starts, degrees) + (
            np.arange(total, dtype=np.int64)
            - np.repeat(np.cumsum(degrees) - degrees, degrees)
        )
        keep = edge_mask[flat]
        kept = flat[keep]
        targets = adjacency[kept]
        candidate = (
            np.repeat(distance[nodes], degrees)[keep] + weights[kept]
        )
        # Per-target minimum candidate (first occurrence on ties keeps
        # the relaxation deterministic).
        order = np.lexsort((candidate,))
        improved_any = np.zeros(0, dtype=np.int64)
        if targets.shape[0]:
            t_sorted = targets[order]
            c_sorted = candidate[order]
            first = np.full(n, -1, dtype=np.int64)
            pos = np.arange(t_sorted.shape[0], dtype=np.int64)
            first[t_sorted[::-1]] = pos[::-1]
            heads = first[t_sorted] == pos
            best_targets = t_sorted[heads]
            best_candidates = c_sorted[heads]
            wins = best_candidates < distance[best_targets]
            improved_any = best_targets[wins]
            distance[improved_any] = best_candidates[wins]
        num_nodes_in = int(nodes.shape[0])
        ones = np.ones(num_nodes_in, dtype=np.int64)
        adj_runs = run_field(traced.adjacency, starts, degrees)
        weight_runs = run_field(traced_weights, starts, degrees)
        kept_degrees = segment_sums(keep, degrees)
        lines, demand = interleave_fields([
            (ones, traced_distance.element_lines(nodes), None),
            (ones, traced.offsets.element_lines(nodes), None),
            adj_runs.as_field(),
            weight_runs.as_field(),
            (kept_degrees, traced_distance.element_lines(targets),
             None),
        ])
        emitter.flush(
            lines, demand,
            adj_runs.extra_l1 + weight_runs.extra_l1,
            adj_runs.prefetched + weight_runs.prefetched,
        )
        if improved_any.shape[0]:
            emitter.flush(traced_distance.element_lines(improved_any))
            buckets = distance[improved_any] // delta
            pending[improved_any] = buckets
            queue.push(buckets, improved_any)

    while not queue.empty:
        key, popped = queue.pop_bucket()
        settled: list[np.ndarray] = []
        while True:
            valid = popped[pending[popped] == key]
            if valid.shape[0]:
                valid = np.unique(valid)
                pending[valid] = -1
                settled.append(valid)
                relax(valid, light)
            refill = queue.pop_at(key)  # bucket fusion round-trip
            if refill is None:
                break
            popped = refill
        if settled:
            batch = np.unique(np.concatenate(settled))
            relax(batch, ~light)
    return distance


def _check_params(graph: CSRGraph, source: int, delta: int) -> None:
    if not 0 <= source < max(graph.num_nodes, 1):
        raise InvalidParameterError(
            f"source {source} out of range for {graph.num_nodes} nodes"
        )
    if delta < 1:
        raise InvalidParameterError(
            f"delta must be positive, got {delta}"
        )
