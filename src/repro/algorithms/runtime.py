"""Frontier/bucket runtime: vectorised execution + batched trace emission.

The traced algorithms were hand-written scalar loops over per-element
``TracedArray.touch`` calls — one Python round-trip per simulated
reference.  This module removes that round-trip the way PR 3 removed
it from the ordering kernel and PR 4 from the cache simulator: the
algorithm advances a whole *frontier* (or priority bucket) per step in
numpy, assembles the exact access vector the scalar loop would have
emitted — node-property gathers, ``offsets`` touches, adjacency
``touch_run`` spans in CSR order, interleaved per node — and appends
it to the simulation backend in **one** call per step
(:meth:`repro.cache.layout.Memory.touch_block`).

Counter-identity is the contract, not approximate equivalence: LRU
hit/miss depends on the exact access order, so every runtime port
reproduces its scalar oracle's touch sequence reference-for-reference.
The building blocks:

* :func:`interleave_fields` — scatter per-segment field contents into
  one interleaved stream (the node loop's body, vectorised);
* :func:`run_field` — a ``touch_run`` span as an interleavable field
  (demand first line, prefetched rest, run-compressed L1 stats);
* :class:`Frontier` — the ordered active-node set, with dense/sparse
  switching for the first-claim test of BFS/SP level expansion;
* :class:`BucketQueue` — a monotone integer-priority bucket map with
  bucket fusion, for delta-stepping SSSP and weighted-core peeling;
* :class:`TraceEmitter` — the flush point into ``Memory``.

Two ``obs.profile`` phases make the runtime's cost visible in
``telemetry flamegraph``: ``algo.frontier.advance`` (gathering the
frontier's edge stream) and ``algo.trace.flush`` (block ingestion).

Not everything batches.  The binary-heap sifts of k-core and the
union-find pointer chases of WCC are data-dependent *per access* —
their exact sequences cannot be reordered or precomputed — so those
algorithms keep their scalar emitters by design (the bucket-based
alternatives live in :mod:`repro.algorithms.deltastep` and
:mod:`repro.algorithms.wkcore`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.cache.layout import Memory, TracedArray
from repro.errors import InvalidParameterError

#: A frontier (or edge stream) counts as dense when it is at least
#: ``1/DENSE_SWITCH`` of the graph; the dense first-claim strategy
#: then beats the sort-based sparse one.
DENSE_SWITCH = 8

_EMPTY = np.zeros(0, dtype=np.int64)


def _ramp(lengths: np.ndarray, total: int) -> np.ndarray:
    """``0..len-1`` within each segment, concatenated."""
    if total == 0:
        return _EMPTY
    cum = np.cumsum(lengths)
    return np.arange(total, dtype=np.int64) - np.repeat(
        cum - lengths, lengths
    )


def segment_sums(values: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Per-segment sums of ``values`` split into ``lengths`` pieces.

    Integer-exact (used for discovery counts and NQ degree sums, both
    int64); segments may be empty.
    """
    cum = np.concatenate([[0], np.cumsum(values, dtype=np.int64)])
    ends = np.cumsum(lengths)
    return cum[ends] - cum[ends - lengths]


def interleave_fields(
    fields: list[tuple[np.ndarray, np.ndarray, np.ndarray | None]],
) -> tuple[np.ndarray, np.ndarray]:
    """Assemble per-segment interleaved content from parallel fields.

    Each field is ``(lengths, lines, demand)``: ``lengths`` has one
    entry per segment; ``lines`` holds that field's cache line ids for
    all segments concatenated in segment order; ``demand`` flags
    prefetched fills (``None`` = all demand).  The output interleaves
    the fields *within* each segment in the given field order — the
    vectorised equivalent of a loop body that touches field 1, then
    field 2, ... for every segment in turn.
    """
    totals = fields[0][0].astype(np.int64, copy=True)
    for lengths, _, _ in fields[1:]:
        totals += lengths
    total = int(totals.sum())
    base = np.cumsum(totals) - totals
    out_lines = np.empty(total, dtype=np.int64)
    out_demand = np.ones(total, dtype=bool)
    offset = np.zeros(totals.shape[0], dtype=np.int64)
    for lengths, lines, demand in fields:
        count = int(lengths.sum())
        if count:
            pos = np.repeat(base + offset, lengths) + _ramp(lengths, count)
            out_lines[pos] = lines
            if demand is not None:
                out_demand[pos] = demand
        offset = offset + lengths
    return out_lines, out_demand


@dataclass(frozen=True)
class RunField:
    """A batch of ``touch_run`` spans, ready to interleave."""

    lengths: np.ndarray  # lines per segment (0 for empty runs)
    lines: np.ndarray  # concatenated line ids
    demand: np.ndarray  # True for each run's first line only
    extra_l1: int  # run-compressed element refs (L1 by construction)
    prefetched: int  # trailing lines fetched by the stream prefetcher

    def as_field(
        self,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        return self.lengths, self.lines, self.demand


def run_field(
    array: TracedArray, starts: np.ndarray, lengths: np.ndarray
) -> RunField:
    """Sequential scans of ``array`` as an interleavable field.

    Line-for-line what ``touch_run(starts[i], lengths[i])`` emits for
    every segment ``i``: the first line of each non-empty run is a
    demand access, the rest are prefetched fills; element references
    beyond each run's first are L1 hits by construction and aggregate
    into ``extra_l1``.
    """
    num = starts.shape[0]
    live = lengths > 0
    live_starts = starts[live]
    live_lengths = lengths[live]
    first = array.element_lines(live_starts)
    last = array.element_lines(live_starts + live_lengths - 1)
    nlines = last - first + 1
    field_lens = np.zeros(num, dtype=np.int64)
    field_lens[live] = nlines
    total = int(nlines.sum())
    ramp = _ramp(nlines, total)
    lines = np.repeat(first, nlines) + ramp
    num_live = int(live_lengths.shape[0])
    return RunField(
        lengths=field_lens,
        lines=lines,
        demand=ramp == 0,
        extra_l1=int(live_lengths.sum()) - num_live,
        prefetched=total - num_live,
    )


def claim_first(
    targets: np.ndarray,
    num_nodes: int,
    claimable: np.ndarray | None = None,
    strategy: str | None = None,
) -> np.ndarray:
    """Mask of stream positions that win the first claim on their node.

    Position ``i`` is marked when ``targets[i]`` occurs at no earlier
    position *and* (if given) ``claimable[i]`` holds — the discovery
    test of BFS/SP level expansion, where a node reached by several
    edges of one level is claimed by the stream-first edge.

    Two exact strategies, switched on stream density (or forced via
    ``strategy`` for tests): ``"dense"`` scatters positions into a
    per-node table (O(stream + nodes), a reversed assignment makes the
    first position win); ``"sparse"`` stable-sorts the stream and
    marks group heads (O(stream log stream), no per-node table).
    """
    stream = targets.shape[0]
    if strategy is None:
        strategy = (
            "dense" if stream * DENSE_SWITCH >= num_nodes else "sparse"
        )
    if stream == 0:
        first = np.zeros(0, dtype=bool)
    elif strategy == "dense":
        positions = np.arange(stream, dtype=np.int64)
        first_pos = np.full(num_nodes, -1, dtype=np.int64)
        first_pos[targets[::-1]] = positions[::-1]
        first = first_pos[targets] == positions
    elif strategy == "sparse":
        order = np.argsort(targets, kind="stable")
        ordered = targets[order]
        head = np.empty(stream, dtype=bool)
        head[0] = True
        np.not_equal(ordered[1:], ordered[:-1], out=head[1:])
        first = np.empty(stream, dtype=bool)
        first[order] = head
    else:
        raise InvalidParameterError(
            f"claim_first strategy must be 'dense' or 'sparse', "
            f"got {strategy!r}"
        )
    if claimable is not None:
        first = first & claimable
    return first


@dataclass(frozen=True)
class FrontierEdges:
    """The gathered edge stream of one frontier advance."""

    starts: np.ndarray  # CSR row start per frontier node
    degrees: np.ndarray  # row width per frontier node
    targets: np.ndarray  # concatenated neighbours, CSR order (int64)

    @property
    def total(self) -> int:
        return int(self.targets.shape[0])


class Frontier:
    """An ordered set of active nodes (discovery order preserved).

    Order matters: the trace a frontier advance emits must equal the
    scalar FIFO's, so ``nodes`` keeps the exact order the nodes were
    claimed in.  Density (frontier size relative to the graph) decides
    the first-claim strategy used when expanding.
    """

    __slots__ = ("nodes", "num_nodes")

    def __init__(self, nodes: np.ndarray, num_nodes: int) -> None:
        self.nodes = nodes
        self.num_nodes = num_nodes

    @property
    def size(self) -> int:
        return int(self.nodes.shape[0])

    @property
    def is_dense(self) -> bool:
        return self.size * DENSE_SWITCH >= self.num_nodes

    def advance(
        self, offsets: np.ndarray, adjacency: np.ndarray
    ) -> FrontierEdges:
        """Gather the concatenated adjacency stream of the frontier."""
        with obs.profile(
            "algo.frontier.advance",
            nodes=self.size,
            dense=self.is_dense,
        ):
            starts = offsets[self.nodes].astype(np.int64, copy=False)
            degrees = (
                offsets[self.nodes + 1].astype(np.int64, copy=False)
                - starts
            )
            total = int(degrees.sum())
            edge_idx = np.repeat(starts, degrees) + _ramp(degrees, total)
            targets = adjacency[edge_idx].astype(np.int64, copy=False)
        return FrontierEdges(starts=starts, degrees=degrees, targets=targets)

    def first_claims(
        self,
        edges: FrontierEdges,
        claimable: np.ndarray | None = None,
    ) -> np.ndarray:
        """First-claim mask over this frontier's edge stream, with the
        dense/sparse strategy chosen from the stream's density."""
        strategy = (
            "dense"
            if edges.total * DENSE_SWITCH >= self.num_nodes
            else "sparse"
        )
        return claim_first(
            edges.targets, self.num_nodes, claimable, strategy
        )


class BucketQueue:
    """Monotone integer-priority bucket queue with lazy invalidation.

    The PriorityGraph-style replacement for a binary heap: items are
    filed under integer priorities; :meth:`pop_bucket` surrenders the
    whole smallest non-empty bucket at once.  Entries are never
    updated in place — re-prioritised items are simply pushed again
    and the stale copies filtered by the caller on pop (lazy
    invalidation).  :meth:`pop_at` serves *bucket fusion*: while
    processing priority ``p``, re-insertions into ``p`` are drained in
    the same round instead of going through a fresh minimum scan,
    which is what keeps delta-stepping and weighted-core peeling
    batch-shaped.
    """

    __slots__ = ("_buckets",)

    def __init__(self) -> None:
        self._buckets: dict[int, list[np.ndarray]] = {}

    @property
    def empty(self) -> bool:
        return not self._buckets

    def push(self, priorities: np.ndarray, items: np.ndarray) -> None:
        """File ``items[i]`` under ``priorities[i]`` (both int64)."""
        count = items.shape[0]
        if count == 0:
            return
        order = np.argsort(priorities, kind="stable")
        ordered_p = priorities[order]
        ordered_items = items[order]
        head = np.empty(count, dtype=bool)
        head[0] = True
        np.not_equal(ordered_p[1:], ordered_p[:-1], out=head[1:])
        bounds = np.flatnonzero(head).tolist()
        bounds.append(count)
        buckets = self._buckets
        for i in range(len(bounds) - 1):
            lo = bounds[i]
            chunk = ordered_items[lo:bounds[i + 1]]
            buckets.setdefault(int(ordered_p[lo]), []).append(chunk)

    def pop_bucket(self) -> tuple[int, np.ndarray] | None:
        """``(priority, items)`` of the smallest non-empty bucket."""
        if not self._buckets:
            return None
        priority = min(self._buckets)
        return priority, self._drain(priority)

    def pop_at(self, priority: int) -> np.ndarray | None:
        """Drain exactly bucket ``priority`` (the fusion round-trip),
        or ``None`` when it is empty."""
        if priority not in self._buckets:
            return None
        return self._drain(priority)

    def _drain(self, priority: int) -> np.ndarray:
        chunks = self._buckets.pop(priority)
        if len(chunks) == 1:
            return chunks[0]
        return np.concatenate(chunks)


class TraceEmitter:
    """Flush point of assembled access blocks into one ``Memory``.

    In replay mode a flush is one by-reference append to the trace
    buffer; in step mode the block is stepped scalar — exactly the
    accesses the scalar emitter would make — so the runtime stays
    counter-identical on both backends.
    """

    __slots__ = ("_memory",)

    def __init__(self, memory: Memory) -> None:
        self._memory = memory

    def flush(
        self,
        lines: np.ndarray,
        demand: np.ndarray | None = None,
        extra_l1: int = 0,
        prefetched: int = 0,
    ) -> None:
        if lines.shape[0] == 0 and extra_l1 == 0 and prefetched == 0:
            return
        if demand is None:
            demand = np.ones(lines.shape[0], dtype=bool)
        with obs.profile(
            "algo.trace.flush", accesses=int(lines.shape[0])
        ):
            self._memory.touch_block(lines, demand, extra_l1, prefetched)
