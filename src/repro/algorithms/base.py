"""Algorithm registry: the paper's nine benchmark algorithms by name.

Each entry couples the *pure* implementation (returns results, used by
tests and examples) with its *traced* twin (drives the cache
simulator).  ``source_params`` names parameters holding logical node
ids; the experiment runner maps those through each ordering's
permutation so every ordering performs identical logical work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.algorithms.bfs import (
    breadth_first_search,
    breadth_first_search_traced,
    breadth_first_search_traced_scalar,
)
from repro.algorithms.deltastep import (
    delta_stepping,
    delta_stepping_traced,
)
from repro.algorithms.dfs import (
    depth_first_search,
    depth_first_search_traced,
)
from repro.algorithms.diameter import (
    diameter,
    diameter_traced,
    diameter_traced_scalar,
)
from repro.algorithms.domset import dominating_set, dominating_set_traced
from repro.algorithms.kcore import (
    core_decomposition,
    core_decomposition_traced,
)
from repro.algorithms.labelprop import (
    label_propagation,
    label_propagation_traced,
    label_propagation_traced_scalar,
)
from repro.algorithms.nq import (
    neighbor_query,
    neighbor_query_traced,
    neighbor_query_traced_scalar,
)
from repro.algorithms.pagerank import (
    pagerank,
    pagerank_traced,
    pagerank_traced_scalar,
)
from repro.algorithms.scc import (
    strongly_connected_components,
    strongly_connected_components_traced,
)
from repro.algorithms.sp import (
    shortest_paths,
    shortest_paths_traced,
    shortest_paths_traced_scalar,
)
from repro.algorithms.wkcore import (
    weighted_core_decomposition,
    weighted_core_decomposition_traced,
)
from repro.algorithms.triangles import (
    triangle_count,
    triangle_count_traced,
)
from repro.algorithms.wcc import (
    weakly_connected_components,
    weakly_connected_components_traced,
)
from repro.errors import InvalidParameterError, UnknownAlgorithmError


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered benchmark algorithm."""

    name: str  # registry key (the paper's abbreviation, lowercase)
    display_name: str  # the paper's label (NQ, BFS, ...)
    pure: Callable[..., Any]
    traced: Callable[..., Any]
    #: Parameter names carrying logical node ids (relabeled per run).
    source_params: tuple[str, ...] = ()
    #: Parameters that scale the run length in experiment profiles.
    scale_params: tuple[str, ...] = field(default=())
    #: Whether the algorithm belongs to the paper's benchmark nine.
    headline: bool = True
    #: Scalar-loop trace emitter kept as the runtime port's oracle.
    #: ``None`` when ``traced`` *is* the scalar implementation (the
    #: algorithm has no vectorised frontier port) or when the traced
    #: variant has no touch-sequence twin (DSSSP, WKcore).
    traced_scalar: Callable[..., Any] | None = None


#: The nine algorithms, in the paper's figure order.
REGISTRY: dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in [
        AlgorithmSpec(
            "nq", "NQ", neighbor_query, neighbor_query_traced,
            traced_scalar=neighbor_query_traced_scalar,
        ),
        AlgorithmSpec(
            "bfs", "BFS", breadth_first_search,
            breadth_first_search_traced,
            traced_scalar=breadth_first_search_traced_scalar,
        ),
        AlgorithmSpec(
            "dfs", "DFS", depth_first_search, depth_first_search_traced
        ),
        AlgorithmSpec(
            "scc", "SCC", strongly_connected_components,
            strongly_connected_components_traced,
        ),
        AlgorithmSpec(
            "sp", "SP", shortest_paths, shortest_paths_traced,
            source_params=("source",),
            traced_scalar=shortest_paths_traced_scalar,
        ),
        AlgorithmSpec(
            "pr", "PR", pagerank, pagerank_traced,
            scale_params=("iterations",),
            traced_scalar=pagerank_traced_scalar,
        ),
        AlgorithmSpec(
            "ds", "DS", dominating_set, dominating_set_traced
        ),
        AlgorithmSpec(
            "kcore", "Kcore", core_decomposition,
            core_decomposition_traced,
        ),
        AlgorithmSpec(
            "diam", "Diam", diameter, diameter_traced,
            source_params=("sources",),
            traced_scalar=diameter_traced_scalar,
        ),
        # Extension algorithms (beyond the paper's nine) — the
        # replication suggests Gorder "could speed up other graph
        # algorithms as well"; these test that claim.
        AlgorithmSpec(
            "wcc", "WCC", weakly_connected_components,
            weakly_connected_components_traced, headline=False,
        ),
        AlgorithmSpec(
            "tc", "TC", triangle_count, triangle_count_traced,
            headline=False,
        ),
        AlgorithmSpec(
            "lp", "LP", label_propagation, label_propagation_traced,
            scale_params=("iterations",), headline=False,
            traced_scalar=label_propagation_traced_scalar,
        ),
        AlgorithmSpec(
            "dsssp", "DSSSP", delta_stepping, delta_stepping_traced,
            source_params=("source",), headline=False,
        ),
        AlgorithmSpec(
            "wkcore", "WKcore", weighted_core_decomposition,
            weighted_core_decomposition_traced, headline=False,
        ),
    ]
}

#: Names in the paper's figure order (the headline nine only).
ALGORITHM_NAMES: tuple[str, ...] = tuple(
    name for name, algorithm in REGISTRY.items() if algorithm.headline
)

#: Trace-emitter selection: ``"runtime"`` is the vectorised frontier
#: runtime (the default), ``"scalar"`` forces the scalar-loop oracle
#: where one exists (algorithms without a port run their only traced
#: implementation either way).
ALGO_BACKENDS: tuple[str, ...] = ("runtime", "scalar")


def traced_fn(
    algorithm: AlgorithmSpec, algo_backend: str = "runtime"
) -> Callable[..., Any]:
    """The trace emitter for ``algorithm`` under ``algo_backend``."""
    if algo_backend not in ALGO_BACKENDS:
        known = ", ".join(ALGO_BACKENDS)
        raise InvalidParameterError(
            f"algo_backend must be one of {known}, "
            f"got {algo_backend!r}"
        )
    if algo_backend == "scalar" and algorithm.traced_scalar is not None:
        return algorithm.traced_scalar
    return algorithm.traced


def spec(name: str) -> AlgorithmSpec:
    """Look up an algorithm by registry name (case-insensitive)."""
    try:
        return REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(REGISTRY)
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; known algorithms: {known}"
        ) from None
