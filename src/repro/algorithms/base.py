"""Algorithm registry: the paper's nine benchmark algorithms by name.

Each entry couples the *pure* implementation (returns results, used by
tests and examples) with its *traced* twin (drives the cache
simulator).  ``source_params`` names parameters holding logical node
ids; the experiment runner maps those through each ordering's
permutation so every ordering performs identical logical work.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.algorithms.bfs import (
    breadth_first_search,
    breadth_first_search_traced,
)
from repro.algorithms.dfs import (
    depth_first_search,
    depth_first_search_traced,
)
from repro.algorithms.diameter import diameter, diameter_traced
from repro.algorithms.domset import dominating_set, dominating_set_traced
from repro.algorithms.kcore import (
    core_decomposition,
    core_decomposition_traced,
)
from repro.algorithms.labelprop import (
    label_propagation,
    label_propagation_traced,
)
from repro.algorithms.nq import neighbor_query, neighbor_query_traced
from repro.algorithms.pagerank import pagerank, pagerank_traced
from repro.algorithms.scc import (
    strongly_connected_components,
    strongly_connected_components_traced,
)
from repro.algorithms.sp import shortest_paths, shortest_paths_traced
from repro.algorithms.triangles import (
    triangle_count,
    triangle_count_traced,
)
from repro.algorithms.wcc import (
    weakly_connected_components,
    weakly_connected_components_traced,
)
from repro.errors import UnknownAlgorithmError


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered benchmark algorithm."""

    name: str  # registry key (the paper's abbreviation, lowercase)
    display_name: str  # the paper's label (NQ, BFS, ...)
    pure: Callable[..., Any]
    traced: Callable[..., Any]
    #: Parameter names carrying logical node ids (relabeled per run).
    source_params: tuple[str, ...] = ()
    #: Parameters that scale the run length in experiment profiles.
    scale_params: tuple[str, ...] = field(default=())
    #: Whether the algorithm belongs to the paper's benchmark nine.
    headline: bool = True


#: The nine algorithms, in the paper's figure order.
REGISTRY: dict[str, AlgorithmSpec] = {
    spec.name: spec
    for spec in [
        AlgorithmSpec(
            "nq", "NQ", neighbor_query, neighbor_query_traced
        ),
        AlgorithmSpec(
            "bfs", "BFS", breadth_first_search,
            breadth_first_search_traced,
        ),
        AlgorithmSpec(
            "dfs", "DFS", depth_first_search, depth_first_search_traced
        ),
        AlgorithmSpec(
            "scc", "SCC", strongly_connected_components,
            strongly_connected_components_traced,
        ),
        AlgorithmSpec(
            "sp", "SP", shortest_paths, shortest_paths_traced,
            source_params=("source",),
        ),
        AlgorithmSpec(
            "pr", "PR", pagerank, pagerank_traced,
            scale_params=("iterations",),
        ),
        AlgorithmSpec(
            "ds", "DS", dominating_set, dominating_set_traced
        ),
        AlgorithmSpec(
            "kcore", "Kcore", core_decomposition,
            core_decomposition_traced,
        ),
        AlgorithmSpec(
            "diam", "Diam", diameter, diameter_traced,
            source_params=("sources",),
        ),
        # Extension algorithms (beyond the paper's nine) — the
        # replication suggests Gorder "could speed up other graph
        # algorithms as well"; these test that claim.
        AlgorithmSpec(
            "wcc", "WCC", weakly_connected_components,
            weakly_connected_components_traced, headline=False,
        ),
        AlgorithmSpec(
            "tc", "TC", triangle_count, triangle_count_traced,
            headline=False,
        ),
        AlgorithmSpec(
            "lp", "LP", label_propagation, label_propagation_traced,
            scale_params=("iterations",), headline=False,
        ),
    ]
}

#: Names in the paper's figure order (the headline nine only).
ALGORITHM_NAMES: tuple[str, ...] = tuple(
    name for name, algorithm in REGISTRY.items() if algorithm.headline
)


def spec(name: str) -> AlgorithmSpec:
    """Look up an algorithm by registry name (case-insensitive)."""
    try:
        return REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(REGISTRY)
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; known algorithms: {known}"
        ) from None
