"""BFS — whole-graph breadth-first search.

A BFS forest over the full graph: traversal starts at node 0 and
restarts from the lowest-id unvisited node until every node is
numbered, visiting neighbours in lexicographic (ascending id) order as
the replication specifies.  Returns the hop distance of every node
from its forest root (roots have distance 0).

The cache-relevant access is the per-edge ``distance[v]`` probe that
checks whether a neighbour was already discovered.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import NODE_BYTES, declare_graph
from repro.cache.layout import Memory
from repro.graph.csr import CSRGraph

#: Marker for not-yet-visited nodes in the distance array.
UNVISITED = -1


def breadth_first_search(graph: CSRGraph) -> np.ndarray:
    """Whole-graph BFS; returns per-node distance from its forest root."""
    n = graph.num_nodes
    offsets = graph.offsets
    adjacency = graph.adjacency
    distance = np.full(n, UNVISITED, dtype=np.int64)
    queue = np.empty(n, dtype=np.int64)
    for root in range(n):
        if distance[root] != UNVISITED:
            continue
        distance[root] = 0
        head = 0
        tail = 1
        queue[0] = root
        while head < tail:
            u = int(queue[head])
            head += 1
            next_distance = distance[u] + 1
            for v in adjacency[offsets[u]:offsets[u + 1]].tolist():
                if distance[v] == UNVISITED:
                    distance[v] = next_distance
                    queue[tail] = v
                    tail += 1
    return distance


def breadth_first_search_traced(
    graph: CSRGraph, memory: Memory
) -> np.ndarray:
    """Whole-graph BFS with traced memory accesses."""
    n = graph.num_nodes
    traced = declare_graph(memory, graph)
    traced_distance = memory.array("distance", n, NODE_BYTES)
    traced_queue = memory.array("queue", n, NODE_BYTES)
    offsets = graph.offsets
    adjacency = graph.adjacency
    distance = np.full(n, UNVISITED, dtype=np.int64)
    queue = np.empty(n, dtype=np.int64)
    touch_distance = traced_distance.touch
    touch_queue = traced_queue.touch
    for root in range(n):
        traced_distance.touch(root)  # the restart scan probes distance
        if distance[root] != UNVISITED:
            continue
        distance[root] = 0
        head = 0
        tail = 1
        queue[0] = root
        touch_queue(0)
        while head < tail:
            touch_queue(head)
            u = int(queue[head])
            head += 1
            traced.offsets.touch(u)
            start = int(offsets[u])
            end = int(offsets[u + 1])
            traced.adjacency.touch_run(start, end - start)
            next_distance = distance[u] + 1
            for v in adjacency[start:end].tolist():
                touch_distance(v)
                if distance[v] == UNVISITED:
                    distance[v] = next_distance
                    queue[tail] = v
                    touch_queue(tail)
                    tail += 1
    return distance
