"""BFS — whole-graph breadth-first search.

A BFS forest over the full graph: traversal starts at node 0 and
restarts from the lowest-id unvisited node until every node is
numbered, visiting neighbours in lexicographic (ascending id) order as
the replication specifies.  Returns the hop distance of every node
from its forest root (roots have distance 0).

The cache-relevant access is the per-edge ``distance[v]`` probe that
checks whether a neighbour was already discovered.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import NODE_BYTES, declare_graph
from repro.algorithms.runtime import (
    Frontier,
    TraceEmitter,
    interleave_fields,
    run_field,
    segment_sums,
)
from repro.cache.layout import Memory
from repro.graph.csr import CSRGraph

#: Marker for not-yet-visited nodes in the distance array.
UNVISITED = -1


def breadth_first_search(graph: CSRGraph) -> np.ndarray:
    """Whole-graph BFS; returns per-node distance from its forest root."""
    n = graph.num_nodes
    offsets = graph.offsets
    adjacency = graph.adjacency
    distance = np.full(n, UNVISITED, dtype=np.int64)
    queue = np.empty(n, dtype=np.int64)
    for root in range(n):
        if distance[root] != UNVISITED:
            continue
        distance[root] = 0
        head = 0
        tail = 1
        queue[0] = root
        while head < tail:
            u = int(queue[head])
            head += 1
            next_distance = distance[u] + 1
            for v in adjacency[offsets[u]:offsets[u + 1]].tolist():
                if distance[v] == UNVISITED:
                    distance[v] = next_distance
                    queue[tail] = v
                    tail += 1
    return distance


def breadth_first_search_traced(
    graph: CSRGraph, memory: Memory
) -> np.ndarray:
    """Whole-graph BFS with traced memory accesses.

    Runtime-backed: the scalar FIFO is level-synchronous (every node
    of depth ``d`` is enqueued before any is processed), so each level
    advances as one :class:`~repro.algorithms.runtime.Frontier` and
    emits one assembled access block — per node the queue pop, the
    ``offsets`` touch, the adjacency ``touch_run`` span, then per edge
    the ``distance`` probe and (on discovery) the queue push.
    Touch-sequence identical to
    :func:`breadth_first_search_traced_scalar`.
    """
    n = graph.num_nodes
    traced = declare_graph(memory, graph)
    traced_distance = memory.array("distance", n, NODE_BYTES)
    traced_queue = memory.array("queue", n, NODE_BYTES)
    offsets = graph.offsets
    adjacency = graph.adjacency
    distance = np.full(n, UNVISITED, dtype=np.int64)
    emitter = TraceEmitter(memory)
    scan_from = 0  # next node the restart scan will probe
    root = 0
    while True:
        # Next unvisited root: each node is skipped at most once
        # across the whole run, so the scan stays O(n) total.
        while root < n and distance[root] != UNVISITED:
            root += 1
        if root == n:
            if scan_from < n:  # trailing probes of the restart scan
                emitter.flush(traced_distance.element_lines(
                    np.arange(scan_from, n, dtype=np.int64)
                ))
            break
        # Restart-scan probes up to and including the new root, then
        # the queue[0] write that seeds its tree.
        emitter.flush(np.concatenate([
            traced_distance.element_lines(
                np.arange(scan_from, root + 1, dtype=np.int64)
            ),
            traced_queue.element_lines(np.zeros(1, dtype=np.int64)),
        ]))
        scan_from = root + 1
        distance[root] = 0
        frontier = Frontier(np.array([root], dtype=np.int64), n)
        head, tail, depth = 0, 1, 0
        while frontier.size:
            edges = frontier.advance(offsets, adjacency)
            targets = edges.targets
            newly = frontier.first_claims(
                edges, distance[targets] == UNVISITED
            )
            discovered = targets[newly]
            num_discovered = int(discovered.shape[0])
            size = frontier.size
            ones = np.ones(size, dtype=np.int64)
            runs = run_field(traced.adjacency, edges.starts, edges.degrees)
            # Per-edge region: the distance probe, then the queue push
            # of discovered nodes (tail slots assigned in edge order).
            push_at = tail + np.cumsum(newly) - 1
            edge_lines, edge_demand = interleave_fields([
                (np.ones(edges.total, dtype=np.int64),
                 traced_distance.element_lines(targets), None),
                (newly.astype(np.int64),
                 traced_queue.element_lines(push_at[newly]), None),
            ])
            lines, demand = interleave_fields([
                (ones, traced_queue.element_lines(
                    head + np.arange(size, dtype=np.int64)), None),
                (ones, traced.offsets.element_lines(frontier.nodes),
                 None),
                runs.as_field(),
                (edges.degrees + segment_sums(newly, edges.degrees),
                 edge_lines, edge_demand),
            ])
            emitter.flush(lines, demand, runs.extra_l1, runs.prefetched)
            depth += 1
            distance[discovered] = depth
            head += size
            tail += num_discovered
            frontier = Frontier(discovered, n)
    return distance


def breadth_first_search_traced_scalar(
    graph: CSRGraph, memory: Memory
) -> np.ndarray:
    """Scalar-loop BFS emitter: the runtime port's oracle."""
    n = graph.num_nodes
    traced = declare_graph(memory, graph)
    traced_distance = memory.array("distance", n, NODE_BYTES)
    traced_queue = memory.array("queue", n, NODE_BYTES)
    offsets = graph.offsets
    adjacency = graph.adjacency
    distance = np.full(n, UNVISITED, dtype=np.int64)
    queue = np.empty(n, dtype=np.int64)
    touch_distance = traced_distance.touch
    touch_queue = traced_queue.touch
    for root in range(n):
        # The restart scan probes distance.
        traced_distance.touch(root)  # repro: noqa[REP007] — scalar oracle
        if distance[root] != UNVISITED:
            continue
        distance[root] = 0
        head = 0
        tail = 1
        queue[0] = root
        touch_queue(0)  # repro: noqa[REP007] — scalar oracle
        while head < tail:
            touch_queue(head)  # repro: noqa[REP007] — scalar oracle
            u = int(queue[head])
            head += 1
            traced.offsets.touch(u)  # repro: noqa[REP007] — scalar oracle
            start = int(offsets[u])
            end = int(offsets[u + 1])
            traced.adjacency.touch_run(start, end - start)
            next_distance = distance[u] + 1
            for v in adjacency[start:end].tolist():
                touch_distance(v)  # repro: noqa[REP007] — scalar oracle
                if distance[v] == UNVISITED:
                    distance[v] = next_distance
                    queue[tail] = v
                    touch_queue(tail)  # repro: noqa[REP007] — oracle
                    tail += 1
    return distance
