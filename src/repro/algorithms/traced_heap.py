"""Array-backed binary min-heap with traced memory accesses.

Kcore's peeling loop keeps node degrees in a binary heap (as the
replication describes).  To charge the heap's memory traffic to the
cache model faithfully, the traced variant cannot use ``heapq`` (its
accesses would be invisible) — this class implements the heap over a
declared :class:`~repro.cache.layout.TracedArray`, touching every slot
a C implementation would read or write during sift-up/sift-down.
"""

from __future__ import annotations

from repro.cache.layout import Memory, TracedArray


class TracedBinaryHeap:
    """Min-heap of ``(key, value)`` pairs over a simulated array.

    One heap slot models an 8-byte packed entry (4-byte key + 4-byte
    value).  Pass ``traced=None`` to get an untraced heap with
    identical semantics (used to keep the pure and traced Kcore
    implementations structurally identical).
    """

    __slots__ = ("_items", "_touch")

    def __init__(self, traced: TracedArray | None) -> None:
        self._items: list[tuple[int, int]] = []
        self._touch = traced.touch if traced is not None else _no_touch

    @classmethod
    def declare(
        cls, memory: Memory, name: str, capacity: int
    ) -> "TracedBinaryHeap":
        """Declare the backing array in ``memory`` and wrap it."""
        return cls(memory.array(name, capacity, 8))

    def __len__(self) -> int:
        return len(self._items)

    def push(self, key: int, value: int) -> None:
        """Insert an entry and restore the heap property."""
        items = self._items
        touch = self._touch
        items.append((key, value))
        index = len(items) - 1
        touch(index)
        while index > 0:
            parent = (index - 1) >> 1
            touch(parent)
            if items[parent] <= items[index]:
                break
            items[parent], items[index] = items[index], items[parent]
            touch(index)
            index = parent
        # loop end: either at root or parent is smaller

    def pop(self) -> tuple[int, int]:
        """Remove and return the minimal ``(key, value)`` entry."""
        items = self._items
        touch = self._touch
        if not items:
            # Container protocol: empty-pop mirrors list.pop.
            raise IndexError(  # repro: noqa[REP006]
                "pop from an empty TracedBinaryHeap"
            )
        touch(0)
        top = items[0]
        last = items.pop()
        size = len(items)
        if size:
            items[0] = last
            touch(0)
            index = 0
            while True:
                left = 2 * index + 1
                if left >= size:
                    break
                smallest = left
                touch(left)
                right = left + 1
                if right < size:
                    touch(right)
                    if items[right] < items[left]:
                        smallest = right
                if items[smallest] >= items[index]:
                    break
                items[index], items[smallest] = (
                    items[smallest], items[index],
                )
                touch(index)
                touch(smallest)
                index = smallest
        return top


def _no_touch(index: int) -> None:
    """Untraced placeholder touch."""
