"""The paper's nine benchmark graph algorithms (pure + traced)."""

from repro.algorithms.base import (
    ALGORITHM_NAMES,
    REGISTRY,
    AlgorithmSpec,
    spec,
)
from repro.algorithms.bfs import (
    UNVISITED,
    breadth_first_search,
    breadth_first_search_traced,
)
from repro.algorithms.dfs import (
    depth_first_search,
    depth_first_search_traced,
)
from repro.algorithms.diameter import (
    diameter,
    diameter_traced,
    pick_sources,
)
from repro.algorithms.domset import dominating_set, dominating_set_traced
from repro.algorithms.kcore import (
    core_decomposition,
    core_decomposition_traced,
)
from repro.algorithms.labelprop import (
    label_propagation,
    label_propagation_traced,
)
from repro.algorithms.nq import neighbor_query, neighbor_query_traced
from repro.algorithms.pagerank import (
    DAMPING,
    PAPER_ITERATIONS,
    pagerank,
    pagerank_traced,
)
from repro.algorithms.scc import (
    strongly_connected_components,
    strongly_connected_components_traced,
)
from repro.algorithms.sp import (
    INFINITY,
    shortest_paths,
    shortest_paths_traced,
)
from repro.algorithms.traced_heap import TracedBinaryHeap
from repro.algorithms.triangles import (
    triangle_count,
    triangle_count_traced,
)
from repro.algorithms.union_find import UnionFind
from repro.algorithms.wcc import (
    weakly_connected_components,
    weakly_connected_components_traced,
)

__all__ = [
    "ALGORITHM_NAMES",
    "REGISTRY",
    "AlgorithmSpec",
    "spec",
    "neighbor_query",
    "neighbor_query_traced",
    "breadth_first_search",
    "breadth_first_search_traced",
    "UNVISITED",
    "depth_first_search",
    "depth_first_search_traced",
    "strongly_connected_components",
    "strongly_connected_components_traced",
    "shortest_paths",
    "shortest_paths_traced",
    "INFINITY",
    "pagerank",
    "pagerank_traced",
    "DAMPING",
    "PAPER_ITERATIONS",
    "dominating_set",
    "dominating_set_traced",
    "core_decomposition",
    "core_decomposition_traced",
    "diameter",
    "diameter_traced",
    "pick_sources",
    "TracedBinaryHeap",
    "UnionFind",
    "weakly_connected_components",
    "weakly_connected_components_traced",
    "triangle_count",
    "triangle_count_traced",
    "label_propagation",
    "label_propagation_traced",
]
