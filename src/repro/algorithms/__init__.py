"""The paper's nine benchmark graph algorithms (pure + traced)."""

from repro.algorithms.base import (
    ALGO_BACKENDS,
    ALGORITHM_NAMES,
    REGISTRY,
    AlgorithmSpec,
    spec,
    traced_fn,
)
from repro.algorithms.bfs import (
    UNVISITED,
    breadth_first_search,
    breadth_first_search_traced,
    breadth_first_search_traced_scalar,
)
from repro.algorithms.deltastep import (
    delta_stepping,
    delta_stepping_traced,
    edge_weights,
)
from repro.algorithms.dfs import (
    depth_first_search,
    depth_first_search_traced,
)
from repro.algorithms.diameter import (
    diameter,
    diameter_traced,
    diameter_traced_scalar,
    pick_sources,
)
from repro.algorithms.domset import dominating_set, dominating_set_traced
from repro.algorithms.kcore import (
    core_decomposition,
    core_decomposition_traced,
)
from repro.algorithms.labelprop import (
    label_propagation,
    label_propagation_traced,
    label_propagation_traced_scalar,
)
from repro.algorithms.nq import (
    neighbor_query,
    neighbor_query_traced,
    neighbor_query_traced_scalar,
)
from repro.algorithms.pagerank import (
    DAMPING,
    PAPER_ITERATIONS,
    pagerank,
    pagerank_traced,
    pagerank_traced_scalar,
)
from repro.algorithms.runtime import (
    BucketQueue,
    Frontier,
    TraceEmitter,
)
from repro.algorithms.scc import (
    strongly_connected_components,
    strongly_connected_components_traced,
)
from repro.algorithms.sp import (
    INFINITY,
    shortest_paths,
    shortest_paths_traced,
    shortest_paths_traced_scalar,
)
from repro.algorithms.traced_heap import TracedBinaryHeap
from repro.algorithms.triangles import (
    triangle_count,
    triangle_count_traced,
)
from repro.algorithms.union_find import UnionFind
from repro.algorithms.wcc import (
    weakly_connected_components,
    weakly_connected_components_traced,
)
from repro.algorithms.wkcore import (
    weighted_core_decomposition,
    weighted_core_decomposition_traced,
)

__all__ = [
    "ALGO_BACKENDS",
    "ALGORITHM_NAMES",
    "REGISTRY",
    "AlgorithmSpec",
    "spec",
    "traced_fn",
    "neighbor_query",
    "neighbor_query_traced",
    "breadth_first_search",
    "breadth_first_search_traced",
    "UNVISITED",
    "depth_first_search",
    "depth_first_search_traced",
    "strongly_connected_components",
    "strongly_connected_components_traced",
    "shortest_paths",
    "shortest_paths_traced",
    "INFINITY",
    "pagerank",
    "pagerank_traced",
    "DAMPING",
    "PAPER_ITERATIONS",
    "dominating_set",
    "dominating_set_traced",
    "core_decomposition",
    "core_decomposition_traced",
    "diameter",
    "diameter_traced",
    "pick_sources",
    "TracedBinaryHeap",
    "UnionFind",
    "weakly_connected_components",
    "weakly_connected_components_traced",
    "triangle_count",
    "triangle_count_traced",
    "label_propagation",
    "label_propagation_traced",
    "label_propagation_traced_scalar",
    "neighbor_query_traced_scalar",
    "breadth_first_search_traced_scalar",
    "shortest_paths_traced_scalar",
    "pagerank_traced_scalar",
    "diameter_traced_scalar",
    "delta_stepping",
    "delta_stepping_traced",
    "edge_weights",
    "weighted_core_decomposition",
    "weighted_core_decomposition_traced",
    "BucketQueue",
    "Frontier",
    "TraceEmitter",
]
