"""Union-find (disjoint set union) with an optional cache trace.

Substrate for weakly-connected components.  Uses union by size and
path halving; ``find`` is the ultimate pointer-chasing workload, so
the traced variant makes DSU a sharp probe of an ordering's locality.
"""

from __future__ import annotations

import numpy as np

from repro.cache.layout import Memory
from repro.errors import InvalidParameterError


class UnionFind:
    """Disjoint sets over items ``0 .. n-1``.

    Pass a :class:`Memory` to charge every parent/size access to the
    cache simulator (one 4-byte slot per item and array).
    """

    __slots__ = ("_parent", "_size", "_count", "_touch_parent",
                 "_touch_size")

    def __init__(self, num_items: int, memory: Memory | None = None,
                 name: str = "dsu") -> None:
        if num_items < 0:
            raise InvalidParameterError(
                f"num_items must be non-negative, got {num_items}"
            )
        self._parent = np.arange(num_items, dtype=np.int64)
        self._size = np.ones(num_items, dtype=np.int64)
        self._count = num_items
        if memory is None:
            self._touch_parent = _no_touch
            self._touch_size = _no_touch
        else:
            self._touch_parent = memory.array(
                f"{name}_parent", num_items, 4
            ).touch
            self._touch_size = memory.array(
                f"{name}_size", num_items, 4
            ).touch

    @property
    def num_components(self) -> int:
        """Current number of disjoint sets."""
        return self._count

    def find(self, item: int) -> int:
        """Representative of ``item``'s set (path halving)."""
        parent = self._parent
        touch = self._touch_parent
        touch(item)
        while parent[item] != item:
            grandparent = int(parent[int(parent[item])])
            touch(int(parent[item]))
            parent[item] = grandparent
            touch(item)  # the halving write
            item = grandparent
            touch(item)
        return int(item)

    def union(self, a: int, b: int) -> bool:
        """Merge the sets of ``a`` and ``b``; True if they were apart."""
        root_a = self.find(a)
        root_b = self.find(b)
        if root_a == root_b:
            return False
        self._touch_size(root_a)
        self._touch_size(root_b)
        if self._size[root_a] < self._size[root_b]:
            root_a, root_b = root_b, root_a
        self._parent[root_b] = root_a
        self._touch_parent(root_b)
        self._size[root_a] += self._size[root_b]
        self._touch_size(root_a)
        self._count -= 1
        return True

    def components(self) -> np.ndarray:
        """Component id per item (ids are compacted root ranks)."""
        n = self._parent.shape[0]
        roots = np.array([self.find(i) for i in range(n)],
                         dtype=np.int64)
        _, labels = np.unique(roots, return_inverse=True)
        return labels.astype(np.int64)


def _no_touch(index: int) -> None:
    """Untraced placeholder touch."""
