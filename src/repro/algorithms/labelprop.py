"""Label propagation community detection (extension algorithm).

Synchronous label propagation on the undirected view: every node
starts with its own label and repeatedly adopts the most frequent
label among its neighbours (ties broken by the smallest label, which
makes the algorithm deterministic).  Per edge it reads
``labels[neighbour]`` — the same random access pattern PageRank has,
so it slots naturally into the ordering experiments.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.runtime import (
    TraceEmitter,
    interleave_fields,
    run_field,
)
from repro.cache.layout import Memory
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

#: Default sweep count; label propagation converges quickly.
DEFAULT_ITERATIONS = 10


def label_propagation(
    graph: CSRGraph, iterations: int = DEFAULT_ITERATIONS
) -> np.ndarray:
    """Community label per node after ``iterations`` sweeps."""
    return _propagate(graph, iterations, memory=None)


def label_propagation_traced(
    graph: CSRGraph,
    memory: Memory,
    iterations: int = DEFAULT_ITERATIONS,
) -> np.ndarray:
    """Label propagation with traced memory accesses.

    Runtime-backed: the synchronous sweep's touch sequence depends
    only on the graph structure, so the whole iteration's access block
    (per connected node the ``u_offsets`` touch, adjacency span,
    per-neighbour ``labels`` gather and the ``next_labels`` write) is
    assembled once and flushed once per sweep; the most-frequent /
    smallest-tie label reduction runs as one packed sort per sweep.
    Touch-sequence identical to
    :func:`label_propagation_traced_scalar`.
    """
    if iterations < 0:
        raise InvalidParameterError(
            f"iterations must be non-negative, got {iterations}"
        )
    undirected = graph.undirected()
    n = undirected.num_nodes
    offsets = undirected.offsets
    neighbors = undirected.adjacency.astype(np.int64, copy=False)
    traced_offsets = memory.array("u_offsets", n + 1, 8)
    traced_adjacency = memory.array(
        "u_adjacency", undirected.num_edges, 4
    )
    traced_labels = memory.array("labels", n, 4)
    traced_next = memory.array("next_labels", n, 4)
    starts = offsets[:-1].astype(np.int64, copy=False)
    widths = offsets[1:].astype(np.int64, copy=False) - starts
    live = widths > 0
    live_nodes = np.flatnonzero(live)
    live_widths = widths[live]
    num_live = int(live_nodes.shape[0])
    ones = np.ones(num_live, dtype=np.int64)
    runs = run_field(traced_adjacency, starts[live], live_widths)
    lines, demand = interleave_fields([
        (ones, traced_offsets.element_lines(live_nodes), None),
        runs.as_field(),
        (live_widths, traced_labels.element_lines(neighbors), None),
        (ones, traced_next.element_lines(live_nodes), None),
    ])
    emitter = TraceEmitter(memory)
    labels = np.arange(n, dtype=np.int64)
    segments = np.repeat(np.arange(num_live, dtype=np.int64), live_widths)
    total = int(neighbors.shape[0])
    for _ in range(iterations):
        # Most frequent neighbour label per node, smallest on ties:
        # pack (segment, label), sort, reduce groups, rank per segment
        # by (count desc, label asc).
        key = np.sort(segments * np.int64(n + 1) + labels[neighbors])
        head = np.empty(total, dtype=bool)
        if total:
            head[0] = True
            np.not_equal(key[1:], key[:-1], out=head[1:])
        head_at = np.flatnonzero(head)
        counts = np.diff(np.append(head_at, total))
        group_seg = key[head_at] // np.int64(n + 1)
        group_label = key[head_at] % np.int64(n + 1)
        order = np.lexsort((group_label, -counts, group_seg))
        seg_sorted = group_seg[order]
        best_mask = np.empty(seg_sorted.shape[0], dtype=bool)
        if seg_sorted.shape[0]:
            best_mask[0] = True
            np.not_equal(
                seg_sorted[1:], seg_sorted[:-1], out=best_mask[1:]
            )
        best = group_label[order][best_mask]
        emitter.flush(lines, demand, runs.extra_l1, runs.prefetched)
        changed = bool((best != labels[live_nodes]).any())
        updated = labels.copy()
        updated[live_nodes] = best
        labels = updated
        if not changed:
            break
    _, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)


def label_propagation_traced_scalar(
    graph: CSRGraph,
    memory: Memory,
    iterations: int = DEFAULT_ITERATIONS,
) -> np.ndarray:
    """Scalar-loop label propagation emitter: the runtime oracle."""
    return _propagate(graph, iterations, memory=memory)


def _propagate(
    graph: CSRGraph, iterations: int, memory: Memory | None
) -> np.ndarray:
    if iterations < 0:
        raise InvalidParameterError(
            f"iterations must be non-negative, got {iterations}"
        )
    undirected = graph.undirected()
    n = undirected.num_nodes
    offsets = undirected.offsets
    adjacency = undirected.adjacency
    labels = np.arange(n, dtype=np.int64)
    next_labels = labels.copy()
    if memory is not None:
        traced_offsets = memory.array("u_offsets", n + 1, 8)
        traced_adjacency = memory.array(
            "u_adjacency", undirected.num_edges, 4
        )
        touch_label_all = memory.array("labels", n, 4).touch_all
        touch_next = memory.array("next_labels", n, 4).touch
    for _ in range(iterations):
        changed = False
        for u in range(n):
            start = int(offsets[u])
            end = int(offsets[u + 1])
            if start == end:
                continue
            if memory is not None:
                traced_offsets.touch(u)  # repro: noqa[REP007] — oracle
                traced_adjacency.touch_run(start, end - start)
                touch_label_all(adjacency[start:end])
            counts: dict[int, int] = {}
            for v in adjacency[start:end].tolist():
                label = int(labels[v])
                counts[label] = counts.get(label, 0) + 1
            # Most frequent label, smallest on ties.
            best = min(
                counts, key=lambda label: (-counts[label], label)
            )
            if memory is not None:
                touch_next(u)  # repro: noqa[REP007] — scalar oracle
            next_labels[u] = best
            if best != labels[u]:
                changed = True
        labels, next_labels = next_labels, labels
        next_labels[:] = labels
        if not changed:
            break
    # Compact labels to 0..k-1 for stable comparisons.
    _, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)
