"""Label propagation community detection (extension algorithm).

Synchronous label propagation on the undirected view: every node
starts with its own label and repeatedly adopts the most frequent
label among its neighbours (ties broken by the smallest label, which
makes the algorithm deterministic).  Per edge it reads
``labels[neighbour]`` — the same random access pattern PageRank has,
so it slots naturally into the ordering experiments.
"""

from __future__ import annotations

import numpy as np

from repro.cache.layout import Memory
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

#: Default sweep count; label propagation converges quickly.
DEFAULT_ITERATIONS = 10


def label_propagation(
    graph: CSRGraph, iterations: int = DEFAULT_ITERATIONS
) -> np.ndarray:
    """Community label per node after ``iterations`` sweeps."""
    return _propagate(graph, iterations, memory=None)


def label_propagation_traced(
    graph: CSRGraph,
    memory: Memory,
    iterations: int = DEFAULT_ITERATIONS,
) -> np.ndarray:
    """Label propagation with traced memory accesses."""
    return _propagate(graph, iterations, memory=memory)


def _propagate(
    graph: CSRGraph, iterations: int, memory: Memory | None
) -> np.ndarray:
    if iterations < 0:
        raise InvalidParameterError(
            f"iterations must be non-negative, got {iterations}"
        )
    undirected = graph.undirected()
    n = undirected.num_nodes
    offsets = undirected.offsets
    adjacency = undirected.adjacency
    labels = np.arange(n, dtype=np.int64)
    next_labels = labels.copy()
    if memory is not None:
        traced_offsets = memory.array("u_offsets", n + 1, 8)
        traced_adjacency = memory.array(
            "u_adjacency", undirected.num_edges, 4
        )
        touch_label_all = memory.array("labels", n, 4).touch_all
        touch_next = memory.array("next_labels", n, 4).touch
    for _ in range(iterations):
        changed = False
        for u in range(n):
            start = int(offsets[u])
            end = int(offsets[u + 1])
            if start == end:
                continue
            if memory is not None:
                traced_offsets.touch(u)
                traced_adjacency.touch_run(start, end - start)
                touch_label_all(adjacency[start:end])
            counts: dict[int, int] = {}
            for v in adjacency[start:end].tolist():
                label = int(labels[v])
                counts[label] = counts.get(label, 0) + 1
            # Most frequent label, smallest on ties.
            best = min(
                counts, key=lambda label: (-counts[label], label)
            )
            if memory is not None:
                touch_next(u)
            next_labels[u] = best
            if best != labels[u]:
                changed = True
        labels, next_labels = next_labels, labels
        next_labels[:] = labels
        if not changed:
            break
    # Compact labels to 0..k-1 for stable comparisons.
    _, compact = np.unique(labels, return_inverse=True)
    return compact.astype(np.int64)
