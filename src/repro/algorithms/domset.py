"""DS — greedy dominating set.

The replication's greedy approximation: repeatedly select the node
covering the most still-uncovered nodes (itself plus its
out-neighbours), add it to the dominating set, and mark its coverage.
Selection uses a :class:`~repro.ordering.unit_heap.UnitHeap` — when a
node ``w`` becomes covered, the gain of ``w`` and of every in-neighbour
of ``w`` drops by exactly one, so all updates are unit decrements and
the greedy runs in O(m) amortised.

Domination invariant (verified by tests): every node is in the set or
is an out-neighbour of a set member.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import NODE_BYTES, declare_graph
from repro.cache.layout import Memory
from repro.graph.csr import CSRGraph
from repro.ordering.unit_heap import UnitHeap


def dominating_set(graph: CSRGraph) -> np.ndarray:
    """Greedy dominating set; returns chosen nodes in selection order."""
    n = graph.num_nodes
    offsets = graph.offsets
    adjacency = graph.adjacency
    in_offsets = graph.in_offsets
    in_adjacency = graph.in_adjacency
    heap = UnitHeap(n)
    for u in range(n):
        # gain(u) = 1 (itself) + out_degree(u), built by unit increases.
        for _ in range(int(offsets[u + 1] - offsets[u]) + 1):
            heap.increase(u)
    covered = np.zeros(n, dtype=bool)
    chosen: list[int] = []
    remaining = n
    while remaining > 0:
        u = heap.pop_max()
        chosen.append(u)
        for w in [u] + adjacency[offsets[u]:offsets[u + 1]].tolist():
            if covered[w]:
                continue
            covered[w] = True
            remaining -= 1
            heap.decrease(w)  # w no longer contributes to its own gain
            for z in in_adjacency[in_offsets[w]:in_offsets[w + 1]].tolist():
                heap.decrease(z)
    return np.array(chosen, dtype=np.int64)


def dominating_set_traced(
    graph: CSRGraph, memory: Memory
) -> np.ndarray:
    """Greedy dominating set with traced memory accesses.

    The unit heap itself is a pointer structure over per-node slots;
    its traffic is modelled as one ``gain`` array access per unit
    update plus the ``covered`` flag probes.
    """
    n = graph.num_nodes
    traced = declare_graph(memory, graph, include_in_csr=True)
    traced_covered = memory.array("covered", n, 1)
    traced_gain = memory.array("gain", n, NODE_BYTES)
    offsets = graph.offsets
    adjacency = graph.adjacency
    in_offsets = graph.in_offsets
    in_adjacency = graph.in_adjacency
    heap = UnitHeap(n)
    for u in range(n):
        for _ in range(int(offsets[u + 1] - offsets[u]) + 1):
            heap.increase(u)
    covered = np.zeros(n, dtype=bool)
    chosen: list[int] = []
    remaining = n
    touch_covered = traced_covered.touch
    touch_gain = traced_gain.touch
    assert traced.in_offsets is not None
    assert traced.in_adjacency is not None
    while remaining > 0:
        u = heap.pop_max()
        touch_gain(u)  # repro: noqa[REP007]
        chosen.append(u)
        traced.offsets.touch(u)  # repro: noqa[REP007]
        start = int(offsets[u])
        degree = int(offsets[u + 1]) - start
        traced.adjacency.touch_run(start, degree)
        for w in [u] + adjacency[start:start + degree].tolist():
            touch_covered(w)  # repro: noqa[REP007]
            if covered[w]:
                continue
            covered[w] = True
            remaining -= 1
            heap.decrease(w)
            touch_gain(w)  # repro: noqa[REP007]
            traced.in_offsets.touch(w)  # repro: noqa[REP007]
            in_start = int(in_offsets[w])
            in_degree = int(in_offsets[w + 1]) - in_start
            traced.in_adjacency.touch_run(in_start, in_degree)
            for z in in_adjacency[in_start:in_start + in_degree].tolist():
                heap.decrease(z)
                touch_gain(z)  # repro: noqa[REP007]
    return np.array(chosen, dtype=np.int64)
