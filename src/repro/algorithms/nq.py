"""NQ — neighbour query, the paper's elementary benchmark.

For every node ``u`` compute ``q_u = sum_{v in N+(u)} d_v`` (the sum of
its out-neighbours' out-degrees).  The per-neighbour lookup
``degree[v]`` is the canonical random access a good ordering turns into
a cache hit: when ``u``'s neighbours have nearby ids, their degree
entries share cache lines.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import NODE_BYTES, declare_graph
from repro.algorithms.runtime import (
    TraceEmitter,
    interleave_fields,
    run_field,
    segment_sums,
)
from repro.cache.layout import Memory
from repro.graph.csr import CSRGraph


def neighbor_query(graph: CSRGraph) -> np.ndarray:
    """Vectorised NQ: the array ``q`` of neighbour degree sums."""
    degrees = graph.out_degrees()
    sources, targets = graph.edge_array()
    return np.bincount(
        sources, weights=degrees[targets], minlength=graph.num_nodes
    ).astype(np.int64)


def neighbor_query_traced(graph: CSRGraph, memory: Memory) -> np.ndarray:
    """NQ with every data reference driven through the cache model.

    Runtime-backed: the full node scan is one assembled access block —
    per node an ``offsets`` touch, the adjacency ``touch_run`` span and
    the per-neighbour ``degree`` gather, then the ``q`` write — flushed
    to the backend in a single call.  Touch-sequence identical to
    :func:`neighbor_query_traced_scalar`.
    """
    n = graph.num_nodes
    traced = declare_graph(memory, graph)
    traced_degree = memory.array("degree", n, NODE_BYTES)
    traced_q = memory.array("q", n, 8)
    offsets = graph.offsets
    degrees = graph.out_degrees().astype(np.int64, copy=False)
    nodes = np.arange(n, dtype=np.int64)
    starts = offsets[:-1].astype(np.int64, copy=False)
    widths = offsets[1:].astype(np.int64, copy=False) - starts
    neighbors = graph.adjacency.astype(np.int64, copy=False)
    ones = np.ones(n, dtype=np.int64)
    runs = run_field(traced.adjacency, starts, widths)
    lines, demand = interleave_fields([
        (ones, traced.offsets.element_lines(nodes), None),
        runs.as_field(),
        (widths, traced_degree.element_lines(neighbors), None),
        (ones, traced_q.element_lines(nodes), None),
    ])
    TraceEmitter(memory).flush(
        lines, demand, runs.extra_l1, runs.prefetched
    )
    return segment_sums(degrees[neighbors], widths)


def neighbor_query_traced_scalar(
    graph: CSRGraph, memory: Memory
) -> np.ndarray:
    """Scalar-loop NQ emitter: the runtime port's oracle."""
    n = graph.num_nodes
    traced = declare_graph(memory, graph)
    traced_degree = memory.array("degree", n, NODE_BYTES)
    traced_q = memory.array("q", n, 8)
    offsets = graph.offsets
    adjacency = graph.adjacency
    degrees = graph.out_degrees()
    q = np.zeros(n, dtype=np.int64)
    touch_degree_all = traced_degree.touch_all
    for u in range(n):
        traced.offsets.touch(u)  # repro: noqa[REP007] — scalar oracle
        start = int(offsets[u])
        end = int(offsets[u + 1])
        traced.adjacency.touch_run(start, end - start)
        neighbors = adjacency[start:end]
        touch_degree_all(neighbors)
        traced_q.touch(u)  # repro: noqa[REP007] — scalar oracle
        q[u] = degrees[neighbors].sum()
    return q
