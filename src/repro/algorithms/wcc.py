"""WCC — weakly connected components (extension algorithm).

Not one of the paper's nine, but the replication closes by noting
Gorder "could speed up other graph algorithms as well"; WCC via
union-find is the classic pointer-chasing counterexample candidate and
rounds out the suite.  Edge direction is ignored.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import declare_graph
from repro.algorithms.union_find import UnionFind
from repro.cache.layout import Memory
from repro.graph.csr import CSRGraph


def weakly_connected_components(graph: CSRGraph) -> np.ndarray:
    """Component id per node (0-based, compacted)."""
    return _wcc(graph, memory=None)


def weakly_connected_components_traced(
    graph: CSRGraph, memory: Memory
) -> np.ndarray:
    """WCC with traced memory accesses (CSR scan + DSU chasing)."""
    return _wcc(graph, memory=memory)


def _wcc(graph: CSRGraph, memory: Memory | None) -> np.ndarray:
    n = graph.num_nodes
    dsu = UnionFind(n, memory=memory)
    offsets = graph.offsets
    adjacency = graph.adjacency
    traced = declare_graph(memory, graph) if memory is not None else None
    for u in range(n):
        start = int(offsets[u])
        end = int(offsets[u + 1])
        if traced is not None:
            traced.offsets.touch(u)  # repro: noqa[REP007]
            traced.adjacency.touch_run(start, end - start)
        for v in adjacency[start:end].tolist():
            dsu.union(u, v)
    return dsu.components()
