"""PR — PageRank by power iteration.

Push-style power iteration with damping ``alpha = 0.85`` (the usual
configuration, as in the replication): each node pushes
``rank[u] / out_degree[u]`` to its out-neighbours — a random write to
``next_rank[v]`` per edge, the dominant cache-sensitive access.
Dangling nodes redistribute their mass uniformly, so ranks stay a
probability distribution (sum 1), which the tests verify.

The paper runs 100 iterations; the experiment profiles use fewer
(iteration count scales cost linearly and identically for every
ordering, so relative results are unchanged).
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import FLOAT_BYTES, NODE_BYTES, declare_graph
from repro.algorithms.runtime import (
    TraceEmitter,
    interleave_fields,
    run_field,
)
from repro.cache.layout import Memory
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

#: Damping factor used by both papers.
DAMPING = 0.85
#: The paper's iteration count.
PAPER_ITERATIONS = 100


def pagerank(
    graph: CSRGraph,
    iterations: int = PAPER_ITERATIONS,
    damping: float = DAMPING,
) -> np.ndarray:
    """Vectorised PageRank; returns the rank distribution."""
    _check_params(iterations, damping)
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    sources, targets = graph.edge_array()
    out_degrees = graph.out_degrees().astype(np.float64)
    dangling = out_degrees == 0
    safe_degrees = np.where(dangling, 1.0, out_degrees)
    rank = np.full(n, 1.0 / n, dtype=np.float64)
    teleport = (1.0 - damping) / n
    for _ in range(iterations):
        contribution = rank / safe_degrees
        pushed = np.bincount(
            targets, weights=contribution[sources], minlength=n
        )
        dangling_mass = rank[dangling].sum() / n
        rank = teleport + damping * (pushed + dangling_mass)
    return rank


def pagerank_traced(
    graph: CSRGraph,
    memory: Memory,
    iterations: int = 5,
    damping: float = DAMPING,
) -> np.ndarray:
    """Push-style PageRank with traced memory accesses.

    Runtime-backed: the per-iteration touch sequence is independent of
    the rank values, so the whole sweep's access block is assembled
    once and flushed once per iteration.  Float arithmetic is bitwise
    the scalar oracle's — ``np.add.at`` over the concatenated edge
    stream applies element-wise in the same index order as the
    per-node calls, and the dangling mass accumulates sequentially in
    node order.
    """
    _check_params(iterations, damping)
    n = graph.num_nodes
    traced = declare_graph(memory, graph)
    traced_rank = memory.array("rank", n, FLOAT_BYTES)
    traced_next = memory.array("next_rank", n, FLOAT_BYTES)
    traced_degree = memory.array("out_degree", n, NODE_BYTES)
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    offsets = graph.offsets
    out_degrees = graph.out_degrees().astype(np.int64, copy=False)
    live = out_degrees > 0
    dangling = np.flatnonzero(~live)
    neighbors = graph.adjacency.astype(np.int64, copy=False)
    nodes = np.arange(n, dtype=np.int64)
    starts = offsets[:-1].astype(np.int64, copy=False)
    ones = np.ones(n, dtype=np.int64)
    runs = run_field(traced.adjacency, starts, out_degrees)
    lines, demand = interleave_fields([
        (ones, traced_rank.element_lines(nodes), None),
        (ones, traced_degree.element_lines(nodes), None),
        (live.astype(np.int64), traced.offsets.element_lines(nodes[live]),
         None),
        runs.as_field(),
        (out_degrees, traced_next.element_lines(neighbors), None),
    ])
    emitter = TraceEmitter(memory)
    rank = np.full(n, 1.0 / n, dtype=np.float64)
    next_rank = np.zeros(n, dtype=np.float64)
    teleport = (1.0 - damping) / n
    live_degrees = out_degrees[live].astype(np.float64)
    for _ in range(iterations):
        next_rank[:] = 0.0
        contribution = np.repeat(
            rank[live] / live_degrees, out_degrees[live]
        )
        np.add.at(next_rank, neighbors, contribution)
        dangling_mass = 0.0
        for value in rank[dangling].tolist():
            dangling_mass += value
        emitter.flush(lines, demand, runs.extra_l1, runs.prefetched)
        dangling_share = dangling_mass / n
        # Final sequential combine pass over both rank arrays.
        traced_next.touch_run(0, n)
        traced_rank.touch_run(0, n)
        rank[:] = teleport + damping * (next_rank + dangling_share)
    return rank


def pagerank_traced_scalar(
    graph: CSRGraph,
    memory: Memory,
    iterations: int = 5,
    damping: float = DAMPING,
) -> np.ndarray:
    """Scalar-loop PageRank emitter: the runtime port's oracle."""
    _check_params(iterations, damping)
    n = graph.num_nodes
    traced = declare_graph(memory, graph)
    traced_rank = memory.array("rank", n, FLOAT_BYTES)
    traced_next = memory.array("next_rank", n, FLOAT_BYTES)
    traced_degree = memory.array("out_degree", n, NODE_BYTES)
    if n == 0:
        return np.zeros(0, dtype=np.float64)
    offsets = graph.offsets
    adjacency = graph.adjacency
    out_degrees = graph.out_degrees()
    rank = np.full(n, 1.0 / n, dtype=np.float64)
    next_rank = np.zeros(n, dtype=np.float64)
    teleport = (1.0 - damping) / n
    touch_next_all = traced_next.touch_all
    for _ in range(iterations):
        next_rank[:] = 0.0
        dangling_mass = 0.0
        for u in range(n):
            traced_rank.touch(u)  # repro: noqa[REP007] — scalar oracle
            traced_degree.touch(u)  # repro: noqa[REP007] — scalar oracle
            degree = int(out_degrees[u])
            if degree == 0:
                dangling_mass += rank[u]
                continue
            contribution = rank[u] / degree
            traced.offsets.touch(u)  # repro: noqa[REP007] — scalar oracle
            start = int(offsets[u])
            traced.adjacency.touch_run(start, degree)
            neighbors = adjacency[start:start + degree]
            touch_next_all(neighbors)  # the random per-edge writes
            # np.add.at applies element-wise in index order — the
            # float accumulation is bitwise the per-edge loop's, and
            # next_rank is this iteration's local accumulator, so the
            # in-place update never escapes the oracle.
            np.add.at(next_rank, neighbors, contribution)  # repro: noqa[REP010]
        dangling_share = dangling_mass / n
        # Final sequential combine pass over both rank arrays.
        traced_next.touch_run(0, n)
        traced_rank.touch_run(0, n)
        rank[:] = teleport + damping * (next_rank + dangling_share)
    return rank


def _check_params(iterations: int, damping: float) -> None:
    if iterations < 0:
        raise InvalidParameterError(
            f"iterations must be non-negative, got {iterations}"
        )
    if not 0.0 <= damping <= 1.0:
        raise InvalidParameterError(
            f"damping must be in [0, 1], got {damping}"
        )
