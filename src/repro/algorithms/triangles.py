"""Triangle counting (extension algorithm).

Node-iterator triangle counting over the undirected view with
merge-based intersection of sorted neighbour lists — the standard
cache-sensitive kernel (every intersection streams two lists whose
*contents* are looked up again as lists themselves).

Each triangle {a, b, c} is counted exactly once via the degree
orientation: an edge (u, v) is processed only from the lower-rank
endpoint, with rank = (degree, id).
"""

from __future__ import annotations

import numpy as np

from repro.cache.layout import Memory
from repro.graph.csr import CSRGraph


def triangle_count(graph: CSRGraph) -> int:
    """Number of distinct triangles in the undirected view."""
    return _count(graph, memory=None)


def triangle_count_traced(graph: CSRGraph, memory: Memory) -> int:
    """Triangle counting with traced memory accesses."""
    return _count(graph, memory=memory)


def _count(graph: CSRGraph, memory: Memory | None) -> int:
    undirected = graph.undirected()
    n = undirected.num_nodes
    offsets = undirected.offsets
    adjacency = undirected.adjacency
    degrees = np.diff(offsets)
    if memory is not None:
        traced_offsets = memory.array("u_offsets", n + 1, 8)
        traced_adjacency = memory.array(
            "u_adjacency", undirected.num_edges, 4
        )
        traced_degree = memory.array("degree", n, 4)
        touch_adjacency = traced_adjacency.touch

    def rank_lower(u: int, v: int) -> bool:
        """Whether u precedes v in the degree orientation."""
        du = degrees[u]
        dv = degrees[v]
        return du < dv or (du == dv and u < v)

    total = 0
    for u in range(n):
        start_u = int(offsets[u])
        end_u = int(offsets[u + 1])
        if memory is not None:
            traced_offsets.touch(u)  # repro: noqa[REP007]
            traced_adjacency.touch_run(start_u, end_u - start_u)
        for v in adjacency[start_u:end_u].tolist():
            if memory is not None:
                traced_degree.touch(v)  # repro: noqa[REP007]
            if not rank_lower(u, v):
                continue
            # Merge-intersect N(u) and N(v), keeping only successors
            # of v in the orientation (so each triangle counts once).
            i = start_u
            j = int(offsets[v])
            end_v = int(offsets[v + 1])
            if memory is not None:
                traced_offsets.touch(v)  # repro: noqa[REP007]
            while i < end_u and j < end_v:
                a = int(adjacency[i])
                b = int(adjacency[j])
                if memory is not None:
                    touch_adjacency(i)  # repro: noqa[REP007]
                    touch_adjacency(j)  # repro: noqa[REP007]
                if a == b:
                    if rank_lower(v, a):
                        total += 1
                    i += 1
                    j += 1
                elif a < b:
                    i += 1
                else:
                    j += 1
    return total
