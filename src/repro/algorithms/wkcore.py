"""WKcore — weighted core decomposition (extension algorithm).

Weighted coreness on the undirected view: a node's weighted degree is
the sum of its incident edge weights (synthesised deterministically,
see :func:`repro.algorithms.deltastep.edge_weights`), and peeling
removes minimum-weighted-degree nodes, clamping every decrement at the
current peel level so coreness is monotone — the standard weighted
generalisation of k-core.

Batch peeling is *order-independent*: removing the whole minimum
bucket at once applies, per surviving neighbour, the same clamped
total decrement as removing its members one at a time (the clamp
commutes with the subtraction because degrees never sit below the
level).  That makes the bucket runtime a drop-in: the traced variant
peels bucket-by-bucket through a
:class:`~repro.algorithms.runtime.BucketQueue` while the pure oracle
peels one node at a time from a binary heap, and both must produce
identical coreness.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.algorithms.common import NODE_BYTES, OFFSET_BYTES
from repro.algorithms.deltastep import edge_weights
from repro.algorithms.runtime import (
    BucketQueue,
    TraceEmitter,
    interleave_fields,
    run_field,
    segment_sums,
)
from repro.cache.layout import Memory
from repro.graph.csr import CSRGraph


def weighted_core_decomposition(graph: CSRGraph) -> np.ndarray:
    """Weighted coreness per node (heap peel; the traced oracle)."""
    undirected = graph.undirected()
    n = undirected.num_nodes
    offsets = undirected.offsets
    adjacency = undirected.adjacency
    weights = edge_weights(undirected)
    degree = np.zeros(n, dtype=np.int64)
    np.add.at(degree, np.repeat(
        np.arange(n), np.diff(offsets).astype(np.int64)
    ), weights)
    coreness = np.zeros(n, dtype=np.int64)
    removed = np.zeros(n, dtype=bool)
    heap = [(int(degree[u]), u) for u in range(n)]
    heapq.heapify(heap)
    level = 0
    while heap:
        deg_u, u = heapq.heappop(heap)
        if removed[u] or deg_u != degree[u]:
            continue  # stale heap entry
        level = max(level, deg_u)
        coreness[u] = level
        removed[u] = True
        start = int(offsets[u])
        end = int(offsets[u + 1])
        for i, v in enumerate(adjacency[start:end].tolist()):
            if removed[v]:
                continue
            lowered = max(int(degree[v]) - int(weights[start + i]), level)
            if lowered != degree[v]:
                degree[v] = lowered
                heapq.heappush(heap, (lowered, v))
    return coreness


def weighted_core_decomposition_traced(
    graph: CSRGraph, memory: Memory
) -> np.ndarray:
    """Weighted coreness with traced memory accesses.

    Runtime-backed batch peel: pop the minimum weighted-degree bucket,
    peel every still-valid node in it as one frontier, apply the
    clamped decrements to surviving neighbours in one scatter, and
    push the lowered neighbours into their new buckets.  Emits per
    round one block: per peeled node the ``degree`` read, ``coreness``
    write and ``offsets`` touch, the adjacency and ``weights`` spans,
    then per edge the surviving neighbour's ``degree`` update.

    Coreness equals :func:`weighted_core_decomposition` (the
    sequential heap oracle); like DSSSP there is no scalar trace twin
    — the touch sequence is the batch peel's own.
    """
    undirected = graph.undirected()
    n = undirected.num_nodes
    m = undirected.num_edges
    offsets = undirected.offsets
    adjacency = undirected.adjacency.astype(np.int64, copy=False)
    weights = edge_weights(undirected)
    traced_offsets = memory.array("u_offsets", n + 1, OFFSET_BYTES)
    traced_adjacency = memory.array("u_adjacency", m, NODE_BYTES)
    traced_weights = memory.array("weights", m, NODE_BYTES)
    traced_degree = memory.array("degree", n, NODE_BYTES)
    traced_coreness = memory.array("coreness", n, NODE_BYTES)
    starts_all = offsets[:-1].astype(np.int64, copy=False)
    degrees_all = (
        offsets[1:].astype(np.int64, copy=False) - starts_all
    )
    degree = np.zeros(n, dtype=np.int64)
    np.add.at(degree, np.repeat(np.arange(n), degrees_all), weights)
    emitter = TraceEmitter(memory)
    if n:
        # Initial weighted-degree build: one sequential sweep.
        traced_degree.touch_runs(
            np.zeros(1, dtype=np.int64), np.array([n], dtype=np.int64)
        )
    coreness = np.zeros(n, dtype=np.int64)
    removed = np.zeros(n, dtype=bool)
    queue = BucketQueue()
    queue.push(degree, np.arange(n, dtype=np.int64))
    level = 0
    while not queue.empty:
        key, popped = queue.pop_bucket()
        valid = popped[~removed[popped] & (degree[popped] == key)]
        if valid.shape[0] == 0:
            continue
        valid = np.unique(valid)
        level = max(level, key)
        coreness[valid] = level
        removed[valid] = True
        starts = starts_all[valid]
        degs = degrees_all[valid]
        total = int(degs.sum())
        flat = np.repeat(starts, degs) + (
            np.arange(total, dtype=np.int64)
            - np.repeat(np.cumsum(degs) - degs, degs)
        )
        targets = adjacency[flat]
        survives = ~removed[targets]
        drop = np.zeros(n, dtype=np.int64)
        np.add.at(drop, targets[survives], weights[flat[survives]])
        touched = np.flatnonzero(drop)
        lowered = np.maximum(degree[touched] - drop[touched], level)
        changed = touched[lowered != degree[touched]]
        degree[touched] = lowered
        num_valid = int(valid.shape[0])
        ones = np.ones(num_valid, dtype=np.int64)
        adj_runs = run_field(traced_adjacency, starts, degs)
        weight_runs = run_field(traced_weights, starts, degs)
        lines, demand = interleave_fields([
            (ones, traced_degree.element_lines(valid), None),
            (ones, traced_coreness.element_lines(valid), None),
            (ones, traced_offsets.element_lines(valid), None),
            adj_runs.as_field(),
            weight_runs.as_field(),
            (segment_sums(survives, degs),
             traced_degree.element_lines(targets[survives]), None),
        ])
        emitter.flush(
            lines, demand,
            adj_runs.extra_l1 + weight_runs.extra_l1,
            adj_runs.prefetched + weight_runs.prefetched,
        )
        if changed.shape[0]:
            queue.push(degree[changed], changed)
    return coreness
