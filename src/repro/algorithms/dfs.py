"""DFS — whole-graph depth-first search.

Iterative DFS with an explicit stack, neighbours pushed in reverse so
the lexicographically smallest pops first.  Visited flags are set at
push time (the standard explicit-stack discipline — the ChDFS
*ordering* uses exactly the same discipline, which is what makes it
the fastest ordering for this algorithm in the replication).

Returns the preorder visit number of every node.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import NODE_BYTES, declare_graph
from repro.cache.layout import Memory
from repro.graph.csr import CSRGraph


def depth_first_search(graph: CSRGraph) -> np.ndarray:
    """Whole-graph DFS; returns per-node preorder visit index."""
    n = graph.num_nodes
    offsets = graph.offsets
    adjacency = graph.adjacency
    visited = np.zeros(n, dtype=bool)
    preorder = np.empty(n, dtype=np.int64)
    counter = 0
    for root in range(n):
        if visited[root]:
            continue
        visited[root] = True
        stack = [root]
        while stack:
            u = stack.pop()
            preorder[u] = counter
            counter += 1
            neighbors = adjacency[offsets[u]:offsets[u + 1]]
            for i in range(neighbors.shape[0] - 1, -1, -1):
                v = int(neighbors[i])
                if not visited[v]:
                    visited[v] = True
                    stack.append(v)
    return preorder


def depth_first_search_traced(
    graph: CSRGraph, memory: Memory
) -> np.ndarray:
    """Whole-graph DFS with traced memory accesses."""
    n = graph.num_nodes
    traced = declare_graph(memory, graph)
    traced_visited = memory.array("visited", n, 1)
    traced_preorder = memory.array("preorder", n, NODE_BYTES)
    traced_stack = memory.array("stack", n, NODE_BYTES)
    offsets = graph.offsets
    adjacency = graph.adjacency
    visited = np.zeros(n, dtype=bool)
    preorder = np.empty(n, dtype=np.int64)
    counter = 0
    touch_visited = traced_visited.touch
    touch_stack = traced_stack.touch
    for root in range(n):
        # Restart scan probes the visited flag.
        touch_visited(root)  # repro: noqa[REP007]
        if visited[root]:
            continue
        visited[root] = True
        stack = [root]
        touch_stack(0)  # repro: noqa[REP007]
        while stack:
            touch_stack(len(stack) - 1)  # repro: noqa[REP007]
            u = stack.pop()
            traced_preorder.touch(u)  # repro: noqa[REP007]
            preorder[u] = counter
            counter += 1
            traced.offsets.touch(u)  # repro: noqa[REP007]
            start = int(offsets[u])
            end = int(offsets[u + 1])
            traced.adjacency.touch_run(start, end - start)
            neighbors = adjacency[start:end]
            for i in range(neighbors.shape[0] - 1, -1, -1):
                v = int(neighbors[i])
                touch_visited(v)  # repro: noqa[REP007]
                if not visited[v]:
                    visited[v] = True
                    stack.append(v)
                    touch_stack(len(stack) - 1)  # repro: noqa[REP007]
    return preorder
