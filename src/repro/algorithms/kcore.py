"""Kcore — core decomposition by peeling.

Recursively removes the minimum-degree node of the undirected view; a
node's *core number* is the peel level ``k`` current when it is
removed.  Following the replication, degrees live in a **binary heap**
with lazy invalidation (stale entries skipped at pop), giving the
quasi-linear O(m log n) variant — and giving the cache model the heap
traffic to account, via :class:`TracedBinaryHeap`.
"""

from __future__ import annotations

import numpy as np

from repro.algorithms.common import NODE_BYTES
from repro.algorithms.traced_heap import TracedBinaryHeap
from repro.cache.layout import Memory
from repro.graph.csr import CSRGraph


def core_decomposition(graph: CSRGraph) -> np.ndarray:
    """Core number of every node (on the undirected view)."""
    return _peel(graph, memory=None)


def core_decomposition_traced(
    graph: CSRGraph, memory: Memory
) -> np.ndarray:
    """Core decomposition with traced memory accesses."""
    return _peel(graph, memory=memory)


def _peel(graph: CSRGraph, memory: Memory | None) -> np.ndarray:
    undirected = graph.undirected()
    n = undirected.num_nodes
    offsets = undirected.offsets
    adjacency = undirected.adjacency
    degrees = np.diff(offsets).astype(np.int64)
    if memory is None:
        heap = TracedBinaryHeap(None)
        touch_degree = _no_touch
        touch_core = _no_touch
        touch_removed = _no_touch
        traced_offsets = traced_adjacency = None
    else:
        # Heap capacity: one initial entry per node plus one re-push per
        # undirected edge endpoint decrement.
        heap = TracedBinaryHeap.declare(
            memory, "kcore_heap", n + undirected.num_edges
        )
        traced_offsets = memory.array("u_offsets", n + 1, 8)
        traced_adjacency = memory.array(
            "u_adjacency", undirected.num_edges, NODE_BYTES
        )
        touch_degree = memory.array("degree", n, NODE_BYTES).touch
        touch_core = memory.array("core", n, NODE_BYTES).touch
        touch_removed = memory.array("removed", n, 1).touch
    core = np.zeros(n, dtype=np.int64)
    removed = np.zeros(n, dtype=bool)
    for u in range(n):
        heap.push(int(degrees[u]), u)
    level = 0
    for _ in range(n):
        while True:
            key, u = heap.pop()
            touch_removed(u)  # repro: noqa[REP007]
            if removed[u]:
                continue  # lazily invalidated entry
            touch_degree(u)  # repro: noqa[REP007]
            if key == int(degrees[u]):
                break
        removed[u] = True
        if key > level:
            level = key
        core[u] = level
        touch_core(u)  # repro: noqa[REP007]
        if traced_offsets is not None:
            traced_offsets.touch(u)  # repro: noqa[REP007]
        start = int(offsets[u])
        end = int(offsets[u + 1])
        if traced_adjacency is not None:
            traced_adjacency.touch_run(start, end - start)
        for v in adjacency[start:end].tolist():
            touch_removed(v)  # repro: noqa[REP007]
            if not removed[v]:
                touch_degree(v)  # repro: noqa[REP007]
                degrees[v] -= 1
                heap.push(int(degrees[v]), v)
    return core


def _no_touch(index: int) -> None:
    """Untraced placeholder touch."""
