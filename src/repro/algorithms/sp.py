"""SP — single-source shortest paths via queue-based Bellman-Ford.

The paper uses Bellman-Ford "with simple optimisations"; the standard
such optimisation is the queue-based variant (SPFA): only nodes whose
distance improved are re-relaxed.  On the unweighted datasets each
edge relaxation costs one random ``distance[v]`` access — the access a
good ordering accelerates.  Runs in O(Delta * m) like the paper notes,
with Delta the (small) diameter.

Unreachable nodes keep distance :data:`INFINITY`.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.algorithms.common import NODE_BYTES, TracedGraph, declare_graph
from repro.cache.layout import Memory, TracedArray
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

#: Distance assigned to unreachable nodes.
INFINITY = np.iinfo(np.int64).max


def shortest_paths(
    graph: CSRGraph,
    source: int = 0,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """SPFA distances from ``source`` (unreachable = :data:`INFINITY`).

    ``weights`` optionally assigns an integer weight to every edge,
    aligned with ``graph.adjacency`` (the flattened, per-source-sorted
    edge order).  Bellman-Ford's reason to exist: weights may be
    negative, as long as no negative cycle is reachable (detected and
    reported).  Without weights every edge costs 1 hop.
    """
    _check_source(graph, source)
    weights = _check_weights(graph, weights)
    n = graph.num_nodes
    offsets = graph.offsets
    adjacency = graph.adjacency
    distance = np.full(n, INFINITY, dtype=np.int64)
    in_queue = np.zeros(n, dtype=bool)
    relaxations = np.zeros(n, dtype=np.int64)
    distance[source] = 0
    queue = deque([source])
    in_queue[source] = True
    while queue:
        u = queue.popleft()
        in_queue[u] = False
        base = distance[u]
        start = int(offsets[u])
        row = adjacency[start:int(offsets[u + 1])].tolist()
        for i, v in enumerate(row):
            step = 1 if weights is None else int(weights[start + i])
            candidate = base + step
            if candidate < distance[v]:
                distance[v] = candidate
                relaxations[v] += 1
                if relaxations[v] > n:
                    raise InvalidParameterError(
                        "negative cycle reachable from the source"
                    )
                if not in_queue[v]:
                    in_queue[v] = True
                    queue.append(v)
    return distance


def _check_weights(
    graph: CSRGraph, weights: np.ndarray | None
) -> np.ndarray | None:
    if weights is None:
        return None
    weights = np.asarray(weights)
    if weights.shape != (graph.num_edges,):
        raise InvalidParameterError(
            f"weights must have one entry per edge "
            f"({graph.num_edges}), got shape {weights.shape}"
        )
    if not np.issubdtype(weights.dtype, np.integer):
        raise InvalidParameterError(
            f"weights must be integers, got dtype {weights.dtype}"
        )
    return weights.astype(np.int64, copy=False)


def shortest_paths_traced(
    graph: CSRGraph, memory: Memory, source: int = 0
) -> np.ndarray:
    """SPFA with traced memory accesses."""
    _check_source(graph, source)
    traced = declare_graph(memory, graph)
    n = graph.num_nodes
    arrays = _declare_sp_arrays(memory, n, suffix="")
    return _sp_traced_core(graph, traced, arrays, source)


def _check_source(graph: CSRGraph, source: int) -> None:
    if not 0 <= source < max(graph.num_nodes, 1):
        raise InvalidParameterError(
            f"source {source} out of range for {graph.num_nodes} nodes"
        )


def _declare_sp_arrays(
    memory: Memory, n: int, suffix: str
) -> dict[str, TracedArray]:
    """Declare the SP property arrays (reused across Diameter runs)."""
    return {
        "distance": memory.array(f"distance{suffix}", n, NODE_BYTES),
        "in_queue": memory.array(f"in_queue{suffix}", n, 1),
        "queue": memory.array(f"queue{suffix}", n, NODE_BYTES),
    }


def _sp_traced_core(
    graph: CSRGraph,
    traced: TracedGraph,
    arrays: dict[str, TracedArray],
    source: int,
) -> np.ndarray:
    """One traced SPFA run over pre-declared arrays."""
    n = graph.num_nodes
    offsets = graph.offsets
    adjacency = graph.adjacency
    distance = np.full(n, INFINITY, dtype=np.int64)
    in_queue = np.zeros(n, dtype=bool)
    touch_distance = arrays["distance"].touch
    touch_in_queue = arrays["in_queue"].touch
    touch_queue = arrays["queue"].touch
    distance[source] = 0
    touch_distance(source)
    queue = deque([source])
    in_queue[source] = True
    touch_in_queue(source)
    head = 0  # position in the modelled circular queue array
    tail = 1
    touch_queue(0)
    while queue:
        touch_queue(head % n)
        head += 1
        u = queue.popleft()
        in_queue[u] = False
        touch_in_queue(u)
        touch_distance(u)
        candidate = distance[u] + 1
        traced.offsets.touch(u)
        start = int(offsets[u])
        end = int(offsets[u + 1])
        traced.adjacency.touch_run(start, end - start)
        for v in adjacency[start:end].tolist():
            touch_distance(v)
            if candidate < distance[v]:
                distance[v] = candidate
                touch_in_queue(v)
                if not in_queue[v]:
                    in_queue[v] = True
                    queue.append(v)
                    touch_queue(tail % n)
                    tail += 1
    return distance
