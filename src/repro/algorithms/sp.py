"""SP — single-source shortest paths via queue-based Bellman-Ford.

The paper uses Bellman-Ford "with simple optimisations"; the standard
such optimisation is the queue-based variant (SPFA): only nodes whose
distance improved are re-relaxed.  On the unweighted datasets each
edge relaxation costs one random ``distance[v]`` access — the access a
good ordering accelerates.  Runs in O(Delta * m) like the paper notes,
with Delta the (small) diameter.

Unreachable nodes keep distance :data:`INFINITY`.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.algorithms.common import NODE_BYTES, TracedGraph, declare_graph
from repro.algorithms.runtime import (
    Frontier,
    TraceEmitter,
    interleave_fields,
    run_field,
    segment_sums,
)
from repro.cache.layout import Memory, TracedArray
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

#: Distance assigned to unreachable nodes.
INFINITY = np.iinfo(np.int64).max


def shortest_paths(
    graph: CSRGraph,
    source: int = 0,
    weights: np.ndarray | None = None,
) -> np.ndarray:
    """SPFA distances from ``source`` (unreachable = :data:`INFINITY`).

    ``weights`` optionally assigns an integer weight to every edge,
    aligned with ``graph.adjacency`` (the flattened, per-source-sorted
    edge order).  Bellman-Ford's reason to exist: weights may be
    negative, as long as no negative cycle is reachable (detected and
    reported).  Without weights every edge costs 1 hop.
    """
    _check_source(graph, source)
    weights = _check_weights(graph, weights)
    n = graph.num_nodes
    offsets = graph.offsets
    adjacency = graph.adjacency
    distance = np.full(n, INFINITY, dtype=np.int64)
    in_queue = np.zeros(n, dtype=bool)
    relaxations = np.zeros(n, dtype=np.int64)
    distance[source] = 0
    queue = deque([source])
    in_queue[source] = True
    while queue:
        u = queue.popleft()
        in_queue[u] = False
        base = distance[u]
        start = int(offsets[u])
        row = adjacency[start:int(offsets[u + 1])].tolist()
        for i, v in enumerate(row):
            step = 1 if weights is None else int(weights[start + i])
            candidate = base + step
            if candidate < distance[v]:
                distance[v] = candidate
                relaxations[v] += 1
                if relaxations[v] > n:
                    raise InvalidParameterError(
                        "negative cycle reachable from the source"
                    )
                if not in_queue[v]:
                    in_queue[v] = True
                    queue.append(v)
    return distance


def _check_weights(
    graph: CSRGraph, weights: np.ndarray | None
) -> np.ndarray | None:
    if weights is None:
        return None
    weights = np.asarray(weights)
    if weights.shape != (graph.num_edges,):
        raise InvalidParameterError(
            f"weights must have one entry per edge "
            f"({graph.num_edges}), got shape {weights.shape}"
        )
    if not np.issubdtype(weights.dtype, np.integer):
        raise InvalidParameterError(
            f"weights must be integers, got dtype {weights.dtype}"
        )
    return weights.astype(np.int64, copy=False)


def shortest_paths_traced(
    graph: CSRGraph, memory: Memory, source: int = 0
) -> np.ndarray:
    """SPFA with traced memory accesses.

    Runtime-backed: the traced variant is unweighted, and unweighted
    SPFA from a FIFO queue is level-synchronous — a node's distance
    improves exactly once (from :data:`INFINITY` to its hop depth), it
    is never re-queued, and the queue holds each depth contiguously —
    so each depth advances as one frontier with one assembled access
    block.  Touch-sequence identical to
    :func:`shortest_paths_traced_scalar`.
    """
    _check_source(graph, source)
    traced = declare_graph(memory, graph)
    n = graph.num_nodes
    arrays = _declare_sp_arrays(memory, n, suffix="")
    return _sp_runtime_core(graph, traced, arrays, source, memory)


def shortest_paths_traced_scalar(
    graph: CSRGraph, memory: Memory, source: int = 0
) -> np.ndarray:
    """Scalar-loop SPFA emitter: the runtime port's oracle."""
    _check_source(graph, source)
    traced = declare_graph(memory, graph)
    n = graph.num_nodes
    arrays = _declare_sp_arrays(memory, n, suffix="")
    return _sp_traced_core(graph, traced, arrays, source)


def _check_source(graph: CSRGraph, source: int) -> None:
    if not 0 <= source < max(graph.num_nodes, 1):
        raise InvalidParameterError(
            f"source {source} out of range for {graph.num_nodes} nodes"
        )


def _declare_sp_arrays(
    memory: Memory, n: int, suffix: str
) -> dict[str, TracedArray]:
    """Declare the SP property arrays (reused across Diameter runs)."""
    return {
        "distance": memory.array(f"distance{suffix}", n, NODE_BYTES),
        "in_queue": memory.array(f"in_queue{suffix}", n, 1),
        "queue": memory.array(f"queue{suffix}", n, NODE_BYTES),
    }


def _sp_runtime_core(
    graph: CSRGraph,
    traced: TracedGraph,
    arrays: dict[str, TracedArray],
    source: int,
    memory: Memory,
) -> np.ndarray:
    """One runtime-backed SPFA run over pre-declared arrays.

    Emits, per depth, one block holding for every frontier node the
    queue pop (modulo-``n`` slot), the ``in_queue`` clear, the
    ``distance`` read and the ``offsets`` touch, then the adjacency
    ``touch_run`` span, then per edge the ``distance`` probe and — on
    improvement, which in the unweighted run means first discovery —
    the ``in_queue`` set and queue push.
    """
    n = graph.num_nodes
    offsets = graph.offsets
    adjacency = graph.adjacency
    t_distance = arrays["distance"]
    t_in_queue = arrays["in_queue"]
    t_queue = arrays["queue"]
    emitter = TraceEmitter(memory)
    distance = np.full(n, INFINITY, dtype=np.int64)
    distance[source] = 0
    source_idx = np.array([source], dtype=np.int64)
    emitter.flush(np.concatenate([
        t_distance.element_lines(source_idx),
        t_in_queue.element_lines(source_idx),
        t_queue.element_lines(np.zeros(1, dtype=np.int64)),
    ]))
    frontier = Frontier(source_idx, n)
    head, tail, depth = 0, 1, 0
    while frontier.size:
        edges = frontier.advance(offsets, adjacency)
        targets = edges.targets
        # candidate < distance[v] with candidate = depth + 1 holds
        # exactly for still-infinite targets; the first improving edge
        # claims the node (later same-level edges see depth + 1).
        newly = frontier.first_claims(
            edges, distance[targets] == INFINITY
        )
        discovered = targets[newly]
        num_discovered = int(discovered.shape[0])
        size = frontier.size
        ones = np.ones(size, dtype=np.int64)
        runs = run_field(traced.adjacency, edges.starts, edges.degrees)
        push_at = (tail + np.cumsum(newly) - 1) % n
        edge_lines, edge_demand = interleave_fields([
            (np.ones(edges.total, dtype=np.int64),
             t_distance.element_lines(targets), None),
            (newly.astype(np.int64),
             t_in_queue.element_lines(discovered), None),
            (newly.astype(np.int64),
             t_queue.element_lines(push_at[newly]), None),
        ])
        lines, demand = interleave_fields([
            (ones, t_queue.element_lines(
                (head + np.arange(size, dtype=np.int64)) % n), None),
            (ones, t_in_queue.element_lines(frontier.nodes), None),
            (ones, t_distance.element_lines(frontier.nodes), None),
            (ones, traced.offsets.element_lines(frontier.nodes), None),
            runs.as_field(),
            (edges.degrees + 2 * segment_sums(newly, edges.degrees),
             edge_lines, edge_demand),
        ])
        emitter.flush(lines, demand, runs.extra_l1, runs.prefetched)
        depth += 1
        distance[discovered] = depth
        head += size
        tail += num_discovered
        frontier = Frontier(discovered, n)
    return distance


def _sp_traced_core(
    graph: CSRGraph,
    traced: TracedGraph,
    arrays: dict[str, TracedArray],
    source: int,
) -> np.ndarray:
    """One traced SPFA run over pre-declared arrays (scalar oracle)."""
    n = graph.num_nodes
    offsets = graph.offsets
    adjacency = graph.adjacency
    distance = np.full(n, INFINITY, dtype=np.int64)
    in_queue = np.zeros(n, dtype=bool)
    touch_distance = arrays["distance"].touch
    touch_in_queue = arrays["in_queue"].touch
    touch_queue = arrays["queue"].touch
    distance[source] = 0
    touch_distance(source)
    queue = deque([source])
    in_queue[source] = True
    touch_in_queue(source)
    head = 0  # position in the modelled circular queue array
    tail = 1
    touch_queue(0)
    while queue:
        touch_queue(head % n)  # repro: noqa[REP007] — scalar oracle
        head += 1
        u = queue.popleft()
        in_queue[u] = False
        touch_in_queue(u)  # repro: noqa[REP007] — scalar oracle
        touch_distance(u)  # repro: noqa[REP007] — scalar oracle
        candidate = distance[u] + 1
        traced.offsets.touch(u)  # repro: noqa[REP007] — scalar oracle
        start = int(offsets[u])
        end = int(offsets[u + 1])
        traced.adjacency.touch_run(start, end - start)
        for v in adjacency[start:end].tolist():
            touch_distance(v)  # repro: noqa[REP007] — scalar oracle
            if candidate < distance[v]:
                distance[v] = candidate
                touch_in_queue(v)  # repro: noqa[REP007] — scalar oracle
                if not in_queue[v]:
                    in_queue[v] = True
                    queue.append(v)
                    touch_queue(tail % n)  # repro: noqa[REP007] — oracle
                    tail += 1
    return distance
