"""Diam — diameter estimation by repeated shortest-path runs.

Following the paper: run the SP algorithm from randomly chosen source
nodes and report the largest finite distance seen.  The paper uses
5000 repetitions; accuracy is irrelevant here (the point is the memory
traffic of repeated SP runs), so experiment profiles use far fewer.

Sources are chosen by the caller (the experiment runner picks them
once per dataset and maps them through each ordering's permutation so
every ordering does identical logical work) or drawn from ``seed``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.algorithms.common import declare_graph
from repro.algorithms.sp import (
    INFINITY,
    _declare_sp_arrays,
    _sp_runtime_core,
    _sp_traced_core,
    shortest_paths,
)
from repro.cache.layout import Memory
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

#: Default number of SP repetitions (the paper uses 5000).
DEFAULT_SOURCES = 16


def pick_sources(
    graph: CSRGraph, num_sources: int = DEFAULT_SOURCES, seed: int = 0
) -> np.ndarray:
    """Deterministically draw SP source nodes for the estimate."""
    if num_sources < 1:
        raise InvalidParameterError(
            f"num_sources must be positive, got {num_sources}"
        )
    if graph.num_nodes == 0:
        raise InvalidParameterError("cannot pick sources in an empty graph")
    rng = np.random.default_rng(seed)
    return rng.integers(
        0, graph.num_nodes, size=num_sources, dtype=np.int64
    )


def diameter(
    graph: CSRGraph,
    sources: Sequence[int] | None = None,
    num_sources: int = DEFAULT_SOURCES,
    seed: int = 0,
) -> int:
    """Max finite SP distance over the source sample."""
    if sources is None:
        sources = pick_sources(graph, num_sources, seed)
    best = 0
    for source in sources:
        distance = shortest_paths(graph, int(source))
        finite = distance[distance != INFINITY]
        if finite.shape[0]:
            best = max(best, int(finite.max()))
    return best


def diameter_traced(
    graph: CSRGraph,
    memory: Memory,
    sources: Sequence[int] | None = None,
    num_sources: int = DEFAULT_SOURCES,
    seed: int = 0,
) -> int:
    """Diameter estimate with traced memory accesses.

    The SP property arrays are declared once and reused across runs,
    as a C implementation reusing its buffers would.  Each run is a
    runtime-backed SPFA (see :func:`repro.algorithms.sp.
    shortest_paths_traced`); touch-sequence identical to
    :func:`diameter_traced_scalar`.
    """
    if sources is None:
        sources = pick_sources(graph, num_sources, seed)
    traced = declare_graph(memory, graph)
    arrays = _declare_sp_arrays(memory, graph.num_nodes, suffix="")
    best = 0
    for source in sources:
        distance = _sp_runtime_core(
            graph, traced, arrays, int(source), memory
        )
        finite = distance[distance != INFINITY]
        if finite.shape[0]:
            best = max(best, int(finite.max()))
    return best


def diameter_traced_scalar(
    graph: CSRGraph,
    memory: Memory,
    sources: Sequence[int] | None = None,
    num_sources: int = DEFAULT_SOURCES,
    seed: int = 0,
) -> int:
    """Scalar-loop diameter emitter: the runtime port's oracle."""
    if sources is None:
        sources = pick_sources(graph, num_sources, seed)
    traced = declare_graph(memory, graph)
    arrays = _declare_sp_arrays(memory, graph.num_nodes, suffix="")
    best = 0
    for source in sources:
        distance = _sp_traced_core(graph, traced, arrays, int(source))
        finite = distance[distance != INFINITY]
        if finite.shape[0]:
            best = max(best, int(finite.max()))
    return best
