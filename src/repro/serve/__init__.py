"""Ordering-as-a-service: the ``repro-gorder serve`` daemon.

The paper's premise is that an ordering's cost is amortised across
many subsequent algorithm runs.  That only pays off in a long-lived
process that keeps orderings warm and serves many requests — this
package is that process.  It owns loaded graphs and precomputed
orderings in memory and answers concurrent HTTP/JSON requests:

* ``POST /order`` — compute (or fetch) an ordering
* ``POST /run``   — run algorithm X on dataset Y under ordering Z
* ``GET  /stats`` — store/queue/counter statistics
* ``GET  /health``— liveness and drain state
* ``POST /shutdown`` — request a graceful drain

Robustness is the headline: a bounded admission queue with explicit
backpressure (429 + ``Retry-After``), per-request deadlines with
cooperative cancellation checkpoints (504 + partial-progress
telemetry), single-flight deduplication of identical computations,
retry/backoff on transient worker failures, a crash-safe sharded
:class:`~repro.serve.store.OrderingStore` that spills to disk through
the atomic :mod:`repro.ioutil` layer and quarantines corrupt spill
files, and graceful drain on SIGTERM/SIGINT.  See ``docs/serving.md``.
"""

from repro.serve.admission import (
    AdmissionQueue,
    Deadline,
    RequestContext,
    SingleFlight,
)
from repro.serve.protocol import (
    BadRequestError,
    DeadlineExceededError,
    DrainingError,
    NotFoundError,
    OrderRequest,
    QueueFullError,
    RequestCancelledError,
    RunRequest,
    ServeError,
)
from repro.serve.server import (
    OrderingService,
    ServeConfig,
    serve,
)
from repro.serve.store import OrderingStore, StoreEntry

__all__ = [
    "AdmissionQueue",
    "BadRequestError",
    "Deadline",
    "DeadlineExceededError",
    "DrainingError",
    "NotFoundError",
    "OrderRequest",
    "OrderingService",
    "OrderingStore",
    "QueueFullError",
    "RequestCancelledError",
    "RequestContext",
    "RunRequest",
    "ServeConfig",
    "ServeError",
    "SingleFlight",
    "StoreEntry",
    "serve",
]
