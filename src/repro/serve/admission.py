"""Admission control: bounded queue, deadlines, cancellation, dedup.

The daemon separates *accepting* a request (the HTTP handler thread)
from *executing* it (a small fixed worker pool fed by a bounded
queue).  The queue is the backpressure mechanism: when it is full the
request is rejected immediately with 429 + ``Retry-After`` instead of
piling latency onto everyone already waiting — load must be shed at
the door, not discovered by timeout.

Deadlines are **cooperative**.  Each request carries a
:class:`RequestContext` whose :meth:`~RequestContext.checkpoint`
method is called at phase boundaries inside the ordering/run paths
(see :func:`repro.perf.runner.run_cell`'s ``cancel_check``); an
expired deadline or a cancellation raises there, so a worker abandons
doomed work at the next checkpoint instead of computing a result
nobody will read.

:class:`SingleFlight` deduplicates concurrent identical computations:
the first requester computes, everyone else waits on the same result.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from collections.abc import Callable
from concurrent.futures import Future
from typing import Any

from repro import obs
from repro.errors import InvalidParameterError
from repro.perf.faults import InjectedFault
from repro.serve.protocol import (
    DeadlineExceededError,
    DrainingError,
    QueueFullError,
    RequestCancelledError,
)

#: Exception types a worker attempt may be retried after.  Injected
#: faults stand in for any transient infrastructure failure in tests;
#: ``OSError`` covers real transient I/O (a full disk, a flaky spill).
RETRYABLE_ERRORS: tuple[type[BaseException], ...] = (
    InjectedFault,
    OSError,
)


class Deadline:
    """A wall-clock budget measured on the monotonic clock."""

    __slots__ = ("seconds", "_expires")

    def __init__(self, seconds: float | None) -> None:
        self.seconds = seconds
        self._expires = (
            None if seconds is None else time.monotonic() + seconds
        )

    def remaining(self) -> float | None:
        """Seconds left, or ``None`` for no deadline."""
        if self._expires is None:
            return None
        return self._expires - time.monotonic()

    def expired(self) -> bool:
        remaining = self.remaining()
        return remaining is not None and remaining <= 0


class RequestContext:
    """Per-request identity, deadline, phase and cancellation state.

    The ``phase`` attribute records the last completed checkpoint; it
    is the partial-progress telemetry a 504 response reports, so a
    client (and the trace) can see *how far* a doomed request got.
    """

    def __init__(
        self,
        request_id: str,
        deadline: Deadline,
        op: str = "request",
    ) -> None:
        self.request_id = request_id
        self.deadline = deadline
        self.op = op
        self.phase = "queued"
        self.started = time.monotonic()
        self._cancelled = threading.Event()
        #: Optional transport probe set by the HTTP handler; returns
        #: True when the client hung up (the handler-side wait polls
        #: it and cancels the request).
        self.disconnect_check: Callable[[], bool] | None = None

    def cancel(self) -> None:
        """Request cooperative cancellation (client gone / drain)."""
        self._cancelled.set()

    @property
    def cancelled(self) -> bool:
        return self._cancelled.is_set()

    def check(self) -> None:
        """Raise if the request is cancelled or past its deadline."""
        if self._cancelled.is_set():
            raise RequestCancelledError(
                f"request {self.request_id} cancelled",
                phase=self.phase,
            )
        if self.deadline.expired():
            raise DeadlineExceededError(
                f"request {self.request_id} exceeded its "
                f"{self.deadline.seconds:.3f}s deadline",
                phase=self.phase,
            )

    def checkpoint(self, phase: str) -> None:
        """Record a completed phase, then enforce deadline/cancel."""
        self.phase = phase
        self.check()

    def elapsed(self) -> float:
        return time.monotonic() - self.started


class ServiceCounters:
    """Thread-safe event counters, mirrored onto :mod:`repro.obs`.

    The obs registry is disabled unless the operator passed a log
    flag, but ``/stats`` must always report; so the service keeps its
    own always-on counters and forwards every increment to obs (where
    it lands in traces when telemetry is configured).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts: dict[str, int] = {}

    def inc(self, name: str, amount: int = 1) -> None:
        with self._lock:
            self._counts[name] = self._counts.get(name, 0) + amount

    def snapshot(self) -> dict[str, int]:
        with self._lock:
            return dict(self._counts)


class _Job:
    """One queued unit of work: a context plus the body to run."""

    __slots__ = ("ctx", "fn", "future")

    def __init__(
        self,
        ctx: RequestContext,
        fn: Callable[[RequestContext, int], Any],
    ) -> None:
        self.ctx = ctx
        self.fn = fn
        self.future: Future = Future()


class AdmissionQueue:
    """Bounded FIFO of jobs executed by a fixed worker pool.

    ``capacity`` bounds *waiting* jobs (running jobs do not count);
    a submit against a full queue raises :class:`QueueFullError`
    immediately — explicit backpressure.  ``retries`` re-attempts a
    job whose body raised one of :data:`RETRYABLE_ERRORS`, sleeping
    ``backoff_seconds * 2**(attempt-1)`` between attempts (the sleep
    polls the request's cancellation, so a deadline still fires
    during backoff).
    """

    def __init__(
        self,
        capacity: int = 8,
        workers: int = 2,
        retries: int = 0,
        backoff_seconds: float = 0.05,
        counters: ServiceCounters | None = None,
        retry_after: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise InvalidParameterError("capacity must be >= 1")
        if workers < 1:
            raise InvalidParameterError("workers must be >= 1")
        self.capacity = capacity
        self.retries = max(0, retries)
        self.backoff_seconds = backoff_seconds
        self.retry_after = retry_after
        self.counters = counters or ServiceCounters()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._queue: deque[_Job] = deque()
        self._inflight: dict[str, RequestContext] = {}
        self._draining = False
        self._closed = False
        self._ids = itertools.count(1)
        self._workers = [
            threading.Thread(
                target=self._worker_loop,
                name=f"serve-worker-{index}",
                daemon=True,
            )
            for index in range(workers)
        ]
        for thread in self._workers:
            thread.start()

    # -- submission ----------------------------------------------------
    def submit(
        self,
        ctx: RequestContext,
        fn: Callable[[RequestContext, int], Any],
    ) -> Future:
        """Enqueue a job, or reject it with backpressure/drain errors."""
        job = _Job(ctx, fn)
        with self._lock:
            if self._draining:
                self.counters.inc("serve.rejected_draining")
                obs.inc("serve.rejected_draining")
                raise DrainingError(
                    "service is draining; retry against a fresh "
                    "instance",
                    retry_after=self.retry_after,
                )
            if len(self._queue) >= self.capacity:
                self.counters.inc("serve.rejected_queue_full")
                obs.inc("serve.rejected_queue_full")
                raise QueueFullError(
                    f"admission queue is full "
                    f"({self.capacity} waiting)",
                    retry_after=self.retry_after,
                )
            self._queue.append(job)
            depth = len(self._queue)
            self._not_empty.notify()
        self.counters.inc("serve.admitted")
        obs.inc("serve.admitted")
        obs.event(
            "serve.enqueued",
            level="debug",
            request_id=ctx.request_id,
            queue_depth=depth,
        )
        return job.future

    # -- worker side ---------------------------------------------------
    def _next_job(self) -> _Job | None:
        with self._not_empty:
            while not self._queue and not self._closed:
                self._not_empty.wait(timeout=0.1)
            if self._queue:
                return self._queue.popleft()
            return None

    def _worker_loop(self) -> None:
        while True:
            job = self._next_job()
            if job is None:
                if self._closed:
                    return
                continue
            self._run_job(job)

    def _run_job(self, job: _Job) -> None:
        ctx = job.ctx
        if not job.future.set_running_or_notify_cancel():
            return
        with self._lock:
            self._inflight[ctx.request_id] = ctx
        try:
            result = self._attempts(job)
        # Counted by kind and propagated to the submitter through
        # the job future — never swallowed.
        except BaseException as exc:  # repro: noqa[REP003] — via future
            self._count_failure(exc)
            job.future.set_exception(exc)
        else:
            job.future.set_result(result)
        finally:
            with self._lock:
                self._inflight.pop(ctx.request_id, None)

    def _attempts(self, job: _Job) -> Any:
        ctx = job.ctx
        attempt = 0
        while True:
            ctx.check()  # don't start doomed work
            try:
                return job.fn(ctx, attempt)
            except RETRYABLE_ERRORS as exc:
                if attempt >= self.retries:
                    raise
                self.counters.inc("serve.retries")
                obs.inc("serve.retries")
                obs.event(
                    "serve.retry",
                    level="warning",
                    request_id=ctx.request_id,
                    attempt=attempt,
                    error=type(exc).__name__,
                )
                self._backoff(ctx, attempt)
                attempt += 1

    def _backoff(self, ctx: RequestContext, attempt: int) -> None:
        delay = self.backoff_seconds * (2**attempt)
        end = time.monotonic() + delay
        while True:
            ctx.check()
            remaining = end - time.monotonic()
            if remaining <= 0:
                return
            time.sleep(min(0.01, remaining))

    def _count_failure(self, exc: BaseException) -> None:
        if isinstance(exc, DeadlineExceededError):
            self.counters.inc("serve.deadline_exceeded")
            obs.inc("serve.deadline_exceeded")
        elif isinstance(exc, RequestCancelledError):
            self.counters.inc("serve.cancelled")
            obs.inc("serve.cancelled")
        else:
            self.counters.inc("serve.worker_errors")
            obs.inc("serve.worker_errors")

    # -- introspection -------------------------------------------------
    def next_request_id(self) -> str:
        return f"r{next(self._ids)}"

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "queue_depth": len(self._queue),
                "inflight": len(self._inflight),
                "workers": len(self._workers),
                "draining": self._draining,
            }

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    # -- drain ---------------------------------------------------------
    def drain(self, timeout: float = 5.0) -> dict:
        """Stop admitting, reject queued jobs, bound in-flight work.

        Queued-but-unstarted jobs are failed with
        :class:`DrainingError` (their submitters respond 503).
        In-flight jobs get until their own deadline — or ``timeout``
        seconds, whichever comes first — after which they are
        cooperatively cancelled.  Returns drain statistics.
        """
        with self._lock:
            self._draining = True
            abandoned = list(self._queue)
            self._queue.clear()
        for job in abandoned:
            self.counters.inc("serve.rejected_draining")
            obs.inc("serve.rejected_draining")
            job.future.set_exception(
                DrainingError(
                    "service is draining; request was never started",
                    retry_after=self.retry_after,
                )
            )
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            with self._lock:
                if not self._inflight:
                    break
            time.sleep(0.01)
        with self._lock:
            cancelled = list(self._inflight.values())
        for ctx in cancelled:
            ctx.cancel()
        # Give cancelled workers a moment to hit a checkpoint.
        grace = time.monotonic() + timeout
        while time.monotonic() < grace:
            with self._lock:
                if not self._inflight:
                    break
            time.sleep(0.01)
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            leftover = len(self._inflight)
        for thread in self._workers:
            thread.join(timeout=1.0)
        return {
            "rejected_queued": len(abandoned),
            "cancelled_inflight": len(cancelled),
            "unfinished": leftover,
        }


class _Flight:
    """State shared by the leader and followers of one key."""

    __slots__ = ("done", "result", "error", "followers")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.followers = 0


class SingleFlight:
    """Deduplicate concurrent calls for the same key.

    The first caller for a key becomes the *leader* and runs the
    function; callers arriving while it runs become *followers* and
    wait for the leader's result (bounded by their own deadline).  A
    leader's failure propagates to its followers — they can retry with
    a fresh flight.
    """

    def __init__(self, counters: ServiceCounters | None = None) -> None:
        self._lock = threading.Lock()
        self._flights: dict[Any, _Flight] = {}
        self.counters = counters or ServiceCounters()

    def do(
        self,
        key: Any,
        fn: Callable[[], Any],
        ctx: RequestContext | None = None,
    ) -> Any:
        """Run ``fn`` once per concurrent ``key``; share the result."""
        with self._lock:
            flight = self._flights.get(key)
            if flight is None:
                flight = _Flight()
                self._flights[key] = flight
                leader = True
            else:
                flight.followers += 1
                leader = False
        if leader:
            try:
                flight.result = fn()
            except BaseException as exc:
                flight.error = exc
                raise
            finally:
                with self._lock:
                    self._flights.pop(key, None)
                flight.done.set()
        else:
            self.counters.inc("serve.singleflight_shared")
            obs.inc("serve.singleflight_shared")
            self._wait(flight, ctx)
            if flight.error is not None:
                raise flight.error
        return flight.result

    @staticmethod
    def _wait(flight: _Flight, ctx: RequestContext | None) -> None:
        if ctx is None:
            flight.done.wait()
            return
        while True:
            ctx.check()
            if flight.done.wait(timeout=0.02):
                return
