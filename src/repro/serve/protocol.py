"""Wire protocol of the ordering service: requests, errors, shaping.

The protocol is deliberately plain: JSON bodies over HTTP/1.1, no
custom framing, so ``curl`` is a complete client.  Every error the
service raises deliberately derives from :class:`ServeError`, which
carries the HTTP status code the transport layer should map it to —
the handler catches one type at the boundary (the same convention the
CLI uses with :class:`~repro.errors.ReproError`).

Status-code semantics (documented in ``docs/serving.md``):

* ``400`` — malformed request (unknown dataset/ordering/field type)
* ``404`` — unknown endpoint
* ``429`` — admission queue full; ``Retry-After`` header set
* ``503`` — draining (shutdown in progress); ``Retry-After`` set
* ``504`` — per-request deadline exceeded; the body carries
  partial-progress telemetry (the last completed phase)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.algorithms import ALGORITHM_NAMES
from repro.errors import ReproError
from repro.ordering import ALL_ORDERING_NAMES
from repro.perf.runner import RunResult

#: Protocol version reported by ``/health`` and spill metadata.
PROTOCOL_VERSION = 1


class ServeError(ReproError):
    """Base class for errors the service maps onto HTTP statuses."""

    status = 500
    code = "internal"


class BadRequestError(ServeError):
    """The request body could not be validated."""

    status = 400
    code = "bad_request"


class NotFoundError(ServeError):
    """No such endpoint."""

    status = 404
    code = "not_found"


class QueueFullError(ServeError):
    """The admission queue is at capacity (backpressure)."""

    status = 429
    code = "queue_full"

    def __init__(self, message: str, retry_after: float = 1.0):
        super().__init__(message)
        self.retry_after = retry_after


class DrainingError(ServeError):
    """The service is draining and admits no new work."""

    status = 503
    code = "draining"

    def __init__(self, message: str, retry_after: float = 5.0):
        super().__init__(message)
        self.retry_after = retry_after


class DeadlineExceededError(ServeError):
    """The per-request deadline expired before the work finished."""

    status = 504
    code = "deadline_exceeded"

    def __init__(self, message: str, phase: str = "queued"):
        super().__init__(message)
        #: Last completed phase — partial-progress telemetry.
        self.phase = phase


class RequestCancelledError(ServeError):
    """The request was cancelled (client gone or drain cutoff).

    Status 499 is the de-facto "client closed request" convention;
    when the client is gone the response is unsendable anyway, so the
    status mostly feeds counters and logs.
    """

    status = 499
    code = "cancelled"

    def __init__(self, message: str, phase: str = "queued"):
        super().__init__(message)
        self.phase = phase


def _require_str(payload: dict, key: str, default: str | None = None,
                 choices: tuple[str, ...] | None = None) -> str:
    value = payload.get(key, default)
    if value is None:
        raise BadRequestError(f"missing required field {key!r}")
    if not isinstance(value, str):
        raise BadRequestError(f"field {key!r} must be a string")
    if choices is not None and value not in choices:
        known = ", ".join(choices)
        raise BadRequestError(
            f"unknown {key} {value!r}; known: {known}"
        )
    return value


def _optional_int(payload: dict, key: str, default: int) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise BadRequestError(f"field {key!r} must be an integer")
    return value


def _optional_number(
    payload: dict, key: str
) -> float | None:
    value = payload.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise BadRequestError(f"field {key!r} must be a number")
    if value <= 0:
        raise BadRequestError(f"field {key!r} must be > 0")
    return float(value)


def _optional_bool(payload: dict, key: str, default: bool) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise BadRequestError(f"field {key!r} must be a boolean")
    return value


def _ordering_params(payload: dict) -> dict:
    value = payload.get("ordering_params") or {}
    if not isinstance(value, dict) or not all(
        isinstance(key, str) for key in value
    ):
        raise BadRequestError(
            "field 'ordering_params' must be an object with "
            "string keys"
        )
    return dict(value)


@dataclass(frozen=True)
class OrderRequest:
    """A validated ``POST /order`` body."""

    dataset: str
    ordering: str = "gorder"
    seed: int = 0
    ordering_params: dict = field(default_factory=dict)
    include_permutation: bool = False
    deadline_seconds: float | None = None

    @classmethod
    def from_payload(cls, payload: Any) -> "OrderRequest":
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        return cls(
            dataset=_require_str(payload, "dataset"),
            ordering=_require_str(
                payload, "ordering", "gorder", ALL_ORDERING_NAMES
            ),
            seed=_optional_int(payload, "seed", 0),
            ordering_params=_ordering_params(payload),
            include_permutation=_optional_bool(
                payload, "include_permutation", False
            ),
            deadline_seconds=_optional_number(
                payload, "deadline_seconds"
            ),
        )


@dataclass(frozen=True)
class RunRequest:
    """A validated ``POST /run`` body."""

    dataset: str
    algorithm: str
    ordering: str = "gorder"
    seed: int | None = None
    ordering_params: dict = field(default_factory=dict)
    cache_backend: str = "replay"
    algo_backend: str = "runtime"
    profile: str = "quick"
    deadline_seconds: float | None = None

    @classmethod
    def from_payload(cls, payload: Any) -> "RunRequest":
        if not isinstance(payload, dict):
            raise BadRequestError("request body must be a JSON object")
        seed = payload.get("seed")
        if seed is not None and (
            isinstance(seed, bool) or not isinstance(seed, int)
        ):
            raise BadRequestError("field 'seed' must be an integer")
        return cls(
            dataset=_require_str(payload, "dataset"),
            algorithm=_require_str(
                payload, "algorithm", None, ALGORITHM_NAMES
            ),
            ordering=_require_str(
                payload, "ordering", "gorder", ALL_ORDERING_NAMES
            ),
            seed=seed,
            ordering_params=_ordering_params(payload),
            cache_backend=_require_str(
                payload, "cache_backend", "replay", ("step", "replay")
            ),
            algo_backend=_require_str(
                payload, "algo_backend", "runtime",
                ("runtime", "scalar"),
            ),
            profile=_require_str(payload, "profile", "quick"),
            deadline_seconds=_optional_number(
                payload, "deadline_seconds"
            ),
        )


def run_result_payload(result: RunResult) -> dict:
    """Shape a :class:`RunResult` for the ``/run`` response body."""
    stats = result.stats
    return {
        "dataset": result.dataset,
        "algorithm": result.algorithm,
        "ordering": result.ordering,
        "cycles": result.cycles,
        "execute_cycles": result.cost.execute_cycles,
        "stall_cycles": result.cost.stall_cycles,
        "l1_miss_rate": stats.l1_miss_rate,
        "cache_miss_rate": stats.cache_miss_rate,
        "ordering_seconds": result.ordering_seconds,
        "simulation_seconds": result.simulation_seconds,
    }


def error_payload(error: ServeError, request_id: str | None = None,
                  **extra: Any) -> dict:
    """Shape a :class:`ServeError` for an error response body."""
    payload: dict[str, Any] = {
        "error": error.code,
        "message": str(error),
    }
    if request_id is not None:
        payload["request_id"] = request_id
    phase = getattr(error, "phase", None)
    if phase is not None:
        payload["phase"] = phase
    retry_after = getattr(error, "retry_after", None)
    if retry_after is not None:
        payload["retry_after"] = retry_after
    payload.update(extra)
    return payload
