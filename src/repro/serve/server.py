"""The ``repro-gorder serve`` daemon: HTTP transport + service core.

Layering (transport is disposable, the service is the product):

* :class:`OrderingService` owns the loaded graphs, the crash-safe
  :class:`~repro.serve.store.OrderingStore`, the in-process
  :class:`~repro.perf.runner.OrderingCache` used by the run path, and
  the :class:`~repro.serve.admission.AdmissionQueue`.  It is fully
  testable without sockets.
* :class:`_Handler` maps HTTP requests onto service calls and
  :class:`~repro.serve.protocol.ServeError` subclasses onto status
  codes.  Handler threads *wait*; worker threads *compute*.
* :func:`serve` wires signals: SIGTERM/SIGINT trigger a graceful
  drain (stop admitting → 503, finish or cancel in-flight work by
  its deadline, exit 0) under a closed ``serve.drain`` span.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import socketserver
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any

from repro import obs, perf
from repro.errors import ReproError
from repro.graph import datasets
from repro.graph.csr import CSRGraph
from repro.perf.faults import FaultPlan
from repro.perf.runner import OrderingCache, run_cell
from repro.serve.admission import (
    AdmissionQueue,
    Deadline,
    RequestContext,
    ServiceCounters,
)
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    BadRequestError,
    DeadlineExceededError,
    NotFoundError,
    OrderRequest,
    RequestCancelledError,
    RunRequest,
    ServeError,
    error_payload,
    run_result_payload,
)
from repro.serve.store import OrderingStore

#: Extra handler-side wait beyond the request deadline, covering the
#: gap between a worker's cooperative checkpoints.
DEADLINE_GRACE_SECONDS = 0.25

#: Largest request body accepted (these are small JSON commands).
MAX_BODY_BYTES = 1 << 20


@dataclass
class ServeConfig:
    """Tunables of one daemon instance."""

    host: str = "127.0.0.1"
    port: int = 0
    #: Serve on a unix socket instead of TCP when set.
    socket_path: str | None = None
    workers: int = 2
    queue_capacity: int = 8
    #: Deadline applied when a request names none.
    default_deadline_seconds: float = 30.0
    #: Hard ceiling on any request's deadline.
    max_deadline_seconds: float = 300.0
    retries: int = 1
    backoff_seconds: float = 0.05
    #: Spill directory for the ordering store (``None`` = memory only).
    store_root: str | None = None
    store_shards: int = 8
    store_entries_per_shard: int = 64
    #: Seconds the drain waits for in-flight work before cancelling.
    drain_timeout_seconds: float = 5.0
    #: Suggested client wait on 429/503 responses.
    retry_after_seconds: float = 1.0
    #: Deterministic fault injection (tests / CI smoke).
    plan: FaultPlan = field(default_factory=FaultPlan)
    #: Datasets to load (and count) eagerly at startup.
    preload: tuple[str, ...] = ()


class OrderingService:
    """The daemon's core: graphs, orderings, admission, statistics."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.counters = ServiceCounters()
        self.store = OrderingStore(
            root=config.store_root,
            shards=config.store_shards,
            max_entries_per_shard=config.store_entries_per_shard,
            counters=self.counters,
        )
        self.warmed = self.store.warm()
        self.queue = AdmissionQueue(
            capacity=config.queue_capacity,
            workers=config.workers,
            retries=config.retries,
            backoff_seconds=config.backoff_seconds,
            counters=self.counters,
            retry_after=config.retry_after_seconds,
        )
        #: Private memo for the simulate path (not the global one, so
        #: one daemon's memory is its own).  Thread-safe since PR 7.
        self.cache = OrderingCache(max_entries=256)
        self._graphs: dict[str, CSRGraph] = {}
        self._graphs_lock = threading.Lock()
        self._started = time.monotonic()
        self._drained = threading.Event()
        self.shutdown_requested = threading.Event()
        for name in config.preload:
            self._graph(name)

    # -- shared plumbing -----------------------------------------------
    def _graph(self, name: str) -> CSRGraph:
        datasets.spec(name)  # unknown name raises before the lock
        with self._graphs_lock:
            graph = self._graphs.get(name)
            if graph is None:
                with obs.span("serve.load_graph", dataset=name):
                    graph = datasets.load(name)
                self._graphs[name] = graph
                self.counters.inc("serve.graphs_loaded")
                obs.inc("serve.graphs_loaded")
            return graph

    def context(self, op: str, deadline_seconds: float | None
                ) -> RequestContext:
        """A fresh request context with the clamped deadline."""
        seconds = (
            self.config.default_deadline_seconds
            if deadline_seconds is None
            else min(deadline_seconds, self.config.max_deadline_seconds)
        )
        ctx = RequestContext(
            self.queue.next_request_id(), Deadline(seconds), op=op
        )
        self.counters.inc("serve.requests")
        obs.inc("serve.requests")
        return ctx

    def _ordering_entry(
        self,
        graph: CSRGraph,
        request: OrderRequest | RunRequest,
        seed: int,
        ctx: RequestContext,
    ):
        """Fetch/compute the ordering through the shared store."""
        from repro.ordering import compute_ordering

        def compute():
            return compute_ordering(
                request.ordering,
                graph,
                seed=seed,
                **request.ordering_params,
            )

        return self.store.get_or_compute(
            request.dataset,
            request.ordering,
            seed,
            request.ordering_params,
            compute,
            ctx=ctx,
        )

    # -- endpoint bodies (run on worker threads) -----------------------
    def handle_order(
        self, request: OrderRequest, ctx: RequestContext
    ) -> dict:
        datasets.spec(request.dataset)  # reject before admission

        def job(job_ctx: RequestContext, attempt: int) -> dict:
            with obs.span(
                "serve.request",
                op="order",
                request_id=job_ctx.request_id,
                dataset=request.dataset,
                ordering=request.ordering,
            ):
                self.config.plan.apply_in_cell(
                    request.dataset,
                    "order",
                    request.ordering,
                    request.seed,
                    attempt,
                    cancel_check=job_ctx.check,
                )
                graph = self._graph(request.dataset)
                job_ctx.checkpoint("graph_loaded")
                entry = self._ordering_entry(
                    graph, request, request.seed, job_ctx
                )
                job_ctx.checkpoint("ordered")
                payload = {
                    "request_id": job_ctx.request_id,
                    "dataset": request.dataset,
                    "ordering": request.ordering,
                    "seed": request.seed,
                    "nodes": graph.num_nodes,
                    "ordering_seconds": entry.seconds,
                    "source": entry.source,
                }
                if request.include_permutation:
                    payload["permutation"] = [
                        int(value) for value in entry.perm
                    ]
                return payload

        return self._execute(ctx, job)

    def handle_run(
        self, request: RunRequest, ctx: RequestContext
    ) -> dict:
        datasets.spec(request.dataset)  # reject before admission
        profile = perf.get_profile(request.profile)
        seed = profile.seed if request.seed is None else request.seed

        def job(job_ctx: RequestContext, attempt: int) -> dict:
            with obs.span(
                "serve.request",
                op="run",
                request_id=job_ctx.request_id,
                dataset=request.dataset,
                algorithm=request.algorithm,
                ordering=request.ordering,
            ):
                self.config.plan.apply_in_cell(
                    request.dataset,
                    request.algorithm,
                    request.ordering,
                    seed,
                    attempt,
                    cancel_check=job_ctx.check,
                )
                graph = self._graph(request.dataset)
                job_ctx.checkpoint("graph_loaded")
                entry = self._ordering_entry(
                    graph, request, seed, job_ctx
                )
                # Wire the shared store into the run path: the memo
                # is pre-seeded so run_cell never recomputes what the
                # store already holds.
                self.cache.insert(
                    graph,
                    request.ordering,
                    seed,
                    entry.perm,
                    entry.seconds,
                    request.ordering_params,
                )
                job_ctx.checkpoint("ordered")
                params = perf.algorithm_params(
                    request.algorithm, graph, profile
                )
                result = run_cell(
                    graph,
                    request.algorithm,
                    request.ordering,
                    seed=seed,
                    params=params,
                    hierarchy=profile.hierarchy(),
                    cache=self.cache,
                    dataset_name=request.dataset,
                    ordering_params=request.ordering_params,
                    cache_backend=request.cache_backend,
                    algo_backend=request.algo_backend,
                    cancel_check=job_ctx.check,
                )
                job_ctx.checkpoint("simulated")
                payload = run_result_payload(result)
                payload["request_id"] = job_ctx.request_id
                payload["seed"] = seed
                payload["cache_backend"] = request.cache_backend
                payload["algo_backend"] = request.algo_backend
                return payload

        return self._execute(ctx, job)

    def _execute(self, ctx: RequestContext, job) -> dict:
        """Admit a job and wait for it, bounded by the deadline."""
        future = self.queue.submit(ctx, job)
        return self.wait(ctx, future)

    def wait(self, ctx: RequestContext, future: Future) -> Any:
        """Handler-side wait: deadline + disconnect backstops.

        The cooperative checkpoints inside the worker are the primary
        enforcement; this wait is the backstop for a worker stuck in
        a long uncooperative stretch — the handler stops waiting at
        deadline + grace, cancels the context, and reports 504 with
        whatever phase the worker last completed.  While waiting it
        also polls the transport: a client that hung up has its
        request cooperatively cancelled instead of computed for
        nobody.
        """
        remaining = ctx.deadline.remaining()
        end = (
            None
            if remaining is None
            else time.monotonic()
            + max(0.0, remaining)
            + DEADLINE_GRACE_SECONDS
        )
        while True:
            try:
                return future.result(timeout=0.05)
            except FutureTimeoutError:
                pass
            if (
                ctx.disconnect_check is not None
                and ctx.disconnect_check()
            ):
                future.cancel()
                ctx.cancel()
                self.counters.inc("serve.client_disconnects")
                obs.inc("serve.client_disconnects")
                raise RequestCancelledError(
                    f"client of request {ctx.request_id} "
                    "disconnected",
                    phase=ctx.phase,
                ) from None
            if end is not None and time.monotonic() >= end:
                future.cancel()
                ctx.cancel()
                self.counters.inc("serve.deadline_exceeded")
                obs.inc("serve.deadline_exceeded")
                raise DeadlineExceededError(
                    f"request {ctx.request_id} exceeded its "
                    f"{ctx.deadline.seconds:.3f}s deadline "
                    "(worker unresponsive)",
                    phase=ctx.phase,
                ) from None

    # -- introspection endpoints (handler thread, never queued) --------
    def health(self) -> dict:
        queue = self.queue.stats()
        return {
            "status": "draining" if self.queue.draining else "ok",
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.monotonic() - self._started,
            "queue_depth": queue["queue_depth"],
            "inflight": queue["inflight"],
            "warmed_orderings": self.warmed,
        }

    def stats(self) -> dict:
        with self._graphs_lock:
            graphs = sorted(self._graphs)
        return {
            "uptime_seconds": time.monotonic() - self._started,
            "queue": self.queue.stats(),
            "store": self.store.stats(),
            "graphs": graphs,
            "counters": self.counters.snapshot(),
        }

    # -- lifecycle -----------------------------------------------------
    def request_shutdown(self) -> dict:
        self.shutdown_requested.set()
        self.counters.inc("serve.shutdown_requests")
        obs.inc("serve.shutdown_requests")
        return {"status": "draining"}

    def drain(self) -> dict:
        """Stop admitting and settle in-flight work (idempotent)."""
        if self._drained.is_set():
            return {"already_drained": True}
        self._drained.set()
        with obs.span("serve.drain") as span:
            outcome = self.queue.drain(
                timeout=self.config.drain_timeout_seconds
            )
            span.set(**outcome)
        obs.event("serve.drained", **outcome)
        return outcome


class _Handler(BaseHTTPRequestHandler):
    """Route HTTP requests onto the service; map errors to statuses."""

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    #: Set by the server factory.
    service: OrderingService

    # BaseRequestHandler API — client_address is a string (or empty)
    # on AF_UNIX sockets; normalise it before the base class formats
    # log prefixes with it.
    def setup(self) -> None:
        if not (
            isinstance(self.client_address, tuple)
            and len(self.client_address) >= 2
        ):
            self.client_address = ("unix", 0)
        super().setup()

    def log_message(self, format: str, *args: Any) -> None:
        obs.event(
            "serve.http",
            level="debug",
            line=(format % args) if args else format,
        )

    def _disconnected(self) -> bool:
        """True when the client closed its side of the connection."""
        try:
            data = self.connection.recv(
                1, socket.MSG_PEEK | socket.MSG_DONTWAIT
            )
        except (BlockingIOError, InterruptedError):
            return False
        except OSError:
            return True
        return data == b""

    # -- request plumbing ----------------------------------------------
    def _read_json(self) -> Any:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise BadRequestError(
                f"request body too large ({length} bytes)"
            )
        raw = self.rfile.read(length) if length else b"{}"
        try:
            return json.loads(raw.decode("utf-8") or "{}")
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise BadRequestError(
                f"request body is not valid JSON: {exc}"
            ) from exc

    def _respond(
        self,
        status: int,
        payload: dict,
        headers: dict[str, str] | None = None,
    ) -> None:
        body = (json.dumps(payload) + "\n").encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)
        except (BrokenPipeError, ConnectionResetError):
            self.service.counters.inc("serve.client_disconnects")
            obs.inc("serve.client_disconnects")
            self.close_connection = True

    def _respond_error(
        self, error: ServeError, ctx: RequestContext | None = None
    ) -> None:
        request_id = ctx.request_id if ctx is not None else None
        extra: dict[str, Any] = {}
        if ctx is not None and isinstance(
            error, (DeadlineExceededError, RequestCancelledError)
        ):
            extra["elapsed_seconds"] = round(ctx.elapsed(), 4)
        headers = {}
        retry_after = getattr(error, "retry_after", None)
        if retry_after is not None:
            headers["Retry-After"] = str(
                max(1, int(round(retry_after)))
            )
        # 499 ("client closed request") is a counter convention, not
        # a sendable status; a still-connected client whose request
        # was cancelled (drain cutoff) should retry elsewhere.
        status = 503 if error.status == 499 else error.status
        self._respond(
            status, error_payload(error, request_id, **extra), headers
        )

    def _dispatch(self, fn, *args: Any, ctx: RequestContext | None
                  = None) -> None:
        try:
            self._respond(200, fn(*args))
        except ServeError as exc:
            self._respond_error(exc, ctx)
        except ReproError as exc:
            # Library validation errors (unknown dataset, bad
            # parameter ranges) are the client's fault.
            self._respond_error(BadRequestError(str(exc)), ctx)

    # -- verbs ---------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        service = self.service
        if self.path == "/health":
            self._dispatch(service.health)
        elif self.path == "/stats":
            self._dispatch(service.stats)
        else:
            self._respond_error(
                NotFoundError(f"no such endpoint {self.path!r}")
            )

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        service = self.service
        ctx: RequestContext | None = None
        try:
            if self.path == "/order":
                request = OrderRequest.from_payload(self._read_json())
                ctx = service.context(
                    "order", request.deadline_seconds
                )
                ctx.disconnect_check = self._disconnected
                self._dispatch(
                    service.handle_order, request, ctx, ctx=ctx
                )
            elif self.path == "/run":
                request = RunRequest.from_payload(self._read_json())
                ctx = service.context("run", request.deadline_seconds)
                ctx.disconnect_check = self._disconnected
                self._dispatch(
                    service.handle_run, request, ctx, ctx=ctx
                )
            elif self.path == "/shutdown":
                self._dispatch(service.request_shutdown)
            else:
                self._respond_error(
                    NotFoundError(f"no such endpoint {self.path!r}")
                )
        except ServeError as exc:
            self._respond_error(exc, ctx)
        except ReproError as exc:
            self._respond_error(BadRequestError(str(exc)), ctx)


class ReproHTTPServer(ThreadingHTTPServer):
    """TCP transport; one daemon thread per connection."""

    daemon_threads = True
    allow_reuse_address = True


class UnixHTTPServer(ThreadingHTTPServer):
    """The same protocol over a unix domain socket."""

    daemon_threads = True
    address_family = socket.AF_UNIX

    def server_bind(self) -> None:
        # HTTPServer.server_bind unpacks (host, port) from the
        # address, which a unix path does not have.
        if os.path.exists(self.server_address):  # type: ignore[arg-type]
            os.unlink(self.server_address)  # type: ignore[arg-type]
        socketserver.TCPServer.server_bind(self)
        self.server_name = str(self.server_address)
        self.server_port = 0


def _make_server(
    config: ServeConfig, service: OrderingService
) -> ThreadingHTTPServer:
    handler = type("BoundHandler", (_Handler,), {"service": service})
    if config.socket_path:
        return UnixHTTPServer(config.socket_path, handler)
    return ReproHTTPServer((config.host, config.port), handler)


def serve(config: ServeConfig) -> int:
    """Run the daemon until SIGTERM/SIGINT/``POST /shutdown``.

    Returns 0 after a graceful drain: admission stops (503), queued
    requests are rejected, in-flight requests finish or are cancelled
    by their deadline, the listener closes.
    """
    service = OrderingService(config)
    httpd = _make_server(config, service)
    if config.socket_path:
        endpoint = f"unix:{config.socket_path}"
    else:
        host, port = httpd.server_address[:2]
        endpoint = f"http://{host}:{port}"
    stop = threading.Event()

    def _on_signal(signum: int, frame: Any) -> None:
        obs.event("serve.signal", signal=signum)
        stop.set()

    previous = {
        signum: signal.signal(signum, _on_signal)
        for signum in (signal.SIGTERM, signal.SIGINT)
    }
    listener = threading.Thread(
        target=httpd.serve_forever,
        kwargs={"poll_interval": 0.05},
        name="serve-listener",
        daemon=True,
    )
    listener.start()
    print(f"serving on {endpoint} "
          f"(workers={config.workers} "
          f"queue={config.queue_capacity} "
          f"warmed={service.warmed})",
          flush=True)
    try:
        while not stop.is_set():
            if service.shutdown_requested.wait(timeout=0.1):
                break
    finally:
        for signum, old in previous.items():
            signal.signal(signum, old)
        outcome = service.drain()
        httpd.shutdown()
        listener.join(timeout=2.0)
        httpd.server_close()
        if config.socket_path and os.path.exists(config.socket_path):
            os.unlink(config.socket_path)
        print(f"drained: {json.dumps(outcome)}", flush=True)
    return 0
