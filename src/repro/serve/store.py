"""The shared ordering store: sharded memory LRU + crash-safe spill.

The store replaces direct :data:`~repro.perf.runner.GLOBAL_ORDERING_CACHE`
use inside the service.  It differs from the in-process memo in three
service-shaped ways:

* **Keys are logical** — ``(dataset, ordering, seed, params)`` names,
  not ``id(graph)`` — so entries survive process restarts and can be
  rebuilt from disk.
* **Sharded locking** — the key space is hashed across independent
  shards, each with its own lock and LRU, so concurrent workers
  rarely contend.
* **Crash-safe spill** — every computed ordering is spilled to an
  ``.npz`` file through the atomic :mod:`repro.ioutil` layer (temp
  file + fsync + rename + directory fsync), so a ``kill -9``
  mid-spill leaves at worst a stray ``*.tmp``.  On startup
  :meth:`OrderingStore.warm` rebuilds the warm set from the spill
  directory; a corrupt or truncated spill file is **quarantined**
  (renamed aside with a warning) — never a crash.

Computation misses are deduplicated through
:class:`~repro.serve.admission.SingleFlight`: concurrent requests for
the same key share one computation.
"""

from __future__ import annotations

import hashlib
import json
import re
import threading
import time
from collections import OrderedDict
from collections.abc import Callable
from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro import obs
from repro.errors import InvalidParameterError
from repro.ioutil import atomic_open
from repro.serve.admission import (
    RequestContext,
    ServiceCounters,
    SingleFlight,
)

#: Spill file schema version (bumped on incompatible layout changes).
SPILL_VERSION = 1

#: Suffix appended to a quarantined spill file.
QUARANTINE_SUFFIX = ".quarantined"

_SAFE_NAME = re.compile(r"[^A-Za-z0-9_.-]")


def _params_key(params: dict | None) -> tuple[tuple[str, object], ...]:
    if not params:
        return ()
    return tuple(sorted(params.items()))


@dataclass
class StoreEntry:
    """One ordering held by the store."""

    perm: np.ndarray
    seconds: float
    #: Where this lookup was satisfied: memory | disk | computed.
    source: str = "computed"

    @property
    def nbytes(self) -> int:
        return int(self.perm.nbytes)


class _Shard:
    """One lock + LRU slice of the key space."""

    def __init__(self, max_entries: int) -> None:
        self.lock = threading.Lock()
        self.entries: OrderedDict[tuple, StoreEntry] = OrderedDict()
        self.max_entries = max_entries

    def get(self, key: tuple) -> StoreEntry | None:
        with self.lock:
            entry = self.entries.get(key)
            if entry is not None:
                self.entries.move_to_end(key)
            return entry

    def put(self, key: tuple, entry: StoreEntry) -> None:
        with self.lock:
            self.entries[key] = entry
            self.entries.move_to_end(key)
            while len(self.entries) > self.max_entries:
                self.entries.popitem(last=False)

    def snapshot(self) -> tuple[int, int]:
        with self.lock:
            return (
                len(self.entries),
                sum(entry.nbytes for entry in self.entries.values()),
            )


class OrderingStore:
    """Sharded memory LRU over an atomic on-disk spill directory.

    ``root=None`` disables spilling (pure in-memory store).  Evicted
    memory entries remain on disk, so a later request pays a disk
    load, not a recompute.
    """

    def __init__(
        self,
        root: str | Path | None = None,
        shards: int = 8,
        max_entries_per_shard: int = 64,
        counters: ServiceCounters | None = None,
    ) -> None:
        if shards < 1:
            raise InvalidParameterError("shards must be >= 1")
        if max_entries_per_shard < 1:
            raise InvalidParameterError(
                "max_entries_per_shard must be >= 1"
            )
        self.root = Path(root) if root is not None else None
        if self.root is not None:
            self.root.mkdir(parents=True, exist_ok=True)
        self.counters = counters or ServiceCounters()
        self._shards = [
            _Shard(max_entries_per_shard) for _ in range(shards)
        ]
        self._flights = SingleFlight(self.counters)

    # -- keys and paths ------------------------------------------------
    def _shard(self, key: tuple) -> _Shard:
        digest = hashlib.sha256(repr(key).encode()).digest()
        return self._shards[digest[0] % len(self._shards)]

    def spill_path(
        self,
        dataset: str,
        ordering: str,
        seed: int,
        params: dict | None = None,
    ) -> Path | None:
        """The spill file a key persists to (``None`` when disabled)."""
        if self.root is None:
            return None
        params_json = json.dumps(
            _params_key(params), sort_keys=True, default=str
        )
        digest = hashlib.sha256(params_json.encode()).hexdigest()[:10]
        safe = "--".join(
            _SAFE_NAME.sub("_", part)
            for part in (dataset, ordering, f"s{seed}")
        )
        return self.root / f"{safe}--{digest}.npz"

    # -- lookup / compute ----------------------------------------------
    def get_or_compute(
        self,
        dataset: str,
        ordering: str,
        seed: int,
        params: dict | None,
        compute: Callable[[], np.ndarray],
        ctx: RequestContext | None = None,
    ) -> StoreEntry:
        """Fetch an ordering from memory, disk, or one computation.

        ``compute`` runs at most once per concurrent key (single
        flight); ``ctx`` bounds a follower's wait by its deadline.
        """
        key = (dataset, ordering, seed, _params_key(params))
        shard = self._shard(key)
        entry = shard.get(key)
        if entry is not None:
            self.counters.inc("serve.store_memory_hits")
            obs.inc("serve.store_memory_hits")
            return StoreEntry(entry.perm, entry.seconds, "memory")

        def miss() -> StoreEntry:
            loaded = self._load_spill(dataset, ordering, seed, params)
            if loaded is not None:
                shard.put(key, loaded)
                self.counters.inc("serve.store_disk_hits")
                obs.inc("serve.store_disk_hits")
                return loaded
            if ctx is not None:
                ctx.check()
            start = time.perf_counter()
            perm = compute()
            seconds = time.perf_counter() - start
            fresh = StoreEntry(perm, seconds, "computed")
            shard.put(key, fresh)
            self.counters.inc("serve.store_computed")
            obs.inc("serve.store_computed")
            self._spill(dataset, ordering, seed, params, fresh)
            return fresh

        return self._flights.do(key, miss, ctx)

    # -- spill / load / quarantine -------------------------------------
    def _spill(
        self,
        dataset: str,
        ordering: str,
        seed: int,
        params: dict | None,
        entry: StoreEntry,
    ) -> None:
        path = self.spill_path(dataset, ordering, seed, params)
        if path is None:
            return
        meta = json.dumps(
            {
                "version": SPILL_VERSION,
                "dataset": dataset,
                "ordering": ordering,
                "seed": seed,
                "params": [
                    [key, value]
                    for key, value in _params_key(params)
                ],
                "seconds": entry.seconds,
            },
            default=str,
        )
        with atomic_open(path, "wb") as handle:
            np.savez_compressed(
                handle, perm=entry.perm, meta=np.array(meta)
            )
        self.counters.inc("serve.store_spills")
        obs.inc("serve.store_spills")

    def _load_spill(
        self,
        dataset: str,
        ordering: str,
        seed: int,
        params: dict | None,
    ) -> StoreEntry | None:
        path = self.spill_path(dataset, ordering, seed, params)
        if path is None or not path.exists():
            return None
        parsed = self._read_spill(path)
        if parsed is None:
            return None
        perm, meta = parsed
        return StoreEntry(perm, float(meta.get("seconds", 0.0)), "disk")

    def _read_spill(
        self, path: Path
    ) -> tuple[np.ndarray, dict] | None:
        """Parse one spill file; quarantine instead of raising."""
        try:
            with np.load(path, allow_pickle=False) as data:
                perm = np.asarray(data["perm"])
                meta = json.loads(str(data["meta"]))
            if perm.ndim != 1 or not np.issubdtype(
                perm.dtype, np.integer
            ):
                raise InvalidParameterError(
                    "spill permutation is not a 1-D integer array"
                )
            if meta.get("version") != SPILL_VERSION:
                raise InvalidParameterError(
                    f"spill version {meta.get('version')!r} != "
                    f"{SPILL_VERSION}"
                )
            return perm, meta
        # quarantine() records a warning event naming path + reason.
        except Exception as exc:  # repro: noqa[REP003] — quarantined
            self.quarantine(path, repr(exc))
            return None

    def quarantine(self, path: Path, reason: str) -> Path:
        """Move a corrupt spill file aside; never crash the service."""
        target = path.with_name(path.name + QUARANTINE_SUFFIX)
        try:
            path.replace(target)
        except OSError:
            # The file vanished or the rename failed; removing it is
            # the next-best containment.
            path.unlink(missing_ok=True)
        self.counters.inc("serve.store_quarantined")
        obs.inc("serve.store_quarantined")
        obs.event(
            "serve.store_quarantine",
            level="warning",
            path=str(path),
            reason=reason,
        )
        return target

    # -- startup -------------------------------------------------------
    def warm(self) -> int:
        """Rebuild the memory warm set from the spill directory.

        Stray ``*.tmp`` files (a kill mid-spill) are removed; corrupt
        spill files are quarantined with a warning.  Returns the
        number of orderings loaded.
        """
        if self.root is None:
            return 0
        loaded = 0
        for stray in sorted(self.root.glob("*.tmp")):
            stray.unlink(missing_ok=True)
            self.counters.inc("serve.store_stray_tmp")
            obs.inc("serve.store_stray_tmp")
        for path in sorted(self.root.glob("*.npz")):
            parsed = self._read_spill(path)
            if parsed is None:
                continue
            perm, meta = parsed
            key = (
                meta.get("dataset"),
                meta.get("ordering"),
                meta.get("seed"),
                tuple(
                    (pair[0], pair[1])
                    for pair in meta.get("params", ())
                ),
            )
            entry = StoreEntry(
                perm, float(meta.get("seconds", 0.0)), "disk"
            )
            self._shard(key).put(key, entry)
            loaded += 1
        if loaded:
            self.counters.inc("serve.store_warmed", loaded)
            obs.inc("serve.store_warmed", loaded)
        return loaded

    # -- introspection -------------------------------------------------
    def stats(self) -> dict:
        entries = 0
        nbytes = 0
        for shard in self._shards:
            count, total = shard.snapshot()
            entries += count
            nbytes += total
        return {
            "entries": entries,
            "nbytes": nbytes,
            "shards": len(self._shards),
            "spill_root": str(self.root) if self.root else None,
        }
