"""Cycle cost model: turns cache-level hit counts into runtimes.

The paper's Figure 1 splits runtime into *CPU execute* time and *cache
stall* time; its speedups are entirely stall reductions.  We model:

* every data reference costs ``execute_per_ref`` cycles of CPU work
  (address arithmetic, the ALU op consuming the value, loop control),
* a reference served by L1 adds no stall (its latency hides under the
  pipeline), while L2/L3/memory hits add their extra latency as stall.

The default latencies follow the replication's footnote (Skylake
numbers from 7-cpu.com): roughly 4 cycles L1, 12 cycles L2, ~42 cycles
L3 and ~60 ns (~200+ cycles) for DRAM — "each further level of cache
roughly implies an additional factor 4 latency".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import InvalidParameterError


@dataclass(frozen=True)
class CostModel:
    """Latency parameters for a three-level hierarchy plus memory.

    ``stall_cycles`` maps the hit level (index 0 = main memory,
    1 = L1, 2 = L2, 3 = L3) to the stall contribution of one reference
    served there.
    """

    execute_per_ref: float = 6.0
    l1_stall: float = 0.0
    l2_stall: float = 10.0
    l3_stall: float = 40.0
    memory_stall: float = 200.0

    def __post_init__(self) -> None:
        ordered = (
            self.l1_stall <= self.l2_stall
            <= self.l3_stall <= self.memory_stall
        )
        if not ordered:
            raise InvalidParameterError(
                "stall latencies must be non-decreasing with cache depth"
            )

    def stall_for_level(self, level: int, num_levels: int = 3) -> float:
        """Stall cycles for a reference served at ``level`` (0=memory)
        in a ``num_levels``-deep hierarchy.

        Hierarchies deeper than three levels fold the way
        :meth:`CacheHierarchy.snapshot` does: middle levels take the
        L2 latency and the last level plays the L3 role (the L2 role
        in a two-level stack).  For one-, two- and three-level
        hierarchies this reproduces the classic L1/L2/L3 mapping
        exactly.
        """
        if level < 0 or level > num_levels:
            raise InvalidParameterError(f"unknown cache level {level}")
        if level == 0:
            return self.memory_stall
        if level == 1:
            return self.l1_stall
        if level < num_levels:
            return self.l2_stall
        return self.l3_stall if num_levels >= 3 else self.l2_stall

    def cost(
        self,
        level_counts: Sequence[int],
        extra_work: float = 0.0,
        prefetched_refs: int = 0,
    ) -> "RunCost":
        """Total cost of a run.

        Parameters
        ----------
        level_counts:
            ``[memory, L1, L2, L3]`` *demand* reference counts by
            serving level.
        extra_work:
            Additional pure-CPU cycles (non-memory arithmetic).
        prefetched_refs:
            Line fetches issued by the stream prefetcher (sequential
            scans past the first line of a run).  They are hardware-
            asynchronous: no execute cycles, no stall — prefetchers
            hide the latency of predictable streams, which is why the
            paper's speedups come from the *random* accesses an
            ordering controls.  Accepted for interface symmetry and
            future bandwidth modelling; it does not change the cost.
        """
        del prefetched_refs  # latency fully hidden in this model
        total_refs = sum(level_counts)
        num_levels = max(len(level_counts) - 1, 0)
        stall = sum(
            count * self.stall_for_level(level, num_levels)
            for level, count in enumerate(level_counts)
        )
        return RunCost(
            execute_cycles=total_refs * self.execute_per_ref + extra_work,
            stall_cycles=stall,
        )


#: Model used by every experiment unless overridden.
DEFAULT_COST_MODEL = CostModel()


@dataclass(frozen=True)
class RunCost:
    """Simulated cycle cost of one algorithm run."""

    execute_cycles: float = 0.0
    stall_cycles: float = 0.0

    @property
    def total_cycles(self) -> float:
        """Execute plus stall — the quantity the speedup plots compare."""
        return self.execute_cycles + self.stall_cycles

    @property
    def stall_fraction(self) -> float:
        """Share of runtime spent waiting on data (Figure 1's black bar)."""
        total = self.total_cycles
        return self.stall_cycles / total if total else 0.0

    def __add__(self, other: "RunCost") -> "RunCost":
        return RunCost(
            self.execute_cycles + other.execute_cycles,
            self.stall_cycles + other.stall_cycles,
        )

    def speedup_over(self, baseline: "RunCost") -> float:
        """How many times faster this run is than ``baseline``."""
        if self.total_cycles == 0:
            return float("inf") if baseline.total_cycles else 1.0
        return baseline.total_cycles / self.total_cycles
