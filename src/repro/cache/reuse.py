"""Reuse-distance analysis of memory traces.

The *reuse distance* of an access is the number of distinct cache
lines touched since the previous access to the same line.  It is the
canonical machine-independent locality metric: a fully-associative
LRU cache of capacity C misses exactly the accesses whose reuse
distance is >= C (plus cold misses).  This lets the experiments
characterise an ordering's locality once and derive its miss rate for
*every* cache size — and gives the test suite an independent oracle
for the LRU simulator.

The implementation is the standard O(n log n) algorithm with a Fenwick
tree over access timestamps.
"""

from __future__ import annotations

import numpy as np

from repro.cache.hierarchy import CacheHierarchy
from repro.errors import InvalidParameterError

#: Reuse distance reported for cold (first-ever) accesses.
COLD = -1


class _FenwickTree:
    """Prefix-sum tree over ``size`` slots (1-based internally)."""

    __slots__ = ("_tree", "_size")

    def __init__(self, size: int) -> None:
        self._size = size
        self._tree = [0] * (size + 1)

    def add(self, index: int, delta: int) -> None:
        index += 1
        while index <= self._size:
            self._tree[index] += delta
            index += index & (-index)

    def prefix_sum(self, index: int) -> int:
        """Sum of slots ``0 .. index`` inclusive."""
        index += 1
        total = 0
        while index > 0:
            total += self._tree[index]
            index -= index & (-index)
        return total


def reuse_distances(lines) -> np.ndarray:
    """Per-access LRU reuse distances of a line-id trace.

    Returns an ``int64`` array aligned with the trace; cold accesses
    get :data:`COLD`.
    """
    trace = np.asarray(lines, dtype=np.int64)
    n = trace.shape[0]
    distances = np.empty(n, dtype=np.int64)
    tree = _FenwickTree(n)
    last_seen: dict[int, int] = {}
    for t in range(n):
        line = int(trace[t])
        previous = last_seen.get(line)
        if previous is None:
            distances[t] = COLD
        else:
            # Distinct lines touched strictly between the accesses =
            # marked timestamps in (previous, t).
            distances[t] = tree.prefix_sum(t - 1) - tree.prefix_sum(
                previous
            )
            tree.add(previous, -1)
        tree.add(t, +1)
        last_seen[line] = t
    return distances


def lru_misses(distances: np.ndarray, capacity: int) -> int:
    """Misses of a fully-associative LRU cache of ``capacity`` lines.

    Exact for the trace the distances came from: cold accesses always
    miss, warm accesses miss iff their reuse distance >= capacity.
    """
    if capacity < 1:
        raise InvalidParameterError(
            f"capacity must be positive, got {capacity}"
        )
    distances = np.asarray(distances, dtype=np.int64)
    return int(
        ((distances == COLD) | (distances >= capacity)).sum()
    )


def miss_curve(
    distances: np.ndarray, capacities
) -> dict[int, float]:
    """Miss *rate* per capacity — the locality profile of a trace."""
    distances = np.asarray(distances, dtype=np.int64)
    total = distances.shape[0]
    if total == 0:
        return {int(c): 0.0 for c in capacities}
    return {
        int(c): lru_misses(distances, int(c)) / total
        for c in capacities
    }


def median_reuse_distance(distances: np.ndarray) -> float:
    """Median over warm accesses (cold excluded); inf if none."""
    distances = np.asarray(distances, dtype=np.int64)
    warm = distances[distances != COLD]
    if warm.shape[0] == 0:
        return float("inf")
    return float(np.median(warm))


class RecordingHierarchy:
    """Wraps a hierarchy, recording the line id of every access.

    Drop-in for :class:`~repro.cache.layout.Memory`'s hierarchy slot;
    the recorded trace feeds :func:`reuse_distances`.
    """

    def __init__(self, inner: CacheHierarchy) -> None:
        self._inner = inner
        self.lines: list[int] = []

    @property
    def line_size(self) -> int:
        return self._inner.line_size

    @property
    def num_levels(self) -> int:
        return self._inner.num_levels

    @property
    def levels(self):
        return self._inner.levels

    def access(self, line: int) -> int:
        self.lines.append(line)
        return self._inner.access(line)

    def access_address(self, address: int) -> int:
        return self.access(address // self.line_size)

    def snapshot(self):
        return self._inner.snapshot()

    def reset_statistics(self) -> None:
        """Zero the inner counters and restart the recorded trace.

        Both reset flavours start a fresh measurement window, so the
        trace restarts with them — otherwise a flush-then-rerun
        sequence would feed reuse-distance analysis a concatenation of
        two unrelated runs.
        """
        self._inner.reset_statistics()
        self.lines.clear()

    def flush(self) -> None:
        """Cold-start the inner hierarchy and restart the trace."""
        self._inner.flush()
        self.lines.clear()

    def trace(self) -> np.ndarray:
        """The recorded line-id trace as an array."""
        return np.array(self.lines, dtype=np.int64)
