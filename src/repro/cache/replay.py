"""Vectorised trace replay: the cache simulator's batched backend.

The scalar simulator pays one Python call per simulated reference —
``TracedArray.touch`` → ``CacheHierarchy.access`` → per-level dict
ops.  This module removes that per-reference interpreter round-trip
the same way PR 3's batched kernel removed it from the ordering side:
record now, compute later, array-wise.

* :class:`TraceBuffer` is the record side.  ``Memory`` (in replay
  mode) appends single demand touches to a plain Python list (the
  hottest path), run-compresses sequential scans and stores bulk
  touch batches *by reference* — index conversion, bounds checking
  and line arithmetic are all deferred to ``freeze()``, which
  interleaves everything back into one flat line-id access stream in
  a handful of numpy passes.  The frontier runtime
  (:mod:`repro.algorithms.runtime`) bypasses even the deferred
  channels: it pre-resolves whole per-iteration access vectors to
  line ids and demand flags and appends them via ``record_block`` —
  one Python call per frontier advance instead of one per access.
* :func:`hit_mask` classifies every access of a line stream against
  one set-associative LRU level — **exactly**, not approximately.
  ``CacheHierarchy.replay`` chains it level by level (each level's
  reference stream is the previous level's miss stream).

Two classifier implementations back :func:`hit_mask`:

* :func:`lru_hit_mask` — the *reference* path: per-set stack
  distances via a bottom-up merge (``searchsorted`` over
  offset-packed sorted rows), O(n log^2 n) array work, valid for any
  associativity and any line-id range.
* the *blocked* fast path — per-set subtraces are chunked into
  blocks of a power-of-two width; each block is prefixed with the
  top-``A`` LRU stack entering it (computed once for all blocks by an
  associative parallel prefix scan over block summaries), after which
  every block classifies independently: pack-sort for previous
  occurrences, a level-doubling inversion count for in-window
  distinct totals.  Work is O(n log ROW) with small numpy constants;
  it requires ``associativity <= 64`` and line ids below ``2**23``
  (int32 packing headroom) and silently defers to the reference path
  otherwise.

The mathematics shared by both: within one cache set, an access at
local time ``t`` to a line previously seen at ``P[t]`` has LRU stack
distance

    ``d(t) = (t - 1 - P[t]) - #{s < t : P[s] > P[t]}``

because every access in the window ``(P[t], t)`` touches a line other
than ``line[t]``, and a line's *first* access in the window — the one
that counts towards the distinct total — is exactly an access whose
own previous occurrence lies before the window (``P[s] < P[t]``;
``P[s] == P[t]`` is impossible for a warm ``t`` since a position has
one next-occurrence).  The access hits a level of associativity ``A``
iff it is warm and ``d(t) < A``; the Fenwick-tree oracle in
:mod:`repro.cache.reuse` stays as the scalar cross-check.

Replay is exact for LRU only: FIFO and random levels are not
stack-distance characterisable, so ``Memory`` silently falls back to
scalar stepping for those geometries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import InvalidParameterError

#: Stack distance reported for cold (first-ever) accesses — same
#: convention as :data:`repro.cache.reuse.COLD`.
COLD = -1

#: Sentinel for an empty slot in blocked-classifier stack summaries.
_EMPTY_SLOT = -1

#: Line ids must stay below this for the blocked fast path (int32
#: packing: line * ROW + column must fit 31 bits with ROW <= 128).
FAST_LINE_LIMIT = 1 << 23

#: Largest associativity the blocked fast path handles (a row must
#: hold the incoming stack prefix plus at least that many accesses).
FAST_MAX_WAYS = 64


# ----------------------------------------------------------------------
# Reference classifier: exact stack distances by merge counting
# ----------------------------------------------------------------------
def count_prior_greater(values) -> np.ndarray:
    """For each position ``t``, count positions ``s < t`` with
    ``values[s] > values[t]`` (the classic inversion count, reported
    per right endpoint).

    Bottom-up merge counting: blocks of doubling width; at each level
    the left half of every block holds the originally-earlier
    positions already sorted, so one ``searchsorted`` over the
    offset-packed concatenation counts, for every right element, the
    left elements strictly greater than it.  O(n log^2 n) total array
    work, no Python per element.
    """
    values = np.asarray(values, dtype=np.int64)
    n = values.shape[0]
    counts = np.zeros(n, dtype=np.int64)
    if n < 2:
        return counts
    # Rank-compress so the per-row offset packing below stays small.
    ranks = np.unique(values, return_inverse=True)[1].astype(np.int64)
    span = int(ranks.max()) + 3  # row values live in [-1, span - 3]
    m = 1 << (n - 1).bit_length()
    vals = np.full(m, -1, dtype=np.int64)  # pad: below every rank
    vals[:n] = ranks
    idx = np.arange(m, dtype=np.int64)
    width = 1
    while width < m:
        rows = m // (2 * width)
        block = vals.reshape(rows, 2 * width)
        block_idx = idx.reshape(rows, 2 * width)
        left = block[:, :width]  # ascending within each row (invariant)
        right = block[:, width:]
        row_offset = np.arange(rows, dtype=np.int64)[:, None] * span
        left_keys = (left + row_offset).ravel()  # globally ascending
        right_keys = (right + row_offset).ravel()
        insert = np.searchsorted(left_keys, right_keys, side="right")
        row_of_right = np.repeat(np.arange(rows, dtype=np.int64), width)
        greater = width - (insert - row_of_right * width)
        right_pos = block_idx[:, width:].ravel()
        live = right_pos < n  # padding slots carry no real position
        # Original positions are a permutation, so plain fancy-index
        # addition is safe (no duplicate indices).
        counts[right_pos[live]] += greater[live]
        merged = np.argsort(block, axis=1, kind="stable")
        vals = np.take_along_axis(block, merged, axis=1).ravel()
        idx = np.take_along_axis(block_idx, merged, axis=1).ravel()
        width *= 2
    return counts


def stack_distances(lines, num_sets: int = 1) -> np.ndarray:
    """Per-access LRU stack distance of a line trace, per cache set.

    The distance of an access is the number of *distinct* lines
    referenced in the same set since the previous access to its line
    (:data:`COLD` for first-ever accesses).  With ``num_sets=1`` this
    equals :func:`repro.cache.reuse.reuse_distances`, vectorised.
    """
    lines = np.asarray(lines, dtype=np.int64)
    n = lines.shape[0]
    if num_sets < 1 or (num_sets & (num_sets - 1)):
        raise InvalidParameterError(
            f"num_sets must be a positive power of two, got {num_sets}"
        )
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if num_sets > 1:
        # Group-major view: stable sort by set id keeps time order
        # inside each group; local time = position minus group start.
        sets = lines & np.int64(num_sets - 1)
        order = np.argsort(sets, kind="stable")
        s_lines = lines[order]
        s_sets = sets[order]
        new_group = np.empty(n, dtype=bool)
        new_group[0] = True
        np.not_equal(s_sets[1:], s_sets[:-1], out=new_group[1:])
        group_id = np.cumsum(new_group) - 1
        group_start = np.flatnonzero(new_group)
        local_t = np.arange(n, dtype=np.int64) - group_start[group_id]
    else:
        order = None
        s_lines = lines
        group_id = None
        local_t = np.arange(n, dtype=np.int64)
    # Previous occurrence (as a local time) of each access's line.  A
    # line always maps to one set, so equal values never cross groups.
    by_line = np.argsort(s_lines, kind="stable")
    previous = np.full(n, -1, dtype=np.int64)
    same = s_lines[by_line[1:]] == s_lines[by_line[:-1]]
    previous[by_line[1:][same]] = local_t[by_line[:-1][same]]
    if group_id is None:
        packed = previous
    else:
        # Offset per group: a pair from different groups can never
        # register as an inversion (the gap n+2 exceeds any local
        # P-difference), so one global count serves every set at once.
        packed = previous + group_id * np.int64(n + 2)
    inversions = count_prior_greater(packed)
    distances = (local_t - 1 - previous) - inversions
    distances[previous < 0] = COLD
    if order is None:
        return distances
    out = np.empty(n, dtype=np.int64)
    out[order] = distances
    return out


def lru_hit_mask(
    lines, num_sets: int, associativity: int
) -> np.ndarray:
    """Hit/miss of every access against one cold-started LRU level.

    Exact: an access hits a ``num_sets x associativity`` LRU level iff
    it is warm and its in-set stack distance is below the
    associativity.  This is the reference implementation, valid for
    any associativity and line-id range; :func:`hit_mask` dispatches
    to the blocked fast path when the geometry allows.
    """
    distances = stack_distances(lines, num_sets)
    return (distances != COLD) & (distances < associativity)


# ----------------------------------------------------------------------
# Blocked fast classifier
# ----------------------------------------------------------------------
def _compose(older, newer, ways: int) -> np.ndarray:
    """Top-``ways`` distinct lines after playing ``older`` then
    ``newer`` (both ``(rows, ways)`` int32 stacks, most recent first,
    :data:`_EMPTY_SLOT` padded) — the associative scan operator."""
    dup = (older[:, :, None] == newer[:, None, :]).any(axis=2)
    valid_n = newer != _EMPTY_SLOT
    valid_o = (older != _EMPTY_SLOT) & ~dup
    cand = np.concatenate([newer, older], axis=1)
    valid = np.concatenate([valid_n, valid_o], axis=1)
    # Pack (invalid, recency, line) into int32: invalid entries sort
    # last, surviving entries keep newest-first order.
    seq = np.arange(2 * ways, dtype=np.int32)
    pack = (~valid).astype(np.int32) << 30
    pack |= seq << 23
    pack |= np.where(valid, cand, 0).astype(np.int32)
    pack.sort(axis=1)
    head = pack[:, :ways]
    out = head & np.int32(FAST_LINE_LIMIT - 1)
    out[head >= (1 << 30)] = _EMPTY_SLOT
    return out


def _classify_blocks(s_lines, starts, lens, ways: int, data_width: int):
    """Hit mask for concatenated per-set subtraces (int32 lines).

    ``s_lines`` holds each set's accesses contiguously (set ``i`` at
    ``starts[i] : starts[i] + lens[i]``); consecutive equal lines must
    already be collapsed (the caller's distance-0 pass).
    ``data_width`` (a power of two) is the number of trace cells per
    block; the ``ways``-deep incoming stack prefix lives *outside* the
    block, so index arithmetic below stays shift-and-mask.
    """
    n = s_lines.size
    data_bits = data_width.bit_length() - 1
    row_width = ways + data_width  # prefix + data, prev-pack coords
    num_sets = starts.size
    blocks_per_set = -(-lens // data_width)
    row_offset = np.concatenate([[0], np.cumsum(blocks_per_set)[:-1]])
    num_rows = int(blocks_per_set.sum())
    row_set = np.repeat(np.arange(num_sets), blocks_per_set)

    # Scatter each set's subtrace into its rows; padding cells get
    # distinct negative sentinels (cold by construction, never hits).
    # With a power-of-two row the block/column split of the in-set
    # position folds into the flat index itself: one repeat, one add.
    cols = np.arange(data_width, dtype=np.int32)
    data = np.empty((num_rows, data_width), dtype=np.int32)
    data[:] = -(cols + ways + 2)
    flat = np.arange(n, dtype=np.int64) + np.repeat(
        (row_offset << np.int64(data_bits)) - starts, lens
    )
    data.reshape(-1)[flat] = s_lines

    # ---- block summaries: last `ways` distinct lines, newest first.
    # Pack-sort (line << data_bits | column) groups equal lines with
    # ascending positions; the last entry of each group is the line's
    # final occurrence in the block.  (A negative sentinel times a
    # power of two has zeroed low bits, so or-ing the column in and
    # shifting back out is exact for sentinels too.)
    pack = data << np.int32(data_bits)
    pack |= cols
    pack.sort(axis=1)
    packed_line = pack >> np.int32(data_bits)
    packed_col = pack & np.int32(data_width - 1)
    last = np.empty((num_rows, data_width), dtype=bool)
    last[:, -1] = True
    np.not_equal(packed_line[:, 1:], packed_line[:, :-1], out=last[:, :-1])
    last &= packed_line >= 0  # sentinels never enter a summary
    idx_last = np.flatnonzero(last)
    row_last = idx_last >> np.int64(data_bits)
    flags = np.zeros((num_rows, data_width), dtype=bool)
    flags.reshape(-1)[
        (row_last << np.int64(data_bits))
        + packed_col.reshape(-1)[idx_last]
    ] = True
    # Bounded by construction: each row holds at most 2*ways <= 32
    # flags, so the running count fits uint8 with headroom.
    fwd = np.cumsum(  # repro: noqa[REP004]
        flags, axis=1, dtype=np.uint8
    )
    total = fwd[:, -1:]
    kept = flags & ((total - fwd) < ways)  # newest `ways` finals
    idx_kept = np.flatnonzero(kept)
    row_kept = idx_kept >> np.int64(data_bits)
    rank = (
        total.reshape(-1)[row_kept] - fwd.reshape(-1)[idx_kept]
    ).astype(np.int64)
    summary = np.full((num_rows, ways), _EMPTY_SLOT, dtype=np.int32)
    summary.reshape(-1)[row_kept * ways + rank] = data.reshape(-1)[idx_kept]

    # ---- incoming stack per block: masked inclusive prefix scan of
    # summaries within each set (Hillis–Steele; _compose associates).
    comp = summary.copy()
    shift = 1
    max_blocks = int(blocks_per_set.max())
    while shift < max_blocks:
        idx = np.arange(shift, num_rows)
        ok = row_set[idx] == row_set[idx - shift]
        tgt = idx[ok]
        comp[tgt] = _compose(comp[tgt - shift], comp[tgt], ways)
        shift *= 2
    states = np.full((num_rows, ways), _EMPTY_SLOT, dtype=np.int32)
    has_prev = np.zeros(num_rows, dtype=bool)
    has_prev[1:] = row_set[1:] == row_set[:-1]
    states[has_prev] = comp[np.flatnonzero(has_prev) - 1]

    # ---- full rows: replaying the incoming stack deepest-first as
    # `ways` prefix accesses reproduces it exactly, so in-row stack
    # distances of the data cells are true distances (cells whose true
    # distance exceeds the prefix are in-row cold -> miss, correct
    # since true distance >= ways means miss anyway).
    rows = np.empty((num_rows, row_width), dtype=np.int32)
    prefix = states[:, ::-1]
    sentinels = -(np.arange(ways, dtype=np.int32) + 2)
    rows[:, :ways] = np.where(prefix != _EMPTY_SLOT, prefix, sentinels)
    rows[:, ways:] = data

    # ---- previous occurrence within each row, same pack-sort trick
    # (eight column bits: row_width <= FAST_MAX_WAYS + 128 < 256).
    packf = rows << np.int32(8)
    packf |= np.arange(row_width, dtype=np.int32)
    packf.sort(axis=1)
    linef = packf >> np.int32(8)
    posf = (packf & np.int32(255)).astype(np.uint8)
    # The later element of an equal-line pair is always a data cell
    # (prefix lines are distinct and sort first in their group), so a
    # plain adjacency test selects exactly the warm data cells.  Prev
    # values stay in full-row coordinates; targets drop to data-block
    # coordinates (the masked-out wraparounds are never gathered).
    same = linef[:, 1:] == linef[:, :-1]
    same_flat = same.reshape(-1)
    row_base = np.arange(num_rows, dtype=np.uint32)[:, None]
    row_base <<= np.uint32(data_bits)
    target = (row_base + posf[:, 1:]).reshape(-1)[same_flat]
    target -= np.uint32(ways)
    value = (posf[:, :-1] + np.uint8(1)).reshape(-1)[same_flat]
    prev1 = np.zeros((num_rows, data_width), dtype=np.uint8)  # P+1
    prev1.reshape(-1)[target] = value

    # ---- in-window inversion counts by level doubling: at each width
    # the right half of every span counts left-half entries with a
    # larger previous-occurrence.  Ties are cold/cold only (distinct
    # next-occurrences), and cold entries never beat warm ones, so the
    # count is exact for warm targets — the only ones that can hit.
    # Prefix cells are in-row cold (each stack line occurs once), so
    # they contribute nothing and stay out of the pyramid entirely.
    inversions = np.zeros((num_rows, data_width), dtype=np.int16)
    width = 1
    while width < data_width:
        spans = prev1.reshape(-1, 2 * width)
        acc = inversions.reshape(-1, 2 * width)
        left = spans[:, :width]
        right = spans[:, width:]
        if width <= 4:
            for j in range(width):
                col_r = right[:, j]
                out_col = acc[:, width + j]
                for i in range(width):
                    out_col += left[:, i] > col_r
        elif width < 64:
            # Chunk the (rows, width, width) comparison so its bool
            # temporary stays a few MB: one huge temp per round would
            # be mmap'd and page-faulted afresh on every call.
            step = max(1, (1 << 22) // (width * width))
            for lo in range(0, spans.shape[0], step):
                hi = lo + step
                # Bounded: counts at most `width` (< 64) matches
                # per cell, so int16 cannot wrap.
                acc[lo:hi, width:] += (  # repro: noqa[REP004]
                    left[lo:hi, :, None] > right[lo:hi, None, :]
                ).sum(axis=1, dtype=np.int16)
        else:
            # Widest round: per-row 256-bin histogram of the left
            # half, prefix-summed, beats the quadratic comparison.
            # #(left > r) = width - #(left <= r) = width - cum[r].
            # 2048 rows keeps the int64 histogram a few MB (same
            # mmap-thrash guard as the branch above).
            step = 2048
            for lo in range(0, spans.shape[0], step):
                l_chunk = left[lo:lo + step]
                r_chunk = right[lo:lo + step]
                nrows = l_chunk.shape[0]
                base = np.arange(nrows, dtype=np.int64)[:, None] << 8
                counts = np.bincount(
                    (base + l_chunk).reshape(-1), minlength=nrows << 8
                )
                cum = counts.reshape(nrows, 256).cumsum(axis=1)
                below = cum.reshape(-1)[(base + r_chunk).reshape(-1)]
                acc[lo:lo + step, width:] += (
                    width - below.reshape(nrows, width)
                ).astype(np.int16)
        width *= 2

    # Data cell local times in full-row coordinates (after the
    # ``ways`` prefix cells), matching the stored prev positions.
    local_t = np.arange(ways, ways + data_width, dtype=np.int16)[None, :]
    prev = prev1.astype(np.int16) - 1
    distance = (local_t - 1 - prev) - inversions
    hit = (prev >= 0) & (distance < ways)
    return hit.reshape(-1)[flat]


def _data_width_for(mean_len: float) -> int:
    """Trace cells per block: roughly one mean subtrace, rounded up
    to a power of two and clamped to keep padding and pyramid depth
    in check.  Independent of associativity — the stack prefix lives
    outside the block."""
    target = min(max(int(mean_len) + 1, 16), 128)
    return 1 << (target - 1).bit_length()


def _classify_sets(s_lines, starts, lens, ways: int) -> np.ndarray:
    """Dispatch per-set subtraces to the cheapest exact classifier.

    A set with at most ``ways`` accesses (after distance-0 collapse)
    can never overflow its stack — every warm access hits, every cold
    access misses — so only a previous-occurrence test is needed.
    That shortcut is what keeps many-set levels (e.g. a 16384-set L3
    seeing a short miss stream) from drowning in per-set padding.
    """
    n = s_lines.size
    short = lens <= ways
    if not short.any():
        mean_len = n / max(starts.size, 1)
        return _classify_blocks(
            s_lines, starts, lens, ways, _data_width_for(mean_len)
        )
    verdict = np.empty(n, dtype=bool)
    elem_short = np.repeat(short, lens)
    n_short = int(lens[short].sum())
    if n_short:
        segment = np.repeat(np.cumsum(short) - 1, lens)[elem_short]
        packed = (segment << np.int64(24)) | s_lines[elem_short].astype(
            np.int64
        )
        order = np.argsort(packed, kind="stable")
        ordered = packed[order]
        warm = np.empty(n_short, dtype=bool)
        warm[0] = False
        np.equal(ordered[1:], ordered[:-1], out=warm[1:])
        back = np.empty(n_short, dtype=bool)
        back[order] = warm
        verdict[elem_short] = back
    if n_short < n:
        long_lens = lens[~short]
        long_lines = s_lines[~elem_short]
        long_starts = np.concatenate([[0], np.cumsum(long_lens)[:-1]])
        mean_len = long_lines.size / max(long_lens.size, 1)
        verdict[~elem_short] = _classify_blocks(
            long_lines,
            long_starts,
            long_lens,
            ways,
            _data_width_for(mean_len),
        )
    return verdict


def _blocked_hit_mask(
    lines: np.ndarray, num_sets: int, associativity: int
) -> np.ndarray:
    """Fast-path hit classification; caller guarantees the domain
    (int64 ``lines`` in ``[0, FAST_LINE_LIMIT)``, ``associativity <=
    FAST_MAX_WAYS``, power-of-two ``num_sets``)."""
    n = lines.size
    if n == 0:
        return np.ones(0, dtype=bool)
    ways = int(associativity)
    small = lines.astype(np.int32)
    if num_sets > 1:
        # Stable partition by set id via a packed value sort — the
        # permutation comes out of the low bits, ~5x cheaper than a
        # stable argsort — with the set id readable from the high
        # bits of the sorted keys (no gather needed).
        if n < (1 << 26) and num_sets <= 64:
            pk = (
                (small.astype(np.uint32) & np.uint32(num_sets - 1))
                << np.uint32(26)
            ) | np.arange(n, dtype=np.uint32)
            pk.sort()
            order = (pk & np.uint32((1 << 26) - 1)).astype(np.int64)
            hi = pk >> np.uint32(26)
        else:
            pk = (
                (small & np.int32(num_sets - 1)).astype(np.int64)
                << np.int64(32)
            ) | np.arange(n, dtype=np.int64)
            pk.sort()
            order = pk & np.int64((1 << 32) - 1)
            hi = pk >> np.int64(32)
        s_lines = small[order]
        boundary = np.empty(n, dtype=bool)
        boundary[0] = True
        np.not_equal(hi[1:], hi[:-1], out=boundary[1:])
        starts = np.flatnonzero(boundary)
        # Distance-0 collapse: re-touching a set's stack top is a
        # guaranteed hit and leaves the stack unchanged.  Same line
        # -> same set and the partition is stable, so an adjacent-
        # equal test here catches raw-adjacent repeats too.
        keep1 = np.empty(n, dtype=bool)
        keep1[0] = True
        np.not_equal(s_lines[1:], s_lines[:-1], out=keep1[1:])
        keep1 |= boundary
        if not keep1.all():
            reduced = s_lines[keep1]
            lens = np.add.reduceat(
                keep1.astype(np.int32), starts
            ).astype(np.int64)
            starts_r = np.concatenate([[0], np.cumsum(lens)[:-1]])
        else:
            reduced = s_lines
            lens = np.diff(np.append(starts, n))
            starts_r = starts
        v_reduced = _classify_sets(reduced, starts_r, lens, ways)
        v_part = np.ones(n, dtype=bool)
        v_part[keep1] = v_reduced
        out = np.empty(n, dtype=bool)
        out[order] = v_part
        return out
    # Single set: the raw adjacent-equal test is the whole
    # distance-0 story.
    keep0 = np.empty(n, dtype=bool)
    keep0[0] = True
    np.not_equal(small[1:], small[:-1], out=keep0[1:])
    core = small[keep0] if not keep0.all() else small
    starts_r = np.array([0], dtype=np.int64)
    lens = np.array([core.size], dtype=np.int64)
    out = np.ones(n, dtype=bool)
    out[keep0] = _classify_sets(core, starts_r, lens, ways)
    return out


def hit_mask(lines, num_sets: int, associativity: int) -> np.ndarray:
    """Hit/miss of every access against one cold-started LRU level.

    Dispatches to the blocked fast classifier when the geometry is in
    its domain, otherwise to the :func:`lru_hit_mask` reference; both
    are exact, so the choice is invisible in the results.
    """
    if num_sets < 1 or (num_sets & (num_sets - 1)):
        raise InvalidParameterError(
            f"num_sets must be a positive power of two, got {num_sets}"
        )
    if associativity < 1:
        raise InvalidParameterError(
            f"associativity must be positive, got {associativity}"
        )
    arr = np.ascontiguousarray(lines, dtype=np.int64)
    blocked = (
        associativity <= FAST_MAX_WAYS
        and arr.size > 0
        and 0 <= int(arr.min())
        and int(arr.max()) < FAST_LINE_LIMIT
    )
    # Profiled phase: the classifier is the replay backend's entire
    # compute cost, so per-level wall/CPU attribution lands here.
    with obs.profile(
        "cache.replay.classify",
        n=int(arr.shape[0]), sets=num_sets, ways=associativity,
        path="blocked" if blocked else "reference",
    ):
        if blocked:
            return _blocked_hit_mask(arr, num_sets, associativity)
        return lru_hit_mask(arr, num_sets, associativity)


# ----------------------------------------------------------------------
# Trace recording
# ----------------------------------------------------------------------
@dataclass(frozen=True, eq=False)
class CacheTrace:
    """A frozen access trace, ready for :meth:`CacheHierarchy.replay`.

    ``lines`` is every line-level access in program order (demand
    touches *and* the prefetched line fills of sequential scans, which
    update cache state and per-level counters exactly like the scalar
    path).  ``demand_idx`` indexes the accesses whose serving level is
    charged to ``Memory.level_counts``; ``extra_l1`` is the aggregate
    of run-compressed element references that are L1 hits by
    construction (later elements on an already-referenced line).
    """

    lines: np.ndarray
    demand_idx: np.ndarray
    extra_l1: int
    prefetched_refs: int

    @property
    def num_accesses(self) -> int:
        return int(self.lines.shape[0])

    @property
    def num_demand(self) -> int:
        return int(self.demand_idx.shape[0])

    @property
    def total_refs(self) -> int:
        """Demand element references (matches ``Memory.total_refs``)."""
        return self.num_demand + self.extra_l1


_EMPTY = np.zeros(0, dtype=np.int64)


class TraceBuffer:
    """Growable record of touches, cheap to append and cheap to freeze.

    Four channels, interleaved by position at freeze time:

    * ``touches`` — a plain list of single demand line ids
      (``list.append`` is the hottest record-mode operation);
    * runs — ``touch_run`` scans, stored as (first line, line count)
      pairs;
    * bulk batches — ``touch_all`` index arrays, stored **by
      reference** together with the owning array's layout.  No numpy
      work happens at record time; ``freeze()`` converts, bounds-checks
      and maps all batches to line ids in one vectorised pass.  The
      caller must not mutate an index array between ``record_many``
      and ``freeze`` (the traced algorithms never do — they pass
      adjacency slices that stay untouched).
    * blocks — pre-resolved interleaved access vectors from the
      frontier runtime (:meth:`record_block`): line ids and demand
      flags already in emission order, stored **by reference**.  The
      block channel is how :mod:`repro.algorithms.runtime` appends a
      whole frontier advance in one call.

    Each run/batch/block remembers the ``touches`` length at record
    time (its interleave position) and a global sequence number (its
    order relative to other segments at the same position).  Bounds
    errors in deferred batches surface at ``freeze()`` — that is, when
    results are first read — rather than at touch time; the exception
    type matches the scalar path's.
    """

    __slots__ = (
        "touches", "_line_shift",
        "_runs",
        "_many_idx", "_many_meta", "_many_names",
        "_blocks", "_block_meta",
        "_seq", "_segment_refs",
        "extra_l1", "prefetched_refs",
    )

    def __init__(self, line_shift: int = 6) -> None:
        self.touches: list[int] = []
        self._line_shift = line_shift
        self._runs: list[tuple[int, int, int, int]] = []
        self._many_idx: list[np.ndarray] = []
        self._many_meta: list[tuple[int, int, int, int, int]] = []
        self._many_names: list[str] = []
        self._blocks: list[tuple[np.ndarray, np.ndarray]] = []
        self._block_meta: list[tuple[int, int]] = []
        self._seq = 0
        self._segment_refs = 0
        self.extra_l1 = 0
        self.prefetched_refs = 0

    @property
    def total_refs(self) -> int:
        """Demand element references recorded so far."""
        return len(self.touches) + self._segment_refs

    def record_run(self, line0: int, nlines: int, count: int) -> None:
        """A sequential scan: ``count`` elements spanning ``nlines``
        consecutive lines from ``line0`` (first line demand, the rest
        prefetched, later elements on a line L1 hits)."""
        self._runs.append((self._seq, len(self.touches), line0, nlines))
        self._seq += 1
        self._segment_refs += count
        self.extra_l1 += count - 1
        self.prefetched_refs += nlines - 1

    def record_many(
        self,
        indices: np.ndarray,
        base: int,
        itemsize: int,
        length: int,
        name: str,
    ) -> None:
        """A batch of single-element demand touches, deferred: the
        index array is kept by reference and resolved at freeze."""
        self._many_meta.append(
            (self._seq, len(self.touches), base, itemsize, length)
        )
        self._many_idx.append(indices)
        self._many_names.append(name)
        self._seq += 1
        self._segment_refs += int(indices.shape[0])

    def record_runs(
        self,
        line0s: np.ndarray,
        nlines: np.ndarray,
        counts: np.ndarray,
    ) -> None:
        """A batch of sequential scans, equivalent to calling
        :meth:`record_run` once per element (all arrays int64, aligned,
        every count >= 1)."""
        num = line0s.shape[0]
        pos = len(self.touches)
        seq0 = self._seq
        self._runs.extend(
            zip(
                range(seq0, seq0 + num),
                (pos,) * num,
                line0s.tolist(),
                nlines.tolist(),
            )
        )
        self._seq += num
        total = int(counts.sum())
        self._segment_refs += total
        self.extra_l1 += total - num
        self.prefetched_refs += int(nlines.sum()) - num

    def record_block(
        self,
        lines: np.ndarray,
        demand: np.ndarray,
        extra_l1: int,
        prefetched: int,
    ) -> None:
        """A pre-resolved interleaved access vector: ``lines`` (int64
        line ids in emission order) with a ``demand`` bool mask
        (``False`` marks prefetched fills, counted like a run's trailing
        lines).  Arrays are kept **by reference** — the caller must not
        mutate them before ``freeze()``.  ``extra_l1`` aggregates
        run-compressed element references that are L1 hits by
        construction; ``prefetched`` is the prefetched-line count the
        block contributes to ``Memory.prefetched_refs``."""
        self._block_meta.append((self._seq, len(self.touches)))
        self._blocks.append((lines, demand))
        self._seq += 1
        self._segment_refs += int(demand.sum()) + extra_l1
        self.extra_l1 += extra_l1
        self.prefetched_refs += prefetched

    # ------------------------------------------------------------------
    def _resolve_batches(self) -> tuple[np.ndarray, ...]:
        """Convert deferred batches: one concatenation, one bounds
        check, one line-id computation for every batch at once."""
        meta = np.asarray(self._many_meta, dtype=np.int64)
        lens = np.fromiter(
            (a.shape[0] for a in self._many_idx),
            dtype=np.int64,
            count=len(self._many_idx),
        )
        idx = np.concatenate(self._many_idx).astype(np.int64, copy=False)
        lengths = np.repeat(meta[:, 4], lens)
        bad = (idx < 0) | (idx >= lengths)
        if bad.any():
            first = int(np.argmax(bad))
            batch = int(np.searchsorted(np.cumsum(lens), first, side="right"))
            raise InvalidParameterError(
                f"touch_many indices outside array "
                f"{self._many_names[batch]!r} of length "
                f"{int(meta[batch, 4])}"
            )
        lines = (
            np.repeat(meta[:, 2], lens) + idx * np.repeat(meta[:, 3], lens)
        ) >> np.int64(self._line_shift)
        return meta[:, 0], meta[:, 1], lens, lines

    def freeze(self) -> CacheTrace:
        """Interleave all channels into one flat :class:`CacheTrace`."""
        touches = np.asarray(self.touches, dtype=np.int64)
        num_touches = touches.shape[0]
        if self._runs:
            runs = np.asarray(self._runs, dtype=np.int64)
            run_seq, run_pos = runs[:, 0], runs[:, 1]
            run_line0, run_nlines = runs[:, 2], runs[:, 3]
        else:
            run_seq = run_pos = run_line0 = run_nlines = _EMPTY
        if self._many_idx:
            many_seq, many_pos, many_lens, many_lines = (
                self._resolve_batches()
            )
        else:
            many_seq = many_pos = many_lens = many_lines = _EMPTY
        if self._blocks:
            block_meta = np.asarray(self._block_meta, dtype=np.int64)
            block_seq, block_pos = block_meta[:, 0], block_meta[:, 1]
            block_lens = np.fromiter(
                (b.shape[0] for b, _ in self._blocks),
                dtype=np.int64,
                count=len(self._blocks),
            )
        else:
            block_seq = block_pos = block_lens = _EMPTY
        num_runs = run_seq.shape[0]
        num_batches = many_seq.shape[0]
        num_blocks = block_seq.shape[0]
        num_segments = num_runs + num_batches + num_blocks
        # Merge the three (each already seq-sorted) segment channels:
        # rank every segment by its global sequence number.
        seq_all = np.concatenate([run_seq, many_seq, block_seq])
        rank = np.empty(num_segments, dtype=np.int64)
        rank[np.argsort(seq_all, kind="stable")] = np.arange(num_segments)
        run_at = rank[:num_runs]
        many_at = rank[num_runs:num_runs + num_batches]
        block_at = rank[num_runs + num_batches:]
        seg_pos = np.empty(num_segments, dtype=np.int64)
        seg_pos[run_at] = run_pos
        seg_pos[many_at] = many_pos
        seg_pos[block_at] = block_pos
        seg_len = np.empty(num_segments, dtype=np.int64)
        seg_len[run_at] = run_nlines
        seg_len[many_at] = many_lens
        seg_len[block_at] = block_lens
        cum_len = np.cumsum(seg_len)
        # A segment recorded at position p precedes touches[p]; its
        # expanded start is p singles plus every earlier segment.
        seg_start = seg_pos + cum_len - seg_len
        total = num_touches + (int(cum_len[-1]) if num_segments else 0)
        touch_at = np.arange(num_touches, dtype=np.int64)
        if num_segments:
            before = np.searchsorted(seg_pos, touch_at, side="right")
            touch_at = touch_at + np.where(
                before > 0, cum_len[np.maximum(before - 1, 0)], 0
            )
        lines = np.empty(total, dtype=np.int64)
        lines[touch_at] = touches
        demand = np.ones(total, dtype=bool)
        if num_runs:
            run_cum = np.cumsum(run_nlines)
            ramp = np.arange(int(run_cum[-1]), dtype=np.int64) - np.repeat(
                run_cum - run_nlines, run_nlines
            )
            at = np.repeat(seg_start[run_at], run_nlines) + ramp
            lines[at] = np.repeat(run_line0, run_nlines) + ramp
            demand[at[ramp > 0]] = False  # prefetched fills
        if num_batches:
            batch_cum = np.cumsum(many_lens)
            ramp = np.arange(
                int(batch_cum[-1]), dtype=np.int64
            ) - np.repeat(batch_cum - many_lens, many_lens)
            lines[np.repeat(seg_start[many_at], many_lens) + ramp] = (
                many_lines
            )
        if num_blocks:
            block_cum = np.cumsum(block_lens)
            ramp = np.arange(
                int(block_cum[-1]), dtype=np.int64
            ) - np.repeat(block_cum - block_lens, block_lens)
            at = np.repeat(seg_start[block_at], block_lens) + ramp
            lines[at] = np.concatenate([b for b, _ in self._blocks])
            demand[at] = np.concatenate([d for _, d in self._blocks])
        return CacheTrace(
            lines=lines,
            demand_idx=np.flatnonzero(demand),
            extra_l1=self.extra_l1,
            prefetched_refs=self.prefetched_refs,
        )
