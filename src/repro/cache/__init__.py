"""Cache simulator: levels, hierarchy, memory layout and cost model."""

from repro.cache.cost import DEFAULT_COST_MODEL, CostModel, RunCost
from repro.cache.hierarchy import (
    MEMORY_LEVEL,
    CacheHierarchy,
    paper_hierarchy,
    scaled_hierarchy,
)
from repro.cache.layout import CACHE_BACKENDS, Memory, TracedArray
from repro.cache.level import CacheLevel
from repro.cache.replay import (
    CacheTrace,
    TraceBuffer,
    count_prior_greater,
    hit_mask,
    lru_hit_mask,
    stack_distances,
)
from repro.cache.reuse import (
    COLD,
    RecordingHierarchy,
    lru_misses,
    median_reuse_distance,
    miss_curve,
    reuse_distances,
)
from repro.cache.stats import CacheStats

__all__ = [
    "CacheLevel",
    "CacheHierarchy",
    "MEMORY_LEVEL",
    "paper_hierarchy",
    "scaled_hierarchy",
    "Memory",
    "TracedArray",
    "CACHE_BACKENDS",
    "CacheTrace",
    "TraceBuffer",
    "count_prior_greater",
    "hit_mask",
    "lru_hit_mask",
    "stack_distances",
    "CacheStats",
    "COLD",
    "RecordingHierarchy",
    "reuse_distances",
    "lru_misses",
    "miss_curve",
    "median_reuse_distance",
    "CostModel",
    "RunCost",
    "DEFAULT_COST_MODEL",
]
