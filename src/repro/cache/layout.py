"""Memory layout model: maps array elements to cache lines.

An instrumented algorithm does not touch real memory in any observable
way (CPython hides it); instead it declares the arrays a C
implementation would allocate — the CSR ``offsets``/``adjacency``
arrays plus its own property arrays — and *touches* elements as it
runs.  :class:`Memory` lays those arrays out contiguously (line-aligned
bases, realistic element sizes) and drives every touch through the
cache hierarchy, tallying which level served each reference.

This is the heart of the substitution documented in DESIGN.md: node
ids with close values land on the same cache line of the same array,
exactly the effect a graph ordering manipulates.
"""

from __future__ import annotations

from repro.cache.cost import DEFAULT_COST_MODEL, CostModel, RunCost
from repro.cache.hierarchy import CacheHierarchy, scaled_hierarchy
from repro.cache.stats import CacheStats
from repro.errors import InvalidParameterError


class TracedArray:
    """A declared array whose element accesses hit the simulator.

    Create via :meth:`Memory.array`.  ``touch(i)`` models reading or
    writing element ``i``; ``touch_run(start, count)`` models a
    sequential scan and exploits the guarantee that consecutive
    elements on one line hit L1 after the line is first referenced.
    """

    __slots__ = ("name", "length", "itemsize", "_base", "_memory")

    def __init__(
        self,
        name: str,
        length: int,
        itemsize: int,
        base: int,
        memory: "Memory",
    ) -> None:
        self.name = name
        self.length = length
        self.itemsize = itemsize
        self._base = base
        self._memory = memory

    def touch(self, index: int) -> None:
        """Model one reference to element ``index``."""
        memory = self._memory
        level = memory._hierarchy.access(
            (self._base + index * self.itemsize) >> memory._line_shift
        )
        memory.level_counts[level] += 1

    def touch_run(self, start: int, count: int) -> None:
        """Model a sequential scan of ``count`` elements from ``start``.

        Each element counts as one reference (the hardware counters the
        paper reads count every load).  The first line of the run is a
        demand access; every following line is brought in by the
        stream prefetcher — it still updates cache state and hierarchy
        counters, but its latency is hidden (no stall contribution;
        see :meth:`CostModel.cost`).  Element references on a resident
        line are L1 hits by LRU.
        """
        if count <= 0:
            return
        memory = self._memory
        shift = memory._line_shift
        itemsize = self.itemsize
        base = self._base
        counts = memory.level_counts
        access = memory._hierarchy.access
        first_line = (base + start * itemsize) >> shift
        last_line = (base + (start + count - 1) * itemsize) >> shift
        per_line = (1 << shift) // itemsize
        remaining = count
        # First (possibly partial) line: a demand access.
        offset_in_line = (
            (base + start * itemsize) & ((1 << shift) - 1)
        ) // itemsize
        on_first = min(remaining, per_line - offset_in_line)
        counts[access(first_line)] += 1
        counts[1] += on_first - 1
        remaining -= on_first
        # Subsequent lines: prefetched fills + L1-hit element reads.
        prefetched = 0
        line = first_line + 1
        while line <= last_line:
            on_line = min(remaining, per_line)
            access(line)
            prefetched += 1
            counts[1] += on_line
            remaining -= on_line
            line += 1
        memory.prefetched_refs += prefetched

    def line_of(self, index: int) -> int:
        """Cache line id of element ``index`` (for tests)."""
        return (
            self._base + index * self.itemsize
        ) >> self._memory._line_shift

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TracedArray({self.name}: {self.length} x {self.itemsize} B "
            f"@ {self._base:#x})"
        )


class Memory:
    """Simulated address space + cache hierarchy + cost accounting."""

    def __init__(
        self,
        hierarchy: CacheHierarchy | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
    ) -> None:
        self._hierarchy = hierarchy or scaled_hierarchy()
        line_size = self._hierarchy.line_size
        self._line_shift = line_size.bit_length() - 1
        self._next_base = 0
        self.cost_model = cost_model
        #: References by serving level: [memory, L1, L2, L3, ...].
        self.level_counts = [0] * (self._hierarchy.num_levels + 1)
        #: Pure-CPU cycles added via :meth:`work`.
        self.extra_work = 0.0
        #: Sequential-scan references hidden by the stream prefetcher.
        self.prefetched_refs = 0
        self.arrays: dict[str, TracedArray] = {}

    # ------------------------------------------------------------------
    @property
    def hierarchy(self) -> CacheHierarchy:
        return self._hierarchy

    def array(self, name: str, length: int, itemsize: int) -> TracedArray:
        """Declare (allocate) an array and return its traced handle.

        Arrays are laid out consecutively, each base aligned to a cache
        line — the layout a sensible C allocator would produce.
        """
        if itemsize < 1 or (itemsize & (itemsize - 1)):
            raise InvalidParameterError(
                f"itemsize must be a positive power of two, got {itemsize}"
            )
        if length < 0:
            raise InvalidParameterError(
                f"array length must be non-negative, got {length}"
            )
        if name in self.arrays:
            raise InvalidParameterError(
                f"array {name!r} is already declared"
            )
        array = TracedArray(name, length, itemsize, self._next_base, self)
        line_size = 1 << self._line_shift
        span = max(length * itemsize, 1)
        self._next_base += (span + line_size - 1) // line_size * line_size
        self.arrays[name] = array
        return array

    def work(self, cycles: float) -> None:
        """Account pure-CPU work that performs no data reference."""
        self.extra_work += cycles

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    @property
    def total_refs(self) -> int:
        """Demand data references issued so far.

        Prefetched line fetches are tracked separately in
        :attr:`prefetched_refs`; they are requests the hardware issues
        on its own, not loads the program executes.
        """
        return sum(self.level_counts)

    def stats(self) -> CacheStats:
        """Hierarchy counters as a :class:`CacheStats` snapshot."""
        return self._hierarchy.snapshot()

    def cost(self) -> RunCost:
        """Simulated cycle cost of everything traced so far."""
        return self.cost_model.cost(
            self.level_counts, self.extra_work, self.prefetched_refs
        )

    def reset(self) -> None:
        """Flush caches and zero counters; declared arrays survive."""
        self._hierarchy.flush()
        self.level_counts = [0] * (self._hierarchy.num_levels + 1)
        self.extra_work = 0.0
        self.prefetched_refs = 0
