"""Memory layout model: maps array elements to cache lines.

An instrumented algorithm does not touch real memory in any observable
way (CPython hides it); instead it declares the arrays a C
implementation would allocate — the CSR ``offsets``/``adjacency``
arrays plus its own property arrays — and *touches* elements as it
runs.  :class:`Memory` lays those arrays out contiguously (line-aligned
bases, realistic element sizes) and drives every touch through the
cache hierarchy, tallying which level served each reference.

This is the heart of the substitution documented in DESIGN.md: node
ids with close values land on the same cache line of the same array,
exactly the effect a graph ordering manipulates.

Two interchangeable simulation backends (see docs/performance.md):

* ``"step"`` — every touch steps the hierarchy inline, one scalar
  :meth:`CacheHierarchy.access` at a time.  The reference oracle;
  works for every replacement policy and for wrapper hierarchies.
* ``"replay"`` — touches are recorded into growable trace buffers
  (:class:`~repro.cache.replay.TraceBuffer`) and replayed vectorised
  through :meth:`CacheHierarchy.replay` the first time a result is
  read.  Byte-identical counters for all-LRU hierarchies, much
  faster; unsupported geometries silently fall back to stepping.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.cache.cost import DEFAULT_COST_MODEL, CostModel, RunCost
from repro.cache.hierarchy import CacheHierarchy, scaled_hierarchy
from repro.cache.replay import CacheTrace, TraceBuffer
from repro.cache.stats import CacheStats
from repro.errors import InvalidParameterError

#: Cache simulation backends accepted by :class:`Memory`.
CACHE_BACKENDS = ("step", "replay")


class TracedArray:
    """A declared array whose element accesses hit the simulator.

    Create via :meth:`Memory.array`.  ``touch(i)`` models reading or
    writing element ``i``; ``touch_many(indices)`` models one reference
    per index, in order (``touch_all`` is a retained alias);
    ``touch_run(start, count)`` models a sequential scan and exploits
    the guarantee that consecutive elements on one line hit L1 after
    the line is first referenced; ``touch_runs(starts, lengths)`` is
    its batched form.  ``element_lines(indices)`` exposes the
    element-to-line mapping for the frontier runtime's block emitter.
    """

    __slots__ = ("name", "length", "itemsize", "_base", "_memory")

    def __init__(
        self,
        name: str,
        length: int,
        itemsize: int,
        base: int,
        memory: "Memory",
    ) -> None:
        self.name = name
        self.length = length
        self.itemsize = itemsize
        self._base = base
        self._memory = memory

    def touch(self, index: int) -> None:
        """Model one reference to element ``index``.

        Out-of-range indices raise instead of silently aliasing the
        *neighbouring* array's cache lines (arrays are laid out
        contiguously, so a stale or negative index would otherwise
        corrupt the locality statistics without any symptom).
        """
        if index < 0 or index >= self.length:
            raise InvalidParameterError(
                f"touch({index}) is outside array {self.name!r} "
                f"of length {self.length}"
            )
        memory = self._memory
        line = (self._base + index * self.itemsize) >> memory._line_shift
        if memory._record:
            memory._trace.touches.append(line)
            memory._dirty = True
        else:
            memory._level_counts[memory._hierarchy.access(line)] += 1

    def touch_many(self, indices) -> None:
        """Model one reference per element of ``indices``, in order.

        Semantically ``for i in indices: self.touch(i)``; in replay
        mode the whole batch is captured as one vectorised trace
        segment, which removes the per-edge Python from the traced
        algorithms' hot loops.
        """
        idx = np.asarray(indices)
        if idx.ndim != 1:
            raise InvalidParameterError(
                f"touch_many expects a 1-D index array, got shape "
                f"{idx.shape}"
            )
        if idx.dtype.kind not in "iu":
            raise InvalidParameterError(
                f"touch_many expects integer indices, got dtype {idx.dtype}"
            )
        if idx.shape[0] == 0:
            return
        memory = self._memory
        if memory._record:
            # Deferred: conversion, bounds check and line arithmetic
            # all happen vectorised at freeze time (see TraceBuffer).
            memory._trace.record_many(
                idx, self._base, self.itemsize, self.length, self.name
            )
            memory._dirty = True
            return
        idx = idx.astype(np.int64, copy=False)
        if int(idx.min()) < 0 or int(idx.max()) >= self.length:
            raise InvalidParameterError(
                f"touch_many indices outside array {self.name!r} "
                f"of length {self.length}"
            )
        lines = (self._base + idx * self.itemsize) >> memory._line_shift
        counts = memory._level_counts
        access = memory._hierarchy.access
        for line in lines.tolist():
            counts[access(line)] += 1

    def touch_all(self, indices) -> None:
        """Alias of :meth:`touch_many` (the original spelling)."""
        self.touch_many(indices)

    def touch_run(self, start: int, count: int) -> None:
        """Model a sequential scan of ``count`` elements from ``start``.

        Each element counts as one reference (the hardware counters the
        paper reads count every load).  The first line of the run is a
        demand access; every following line is brought in by the
        stream prefetcher — it still updates cache state and hierarchy
        counters, but its latency is hidden (no stall contribution;
        see :meth:`CostModel.cost`).  Element references on a resident
        line are L1 hits by LRU.
        """
        if count <= 0:
            return
        if start < 0 or start + count > self.length:
            raise InvalidParameterError(
                f"touch_run({start}, {count}) is outside array "
                f"{self.name!r} of length {self.length}"
            )
        memory = self._memory
        shift = memory._line_shift
        itemsize = self.itemsize
        base = self._base
        first_line = (base + start * itemsize) >> shift
        last_line = (base + (start + count - 1) * itemsize) >> shift
        if memory._record:
            memory._trace.record_run(
                first_line, last_line - first_line + 1, count
            )
            memory._dirty = True
            return
        counts = memory._level_counts
        access = memory._hierarchy.access
        per_line = (1 << shift) // itemsize
        remaining = count
        # First (possibly partial) line: a demand access.
        offset_in_line = (
            (base + start * itemsize) & ((1 << shift) - 1)
        ) // itemsize
        on_first = min(remaining, per_line - offset_in_line)
        counts[access(first_line)] += 1
        counts[1] += on_first - 1
        remaining -= on_first
        # Subsequent lines: prefetched fills + L1-hit element reads.
        prefetched = 0
        line = first_line + 1
        while line <= last_line:
            on_line = min(remaining, per_line)
            access(line)
            prefetched += 1
            counts[1] += on_line
            remaining -= on_line
            line += 1
        memory._prefetched_refs += prefetched

    def touch_runs(self, starts, lengths) -> None:
        """Model a batch of sequential scans, in order.

        Semantically ``for s, c in zip(starts, lengths):
        self.touch_run(s, c)`` — zero-length runs are skipped, bounds
        are checked per run.  In replay mode the whole batch lands in
        the trace buffer with one vectorised append instead of one
        Python call per run.
        """
        s = np.asarray(starts)
        c = np.asarray(lengths)
        if s.ndim != 1 or c.ndim != 1 or s.shape != c.shape:
            raise InvalidParameterError(
                f"touch_runs expects aligned 1-D arrays, got shapes "
                f"{s.shape} and {c.shape}"
            )
        if s.dtype.kind not in "iu" or c.dtype.kind not in "iu":
            raise InvalidParameterError(
                f"touch_runs expects integer arrays, got dtypes "
                f"{s.dtype} and {c.dtype}"
            )
        s = s.astype(np.int64, copy=False)
        c = c.astype(np.int64, copy=False)
        live = c > 0
        if not live.all():
            s = s[live]
            c = c[live]
        if s.shape[0] == 0:
            return
        if int(s.min()) < 0 or int((s + c).max()) > self.length:
            raise InvalidParameterError(
                f"touch_runs spans outside array {self.name!r} "
                f"of length {self.length}"
            )
        memory = self._memory
        if memory._record:
            shift = memory._line_shift
            first = (self._base + s * self.itemsize) >> np.int64(shift)
            last = (
                self._base + (s + c - 1) * self.itemsize
            ) >> np.int64(shift)
            memory._trace.record_runs(first, last - first + 1, c)
            memory._dirty = True
            return
        for start, count in zip(s.tolist(), c.tolist()):
            self.touch_run(start, count)

    def element_lines(self, indices) -> np.ndarray:
        """Cache line ids of ``indices`` (vectorised, bounds-checked).

        The building block of the frontier runtime's batched emission:
        algorithms resolve whole per-iteration index vectors to line
        ids here and hand the assembled access stream to
        :meth:`Memory.touch_block` in one call.
        """
        idx = np.asarray(indices, dtype=np.int64)
        if idx.shape[0] and (
            int(idx.min()) < 0 or int(idx.max()) >= self.length
        ):
            raise InvalidParameterError(
                f"element_lines indices outside array {self.name!r} "
                f"of length {self.length}"
            )
        return (
            self._base + idx * self.itemsize
        ) >> np.int64(self._memory._line_shift)

    def line_of(self, index: int) -> int:
        """Cache line id of element ``index`` (for tests)."""
        return (
            self._base + index * self.itemsize
        ) >> self._memory._line_shift

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TracedArray({self.name}: {self.length} x {self.itemsize} B "
            f"@ {self._base:#x})"
        )


class Memory:
    """Simulated address space + cache hierarchy + cost accounting.

    ``cache_backend`` selects the simulation strategy (see the module
    docstring): ``"step"`` is the scalar oracle, ``"replay"`` records
    a trace and replays it vectorised.  Replay silently degrades to
    stepping when the hierarchy cannot be replayed exactly (non-LRU
    levels, or wrappers such as
    :class:`~repro.cache.reuse.RecordingHierarchy`), so results are
    backend-independent by construction.
    """

    def __init__(
        self,
        hierarchy: CacheHierarchy | None = None,
        cost_model: CostModel = DEFAULT_COST_MODEL,
        cache_backend: str = "step",
    ) -> None:
        if cache_backend not in CACHE_BACKENDS:
            raise InvalidParameterError(
                f"cache_backend must be one of {CACHE_BACKENDS}, "
                f"got {cache_backend!r}"
            )
        self._hierarchy = hierarchy or scaled_hierarchy()
        line_size = self._hierarchy.line_size
        self._line_shift = line_size.bit_length() - 1
        self._next_base = 0
        self.cost_model = cost_model
        self.cache_backend = cache_backend
        self._record = (
            cache_backend == "replay"
            and isinstance(self._hierarchy, CacheHierarchy)
            and self._hierarchy.supports_replay
        )
        self._trace: TraceBuffer | None = (
            TraceBuffer(self._line_shift) if self._record else None
        )
        self._dirty = False
        self._level_counts = [0] * (self._hierarchy.num_levels + 1)
        #: Pure-CPU cycles added via :meth:`work`.
        self.extra_work = 0.0
        self._prefetched_refs = 0
        self.arrays: dict[str, TracedArray] = {}

    # ------------------------------------------------------------------
    @property
    def hierarchy(self) -> CacheHierarchy:
        return self._hierarchy

    @property
    def replaying(self) -> bool:
        """Whether this memory actually records for vectorised replay
        (False when ``cache_backend="replay"`` fell back to stepping).
        """
        return self._record

    def recorded_trace(self) -> "CacheTrace":
        """The touches recorded so far, frozen as a
        :class:`~repro.cache.replay.CacheTrace` (replay backend only).

        The public handle for benchmarks and tests that want to drive
        :meth:`CacheHierarchy.replay` / :meth:`CacheHierarchy.step_trace`
        on a real workload's trace directly.
        """
        if not self._record:
            raise InvalidParameterError(
                "recorded_trace() requires an actively recording "
                "cache_backend='replay' memory"
            )
        return self._trace.freeze()

    def array(self, name: str, length: int, itemsize: int) -> TracedArray:
        """Declare (allocate) an array and return its traced handle.

        Arrays are laid out consecutively, each base aligned to a cache
        line — the layout a sensible C allocator would produce.
        ``itemsize`` may not exceed the line size: a multi-line element
        would make "the line of element i" ill-defined and previously
        sent ``touch_run`` into an infinite loop (``per_line == 0``).
        """
        if itemsize < 1 or (itemsize & (itemsize - 1)):
            raise InvalidParameterError(
                f"itemsize must be a positive power of two, got {itemsize}"
            )
        if itemsize > (1 << self._line_shift):
            raise InvalidParameterError(
                f"itemsize {itemsize} exceeds the cache line size "
                f"{1 << self._line_shift}; elements must fit one line"
            )
        if length < 0:
            raise InvalidParameterError(
                f"array length must be non-negative, got {length}"
            )
        if name in self.arrays:
            raise InvalidParameterError(
                f"array {name!r} is already declared"
            )
        array = TracedArray(name, length, itemsize, self._next_base, self)
        line_size = 1 << self._line_shift
        span = max(length * itemsize, 1)
        self._next_base += (span + line_size - 1) // line_size * line_size
        self.arrays[name] = array
        return array

    def work(self, cycles: float) -> None:
        """Account pure-CPU work that performs no data reference."""
        self.extra_work += cycles

    def touch_block(
        self,
        lines: np.ndarray,
        demand: np.ndarray,
        extra_l1: int = 0,
        prefetched: int = 0,
    ) -> None:
        """Drive a pre-resolved access block through the simulator.

        The frontier runtime's ingestion point: ``lines`` are int64
        cache line ids in exact emission order (resolved via
        :meth:`TracedArray.element_lines`, so they are valid by
        construction), ``demand`` marks which of them are demand
        accesses (``False`` = prefetched fill of a sequential scan:
        updates cache state but is not charged to ``level_counts``).
        ``extra_l1`` counts run-compressed element references that are
        L1 hits by construction; ``prefetched`` counts the ``False``
        entries for :attr:`prefetched_refs`.

        In replay mode the block is appended to the trace buffer by
        reference (one Python call per block); in step mode it is
        stepped scalar — exactly the accesses the scalar emitters
        would make, so backends stay counter-identical.
        """
        if lines.ndim != 1 or demand.shape != lines.shape:
            raise InvalidParameterError(
                f"touch_block expects aligned 1-D arrays, got shapes "
                f"{lines.shape} and {demand.shape}"
            )
        if self._record:
            self._trace.record_block(lines, demand, extra_l1, prefetched)
            self._dirty = True
            return
        counts = self._level_counts
        access = self._hierarchy.access
        for line, dem in zip(lines.tolist(), demand.tolist()):
            if dem:
                counts[access(line)] += 1
            else:
                access(line)
        counts[1] += extra_l1
        self._prefetched_refs += prefetched

    # ------------------------------------------------------------------
    # Results
    # ------------------------------------------------------------------
    def _ensure_replayed(self) -> None:
        """Replay the recorded trace if results are stale.

        Replay always recomputes from the *full* retained trace (LRU
        hit/miss depends on all prior state, so there is no exact
        incremental form) and overwrites the hierarchy counters, which
        keeps mid-run ``stats()`` calls exact.
        """
        if not self._record or not self._dirty:
            return
        trace = self._trace.freeze()
        with obs.span(
            "cache.replay",
            accesses=trace.num_accesses,
            demand=trace.num_demand,
        ):
            self._hierarchy.flush()
            serving = self._hierarchy.replay(trace.lines)
            counts = np.bincount(
                serving[trace.demand_idx],
                minlength=self._hierarchy.num_levels + 1,
            )
            self._level_counts = [int(c) for c in counts]
            self._level_counts[1] += trace.extra_l1
            self._prefetched_refs = trace.prefetched_refs
        if obs.enabled():
            obs.inc("cache.replay.runs")
            obs.inc("cache.replay.accesses", trace.num_accesses)
        self._dirty = False

    @property
    def level_counts(self) -> list[int]:
        """References by serving level: ``[memory, L1, L2, L3, ...]``.

        In replay mode reading this (or :meth:`stats`/:meth:`cost`)
        triggers the lazy vectorised replay, so the numbers always
        reflect every touch recorded so far.
        """
        self._ensure_replayed()
        return self._level_counts

    @property
    def prefetched_refs(self) -> int:
        """Sequential-scan references hidden by the stream prefetcher."""
        if self._record:
            return self._trace.prefetched_refs
        return self._prefetched_refs

    @property
    def total_refs(self) -> int:
        """Demand data references issued so far.

        Prefetched line fetches are tracked separately in
        :attr:`prefetched_refs`; they are requests the hardware issues
        on its own, not loads the program executes.
        """
        if self._record:
            return self._trace.total_refs
        return sum(self._level_counts)

    def stats(self) -> CacheStats:
        """Hierarchy counters as a :class:`CacheStats` snapshot."""
        self._ensure_replayed()
        return self._hierarchy.snapshot()

    def cost(self) -> RunCost:
        """Simulated cycle cost of everything traced so far."""
        self._ensure_replayed()
        return self.cost_model.cost(
            self._level_counts, self.extra_work, self.prefetched_refs
        )

    def reset(self) -> None:
        """Flush caches and zero counters; declared arrays survive."""
        self._hierarchy.flush()
        self._level_counts = [0] * (self._hierarchy.num_levels + 1)
        self.extra_work = 0.0
        self._prefetched_refs = 0
        if self._record:
            self._trace = TraceBuffer(self._line_shift)
            self._dirty = False
