"""A single set-associative, LRU cache level.

The simulator works at cache-line granularity.  A level is a fixed
number of *sets*; a line maps to set ``line_id % num_sets`` and at most
``associativity`` lines live in a set, evicted least-recently-used
first.  We exploit CPython's insertion-ordered ``dict`` for an O(1)
LRU: a hit deletes and re-inserts the key (moving it to the back), an
eviction pops the front.

Geometry mirrors real hardware: ``capacity = num_sets * associativity
* line_size``.  The experiment configs scale capacities down so that
the scaled datasets overflow the hierarchy exactly as the paper's
billion-edge graphs overflow a real 32 KiB / 256 KiB / 20 MiB one.
"""

from __future__ import annotations

import random

from repro.errors import InvalidParameterError


def _is_power_of_two(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


class CacheLevel:
    """One level of the cache hierarchy.

    Parameters
    ----------
    capacity:
        Total bytes of data the level can hold.
    line_size:
        Bytes per cache line (power of two; 64 on the paper's hardware).
    associativity:
        Ways per set.  Use ``capacity // line_size`` for a fully
        associative level.
    name:
        Label used in reports ("L1", "L2", ...).
    policy:
        Replacement policy: ``"lru"`` (default), ``"fifo"`` (insertion
        order, no promotion on hit) or ``"random"`` (uniform victim,
        seeded).  Real parts mix these (L1s are LRU-ish, some LLCs
        pseudo-random); the geometry ablation uses them to test the
        paper's hardware-insensitivity claim.
    seed:
        RNG seed for the ``"random"`` policy.
    """

    __slots__ = (
        "name", "capacity", "line_size", "associativity",
        "num_sets", "_set_mask", "_sets", "refs", "misses",
        "policy", "seed", "_rng",
    )

    POLICIES = ("lru", "fifo", "random")

    def __init__(
        self,
        capacity: int,
        line_size: int = 64,
        associativity: int = 8,
        name: str = "cache",
        policy: str = "lru",
        seed: int = 0,
    ) -> None:
        if policy not in self.POLICIES:
            raise InvalidParameterError(
                f"policy must be one of {self.POLICIES}, got {policy!r}"
            )
        if not _is_power_of_two(line_size):
            raise InvalidParameterError(
                f"line_size must be a power of two, got {line_size}"
            )
        if associativity < 1:
            raise InvalidParameterError(
                f"associativity must be positive, got {associativity}"
            )
        if capacity < line_size * associativity:
            raise InvalidParameterError(
                f"capacity {capacity} cannot hold even one full set "
                f"({line_size} B lines x {associativity} ways)"
            )
        num_sets = capacity // (line_size * associativity)
        if not _is_power_of_two(num_sets):
            raise InvalidParameterError(
                f"capacity/(line_size*associativity) must be a power of "
                f"two, got {num_sets} sets"
            )
        self.name = name
        self.capacity = num_sets * associativity * line_size
        self.line_size = line_size
        self.associativity = associativity
        self.num_sets = num_sets
        self._set_mask = num_sets - 1
        self._sets: list[dict[int, None]] = [dict() for _ in range(num_sets)]
        self.refs = 0
        self.misses = 0
        self.policy = policy
        self.seed = seed
        self._rng = (
            random.Random(seed) if policy == "random" else None
        )

    # ------------------------------------------------------------------
    def access(self, line: int) -> bool:
        """Reference ``line``; return True on hit.

        Under LRU a hit promotes the line to most-recently-used; FIFO
        and random leave residency order untouched.  On a miss the
        line is filled, evicting the policy's victim if the set is
        full.  Statistics (``refs``/``misses``) update either way.
        """
        self.refs += 1
        lines = self._sets[line & self._set_mask]
        if line in lines:
            if self.policy == "lru":
                del lines[line]
                lines[line] = None
            return True
        self.misses += 1
        if len(lines) >= self.associativity:
            if self._rng is None:
                victim = next(iter(lines))  # front = LRU or FIFO-oldest
            else:
                victim = self._rng.choice(list(lines))
            del lines[victim]
        lines[line] = None
        return False

    def contains(self, line: int) -> bool:
        """Whether ``line`` is currently resident (no LRU update)."""
        return line in self._sets[line & self._set_mask]

    def resident_lines(self) -> set[int]:
        """Snapshot of every line currently held (for tests)."""
        resident: set[int] = set()
        for lines in self._sets:
            resident.update(lines)
        return resident

    def reset_statistics(self) -> None:
        """Zero the reference/miss counters, keeping contents."""
        self.refs = 0
        self.misses = 0

    def flush(self) -> None:
        """Drop all cached lines and zero the counters.

        A flush is a cold start, so the ``"random"`` policy's victim
        stream restarts from its seed — two flushed runs of the same
        trace are identical, the determinism the sweep engine's
        archive digests rely on.
        """
        for lines in self._sets:
            lines.clear()
        if self._rng is not None:
            self._rng = random.Random(self.seed)
        self.reset_statistics()

    @property
    def miss_rate(self) -> float:
        """Fraction of references that missed (0 when never referenced)."""
        return self.misses / self.refs if self.refs else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CacheLevel({self.name}: {self.capacity} B, "
            f"{self.num_sets}x{self.associativity} ways, "
            f"{self.line_size} B lines)"
        )
