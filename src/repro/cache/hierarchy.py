"""Multi-level cache hierarchy with a configurable geometry.

Access protocol: a reference probes L1; on a miss it falls through to
the next level, and so on to main memory.  Every level it reaches
counts one reference there, and every level it missed fills the line on
the way back (a simple non-exclusive model — the common behaviour of
the Intel parts used by both the original paper and the replication).

Two standard geometries are provided:

* :func:`paper_hierarchy` — the replication's SGI UV2000 Xeon:
  32 KiB L1 / 256 KiB L2 / 20 MiB L3, 64-byte lines.
* :func:`scaled_hierarchy` — the default for experiments on the scaled
  synthetic datasets: 1 KiB / 4 KiB / 16 KiB.  The scaling keeps
  the ratio (graph working set) : (cache capacity) in the regime the
  paper studies.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.cache.level import CacheLevel
from repro.cache.replay import hit_mask
from repro.cache.stats import CacheStats
from repro.errors import InvalidParameterError

#: Hit level returned by :meth:`CacheHierarchy.access` for main memory.
MEMORY_LEVEL = 0


class CacheHierarchy:
    """An ordered stack of :class:`CacheLevel` objects (L1 first)."""

    __slots__ = ("levels", "name")

    def __init__(self, levels: list[CacheLevel], name: str = "cache") -> None:
        if not levels:
            raise InvalidParameterError(
                "a cache hierarchy needs at least one level"
            )
        line_sizes = {level.line_size for level in levels}
        if len(line_sizes) != 1:
            raise InvalidParameterError(
                f"all levels must share one line size, got {line_sizes}"
            )
        self.levels = list(levels)
        self.name = name

    # ------------------------------------------------------------------
    @property
    def line_size(self) -> int:
        """Line size in bytes (shared by every level)."""
        return self.levels[0].line_size

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    def access(self, line: int) -> int:
        """Reference a cache line.

        Returns the 1-based level that served the reference, or
        :data:`MEMORY_LEVEL` (0) if it fell through to main memory.
        """
        for depth, level in enumerate(self.levels, start=1):
            if level.access(line):
                return depth
        return MEMORY_LEVEL

    def access_address(self, address: int) -> int:
        """Reference the line containing a byte address."""
        return self.access(address // self.line_size)

    # ------------------------------------------------------------------
    @property
    def supports_replay(self) -> bool:
        """Whether :meth:`replay` is exact for this geometry.

        Trace replay classifies hits by LRU stack distance, so every
        level must use the ``"lru"`` policy; FIFO/random levels need
        the scalar :meth:`access` path.
        """
        return all(level.policy == "lru" for level in self.levels)

    def replay(self, lines) -> np.ndarray:
        """Vectorised cold-start replay of a line-id access trace.

        Equivalent to calling :meth:`access` once per entry of
        ``lines`` on a freshly flushed hierarchy, as far as every
        level's ``refs``/``misses`` counters and each access's serving
        level are concerned.  Each level is classified array-wise with
        :func:`~repro.cache.replay.hit_mask`; the reference stream
        of level N+1 is the miss stream of level N (the non-exclusive
        fill model makes that exact).

        Counters are *incremented* — call on a cold (flushed)
        hierarchy for step-identical numbers.  Cache *contents* are
        left untouched: the replay computes what would have happened
        without materialising the final residency.

        Returns the 1-based serving level per access
        (:data:`MEMORY_LEVEL` for accesses that fell through).
        """
        if not self.supports_replay:
            raise InvalidParameterError(
                "trace replay is only exact for all-LRU hierarchies; "
                f"{self.name!r} has non-LRU levels"
            )
        stream = np.ascontiguousarray(lines, dtype=np.int64)
        n = stream.shape[0]
        # Narrow bookkeeping dtypes: the per-level compress/scatter
        # passes are memory-bound and serving levels are tiny ints.
        serving = np.zeros(n, dtype=np.int16)
        origin = np.arange(
            n, dtype=np.int32 if n < (1 << 31) else np.int64
        )
        with obs.profile(
            "cache.replay.levels", accesses=n,
            levels=self.num_levels, hierarchy=self.name,
        ):
            for depth, level in enumerate(self.levels, start=1):
                if stream.shape[0] == 0:
                    break
                hits = hit_mask(
                    stream, level.num_sets, level.associativity
                )
                misses = ~hits
                level.refs += int(stream.shape[0])
                level.misses += int(misses.sum())
                serving[origin[hits]] = depth
                stream = stream[misses]
                origin = origin[misses]
        return serving

    def step_trace(self, lines) -> np.ndarray:
        """Scalar reference replay: one :meth:`access` per entry.

        The oracle :meth:`replay` is checked against — identical
        counter and serving-level semantics — but built on the plain
        per-access step path, so it works for *any* replacement
        policy.  Unlike :meth:`replay` it also materialises the final
        cache contents, exactly as live stepping would.  Call on a
        cold (flushed) hierarchy for step-identical numbers.
        """
        stream = np.ascontiguousarray(lines, dtype=np.int64)
        access = self.access
        return np.fromiter(
            (access(line) for line in stream.tolist()),
            dtype=np.int64,
            count=stream.shape[0],
        )

    # ------------------------------------------------------------------
    def snapshot(self) -> CacheStats:
        """Current counters as a :class:`CacheStats` (3-level view).

        Hierarchies with fewer than three levels report zero for the
        missing ones; deeper hierarchies fold extra middle levels into
        L2 and always report the last level as L3.
        """
        first = self.levels[0]
        last = self.levels[-1]
        middle = self.levels[1:-1]
        l2_refs = sum(level.refs for level in middle)
        l2_misses = sum(level.misses for level in middle)
        if len(self.levels) == 1:
            return CacheStats(
                first.refs, first.misses, 0, 0, first.refs, first.misses
            )
        return CacheStats(
            first.refs,
            first.misses,
            l2_refs,
            l2_misses,
            last.refs,
            last.misses,
        )

    def publish_telemetry(self, prefix: str = "cache") -> None:
        """Add this hierarchy's per-level refs/misses to the telemetry
        counters (``cache.l1.refs``, ``cache.l1.misses``, ...).

        Counters accumulate across calls, so publishing after every
        simulated run totals the traffic of the whole process.  No-op
        while telemetry is disabled.
        """
        if not obs.enabled():
            return
        for level in self.levels:
            name = level.name.lower()
            obs.inc(f"{prefix}.{name}.refs", int(level.refs))
            obs.inc(f"{prefix}.{name}.misses", int(level.misses))

    def reset_statistics(self) -> None:
        """Zero all counters, keeping cache contents (for warm runs)."""
        for level in self.levels:
            level.reset_statistics()

    def flush(self) -> None:
        """Empty every level and zero all counters (cold start)."""
        for level in self.levels:
            level.flush()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        inner = ", ".join(
            f"{level.name}={level.capacity >> 10}KiB" for level in self.levels
        )
        return f"CacheHierarchy({self.name}: {inner})"


def paper_hierarchy(line_size: int = 64) -> CacheHierarchy:
    """The replication's hardware: 32 KiB / 256 KiB / 20 MiB.

    20 MiB is not a power-of-two set count with 16 ways, so the L3 is
    rounded to the nearest valid geometry (16 MiB, 16-way).
    """
    return CacheHierarchy(
        [
            CacheLevel(32 * 1024, line_size, 8, "L1"),
            CacheLevel(256 * 1024, line_size, 8, "L2"),
            CacheLevel(16 * 1024 * 1024, line_size, 16, "L3"),
        ],
        name="paper",
    )


def scaled_hierarchy(
    l1: int = 1024,
    l2: int = 4 * 1024,
    l3: int = 16 * 1024,
    line_size: int = 64,
) -> CacheHierarchy:
    """The experiment default: a hierarchy scaled to the scaled datasets.

    The synthetic analogues are ~1/2000 of the paper's graphs, so the
    caches shrink with them to keep the **working-set-to-cache ratio**
    in the paper's regime: per-node property arrays (4 B x n, i.e.
    3-48 KiB here) relate to this 1 KiB / 4 KiB / 16 KiB hierarchy the
    way the paper's 9 MB-380 MB arrays relate to its real
    32 KiB / 256 KiB / 20 MiB one — the smallest dataset (epinion)
    almost fits in the last level, the largest overflows it by an
    order of magnitude.
    """
    return CacheHierarchy(
        [
            CacheLevel(l1, line_size, 8, "L1"),
            CacheLevel(l2, line_size, 8, "L2"),
            CacheLevel(l3, line_size, 16, "L3"),
        ],
        name="scaled",
    )
