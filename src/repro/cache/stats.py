"""Cache statistics snapshots — the columns of the paper's Tables 3/4.

The replication reports, per (ordering, dataset), for PageRank:

* ``L1-ref``  — number of L1 data references,
* ``L1-mr``   — L1 miss rate,
* ``L3-ref``  — references reaching the last-level cache,
* ``L3-r``    — fraction of all references that reach L3,
* ``Cache-mr``— fraction of all references served by main memory.

:class:`CacheStats` captures those plus the L2 numbers the text
mentions in passing, and knows how to render itself as a table row.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CacheStats:
    """Immutable per-run snapshot of hierarchy counters."""

    l1_refs: int
    l1_misses: int
    l2_refs: int
    l2_misses: int
    l3_refs: int
    l3_misses: int

    # ------------------------------------------------------------------
    # Derived rates (the paper's columns)
    # ------------------------------------------------------------------
    @property
    def l1_miss_rate(self) -> float:
        """``L1-mr``: fraction of L1 references that missed."""
        return self.l1_misses / self.l1_refs if self.l1_refs else 0.0

    @property
    def l2_miss_rate(self) -> float:
        """Fraction of L2 references that missed."""
        return self.l2_misses / self.l2_refs if self.l2_refs else 0.0

    @property
    def l3_miss_rate(self) -> float:
        """Fraction of L3 references that missed."""
        return self.l3_misses / self.l3_refs if self.l3_refs else 0.0

    @property
    def l3_ratio(self) -> float:
        """``L3-r``: fraction of all references that reached L3."""
        return self.l3_refs / self.l1_refs if self.l1_refs else 0.0

    @property
    def cache_miss_rate(self) -> float:
        """``Cache-mr``: fraction of all references served by memory."""
        return self.l3_misses / self.l1_refs if self.l1_refs else 0.0

    @property
    def memory_accesses(self) -> int:
        """References that fell through every cache level."""
        return self.l3_misses

    # ------------------------------------------------------------------
    def __add__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.l1_refs + other.l1_refs,
            self.l1_misses + other.l1_misses,
            self.l2_refs + other.l2_refs,
            self.l2_misses + other.l2_misses,
            self.l3_refs + other.l3_refs,
            self.l3_misses + other.l3_misses,
        )

    def __sub__(self, other: "CacheStats") -> "CacheStats":
        return CacheStats(
            self.l1_refs - other.l1_refs,
            self.l1_misses - other.l1_misses,
            self.l2_refs - other.l2_refs,
            self.l2_misses - other.l2_misses,
            self.l3_refs - other.l3_refs,
            self.l3_misses - other.l3_misses,
        )

    def table_row(self) -> dict[str, float]:
        """The paper's Table 3 columns for this run."""
        return {
            "L1-ref": self.l1_refs,
            "L1-mr": self.l1_miss_rate,
            "L3-ref": self.l3_refs,
            "L3-r": self.l3_ratio,
            "Cache-mr": self.cache_miss_rate,
        }

    @staticmethod
    def zero() -> "CacheStats":
        """An all-zero snapshot (additive identity)."""
        return CacheStats(0, 0, 0, 0, 0, 0)
