"""Atomic file writes shared by every persistence path.

One pattern, one implementation: write to a sibling ``*.tmp`` file in
the target directory, fsync, then ``os.replace`` onto the final name,
then fsync the containing directory.  The replace is atomic on POSIX
(same filesystem, because the temp file lives next to the target), so
a kill mid-write leaves at worst a stray ``*.tmp`` file — never a
truncated target, and never a window where the old file is gone and
the new one is incomplete.  The directory fsync makes the *rename
itself* durable: without it a power loss shortly after ``os.replace``
can roll the directory entry back to the old file even though the new
data blocks were flushed.

The static-analysis rule REP002 (:mod:`repro.analysis.rules`) flags
truncating writes that bypass this module, so new persistence code is
steered here mechanically.
"""

from __future__ import annotations

import os
from collections.abc import Iterator
from contextlib import contextmanager
from pathlib import Path
from typing import IO, Any

from repro.errors import InvalidParameterError


def _fsync_dir(directory: Path) -> None:
    """Flush a directory's entry table (durability of renames).

    Some filesystems do not support opening a directory for fsync
    (and Windows has no equivalent); failing to harden the rename is
    not worth failing the write, so errors are swallowed deliberately.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:  # repro: noqa[REP003] — best-effort durability
        pass
    finally:
        os.close(fd)


@contextmanager
def atomic_open(
    path: str | os.PathLike, mode: str = "w", **kwargs: Any
) -> Iterator[IO]:
    """Open ``path`` for writing through a temp file + ``os.replace``.

    Usage mirrors ``open``::

        with atomic_open(path, "w", encoding="utf-8") as handle:
            handle.write(text)

    The handle targets ``<path>.tmp``; on a clean exit the temp file
    is fsynced and renamed over ``path``.  If the body raises, the
    temp file is removed and ``path`` is untouched.

    ``mode`` must be a truncating write mode (``w``/``wb``/``x``/
    ``xb``): append modes cannot be made atomic this way.
    """
    if "r" in mode or "a" in mode or "+" in mode:
        raise InvalidParameterError(
            f"atomic_open requires a truncating write mode, got {mode!r}"
        )
    path = Path(path)
    tmp = path.with_name(path.name + ".tmp")
    try:
        with open(tmp, mode, **kwargs) as handle:
            yield handle
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, path)
        _fsync_dir(path.parent)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise


def atomic_write_text(
    path: str | os.PathLike, text: str, encoding: str = "utf-8"
) -> None:
    """Write ``text`` to ``path`` atomically."""
    with atomic_open(path, "w", encoding=encoding) as handle:
        handle.write(text)


def atomic_write_bytes(path: str | os.PathLike, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically."""
    with atomic_open(path, "wb") as handle:
        handle.write(data)
