"""Cheap structural predictors of reordering benefit.

"A Closer Look at Lightweight Graph Reordering" [Faldu, Diamond &
Grot 2019] shows that whether reordering pays — and which reordering
— is largely decided by a handful of structural properties: how
skewed the degree distribution is, how much of the access stream the
hub set absorbs, how badly the hot vertices are scattered across
cache lines, and how far apart repeat touches of the same vertex are.
This module computes those properties in one O(n + m log m) pass so
the adaptive selector (:mod:`repro.ordering.select`) can reason about
a dataset *before* paying for any ordering.

All predictors are deterministic pure functions of the graph.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass

import numpy as np

from repro import obs
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph

#: Nodes per simulated cache line used by the packing factor — a
#: 64-byte line of 4-byte vertex states, matching the simulator's
#: default line size.
LINE_NODES = 16


@dataclass(frozen=True)
class StructuralPredictors:
    """O(n + m) structural signals for one graph.

    All ratios are dimensionless; a graph with no edges yields the
    neutral values (skew 1, concentration 0, packing 1, reuse 0).
    """

    nodes: int
    edges: int
    #: Mean degree (m / n) — separates sparse from dense inputs.
    mean_degree: float
    #: Max in-degree over mean degree: >> 1 on power-law graphs,
    #: ~1 on regular/mesh graphs where hub packing cannot help.
    degree_skew: float
    #: Share of nodes whose in-degree exceeds the mean (the hub set
    #: the lightweight orderings pack).
    hub_fraction: float
    #: Share of edges that *target* a hub — how much of the access
    #: stream the hot working set absorbs.
    hub_concentration: float
    #: Faldu-style packing factor: cache lines the hub set currently
    #: touches over the minimum possible.  1.0 = already perfectly
    #: packed (reordering cannot densify the hot set further).
    packing_factor: float
    #: Mean edge-stream distance between consecutive touches of the
    #: same target vertex — a stack-reuse-distance estimate; large
    #: values mean hot vertices fall out of cache between touches.
    avg_reuse_distance: float
    #: Double-BFS-sweep eccentricity lower bound: long, thin graphs
    #: (large proxy) favour traversal-order arrangements, compact
    #: ones favour hub packing.
    diameter_proxy: int

    def as_dict(self) -> dict:
        return asdict(self)


def _bfs_farthest(
    graph: CSRGraph, source: int
) -> tuple[int, int]:
    """``(farthest_node, distance)`` of a BFS from ``source``."""
    distances = np.full(graph.num_nodes, -1, dtype=np.int64)
    distances[source] = 0
    frontier = np.array([source], dtype=np.int64)
    offsets = graph.offsets
    adjacency = graph.adjacency
    depth = 0
    farthest = source
    while frontier.shape[0]:
        spans = [
            adjacency[offsets[u]:offsets[u + 1]] for u in frontier
        ]
        neighbors = (
            np.unique(np.concatenate(spans)) if spans
            else np.zeros(0, dtype=np.int64)
        )
        frontier = neighbors[distances[neighbors] < 0]
        if frontier.shape[0]:
            depth += 1
            distances[frontier] = depth
            farthest = int(frontier[0])
    return farthest, depth


def diameter_proxy(graph: CSRGraph) -> int:
    """Double-sweep BFS eccentricity bound (two O(n + m) BFS runs).

    Starts from the max-out-degree node (deterministic), hops to the
    farthest node it reaches and returns that node's BFS depth — the
    classic lower bound on the directed diameter.
    """
    if graph.num_nodes == 0 or graph.num_edges == 0:
        return 0
    start = int(np.argmax(graph.out_degrees()))
    turn, _ = _bfs_farthest(graph, start)
    _, depth = _bfs_farthest(graph, turn)
    return depth


def average_reuse_distance(graph: CSRGraph) -> float:
    """Mean stream gap between consecutive touches of a target.

    The NQ access stream touches ``adjacency[i]`` at stream position
    ``i``; for every vertex touched more than once the gaps between
    consecutive touches approximate its reuse distance.  Returns 0.0
    when no vertex repeats (every touch is a cold miss regardless of
    arrangement).
    """
    targets = graph.adjacency
    if targets.shape[0] < 2:
        return 0.0
    order = np.argsort(targets, kind="stable")
    grouped = targets[order]
    positions = order.astype(np.int64)
    same = grouped[1:] == grouped[:-1]
    if not bool(same.any()):
        return 0.0
    gaps = positions[1:][same] - positions[:-1][same]
    return float(gaps.mean())


def packing_factor(
    graph: CSRGraph, line_nodes: int = LINE_NODES
) -> float:
    """Hub cache-line spread over the minimum possible spread."""
    if line_nodes < 1:
        raise InvalidParameterError(
            f"line_nodes must be positive, got {line_nodes}"
        )
    degrees = graph.in_degrees()
    if graph.num_nodes == 0 or graph.num_edges == 0:
        return 1.0
    hubs = np.flatnonzero(degrees > degrees.mean())
    if not hubs.shape[0]:
        return 1.0
    lines_used = int(np.unique(hubs // line_nodes).shape[0])
    lines_minimal = -(-int(hubs.shape[0]) // line_nodes)
    return lines_used / lines_minimal


def compute_predictors(
    graph: CSRGraph, line_nodes: int = LINE_NODES
) -> StructuralPredictors:
    """All structural predictors for one graph, in one call."""
    n = graph.num_nodes
    m = graph.num_edges
    with obs.profile("ordering.predictors", n=n, m=m):
        if n == 0 or m == 0:
            return StructuralPredictors(
                nodes=n, edges=m, mean_degree=0.0, degree_skew=1.0,
                hub_fraction=0.0, hub_concentration=0.0,
                packing_factor=1.0, avg_reuse_distance=0.0,
                diameter_proxy=0,
            )
        degrees = graph.in_degrees()
        mean_degree = m / n
        hubs = degrees > degrees.mean()
        return StructuralPredictors(
            nodes=n,
            edges=m,
            mean_degree=mean_degree,
            degree_skew=float(degrees.max()) / mean_degree,
            hub_fraction=float(np.count_nonzero(hubs)) / n,
            hub_concentration=float(degrees[hubs].sum()) / m,
            packing_factor=packing_factor(
                graph, line_nodes=line_nodes
            ),
            avg_reuse_distance=average_reuse_distance(graph),
            diameter_proxy=diameter_proxy(graph),
        )


def predicted_gain_fraction(
    predictors: StructuralPredictors,
) -> float:
    """Heuristic upper estimate of the probe-cycle fraction a
    heavyweight ordering can save on this graph.

    Calibrated on the replication's acceptance datasets: skewed,
    badly-packed graphs with long reuse distances have the most
    recoverable locality; regular graphs with packed hubs have
    almost none.  Clamped to [0.05, 0.6] — the selector uses this
    only to decide whether a heavyweight candidate is *worth
    probing* at a given query volume, never to rank candidates it
    has measured.
    """
    skew_term = 0.08 * math.log2(max(predictors.degree_skew, 1.0))
    packing_term = 0.1 * max(predictors.packing_factor - 1.0, 0.0)
    concentration_term = 0.2 * predictors.hub_concentration
    raw = 0.05 + skew_term + packing_term + concentration_term
    return min(max(raw, 0.05), 0.6)
