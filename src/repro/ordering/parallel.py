"""Partitioned Gorder — the paper's "parallel version" made real.

The replication's discussion suggests "a parallel version of Gorder"
to attack its long ordering time.  Gorder's cost is superlinear in the
graph size, so even *without* processes, splitting the graph into k
partitions and ordering each induced subgraph independently cuts the
total work substantially; with ``workers > 1`` the parts really do run
concurrently on a :class:`concurrent.futures.ProcessPoolExecutor`.
The price is quality at partition boundaries: scores across parts are
ignored.

Determinism: each part is ordered by the standard (deterministic)
Gorder kernel on its induced subgraph and the parts are merged in
partition order, so the output is **identical for every worker
count** — ``workers=4`` is a wall-clock optimisation, never a
different arrangement.  Workers are spawned (not forked) so they start
from a clean interpreter without inheriting telemetry sinks; per-part
timings and counter deltas are reported back to the parent, which
merges the counters into its own registry and emits them as
``gorder.partition`` telemetry (profiled spans when inline, events
when the part ran in a worker process, since spans cannot cross
processes).  Both carry a stable ``part=`` attribute.

Partitions come from the BFS bisection of
:mod:`repro.ordering.bisect` so parts are locality-coherent.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro import obs
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.permute import (
    invert_permutation,
    permutation_from_sequence,
)
from repro.graph.subgraph import induced_subgraph
from repro.ordering.bisect import bisection_order
from repro.ordering.gorder import DEFAULT_WINDOW, gorder_sequence


def partition_nodes(
    graph: CSRGraph, num_parts: int
) -> list[np.ndarray]:
    """Split nodes into ``num_parts`` locality-coherent blocks.

    Uses the recursive BFS bisection arrangement and slices it into
    equal contiguous chunks, so each part is a connected-ish region.
    """
    if num_parts < 1:
        raise InvalidParameterError(
            f"num_parts must be positive, got {num_parts}"
        )
    sequence = invert_permutation(
        bisection_order(graph, leaf_size=max(1, graph.num_nodes // 64))
    )
    return [
        chunk
        for chunk in np.array_split(sequence, num_parts)
        if chunk.shape[0]
    ]


def _order_part(
    task: tuple,
) -> tuple[int, np.ndarray, float, dict[str, int]]:
    """Order one induced-subgraph part (runs in a worker process).

    The subgraph travels as raw CSR arrays (cheap to pickle) and is
    rebuilt without validation — it came from ``induced_subgraph`` on
    an already-valid graph.  When ``collect`` is set the worker turns
    on a registry-only telemetry session around the kernel and ships
    the counter *deltas* back to the parent, which merges them into
    its own registry (spans cannot cross processes, counters can).
    """
    (
        index, num_nodes, offsets, adjacency,
        window, hub_threshold, backend, collect,
    ) = task
    subgraph = CSRGraph(
        num_nodes, offsets, adjacency,
        name=f"part-{index}", validate=False,
    )
    owns_telemetry = collect and not obs.enabled()
    if owns_telemetry:
        obs.configure()  # registry only: no sinks in the worker
    before = obs.counters() if collect else {}
    start = time.perf_counter()
    sequence = gorder_sequence(
        subgraph,
        window=window,
        hub_threshold=hub_threshold,
        backend=backend,
    )
    seconds = time.perf_counter() - start
    counters: dict[str, int] = {}
    if collect:
        after = obs.counters()
        counters = {
            name: after[name] - before.get(name, 0)
            for name in sorted(after)
            if after[name] != before.get(name, 0)
        }
    if owns_telemetry:
        obs.reset()
    return index, sequence, seconds, counters


def gorder_partitioned(
    graph: CSRGraph,
    seed: int = 0,
    num_parts: int = 4,
    window: int = DEFAULT_WINDOW,
    hub_threshold: int | None = None,
    workers: int = 1,
    backend: str = "batched",
) -> np.ndarray:
    """Gorder applied independently to ``num_parts`` partitions.

    Returns a full arrangement: partitions are laid out in bisection
    order, each internally ordered by Gorder on its induced subgraph.
    ``workers`` bounds the process pool; the result is identical for
    every worker count (see the module docstring).
    """
    del seed  # deterministic
    if workers < 1:
        raise InvalidParameterError(
            f"workers must be positive, got {workers}"
        )
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    parts = partition_nodes(graph, num_parts)
    effective_workers = min(workers, len(parts))
    collect = obs.enabled() and effective_workers > 1
    tasks = []
    for index, part in enumerate(parts):
        subgraph, _ = induced_subgraph(graph, part)
        tasks.append((
            index, subgraph.num_nodes, subgraph.offsets,
            subgraph.adjacency, window, hub_threshold, backend,
            collect,
        ))
    pieces: list[np.ndarray] = [None] * len(tasks)  # type: ignore[list-item]
    with obs.span(
        "gorder.partitioned", n=n, m=graph.num_edges,
        parts=len(tasks), workers=effective_workers, backend=backend,
    ):
        if effective_workers == 1:
            for task in tasks:
                with obs.profile(
                    "gorder.partition", part=task[0], n=task[1],
                ):
                    index, local_sequence, _, _ = _order_part(task)
                pieces[index] = parts[index][local_sequence]
        else:
            context = multiprocessing.get_context("spawn")
            with ProcessPoolExecutor(
                max_workers=effective_workers, mp_context=context
            ) as pool:
                for index, local_sequence, seconds, counters in (
                    pool.map(_order_part, tasks)
                ):
                    for counter_name, delta in counters.items():
                        obs.inc(  # repro: noqa[REP005] — the merged
                            # names were literal in the worker.
                            counter_name, delta,
                        )
                    attrs: dict = {
                        "part": index,
                        "n": tasks[index][1],
                        "seconds": round(seconds, 6),
                    }
                    if counters:
                        attrs["counters"] = counters
                    obs.event("gorder.partition", **attrs)
                    pieces[index] = parts[index][local_sequence]
    return permutation_from_sequence(np.concatenate(pieces))
