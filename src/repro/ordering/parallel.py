"""Partitioned Gorder — the paper's "parallel version" sketch.

The replication's discussion suggests "a parallel version of Gorder"
to attack its long ordering time.  Gorder's cost is superlinear in the
graph size, so even *without* threads, splitting the graph into k
partitions and ordering each induced subgraph independently cuts the
total work substantially; with workers the parts are embarrassingly
parallel.  The price is quality at partition boundaries: scores across
parts are ignored.

:func:`gorder_partitioned` implements the sequential form (dividing
work, deterministic); partitions come from the BFS bisection of
:mod:`repro.ordering.bisect` so parts are locality-coherent, and each
part is ordered by the standard unit-heap Gorder.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.permute import (
    invert_permutation,
    permutation_from_sequence,
)
from repro.graph.subgraph import induced_subgraph
from repro.ordering.bisect import bisection_order
from repro.ordering.gorder import DEFAULT_WINDOW, gorder_sequence


def partition_nodes(
    graph: CSRGraph, num_parts: int
) -> list[np.ndarray]:
    """Split nodes into ``num_parts`` locality-coherent blocks.

    Uses the recursive BFS bisection arrangement and slices it into
    equal contiguous chunks, so each part is a connected-ish region.
    """
    if num_parts < 1:
        raise InvalidParameterError(
            f"num_parts must be positive, got {num_parts}"
        )
    sequence = invert_permutation(
        bisection_order(graph, leaf_size=max(1, graph.num_nodes // 64))
    )
    return [
        chunk
        for chunk in np.array_split(sequence, num_parts)
        if chunk.shape[0]
    ]


def gorder_partitioned(
    graph: CSRGraph,
    seed: int = 0,
    num_parts: int = 4,
    window: int = DEFAULT_WINDOW,
    hub_threshold: int | None = None,
) -> np.ndarray:
    """Gorder applied independently to ``num_parts`` partitions.

    Returns a full arrangement: partitions are laid out in bisection
    order, each internally ordered by Gorder on its induced subgraph.
    """
    del seed  # deterministic
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    pieces: list[np.ndarray] = []
    for part in partition_nodes(graph, num_parts):
        subgraph, _ = induced_subgraph(graph, part)
        local_sequence = gorder_sequence(
            subgraph, window=window, hub_threshold=hub_threshold
        )
        pieces.append(part[local_sequence])
    return permutation_from_sequence(np.concatenate(pieces))
