"""Graph-compression application of node orderings (paper extension).

The papers' discussion points out that orderings clustering
high-proximity nodes also help **graph compression**: WebGraph-style
codecs [Boldi & Vigna 2004] store each adjacency list as deltas
(gaps) between consecutive sorted neighbour ids, so arrangements that
shrink gaps shrink the encoded graph.  This module estimates the
encoded size of a graph under an arrangement without building a full
codec:

* each list's first neighbour is stored relative to the source id,
* subsequent neighbours as gaps to their predecessor,
* every value costs its Elias-gamma length
  (``2 * floor(log2(v + 1)) + 1`` bits).

That is exactly the part of the WebGraph format an ordering can
influence (reference chains and intervals only amplify the effect).
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.permute import relabel, validate_permutation


def elias_gamma_bits(values: np.ndarray) -> int:
    """Total Elias-gamma code length of non-negative integers."""
    values = np.asarray(values, dtype=np.int64)
    if values.size == 0:
        return 0
    if values.min() < 0:
        raise InvalidParameterError(
            "gamma codes are defined for values >= 0"
        )
    return int((2 * np.floor(np.log2(values + 1)) + 1).sum())


def _signed_to_natural(values: np.ndarray) -> np.ndarray:
    """Zig-zag map of signed values onto naturals (0, -1, 1, -2, ...)."""
    values = np.asarray(values, dtype=np.int64)
    return np.where(values >= 0, 2 * values, -2 * values - 1)


def gap_encoding_bits(graph: CSRGraph, perm: np.ndarray) -> int:
    """Estimated adjacency bits of ``graph`` relabeled by ``perm``.

    Lower is better; compare arrangements on the same graph.
    """
    perm = validate_permutation(perm, graph.num_nodes)
    relabeled = relabel(graph, perm)
    offsets = relabeled.offsets
    adjacency = relabeled.adjacency.astype(np.int64)
    total = 0
    for u in range(relabeled.num_nodes):
        start = int(offsets[u])
        end = int(offsets[u + 1])
        if start == end:
            continue
        row = adjacency[start:end]
        first = _signed_to_natural(row[:1] - u)
        gaps = row[1:] - row[:-1] - 1  # sorted, distinct: gaps >= 0
        total += elias_gamma_bits(first)
        total += elias_gamma_bits(gaps)
    return total


def compression_ratio(
    graph: CSRGraph, perm: np.ndarray, baseline: np.ndarray
) -> float:
    """Bits under ``baseline`` divided by bits under ``perm`` (>1 = win)."""
    return gap_encoding_bits(graph, baseline) / gap_encoding_bits(
        graph, perm
    )


def bits_per_edge(graph: CSRGraph, perm: np.ndarray) -> float:
    """Average encoded bits per edge under ``perm``."""
    if graph.num_edges == 0:
        return 0.0
    return gap_encoding_bits(graph, perm) / graph.num_edges
