"""Empirical checks of the paper's theoretical results.

The paper proves (its Theorem 5.2) that the greedy GO algorithm is a
``1/(2w)``-approximation of the NP-hard optimal arrangement for the
objective ``F``.  These helpers make the theorem *testable* at small
scale: exhaustive search over all ``n!`` arrangements gives the true
optimum, and the greedy's score is compared against the bound.

Only use on tiny graphs (``n <= 9`` keeps the factorial tractable).
"""

from __future__ import annotations

import itertools

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.ordering.gorder import DEFAULT_WINDOW, gorder_order
from repro.ordering.metrics import gorder_score, pair_score

#: Largest node count accepted by the exhaustive optimum.
MAX_EXHAUSTIVE_NODES = 9


def optimal_score(
    graph: CSRGraph, window: int = DEFAULT_WINDOW
) -> tuple[int, np.ndarray]:
    """The true maximum of F over all arrangements (brute force).

    Returns ``(score, perm)``.  Raises for graphs beyond
    :data:`MAX_EXHAUSTIVE_NODES` nodes — the search is O(n! * n * w).
    """
    n = graph.num_nodes
    if n > MAX_EXHAUSTIVE_NODES:
        raise InvalidParameterError(
            f"exhaustive optimum is limited to "
            f"{MAX_EXHAUSTIVE_NODES} nodes, got {n}"
        )
    if n == 0:
        return 0, np.zeros(0, dtype=np.int64)
    # Precompute the symmetric pair scores once.
    scores = np.zeros((n, n), dtype=np.int64)
    for u in range(n):
        for v in range(u + 1, n):
            scores[u, v] = scores[v, u] = pair_score(graph, u, v)
    best_score = -1
    best_sequence: tuple[int, ...] = tuple(range(n))
    for sequence in itertools.permutations(range(n)):
        total = 0
        for i in range(1, n):
            u = sequence[i]
            for j in range(max(0, i - window), i):
                total += scores[u, sequence[j]]
        if total > best_score:
            best_score = total
            best_sequence = sequence
    perm = np.empty(n, dtype=np.int64)
    perm[list(best_sequence)] = np.arange(n)
    return int(best_score), perm


def greedy_approximation_ratio(
    graph: CSRGraph, window: int = DEFAULT_WINDOW
) -> float:
    """``F(greedy) / F(optimal)`` for a tiny graph.

    The paper guarantees this is at least ``1 / (2 * window)``; in
    practice it is far closer to 1.  Returns 1.0 when the optimum is
    0 (no score to collect).
    """
    best, _ = optimal_score(graph, window)
    if best == 0:
        return 1.0
    greedy = gorder_score(graph, gorder_order(graph, window=window),
                          window=window)
    return greedy / best


def theoretical_bound(window: int) -> float:
    """The paper's guaranteed approximation factor ``1 / (2w)``."""
    if window < 1:
        raise InvalidParameterError(
            f"window must be at least 1, got {window}"
        )
    return 1.0 / (2.0 * window)


def hardness_witness(num_nodes: int = 6) -> CSRGraph:
    """A small graph family where greedy is provably sub-optimal.

    Two tight triangles bridged by one edge, with the bridge endpoint
    given the largest in-degree so greedy starts *between* the
    clusters — a classic greedy trap used by the tests to confirm the
    ratio can drop below 1 (i.e. the bound is not vacuous).
    """
    if num_nodes < 6:
        raise InvalidParameterError(
            f"the witness needs at least 6 nodes, got {num_nodes}"
        )
    from repro.graph.builder import from_edges

    edges = [
        (0, 1), (1, 2), (2, 0), (1, 0), (2, 1), (0, 2),  # triangle A
        (3, 4), (4, 5), (5, 3), (4, 3), (5, 4), (3, 5),  # triangle B
        (0, 3),  # the bridge
    ]
    # Pad with isolated nodes if asked for more.
    return from_edges(edges, num_nodes=num_nodes, name="witness")


def expected_score_lower_bound(
    graph: CSRGraph, window: int = DEFAULT_WINDOW
) -> float:
    """Expected F of a *uniformly random* arrangement.

    Each unordered pair lands within the window with probability
    ``p = (2 * sum_{d=1..w} (n - d)) / (n * (n - 1))``; by linearity
    the expectation is ``p * sum_{u<v} S(u, v)``.  Used by tests as a
    calibration point: greedy must beat random-in-expectation.
    """
    n = graph.num_nodes
    if n < 2:
        return 0.0
    in_window_positions = 2 * sum(
        n - d for d in range(1, min(window, n - 1) + 1)
    )
    probability = in_window_positions / (n * (n - 1))
    total = 0
    for u in range(n):
        for v in range(u + 1, n):
            total += pair_score(graph, u, v)
    return probability * total
