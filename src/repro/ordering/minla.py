"""MinLA and MinLogA orderings via simulated annealing.

The objectives (over the directed edge set E):

* MinLA:    ``E(pi) = sum_(u,v) |pi_u - pi_v|``
* MinLogA:  ``E(pi) = sum_(u,v) log |pi_u - pi_v|``

Both exact problems are NP-hard; following the replication we run
simulated annealing with a linearly decreasing temperature
``T(s) = 1 - s / S`` and Metropolis acceptance
``p(e, T) = exp(-e / (k * T))`` for an energy increase ``e``, where
``S`` is the step budget and ``k`` the *standard energy* scale.
Setting ``k = 0`` degenerates to pure local search (only improving
swaps accepted) — which the replication found as good as any annealing
schedule (its Figure 3).

Defaults follow the replication: ``S = m`` and ``k = m / n``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.permute import identity_permutation


def minla_order(
    graph: CSRGraph,
    seed: int = 0,
    steps: int | None = None,
    standard_energy: float | None = None,
) -> np.ndarray:
    """Simulated-annealing arrangement for the **linear** objective."""
    return _anneal(graph, seed, steps, standard_energy, logarithmic=False)


def minloga_order(
    graph: CSRGraph,
    seed: int = 0,
    steps: int | None = None,
    standard_energy: float | None = None,
) -> np.ndarray:
    """Simulated-annealing arrangement for the **log** objective."""
    return _anneal(graph, seed, steps, standard_energy, logarithmic=True)


def _anneal(
    graph: CSRGraph,
    seed: int,
    steps: int | None,
    standard_energy: float | None,
    logarithmic: bool,
) -> np.ndarray:
    n = graph.num_nodes
    if n <= 1:
        return identity_permutation(n)
    if steps is None:
        steps = graph.num_edges
    if steps < 0:
        raise InvalidParameterError(f"steps must be >= 0, got {steps}")
    if standard_energy is None:
        standard_energy = graph.num_edges / n
    if standard_energy < 0:
        raise InvalidParameterError(
            f"standard_energy must be >= 0, got {standard_energy}"
        )
    # Incident lists on the undirected view: a swap of u's position only
    # changes energy terms of edges touching u.
    undirected = graph.undirected()
    offsets = undirected.offsets
    adjacency = undirected.adjacency
    rng = np.random.default_rng(seed)
    position = identity_permutation(n)
    log = math.log
    use_log = logarithmic
    k = standard_energy
    pairs = rng.integers(0, n, size=(steps, 2))
    coins = rng.random(steps)
    for step in range(steps):
        u = int(pairs[step, 0])
        v = int(pairs[step, 1])
        if u == v:
            continue
        pos_u = int(position[u])
        pos_v = int(position[v])
        delta = 0.0
        for w in adjacency[offsets[u]:offsets[u + 1]]:
            w = int(w)
            if w == v:
                continue  # the (u, v) term is invariant under the swap
            pos_w = int(position[w])
            if use_log:
                delta += log(abs(pos_v - pos_w)) - log(abs(pos_u - pos_w))
            else:
                delta += abs(pos_v - pos_w) - abs(pos_u - pos_w)
        for w in adjacency[offsets[v]:offsets[v + 1]]:
            w = int(w)
            if w == u:
                continue
            pos_w = int(position[w])
            if use_log:
                delta += log(abs(pos_u - pos_w)) - log(abs(pos_v - pos_w))
            else:
                delta += abs(pos_u - pos_w) - abs(pos_v - pos_w)
        if delta > 0.0:
            if k <= 0.0:
                continue  # local search: reject all uphill moves
            temperature = 1.0 - step / steps
            if temperature <= 0.0:
                continue
            if coins[step] >= math.exp(-delta / (k * temperature)):
                continue
        position[u] = pos_v
        position[v] = pos_u
    return position
