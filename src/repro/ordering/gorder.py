"""Gorder — the paper's graph ordering (its core contribution).

Gorder greedily builds a placement sequence maximising the locality
objective ``F(pi) = sum_{0 < pi_u - pi_v <= w} S(u, v)`` where
``S(u, v) = S_s(u, v) + S_n(u, v)`` counts common in-neighbours
(sibling score) plus direct edges between the pair (neighbour score).
Finding the optimal arrangement is NP-hard; the greedy insertion is a
``1/(2w)``-approximation (Theorem 5.2 of the paper).

Two priority-queue kernels drive the greedy loop, selected by the
``backend`` parameter:

* ``"batched"`` (default) — per placement step, gather every affected
  candidate at once as numpy arrays (``N+(u)``, ``N−(u)``, and the
  sibling expansion: the concatenated out-adjacency slices of the
  in-neighbours), then apply the newest entry's +1 events and the
  expiring node's −1 events as one fused
  :meth:`~repro.ordering.unit_heap.UnitHeap.apply_step`, which
  deduplicates and sums the unit events into one net delta per node
  (overlapping enter/exit events cancel outright).  This removes the
  per-edge Python call and ``int()`` boxing that made the loop kernel
  the replication's slowest component (its Table 2 hours).
* ``"loop"`` — the reference kernel: one
  :meth:`~repro.ordering.unit_heap.UnitHeap.increase` /
  ``decrease`` call per score event, exactly Algorithm 2.

Both kernels produce **byte-identical sequences**: the unit heap
breaks ties by smallest node id among maximal keys, a pure function of
the net key state, so collapsing a step's events into one batch
cannot change any pop.  :func:`gorder_naive` (literal greedy rescan,
O(n^2 * w * d), tests only) shares the same tie-break and therefore
also agrees exactly.

``hub_threshold`` optionally skips the sibling expansion through
common in-neighbours with out-degree above the threshold.  Such hubs
co-cite a large fraction of the graph, so their sibling score is a
near-uniform offset that rarely changes the argmax; skipping them
bounds the per-step cost (the original C++ implementation treats
high-degree nodes specially for the same reason).  ``None`` (default)
disables skipping and keeps the algorithm exact.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.permute import permutation_from_sequence
from repro.ordering.metrics import pair_score
from repro.ordering.unit_heap import MeteredUnitHeap, UnitHeap

#: The paper's default window size (chosen in its Figure 8 experiment).
DEFAULT_WINDOW = 5

#: Names accepted by the ``backend`` parameter of the greedy kernel.
GORDER_BACKENDS = ("batched", "loop")


def _validate_gorder_params(
    window: int, hub_threshold: int | None, backend: str
) -> None:
    if window < 1:
        raise InvalidParameterError(
            f"window must be at least 1, got {window}"
        )
    if hub_threshold is not None and hub_threshold < 0:
        raise InvalidParameterError(
            f"hub_threshold must be non-negative, got {hub_threshold}"
        )
    if backend not in GORDER_BACKENDS:
        known = ", ".join(GORDER_BACKENDS)
        raise InvalidParameterError(
            f"unknown gorder backend {backend!r}; choose from: {known}"
        )


def gorder_sequence(
    graph: CSRGraph,
    window: int = DEFAULT_WINDOW,
    hub_threshold: int | None = None,
    backend: str = "batched",
) -> np.ndarray:
    """The Gorder placement sequence (``sequence[i]`` = i-th node placed).

    ``backend`` selects the priority-queue kernel (see the module
    docstring); both backends return byte-identical sequences.
    """
    _validate_gorder_params(window, hub_threshold, backend)
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    if backend == "loop":
        return _gorder_sequence_loop(graph, window, hub_threshold)
    return _gorder_sequence_batched(graph, window, hub_threshold)


def _gorder_sequence_loop(
    graph: CSRGraph, window: int, hub_threshold: int | None
) -> np.ndarray:
    """Reference kernel: one heap call per unit score event."""
    n = graph.num_nodes
    out_offsets = graph.offsets
    out_adjacency = graph.adjacency
    in_offsets = graph.in_offsets
    in_adjacency = graph.in_adjacency
    out_degrees = graph.out_degrees()
    skip_limit = (
        np.iinfo(np.int64).max if hub_threshold is None else hub_threshold
    )

    # Telemetry: hoisted to one check per call.  The metered heap
    # subclass keeps the disabled path identical to the bare kernel.
    counting = obs.enabled()
    heap = MeteredUnitHeap(n) if counting else UnitHeap(n)
    sequence = np.empty(n, dtype=np.int64)

    def apply(u: int, entering: bool) -> None:
        """Propagate u's window-entry (+1) or -exit (-1) score events."""
        update = heap.increase if entering else heap.decrease
        for v in out_adjacency[out_offsets[u]:out_offsets[u + 1]]:
            update(int(v))  # S_n: edge u -> v
        for z in in_adjacency[in_offsets[u]:in_offsets[u + 1]]:
            z = int(z)
            update(z)  # S_n: edge z -> u
            if out_degrees[z] > skip_limit:
                continue  # hub co-citation: skipped, see module docstring
            for v in out_adjacency[out_offsets[z]:out_offsets[z + 1]]:
                v = int(v)
                if v != u:
                    update(v)  # S_s: z is a common in-neighbour of u, v

    # Seed with the highest in-degree node (deterministic hub start).
    start = int(np.argmax(graph.in_degrees())) if n > 1 else 0
    with obs.profile(
        "gorder.greedy", n=n, m=graph.num_edges, window=window,
        backend="loop",
    ):
        heap.remove(start)
        sequence[0] = start
        apply(start, entering=True)
        for i in range(1, n):
            if i > window:
                apply(int(sequence[i - 1 - window]), entering=False)
            chosen = heap.pop_max()
            sequence[i] = chosen
            apply(chosen, entering=True)
    if counting:
        obs.inc("gorder.heap_pops", heap.pops)
        obs.inc("gorder.priority_updates", heap.priority_updates)
    return sequence


def _gorder_sequence_batched(
    graph: CSRGraph, window: int, hub_threshold: int | None
) -> np.ndarray:
    """Batched kernel: one numpy gather + one heap batch per step."""
    n = graph.num_nodes
    out_offsets = graph.offsets
    out_adjacency = graph.adjacency
    in_offsets = graph.in_offsets
    in_adjacency = graph.in_adjacency
    out_degrees = graph.out_degrees()

    counting = obs.enabled()
    heap = MeteredUnitHeap(n) if counting else UnitHeap(n)
    sequence = np.empty(n, dtype=np.int64)

    # ------------------------------------------------------------------
    # Precompute every node's event list in one vectorised expansion.
    # Each node's events are gathered twice (window entry and exit), so
    # building the full table up front halves the gather work and
    # replaces ~15 small numpy calls per gather with two slices and a
    # concatenate.  Size is the total event count — the same quantity
    # the loop kernel spends one Python call on per event — i.e.
    # 2m + sum_z d_out(z)^2 entries (hub skipping prunes the square).
    #
    # The sibling table: for every in-neighbour z of every node u (the
    # in-adjacency, already grouped by u), splice in z's out-neighbour
    # list via a multi-range gather — index k of chunk j maps to
    # starts[j] + k, built by offsetting one flat arange per chunk —
    # then drop u itself from its own chunks.
    # int32 throughout: node ids and edge positions both fit, and the
    # expansion arrays are the largest the kernel touches.
    with obs.profile(
        "gorder.phase.expand", n=n, m=graph.num_edges,
    ) as expand_phase:
        owners = np.repeat(
            np.arange(n, dtype=np.int32), graph.in_degrees()
        )
        expand = in_adjacency
        if hub_threshold is not None:
            kept = out_degrees[expand] <= hub_threshold
            expand = expand[kept]
            owners = owners[kept]
        chunk_starts = out_offsets[expand].astype(np.int32)
        chunk_lengths = out_degrees[expand].astype(np.int32)
        sibling_owners = np.repeat(owners, chunk_lengths)
        total = int(chunk_lengths.sum(dtype=np.int64))
        # int64 only when the expansion overflows 32-bit indexing.
        count_dtype = (
            np.int32 if total <= np.iinfo(np.int32).max else np.int64
        )
        index = np.arange(total, dtype=count_dtype)
        index += np.repeat(
            chunk_starts - (
                np.cumsum(chunk_lengths, dtype=count_dtype)
                - chunk_lengths
            ),
            chunk_lengths,
        )
        siblings = out_adjacency[index]
        not_self = siblings != sibling_owners
        siblings = siblings[not_self]
        sib_offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(
            np.bincount(sibling_owners[not_self], minlength=n),
            out=sib_offsets[1:],
        )
        # Python-int offset lists make the per-step slicing cheap.
        out_bounds = out_offsets.tolist()
        in_bounds = in_offsets.tolist()
        sib_bounds = sib_offsets.tolist()
        expand_phase.set(events=int(siblings.shape[0]))

    def gather(u: int) -> np.ndarray:
        """All unit score events of u's window entry/exit, duplicates kept."""
        return np.concatenate((
            out_adjacency[out_bounds[u]:out_bounds[u + 1]],
            in_adjacency[in_bounds[u]:in_bounds[u + 1]],
            siblings[sib_bounds[u]:sib_bounds[u + 1]],
        ))

    start = int(np.argmax(graph.in_degrees())) if n > 1 else 0
    with obs.profile(
        "gorder.greedy", n=n, m=graph.num_edges, window=window,
        backend="batched",
    ):
        heap.remove(start)
        sequence[0] = start
        # The loop kernel interleaves exit(i), pop(i), enter(i).  No
        # pop happens between enter(i) and exit(i+1), so the batched
        # kernel fuses those two updates into one heap.apply_step:
        # events hitting the same node cancel before touching the heap.
        # A node's events are needed twice — at window entry and again
        # at exit — so a (window + 2)-slot ring keeps each gather
        # alive until its exit step comes round.
        ring_size = window + 2
        ring: list[np.ndarray | None] = [None] * ring_size
        events = gather(start)
        ring[0] = events
        for i in range(1, n):
            if i > window:
                heap.apply_step(
                    events, ring[(i - 1 - window) % ring_size]
                )
            else:
                heap.increase_batch(events)
            chosen = heap.pop_max()
            sequence[i] = chosen
            events = gather(chosen)
            ring[i % ring_size] = events
        # The last node's entry moves no future pop, but applying it
        # keeps the update counters identical to the loop kernel's.
        heap.increase_batch(events)
    if counting:
        obs.inc("gorder.heap_pops", heap.pops)
        obs.inc("gorder.priority_updates", heap.priority_updates)
        obs.inc("gorder.batched_moves", heap.batched_moves)
    return sequence


def gorder_order(
    graph: CSRGraph,
    seed: int = 0,
    window: int = DEFAULT_WINDOW,
    hub_threshold: int | None = None,
    backend: str = "batched",
) -> np.ndarray:
    """The Gorder arrangement ``pi`` (see :func:`gorder_sequence`)."""
    del seed  # deterministic
    return permutation_from_sequence(
        gorder_sequence(
            graph,
            window=window,
            hub_threshold=hub_threshold,
            backend=backend,
        )
    )


def gorder_naive(
    graph: CSRGraph, window: int = DEFAULT_WINDOW
) -> np.ndarray:
    """Reference greedy without the priority queue (tests only).

    Rescans every remaining candidate at every step, computing its
    window score from the definition of ``S``.  Exponentially clearer,
    quadratically slower.  Ties resolve to the smallest node id, the
    same rule as the unit heap, so the fast kernels must match this
    output exactly.
    """
    if window < 1:
        raise InvalidParameterError(
            f"window must be at least 1, got {window}"
        )
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    start = int(np.argmax(graph.in_degrees())) if n > 1 else 0
    sequence = [start]
    remaining = [u for u in range(n) if u != start]
    while remaining:
        window_nodes = sequence[-window:]
        best_index = 0
        best_score = -1
        for index, v in enumerate(remaining):
            score = sum(pair_score(graph, u, v) for u in window_nodes)
            if score > best_score:
                best_score = score
                best_index = index
        sequence.append(remaining.pop(best_index))
    return permutation_from_sequence(np.array(sequence, dtype=np.int64))


def window_scores(
    graph: CSRGraph, sequence: np.ndarray, window: int = DEFAULT_WINDOW
) -> np.ndarray:
    """Score each placement step of ``sequence`` against its window.

    ``result[i] = sum_{j in [max(0, i-w), i)} S(sequence[i], sequence[j])``
    — used by tests to verify the greedy invariant (every placed node
    maximises its step score) and by ablations to inspect quality.

    Vectorised over the edge list in O(m * w): the neighbour score
    S_n is one mask over all edges; the sibling score S_s counts, for
    each window shift ``s``, the edges ``z -> b`` whose companion edge
    ``z -> a`` lands exactly ``s`` positions earlier — a sorted-key
    membership query.  :func:`window_scores_reference` is the literal
    per-pair oracle it is tested against.
    """
    if window < 1:
        raise InvalidParameterError(
            f"window must be at least 1, got {window}"
        )
    sequence = np.asarray(sequence, dtype=np.int64)
    steps = int(sequence.shape[0])
    scores = np.zeros(steps, dtype=np.int64)
    if steps <= 1 or graph.num_edges == 0:
        return scores
    position = np.full(graph.num_nodes, -1, dtype=np.int64)
    position[sequence] = np.arange(steps, dtype=np.int64)
    sources, targets = graph.edge_array()
    source_pos = position[sources]
    target_pos = position[targets]
    # S_n: each directed edge with both endpoints placed within the
    # window contributes 1 to the later endpoint's step.
    gap = source_pos - target_pos
    near = (
        (source_pos >= 0)
        & (target_pos >= 0)
        & (gap != 0)
        & (np.abs(gap) <= window)
    )
    np.add.at(scores, np.maximum(source_pos, target_pos)[near], 1)
    # S_s: encode each placed-target edge z -> b as z * steps + pos(b);
    # for each shift s, edge z -> b scores step pos(b) iff the key of a
    # companion edge z -> a with pos(a) = pos(b) - s exists.
    placed = target_pos >= 0
    sources = sources[placed].astype(np.int64)
    target_pos = target_pos[placed]
    edge_keys = np.sort(sources * steps + target_pos)
    for shift in range(1, window + 1):
        valid = target_pos >= shift
        queries = sources[valid] * steps + (target_pos[valid] - shift)
        slots = np.searchsorted(edge_keys, queries)
        slots_clipped = np.minimum(slots, edge_keys.shape[0] - 1)
        hits = edge_keys[slots_clipped] == queries
        np.add.at(scores, target_pos[valid][hits], 1)
    return scores


def window_scores_reference(
    graph: CSRGraph, sequence: np.ndarray, window: int = DEFAULT_WINDOW
) -> np.ndarray:
    """Literal per-pair :func:`window_scores` (the test oracle).

    Evaluates ``pair_score`` for every (step, window slot) pair —
    O(n * w * d) Python work, kept as the unambiguous definition the
    vectorised version is verified against.
    """
    if window < 1:
        raise InvalidParameterError(
            f"window must be at least 1, got {window}"
        )
    sequence = np.asarray(sequence, dtype=np.int64)
    scores = np.zeros(sequence.shape[0], dtype=np.int64)
    for i in range(1, sequence.shape[0]):
        u = int(sequence[i])
        scores[i] = sum(
            pair_score(graph, u, int(sequence[j]))
            for j in range(max(0, i - window), i)
        )
    return scores
