"""Gorder — the paper's graph ordering (its core contribution).

Gorder greedily builds a placement sequence maximising the locality
objective ``F(pi) = sum_{0 < pi_u - pi_v <= w} S(u, v)`` where
``S(u, v) = S_s(u, v) + S_n(u, v)`` counts common in-neighbours
(sibling score) plus direct edges between the pair (neighbour score).
Finding the optimal arrangement is NP-hard; the greedy insertion is a
``1/(2w)``-approximation (Theorem 5.2 of the paper).

Two implementations:

* :func:`gorder_order` — the paper's Algorithm *GO* with the priority
  queue of Algorithm 2: when a node enters (leaves) the ``w``-wide
  window, the score contribution it adds to every affected candidate
  is exactly +1 (−1) per relation, so a
  :class:`~repro.ordering.unit_heap.UnitHeap` maintains all candidate
  scores in O(1) per event.  Per insertion of ``u`` the events touch
  ``N+(u)``, ``N−(u)`` and the out-neighbours of each in-neighbour —
  the sibling expansion that makes Gorder's cost superlinear
  (Table 2's hours on sdarc).
* :func:`gorder_naive` — literal greedy that rescans all remaining
  candidates each step; O(n^2 * w * d).  Reference for tests only.

``hub_threshold`` optionally skips the sibling expansion through
common in-neighbours with out-degree above the threshold.  Such hubs
co-cite a large fraction of the graph, so their sibling score is a
near-uniform offset that rarely changes the argmax; skipping them
bounds the per-step cost (the original C++ implementation treats
high-degree nodes specially for the same reason).  ``None`` (default)
disables skipping and keeps the algorithm exact.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.permute import permutation_from_sequence
from repro.ordering.metrics import pair_score
from repro.ordering.unit_heap import MeteredUnitHeap, UnitHeap

#: The paper's default window size (chosen in its Figure 8 experiment).
DEFAULT_WINDOW = 5


def gorder_sequence(
    graph: CSRGraph,
    window: int = DEFAULT_WINDOW,
    hub_threshold: int | None = None,
) -> np.ndarray:
    """The Gorder placement sequence (``sequence[i]`` = i-th node placed)."""
    if window < 1:
        raise InvalidParameterError(
            f"window must be at least 1, got {window}"
        )
    if hub_threshold is not None and hub_threshold < 0:
        raise InvalidParameterError(
            f"hub_threshold must be non-negative, got {hub_threshold}"
        )
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    out_offsets = graph.offsets
    out_adjacency = graph.adjacency
    in_offsets = graph.in_offsets
    in_adjacency = graph.in_adjacency
    out_degrees = np.diff(out_offsets)
    skip_limit = (
        np.iinfo(np.int64).max if hub_threshold is None else hub_threshold
    )

    # Telemetry: hoisted to one check per call.  The metered heap
    # subclass keeps the disabled path identical to the bare kernel.
    counting = obs.enabled()
    heap = MeteredUnitHeap(n) if counting else UnitHeap(n)
    sequence = np.empty(n, dtype=np.int64)

    def apply(u: int, entering: bool) -> None:
        """Propagate u's window-entry (+1) or -exit (-1) score events."""
        update = heap.increase if entering else heap.decrease
        for v in out_adjacency[out_offsets[u]:out_offsets[u + 1]]:
            update(int(v))  # S_n: edge u -> v
        for z in in_adjacency[in_offsets[u]:in_offsets[u + 1]]:
            z = int(z)
            update(z)  # S_n: edge z -> u
            if out_degrees[z] > skip_limit:
                continue  # hub co-citation: skipped, see module docstring
            for v in out_adjacency[out_offsets[z]:out_offsets[z + 1]]:
                v = int(v)
                if v != u:
                    update(v)  # S_s: z is a common in-neighbour of u, v

    # Seed with the highest in-degree node (deterministic hub start).
    start = int(np.argmax(graph.in_degrees())) if n > 1 else 0
    with obs.span(
        "gorder.greedy", n=n, m=graph.num_edges, window=window,
        backend="unit_heap",
    ):
        heap.remove(start)
        sequence[0] = start
        apply(start, entering=True)
        for i in range(1, n):
            if i > window:
                apply(int(sequence[i - 1 - window]), entering=False)
            chosen = heap.pop_max()
            sequence[i] = chosen
            apply(chosen, entering=True)
    if counting:
        obs.inc("gorder.heap_pops", heap.pops)
        obs.inc("gorder.priority_updates", heap.priority_updates)
    return sequence


def gorder_order(
    graph: CSRGraph,
    seed: int = 0,
    window: int = DEFAULT_WINDOW,
    hub_threshold: int | None = None,
) -> np.ndarray:
    """The Gorder arrangement ``pi`` (see :func:`gorder_sequence`)."""
    del seed  # deterministic
    return permutation_from_sequence(
        gorder_sequence(graph, window=window, hub_threshold=hub_threshold)
    )


def gorder_naive(
    graph: CSRGraph, window: int = DEFAULT_WINDOW
) -> np.ndarray:
    """Reference greedy without the priority queue (tests only).

    Rescans every remaining candidate at every step, computing its
    window score from the definition of ``S``.  Exponentially clearer,
    quadratically slower.
    """
    if window < 1:
        raise InvalidParameterError(
            f"window must be at least 1, got {window}"
        )
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    start = int(np.argmax(graph.in_degrees())) if n > 1 else 0
    sequence = [start]
    remaining = [u for u in range(n) if u != start]
    while remaining:
        window_nodes = sequence[-window:]
        best_index = 0
        best_score = -1
        for index, v in enumerate(remaining):
            score = sum(pair_score(graph, u, v) for u in window_nodes)
            if score > best_score:
                best_score = score
                best_index = index
        sequence.append(remaining.pop(best_index))
    return permutation_from_sequence(np.array(sequence, dtype=np.int64))


def window_scores(
    graph: CSRGraph, sequence: np.ndarray, window: int = DEFAULT_WINDOW
) -> np.ndarray:
    """Score each placement step of ``sequence`` against its window.

    ``result[i] = sum_{j in [max(0, i-w), i)} S(sequence[i], sequence[j])``
    — used by tests to verify the greedy invariant (every placed node
    maximises its step score) and by ablations to inspect quality.
    """
    if window < 1:
        raise InvalidParameterError(
            f"window must be at least 1, got {window}"
        )
    sequence = np.asarray(sequence, dtype=np.int64)
    scores = np.zeros(sequence.shape[0], dtype=np.int64)
    for i in range(1, sequence.shape[0]):
        u = int(sequence[i])
        scores[i] = sum(
            pair_score(graph, u, int(sequence[j]))
            for j in range(max(0, i - window), i)
        )
    return scores
