"""Incremental Gorder for evolving graphs (paper extension).

The replication's discussion notes that when networks evolve, Gorder
"needs to be adapted to integrate the modifications without running
the whole process again".  This module implements that adaptation for
the common append-only case: a batch of **new nodes** (ids
``n_old .. n-1``) arrives with their edges, and the existing
arrangement of the old nodes must not change (downstream systems may
have materialised it).

:func:`gorder_extend` places the new nodes after the old ones with
exactly the Gorder greedy: the unit heap tracks only the new
candidates, but score events flow from the full graph, and the
initial window is the tail of the existing arrangement — so the first
new node placed is the one with the highest proximity to the end of
the old order, and so on.  Cost is proportional to the new nodes'
neighbourhoods, not to the whole graph.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError, InvalidPermutationError
from repro.graph.csr import CSRGraph
from repro.graph.permute import invert_permutation, validate_permutation
from repro.ordering.gorder import DEFAULT_WINDOW
from repro.ordering.unit_heap import UnitHeap


def gorder_extend(
    graph: CSRGraph,
    base_perm: np.ndarray,
    window: int = DEFAULT_WINDOW,
    hub_threshold: int | None = None,
) -> np.ndarray:
    """Extend an arrangement of the first ``len(base_perm)`` nodes.

    Parameters
    ----------
    graph:
        The evolved graph.  Nodes ``0 .. len(base_perm) - 1`` are the
        previously ordered ones; the rest are new.
    base_perm:
        The existing arrangement of the old nodes (a permutation of
        ``range(len(base_perm))``).  Preserved verbatim.
    window, hub_threshold:
        As in :func:`repro.ordering.gorder.gorder_order`.

    Returns
    -------
    A full arrangement: old nodes keep their positions, new nodes fill
    positions ``len(base_perm) .. n - 1`` in greedy Gorder order.
    """
    if window < 1:
        raise InvalidParameterError(
            f"window must be at least 1, got {window}"
        )
    num_old = int(np.asarray(base_perm).shape[0])
    n = graph.num_nodes
    if num_old > n:
        raise InvalidPermutationError(
            f"base arrangement covers {num_old} nodes but the graph "
            f"has only {n}"
        )
    base_perm = validate_permutation(np.asarray(base_perm), num_old)
    num_new = n - num_old
    perm = np.empty(n, dtype=np.int64)
    perm[:num_old] = base_perm
    if num_new == 0:
        return perm

    out_offsets = graph.offsets
    out_adjacency = graph.adjacency
    in_offsets = graph.in_offsets
    in_adjacency = graph.in_adjacency
    out_degrees = graph.out_degrees()
    skip_limit = (
        np.iinfo(np.int64).max if hub_threshold is None else hub_threshold
    )

    # Old nodes are excluded lazily: the candidate mask makes them
    # start removed, so construction costs O(batch) entries instead of
    # an O(n) per-node remove loop.
    heap = UnitHeap(
        n, candidates=np.arange(num_old, n, dtype=np.int64)
    )

    def apply(u: int, entering: bool) -> None:
        # Score events only ever matter for new candidates; events
        # aimed at old (never-present) nodes are skipped outright
        # rather than replayed against removed heap entries.
        update = heap.increase if entering else heap.decrease
        for v in out_adjacency[out_offsets[u]:out_offsets[u + 1]]:
            v = int(v)
            if v >= num_old:
                update(v)
        for z in in_adjacency[in_offsets[u]:in_offsets[u + 1]]:
            z = int(z)
            if z >= num_old:
                update(z)
            if out_degrees[z] > skip_limit:
                continue
            for v in out_adjacency[out_offsets[z]:out_offsets[z + 1]]:
                v = int(v)
                if v != u and v >= num_old:
                    update(v)

    # Seed the window with the tail of the existing arrangement.
    old_sequence = invert_permutation(base_perm)
    tail = [int(u) for u in old_sequence[max(0, num_old - window):]]
    for u in tail:
        apply(u, entering=True)

    sequence: list[int] = list(tail)  # window view: tail + new picks
    for position in range(num_old, n):
        if len(sequence) > window:
            apply(sequence[len(sequence) - window - 1], entering=False)
        chosen = heap.pop_max()
        perm[chosen] = position
        apply(chosen, entering=True)
        sequence.append(chosen)
    return perm


def append_identity(base_perm: np.ndarray, num_nodes: int) -> np.ndarray:
    """Baseline extension: new nodes appended in id order."""
    num_old = int(np.asarray(base_perm).shape[0])
    if num_old > num_nodes:
        raise InvalidPermutationError(
            f"base arrangement covers {num_old} nodes but the graph "
            f"has only {num_nodes}"
        )
    base_perm = validate_permutation(np.asarray(base_perm), num_old)
    perm = np.empty(num_nodes, dtype=np.int64)
    perm[:num_old] = base_perm
    perm[num_old:] = np.arange(num_old, num_nodes, dtype=np.int64)
    return perm
