"""Recursive-bisection partition ordering (Metis stand-in, extension).

The original paper compares against Metis but could only run it on the
three smallest datasets; the replication dropped it entirely.  As a
documented *extension* (not part of the headline experiment set) we
provide a lightweight partition-style ordering in the same spirit:
recursively split the node set into two halves with a BFS grown from a
peripheral node (nodes reached first form the left half), then lay the
halves out contiguously.  Nodes in the same small partition receive
consecutive ids, the property Metis-based layouts exploit.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.permute import permutation_from_sequence


def bisection_order(
    graph: CSRGraph, seed: int = 0, leaf_size: int = 64
) -> np.ndarray:
    """Recursive BFS-bisection arrangement with ``leaf_size`` leaves."""
    del seed  # deterministic
    if leaf_size < 1:
        raise InvalidParameterError(
            f"leaf_size must be positive, got {leaf_size}"
        )
    undirected = graph.undirected()
    n = undirected.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = undirected.offsets
    adjacency = undirected.adjacency
    degrees = np.diff(offsets)

    sequence: list[int] = []
    # Explicit stack of node-subsets to avoid recursion-depth limits.
    stack: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    while stack:
        nodes = stack.pop()
        if nodes.shape[0] <= leaf_size:
            sequence.extend(int(u) for u in np.sort(nodes))
            continue
        member = np.zeros(n, dtype=bool)
        member[nodes] = True
        half = nodes.shape[0] // 2
        # Grow a BFS half from the lowest-degree member node.
        root = int(nodes[np.argmin(degrees[nodes])])
        taken = np.zeros(n, dtype=bool)
        taken[root] = True
        left: list[int] = [root]
        queue = deque([root])
        while queue and len(left) < half:
            u = queue.popleft()
            for v in adjacency[offsets[u]:offsets[u + 1]]:
                v = int(v)
                if member[v] and not taken[v]:
                    taken[v] = True
                    left.append(v)
                    queue.append(v)
                    if len(left) >= half:
                        break
        if len(left) < half:
            # Disconnected inside this subset: top up with untaken
            # members in id order.
            for v in nodes:
                v = int(v)
                if not taken[v]:
                    taken[v] = True
                    left.append(v)
                    if len(left) >= half:
                        break
        left_array = np.array(left, dtype=np.int64)
        right_array = nodes[~taken[nodes]]
        # Right pushed first so the left half is laid out first (LIFO).
        stack.append(right_array)
        stack.append(left_array)
    return permutation_from_sequence(np.array(sequence, dtype=np.int64))
