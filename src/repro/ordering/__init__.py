"""Node ordering methods: Gorder plus all baselines from the papers."""

from repro.ordering.base import (
    ALL_ORDERING_NAMES,
    ORDERING_NAMES,
    REGISTRY,
    OrderingSpec,
    compute_ordering,
    spec,
)
from repro.ordering.bisect import bisection_order
from repro.ordering.compression import (
    bits_per_edge,
    compression_ratio,
    elias_gamma_bits,
    gap_encoding_bits,
)
from repro.ordering.evaluation import (
    OrderingEvaluation,
    evaluate_all,
    evaluate_ordering,
    probe_arrangement,
)
from repro.ordering.gorder import (
    DEFAULT_WINDOW,
    GORDER_BACKENDS,
    gorder_naive,
    gorder_order,
    gorder_sequence,
    window_scores,
    window_scores_reference,
)
from repro.ordering.gorder_lazy import (
    gorder_order_lazy,
    gorder_sequence_lazy,
)
from repro.ordering.incremental import append_identity, gorder_extend
from repro.ordering.ldg import ldg_order
from repro.ordering.lightweight import (
    boba_order,
    dbg_classes,
    dbg_classes_reference,
    dbg_order,
    hubcluster_order,
    hubsort_order,
)
from repro.ordering.metrics import (
    average_gap,
    bandwidth,
    gorder_score,
    gorder_score_bruteforce,
    minla_energy,
    minloga_energy,
    pair_score,
)
from repro.ordering.minla import minla_order, minloga_order
from repro.ordering.parallel import gorder_partitioned, partition_nodes
from repro.ordering.predictors import (
    LINE_NODES,
    StructuralPredictors,
    average_reuse_distance,
    compute_predictors,
    diameter_proxy,
    packing_factor,
    predicted_gain_fraction,
)
from repro.ordering.rcm import rcm_order
from repro.ordering.select import (
    DEFAULT_CLOCK_HZ,
    DEFAULT_QUERY_VOLUME,
    HEAVYWEIGHT_ORDERINGS,
    CandidateConfig,
    CandidateProbe,
    SelectionDecision,
    auto_order,
    default_candidates,
    select_ordering,
)
from repro.ordering.simple import (
    chdfs_order,
    indegsort_order,
    original_order,
    random_order,
)
from repro.ordering.slashburn import slashburn_order
from repro.ordering.unit_heap import UnitHeap

__all__ = [
    "ALL_ORDERING_NAMES",
    "ORDERING_NAMES",
    "REGISTRY",
    "OrderingSpec",
    "spec",
    "compute_ordering",
    "UnitHeap",
    "DEFAULT_WINDOW",
    "gorder_order",
    "gorder_sequence",
    "gorder_naive",
    "window_scores",
    "window_scores_reference",
    "GORDER_BACKENDS",
    "original_order",
    "random_order",
    "indegsort_order",
    "chdfs_order",
    "rcm_order",
    "slashburn_order",
    "ldg_order",
    "minla_order",
    "minloga_order",
    "bisection_order",
    "hubsort_order",
    "hubcluster_order",
    "dbg_order",
    "dbg_classes",
    "dbg_classes_reference",
    "boba_order",
    "gorder_order_lazy",
    "gorder_sequence_lazy",
    "gorder_partitioned",
    "partition_nodes",
    "gorder_extend",
    "append_identity",
    "OrderingEvaluation",
    "evaluate_ordering",
    "evaluate_all",
    "probe_arrangement",
    "LINE_NODES",
    "StructuralPredictors",
    "compute_predictors",
    "average_reuse_distance",
    "diameter_proxy",
    "packing_factor",
    "predicted_gain_fraction",
    "DEFAULT_CLOCK_HZ",
    "DEFAULT_QUERY_VOLUME",
    "HEAVYWEIGHT_ORDERINGS",
    "CandidateConfig",
    "CandidateProbe",
    "SelectionDecision",
    "auto_order",
    "default_candidates",
    "select_ordering",
    "gap_encoding_bits",
    "bits_per_edge",
    "compression_ratio",
    "elias_gamma_bits",
    "pair_score",
    "gorder_score",
    "gorder_score_bruteforce",
    "minla_energy",
    "minloga_energy",
    "bandwidth",
    "average_gap",
]
