"""Quality metrics for node arrangements.

* :func:`gorder_score` — the paper's objective
  ``F(pi) = sum_{0 < pi_u - pi_v <= w} S(u, v)`` with
  ``S = S_s + S_n``: ``S_n(u, v)`` counts the directed edges between
  ``u`` and ``v`` (0, 1 or 2) and ``S_s(u, v)`` counts their common
  in-neighbours.
* :func:`minla_energy` / :func:`minloga_energy` — the MinLA /
  MinLogA objectives the simulated-annealing orderings minimise.
* :func:`bandwidth` — the quantity RCM targets.

The fast :func:`gorder_score` walks the placement sequence with a
sliding window; :func:`gorder_score_bruteforce` is the O(n^2)
definition used to cross-check it in tests.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.permute import invert_permutation, validate_permutation


def pair_score(graph: CSRGraph, u: int, v: int) -> int:
    """``S(u, v) = S_s(u, v) + S_n(u, v)`` for one unordered pair."""
    if u == v:
        raise InvalidParameterError("pair_score is undefined for u == v")
    s_n = int(graph.has_edge(u, v)) + int(graph.has_edge(v, u))
    common = np.intersect1d(
        graph.in_neighbors(u), graph.in_neighbors(v), assume_unique=True
    )
    return s_n + int(common.shape[0])


def gorder_score(
    graph: CSRGraph, perm: np.ndarray, window: int = 5
) -> int:
    """The paper's locality objective ``F(pi)`` for an arrangement.

    Computed by sliding a ``window``-wide window over the placement
    sequence and summing ``S`` over every in-window pair — O(n * w)
    pair evaluations.
    """
    if window < 1:
        raise InvalidParameterError(
            f"window must be at least 1, got {window}"
        )
    perm = validate_permutation(perm, graph.num_nodes)
    sequence = invert_permutation(perm)
    total = 0
    for i in range(1, graph.num_nodes):
        u = int(sequence[i])
        for j in range(max(0, i - window), i):
            total += pair_score(graph, u, int(sequence[j]))
    return total


def gorder_score_bruteforce(
    graph: CSRGraph, perm: np.ndarray, window: int = 5
) -> int:
    """Literal O(n^2) evaluation of ``F(pi)`` (tests only)."""
    if window < 1:
        raise InvalidParameterError(
            f"window must be at least 1, got {window}"
        )
    perm = validate_permutation(perm, graph.num_nodes)
    total = 0
    n = graph.num_nodes
    for u in range(n):
        for v in range(n):
            if u != v and 0 < perm[u] - perm[v] <= window:
                total += pair_score(graph, u, v)
    return total


def minla_energy(graph: CSRGraph, perm: np.ndarray) -> int:
    """Minimum Linear Arrangement energy ``sum_(u,v) |pi_u - pi_v|``."""
    perm = validate_permutation(perm, graph.num_nodes)
    sources, targets = graph.edge_array()
    return int(np.abs(perm[sources] - perm[targets]).sum())


def minloga_energy(graph: CSRGraph, perm: np.ndarray) -> float:
    """Minimum Logarithmic Arrangement energy ``sum log|pi_u - pi_v|``.

    Self-loops are absent by construction, so every gap is >= 1 and the
    logarithm is defined (``log 1 = 0``).
    """
    perm = validate_permutation(perm, graph.num_nodes)
    sources, targets = graph.edge_array()
    gaps = np.abs(perm[sources] - perm[targets]).astype(np.float64)
    return float(np.log(gaps).sum())


def bandwidth(graph: CSRGraph, perm: np.ndarray) -> int:
    """``max_(u,v) |pi_u - pi_v|`` — what RCM tries to reduce."""
    perm = validate_permutation(perm, graph.num_nodes)
    sources, targets = graph.edge_array()
    if sources.shape[0] == 0:
        return 0
    return int(np.abs(perm[sources] - perm[targets]).max())


def average_gap(graph: CSRGraph, perm: np.ndarray) -> float:
    """Mean index distance across edges (MinLA energy / m)."""
    if graph.num_edges == 0:
        return 0.0
    return minla_energy(graph, perm) / graph.num_edges
