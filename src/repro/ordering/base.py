"""Ordering registry: every ordering method, addressable by name.

An ordering is a callable ``(graph, seed=0, **params) -> perm`` where
``perm`` is an arrangement (``perm[u]`` = new index of node ``u``; see
:mod:`repro.graph.permute`).  The registry drives the experiment
harness, the CLI and the benchmarks; names match the labels the
replication's figures use.
"""

from __future__ import annotations

import inspect
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import UnknownOrderingError
from repro.graph.csr import CSRGraph
from repro.ordering.bisect import bisection_order
from repro.ordering.gorder import gorder_order
from repro.ordering.gorder_lazy import gorder_order_lazy
from repro.ordering.ldg import ldg_order
from repro.ordering.lightweight import (
    boba_order,
    dbg_order,
    hubcluster_order,
    hubsort_order,
)
from repro.ordering.minla import minla_order, minloga_order
from repro.ordering.parallel import gorder_partitioned
from repro.ordering.rcm import rcm_order
from repro.ordering.simple import (
    chdfs_order,
    indegsort_order,
    original_order,
    random_order,
)
from repro.ordering.slashburn import slashburn_order

OrderingFunction = Callable[..., np.ndarray]


def _auto_order(graph: CSRGraph, seed: int = 0, **params) -> np.ndarray:
    """Registry entry for the adaptive selector.

    Imported lazily: :mod:`repro.ordering.select` needs this registry
    to probe its candidates, so importing it at module scope would be
    circular.  ``**params`` disables the signature filter; the
    selector applies its own knob filtering instead.
    """
    from repro.ordering.select import auto_order

    return auto_order(graph, seed=seed, **params)


@dataclass(frozen=True)
class OrderingSpec:
    """One registered ordering method."""

    name: str  # registry key, lowercase
    display_name: str  # label used in the paper's figures
    compute: OrderingFunction
    deterministic: bool  # ignores the seed argument
    headline: bool  # part of the paper's main experiment set


#: All orderings, in the display order of the replication's Figure 5.
REGISTRY: dict[str, OrderingSpec] = {
    spec.name: spec
    for spec in [
        OrderingSpec(
            "original", "Original", original_order,
            deterministic=True, headline=True,
        ),
        OrderingSpec(
            "random", "Random", random_order,
            deterministic=False, headline=True,
        ),
        OrderingSpec(
            "minla", "MinLA", minla_order,
            deterministic=False, headline=True,
        ),
        OrderingSpec(
            "minloga", "MinLogA", minloga_order,
            deterministic=False, headline=True,
        ),
        OrderingSpec(
            "rcm", "RCM", rcm_order,
            deterministic=True, headline=True,
        ),
        OrderingSpec(
            "indegsort", "InDegSort", indegsort_order,
            deterministic=True, headline=True,
        ),
        OrderingSpec(
            "chdfs", "ChDFS", chdfs_order,
            deterministic=True, headline=True,
        ),
        OrderingSpec(
            "slashburn", "SlashBurn", slashburn_order,
            deterministic=True, headline=True,
        ),
        OrderingSpec(
            "ldg", "LDG", ldg_order,
            deterministic=True, headline=True,
        ),
        OrderingSpec(
            "gorder", "Gorder", gorder_order,
            deterministic=True, headline=True,
        ),
        OrderingSpec(
            "bisect", "Bisect", bisection_order,
            deterministic=True, headline=False,
        ),
        # Lightweight reorderings from the follow-on literature
        # (Balaji & Lucia 2018; Faldu et al. 2019) — extensions.
        OrderingSpec(
            "hubsort", "HubSort", hubsort_order,
            deterministic=True, headline=False,
        ),
        OrderingSpec(
            "hubcluster", "HubCluster", hubcluster_order,
            deterministic=True, headline=False,
        ),
        OrderingSpec(
            "dbg", "DBG", dbg_order,
            deterministic=True, headline=False,
        ),
        OrderingSpec(
            "boba", "BOBA", boba_order,
            deterministic=True, headline=False,
        ),
        # Alternative Gorder backends — extensions for ablations.
        OrderingSpec(
            "gorder-lazy", "Gorder(lazy-pq)", gorder_order_lazy,
            deterministic=True, headline=False,
        ),
        OrderingSpec(
            "gorder-part", "Gorder(partitioned)", gorder_partitioned,
            deterministic=True, headline=False,
        ),
        # Adaptive selection (ROADMAP item 3): probes the frontier
        # and picks the configuration minimising amortised cost.
        # Probe cycles are deterministic; near-ties can flip only
        # within wall-clock measurement noise.
        OrderingSpec(
            "auto", "Auto(selector)", _auto_order,
            deterministic=True, headline=False,
        ),
    ]
}

#: Names of the paper's ten headline orderings, figure order.
ORDERING_NAMES: tuple[str, ...] = tuple(
    name for name, spec in REGISTRY.items() if spec.headline
)

#: Every registry name, headline plus extensions (CLI choices).
ALL_ORDERING_NAMES: tuple[str, ...] = tuple(REGISTRY)


def spec(name: str) -> OrderingSpec:
    """Look up an ordering by registry name (case-insensitive)."""
    try:
        return REGISTRY[name.lower()]
    except KeyError:
        known = ", ".join(REGISTRY)
        raise UnknownOrderingError(
            f"unknown ordering {name!r}; known orderings: {known}"
        ) from None


_ACCEPTED_PARAMS: dict[str, frozenset[str] | None] = {}


def _accepted_params(ordering: OrderingSpec) -> frozenset[str] | None:
    """Keyword names ``ordering.compute`` accepts (None = any)."""
    cached = _ACCEPTED_PARAMS.get(ordering.name, False)
    if cached is not False:
        return cached
    accepted: frozenset[str] | None
    signature = inspect.signature(ordering.compute)
    if any(
        parameter.kind is inspect.Parameter.VAR_KEYWORD
        for parameter in signature.parameters.values()
    ):
        accepted = None
    else:
        accepted = frozenset(signature.parameters)
    _ACCEPTED_PARAMS[ordering.name] = accepted
    return accepted


def compute_ordering(
    name: str, graph: CSRGraph, seed: int = 0, **params
) -> np.ndarray:
    """Compute the arrangement for ``graph`` by ordering name.

    Extra ``params`` are forwarded to the ordering function, filtered
    against its signature: parameters an ordering does not declare are
    silently dropped.  This lets sweep-wide knobs (``backend``,
    ``workers``, ``window``) apply to the orderings they concern
    without every ordering having to accept every knob.
    """
    ordering = spec(name)
    if params:
        accepted = _accepted_params(ordering)
        if accepted is not None:
            params = {
                key: value
                for key, value in params.items()
                if key in accepted
            }
    return ordering.compute(graph, seed=seed, **params)
