"""Lightweight degree-based reorderings from the follow-on literature.

The replication's discussion cites "When is Graph Reordering an
Optimization?" [Balaji & Lucia, IISWC 2018], which benchmarks Gorder
against *lightweight* reorderings that cost seconds instead of hours.
This module implements the three standard ones so the trade-off can
be reproduced here:

* **HubSort** — hub vertices (in-degree above average) are packed at
  the front sorted by descending degree; the cold tail keeps its
  original relative order.  Preserves most of the original locality
  while densifying the hot working set.
* **HubCluster** — like HubSort but hubs keep their original relative
  order too (no sort), the cheapest hub-packing variant.
* **DBG** — Degree-Based Grouping [Faldu, Diamond & Grot 2019]: nodes
  are partitioned into coarse power-of-two degree classes, classes
  laid out hot-to-cold, original order preserved *within* each class.
  DBG's explicit goal is exactly HubSort's benefit without destroying
  the original order's locality.

All three run in O(n + sort) time and are deterministic.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.permute import permutation_from_sequence


def _hub_mask(graph: CSRGraph) -> np.ndarray:
    """Hubs = nodes whose in-degree exceeds the average degree."""
    degrees = graph.in_degrees()
    if graph.num_nodes == 0:
        return np.zeros(0, dtype=bool)
    return degrees > degrees.mean()


def hubsort_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """HubSort: sorted hubs first, original-order tail after."""
    del seed  # deterministic
    degrees = graph.in_degrees()
    hubs = _hub_mask(graph)
    hub_ids = np.flatnonzero(hubs)
    # Stable sort by descending degree keeps ties in original order.
    hub_ids = hub_ids[np.argsort(-degrees[hub_ids], kind="stable")]
    cold_ids = np.flatnonzero(~hubs)
    return permutation_from_sequence(
        np.concatenate([hub_ids, cold_ids])
    )


def hubcluster_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """HubCluster: hubs first (original order), tail after."""
    del seed  # deterministic
    hubs = _hub_mask(graph)
    return permutation_from_sequence(
        np.concatenate([np.flatnonzero(hubs), np.flatnonzero(~hubs)])
    )


def dbg_order(
    graph: CSRGraph, seed: int = 0, num_groups: int = 8
) -> np.ndarray:
    """Degree-Based Grouping with ``num_groups`` log-scale classes.

    Class of node ``u`` is ``min(floor(log2(deg_in(u) + 1)),
    num_groups - 1)``; classes are laid out from hottest (highest) to
    coldest, original order preserved within each class.
    """
    del seed  # deterministic
    if num_groups < 1:
        from repro.errors import InvalidParameterError

        raise InvalidParameterError(
            f"num_groups must be positive, got {num_groups}"
        )
    degrees = graph.in_degrees()
    classes = np.minimum(
        np.floor(np.log2(degrees + 1)).astype(np.int64), num_groups - 1
    )
    # Stable sort on negated class: hot classes first, original order
    # within a class.
    sequence = np.argsort(-classes, kind="stable")
    return permutation_from_sequence(sequence)
