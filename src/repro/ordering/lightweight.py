"""Lightweight degree-based reorderings from the follow-on literature.

The replication's discussion cites "When is Graph Reordering an
Optimization?" [Balaji & Lucia, IISWC 2018], which benchmarks Gorder
against *lightweight* reorderings that cost seconds instead of hours.
This module implements the standard ones so the trade-off can be
reproduced here:

* **HubSort** — hub vertices (in-degree above average) are packed at
  the front sorted by descending degree; the cold tail keeps its
  original relative order.  Preserves most of the original locality
  while densifying the hot working set.
* **HubCluster** — like HubSort but hubs keep their original relative
  order too (no sort), the cheapest hub-packing variant.
* **DBG** — Degree-Based Grouping [Faldu, Diamond & Grot 2019]: nodes
  are partitioned into coarse power-of-two degree classes, classes
  laid out hot-to-cold, original order preserved *within* each class.
  DBG's explicit goal is exactly HubSort's benefit without destroying
  the original order's locality.
* **BOBA** — a first-touch edge-stream pass [Okanovic et al.]: one
  traversal of the edge list packs endpoints in the order they are
  first seen, so vertices that appear together in the stream land on
  nearby cache lines.  The stream splits into contiguous chunks whose
  first-touch sequences are computed independently (optionally on a
  spawned process pool, like :mod:`repro.ordering.parallel`) and
  merged keep-first — the output is identical for every worker count.

All run in O(n + m + sort) time and are deterministic.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor

import numpy as np

from repro import obs
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.permute import permutation_from_sequence


def _hub_mask(graph: CSRGraph) -> np.ndarray:
    """Hubs = nodes whose in-degree exceeds the average degree.

    On a regular graph no in-degree exceeds the mean, so the mask is
    all-False and the hub orderings degrade to the identity — they
    must stay well-defined, not crash, in that case.
    """
    degrees = graph.in_degrees()
    if graph.num_nodes == 0:
        return np.zeros(0, dtype=bool)
    return degrees > degrees.mean()


def hubsort_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """HubSort: sorted hubs first, original-order tail after."""
    del seed  # deterministic
    degrees = graph.in_degrees()
    hubs = _hub_mask(graph)
    hub_ids = np.flatnonzero(hubs)
    # Stable sort by descending degree keeps ties in original order.
    hub_ids = hub_ids[np.argsort(-degrees[hub_ids], kind="stable")]
    cold_ids = np.flatnonzero(~hubs)
    return permutation_from_sequence(
        np.concatenate([hub_ids, cold_ids])
    )


def hubcluster_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """HubCluster: hubs first (original order), tail after."""
    del seed  # deterministic
    hubs = _hub_mask(graph)
    return permutation_from_sequence(
        np.concatenate([np.flatnonzero(hubs), np.flatnonzero(~hubs)])
    )


def dbg_classes(degrees: np.ndarray, num_groups: int) -> np.ndarray:
    """Integer log-scale degree classes, exact for any int64 degree.

    Class of degree ``d`` is ``min((d + 1).bit_length() - 1,
    num_groups - 1)`` — the bit-length form of ``floor(log2(d + 1))``.
    Class ``k`` covers degrees in ``[2**k - 1, 2**(k + 1) - 1)``, so
    the boundaries are exact int64s and a right-sided ``searchsorted``
    assigns classes without ever casting the degree vector to float
    (``np.log2`` mis-rounds integers above 2**53 whose nearest double
    is the next power of two).
    """
    if num_groups < 1:
        raise InvalidParameterError(
            f"num_groups must be positive, got {num_groups}"
        )
    degrees = np.asarray(degrees, dtype=np.int64)
    boundaries = np.array(
        [(1 << k) - 1 for k in range(1, min(num_groups, 63))],
        dtype=np.int64,
    )
    return np.searchsorted(
        boundaries, degrees, side="right"
    ).astype(np.int64)


def dbg_classes_reference(degrees, num_groups: int) -> list[int]:
    """Pure-python oracle for :func:`dbg_classes` (tests compare)."""
    if num_groups < 1:
        raise InvalidParameterError(
            f"num_groups must be positive, got {num_groups}"
        )
    return [
        min((int(d) + 1).bit_length() - 1, num_groups - 1)
        for d in degrees
    ]


def dbg_order(
    graph: CSRGraph, seed: int = 0, num_groups: int = 8
) -> np.ndarray:
    """Degree-Based Grouping with ``num_groups`` log-scale classes.

    Class of node ``u`` is ``min(floor(log2(deg_in(u) + 1)),
    num_groups - 1)`` computed in exact integer arithmetic (see
    :func:`dbg_classes`); classes are laid out from hottest (highest)
    to coldest, original order preserved within each class.  Well
    defined for ``num_groups=1`` (identity), zero-degree nodes (class
    0) and the empty graph.
    """
    del seed  # deterministic
    classes = dbg_classes(graph.in_degrees(), num_groups)
    # Stable sort on negated class: hot classes first, original order
    # within a class.
    sequence = np.argsort(-classes, kind="stable")
    return permutation_from_sequence(sequence)


def _first_touch(endpoints: np.ndarray) -> np.ndarray:
    """Deduplicate a node stream keeping each first occurrence."""
    if not endpoints.shape[0]:
        return endpoints
    values, first_seen = np.unique(endpoints, return_index=True)
    return values[np.argsort(first_seen, kind="stable")]


def _boba_chunk(
    task: tuple,
) -> tuple[int, np.ndarray]:
    """First-touch sequence of one edge-stream chunk.

    Runs either inline or in a spawned worker process; the chunk
    travels as two flat arrays (cheap to pickle) and the result is a
    pure function of the chunk, so the merge is worker-count
    invariant.
    """
    index, sources, targets = task
    endpoints = np.empty(2 * sources.shape[0], dtype=np.int64)
    endpoints[0::2] = sources
    endpoints[1::2] = targets
    return index, _first_touch(endpoints)


def boba_order(
    graph: CSRGraph,
    seed: int = 0,
    num_parts: int = 4,
    workers: int = 1,
) -> np.ndarray:
    """BOBA: pack endpoints in edge-stream first-touch order.

    One pass over the CSR edge stream (sources ascending, adjacency
    order within a source) assigns each vertex the position at which
    it is first touched — source before target within an edge.
    Vertices never touched by an edge keep their original relative
    order at the tail.

    The stream is split into ``num_parts`` contiguous chunks whose
    local first-touch sequences are computed independently —
    in-process, or on a spawned :class:`ProcessPoolExecutor` when
    ``workers > 1`` — then merged in chunk order with a keep-first
    deduplication.  A vertex's global first touch lies in the earliest
    chunk that contains it, so the merged sequence equals the
    single-pass sequence: the arrangement is deterministic and
    identical for every ``num_parts``/``workers`` combination.
    """
    del seed  # deterministic
    if num_parts < 1:
        raise InvalidParameterError(
            f"num_parts must be positive, got {num_parts}"
        )
    if workers < 1:
        raise InvalidParameterError(
            f"workers must be positive, got {workers}"
        )
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    sources, targets = graph.edge_array()
    chunks = [
        chunk
        for chunk in np.array_split(
            np.arange(sources.shape[0], dtype=np.int64), num_parts
        )
        if chunk.shape[0]
    ]
    tasks = [
        (
            index,
            np.ascontiguousarray(sources[chunk]),
            np.ascontiguousarray(targets[chunk]),
        )
        for index, chunk in enumerate(chunks)
    ]
    effective_workers = min(workers, max(len(tasks), 1))
    pieces: list[np.ndarray] = [
        np.zeros(0, dtype=np.int64)
    ] * len(tasks)
    with obs.span(
        "ordering.boba", n=n, m=graph.num_edges,
        parts=len(tasks), workers=effective_workers,
    ):
        if effective_workers <= 1:
            for task in tasks:
                index, local = _boba_chunk(task)
                pieces[index] = local
        else:
            context = multiprocessing.get_context("spawn")
            with ProcessPoolExecutor(
                max_workers=effective_workers, mp_context=context
            ) as pool:
                for index, local in pool.map(_boba_chunk, tasks):
                    pieces[index] = local
        touched = (
            _first_touch(np.concatenate(pieces))
            if pieces else np.zeros(0, dtype=np.int64)
        )
        seen = np.zeros(n, dtype=bool)
        seen[touched] = True
        sequence = np.concatenate([touched, np.flatnonzero(~seen)])
    return permutation_from_sequence(sequence)
