"""Gorder with a lazy binary priority queue (ablation backend).

The paper's Algorithm 2 relies on a priority queue with *lazy* key
maintenance; the unit-heap bucket structure is the O(1) refinement.
This module implements the same greedy over a plain binary heap with
stale-entry invalidation: every key update pushes a fresh entry, and
pops discard entries whose recorded key no longer matches.  Same
greedy semantics (scores of chosen nodes are maximal), different
constants — the ablation benchmark quantifies the unit heap's win.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro import obs
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.permute import permutation_from_sequence
from repro.ordering.gorder import DEFAULT_WINDOW


def gorder_sequence_lazy(
    graph: CSRGraph,
    window: int = DEFAULT_WINDOW,
    hub_threshold: int | None = None,
) -> np.ndarray:
    """Gorder placement sequence using the lazy binary heap."""
    if window < 1:
        raise InvalidParameterError(
            f"window must be at least 1, got {window}"
        )
    if hub_threshold is not None and hub_threshold < 0:
        raise InvalidParameterError(
            f"hub_threshold must be non-negative, got {hub_threshold}"
        )
    n = graph.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    out_offsets = graph.offsets
    out_adjacency = graph.adjacency
    in_offsets = graph.in_offsets
    in_adjacency = graph.in_adjacency
    out_degrees = graph.out_degrees()
    skip_limit = (
        np.iinfo(np.int64).max if hub_threshold is None else hub_threshold
    )

    keys = np.zeros(n, dtype=np.int64)
    placed = np.zeros(n, dtype=bool)
    # Max-heap via negated keys; entries are (-key, node).  Seed one
    # entry per node so zero-key nodes are reachable.
    heap: list[tuple[int, int]] = [(0, node) for node in range(n)]
    heapq.heapify(heap)

    # Telemetry: hoisted guard; counters stay local ints in the loop.
    counting = obs.enabled()
    pushes = 0
    lazy_discards = 0

    def update(node: int, delta: int) -> None:
        nonlocal pushes
        if placed[node]:
            return
        keys[node] += delta
        if counting:
            pushes += 1
        heapq.heappush(heap, (-int(keys[node]), node))

    def apply(u: int, delta: int) -> None:
        for v in out_adjacency[out_offsets[u]:out_offsets[u + 1]]:
            update(int(v), delta)
        for z in in_adjacency[in_offsets[u]:in_offsets[u + 1]]:
            z = int(z)
            update(z, delta)
            if out_degrees[z] > skip_limit:
                continue
            for v in out_adjacency[out_offsets[z]:out_offsets[z + 1]]:
                v = int(v)
                if v != u:
                    update(v, delta)

    def pop_max() -> int:
        nonlocal lazy_discards
        while True:
            negated, node = heapq.heappop(heap)
            if placed[node] or -negated != int(keys[node]):
                if counting:
                    lazy_discards += 1
                continue  # stale or already placed: discard lazily
            placed[node] = True
            return node

    sequence = np.empty(n, dtype=np.int64)
    start = int(np.argmax(graph.in_degrees())) if n > 1 else 0
    with obs.span(
        "gorder.greedy", n=n, m=graph.num_edges, window=window,
        backend="lazy_heap",
    ):
        placed[start] = True
        sequence[0] = start
        apply(start, +1)
        for i in range(1, n):
            if i > window:
                apply(int(sequence[i - 1 - window]), -1)
            chosen = pop_max()
            sequence[i] = chosen
            apply(chosen, +1)
    if counting:
        obs.inc("gorder_lazy.heap_pops", n - 1)
        obs.inc("gorder_lazy.heap_pushes", pushes)
        obs.inc("gorder_lazy.lazy_discards", lazy_discards)
    return sequence


def gorder_order_lazy(
    graph: CSRGraph,
    seed: int = 0,
    window: int = DEFAULT_WINDOW,
    hub_threshold: int | None = None,
) -> np.ndarray:
    """Arrangement form of :func:`gorder_sequence_lazy`."""
    del seed  # deterministic
    return permutation_from_sequence(
        gorder_sequence_lazy(
            graph, window=window, hub_threshold=hub_threshold
        )
    )
