"""The cheap orderings: Original, Random, InDegSort and ChDFS.

These are the paper's low-overhead baselines — Table 2 shows DegSort
and ChDFS computing in under a second even on billion-edge graphs, and
Figure 5 shows ChDFS nonetheless being competitive with Gorder.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.permute import (
    identity_permutation,
    permutation_from_sequence,
)


def original_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """The dataset's own order — the identity arrangement.

    Real datasets are "collected in a way that is not random": their
    default ids already carry locality, which is why this baseline
    beats several elaborate orderings in the paper.
    """
    del seed  # deterministic
    return identity_permutation(graph.num_nodes)


def random_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Uniformly random arrangement (the replication's added baseline).

    Destroys all locality; the experiments use it as the worst case.
    """
    rng = np.random.default_rng(seed)
    return rng.permutation(graph.num_nodes).astype(np.int64)


def indegsort_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Sort nodes by descending in-degree (the paper's DegSort).

    Stable: ties keep their original relative order, so the result is
    deterministic.  Groups hubs together at the front — hub data then
    shares cache lines, which already removes many misses.
    """
    del seed  # deterministic
    in_degrees = graph.in_degrees()
    # Stable sort on negated degree keeps original order within ties.
    sequence = np.argsort(-in_degrees, kind="stable")
    return permutation_from_sequence(sequence)


def chdfs_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Children-first DFS order.

    A plain depth-first traversal: nodes are numbered in the order DFS
    first visits them, children explored in ascending original id (the
    same lexicographic rule the DFS *benchmark algorithm* uses, which
    is why this ordering accelerates that algorithm so much).  The
    traversal restarts from the lowest-id unvisited node, so every
    component is covered.
    """
    del seed  # deterministic (starts at node 0, matching the benchmark)
    n = graph.num_nodes
    offsets = graph.offsets
    adjacency = graph.adjacency
    visited = np.zeros(n, dtype=bool)
    sequence = np.empty(n, dtype=np.int64)
    filled = 0
    for root in range(n):
        if visited[root]:
            continue
        # Iterative DFS; push children reversed so the smallest id pops
        # first (preorder matches the recursive lexicographic DFS).
        stack = [root]
        visited[root] = True
        while stack:
            u = stack.pop()
            sequence[filled] = u
            filled += 1
            neighbors = adjacency[offsets[u]:offsets[u + 1]]
            for i in range(neighbors.shape[0] - 1, -1, -1):
                v = int(neighbors[i])
                if not visited[v]:
                    visited[v] = True
                    stack.append(v)
    return permutation_from_sequence(sequence)
