"""One-call quality evaluation of a node arrangement.

Downstream users picking an ordering want a single comparable report,
not five separate metric calls.  :func:`evaluate_ordering` bundles the
locality objective, the linear-arrangement energies, the compression
estimate and a simulated cache probe into one
:class:`OrderingEvaluation`, and :func:`evaluate_all` sweeps the
registry to produce a comparison table.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.algorithms.nq import neighbor_query_traced
from repro.cache import Memory, scaled_hierarchy
from repro.graph.csr import CSRGraph
from repro.graph.permute import relabel, validate_permutation
from repro.ordering import base as registry
from repro.ordering.compression import bits_per_edge
from repro.ordering.gorder import DEFAULT_WINDOW
from repro.ordering.metrics import (
    average_gap,
    bandwidth,
    gorder_score,
    minla_energy,
)


@dataclass(frozen=True)
class OrderingEvaluation:
    """All quality numbers for one arrangement of one graph."""

    ordering: str
    gorder_f: int  # the paper's objective (higher is better)
    minla: int  # linear arrangement energy (lower is better)
    average_gap: float
    bandwidth: int
    bits_per_edge: float  # compression estimate (lower is better)
    l1_miss_rate: float  # NQ probe on the simulated hierarchy
    cache_miss_rate: float
    probe_cycles: float

    def as_row(self) -> list:
        return [
            self.ordering,
            self.gorder_f,
            self.minla,
            f"{self.average_gap:.0f}",
            self.bandwidth,
            f"{self.bits_per_edge:.2f}",
            f"{100 * self.l1_miss_rate:.1f}%",
            f"{100 * self.cache_miss_rate:.1f}%",
            f"{self.probe_cycles / 1e6:.2f}M",
        ]

    @staticmethod
    def headers() -> list[str]:
        return [
            "ordering", "F(pi)", "E_LA", "avg-gap", "bandwidth",
            "bits/edge", "L1-mr", "Cache-mr", "NQ cycles",
        ]


def evaluate_ordering(
    graph: CSRGraph,
    perm: np.ndarray,
    name: str = "custom",
    window: int = DEFAULT_WINDOW,
) -> OrderingEvaluation:
    """Evaluate one arrangement on every quality axis."""
    perm = validate_permutation(perm, graph.num_nodes)
    memory = Memory(scaled_hierarchy())
    neighbor_query_traced(relabel(graph, perm), memory)
    stats = memory.stats()
    return OrderingEvaluation(
        ordering=name,
        gorder_f=gorder_score(graph, perm, window=window),
        minla=minla_energy(graph, perm),
        average_gap=average_gap(graph, perm),
        bandwidth=bandwidth(graph, perm),
        bits_per_edge=bits_per_edge(graph, perm),
        l1_miss_rate=stats.l1_miss_rate,
        cache_miss_rate=stats.cache_miss_rate,
        probe_cycles=memory.cost().total_cycles,
    )


def evaluate_all(
    graph: CSRGraph,
    ordering_names=None,
    seed: int = 0,
    window: int = DEFAULT_WINDOW,
) -> list[OrderingEvaluation]:
    """Evaluate several registered orderings; best probe first."""
    names = (
        tuple(ordering_names)
        if ordering_names is not None
        else registry.ORDERING_NAMES
    )
    evaluations = [
        evaluate_ordering(
            graph,
            registry.compute_ordering(name, graph, seed=seed),
            name=name,
            window=window,
        )
        for name in names
    ]
    evaluations.sort(key=lambda evaluation: evaluation.probe_cycles)
    return evaluations
