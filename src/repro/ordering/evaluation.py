"""One-call quality evaluation of a node arrangement.

Downstream users picking an ordering want a single comparable report,
not five separate metric calls.  :func:`evaluate_ordering` bundles the
locality objective, the linear-arrangement energies, the compression
estimate and a simulated cache probe into one
:class:`OrderingEvaluation`, and :func:`evaluate_all` sweeps the
registry to produce a comparison table.

The probe honours the same ``cache_backend``/``algo_backend`` knobs as
the experiment runner (the simulated counters are identical either
way for the all-LRU hierarchies; replay is just faster), and
evaluations carry the measured ordering wall-time so cost-aware
consumers — the adaptive selector in :mod:`repro.ordering.select`
first among them — can amortise ordering cost against probe savings.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro.algorithms import base as algorithms
from repro.cache import Memory, scaled_hierarchy
from repro.graph.csr import CSRGraph
from repro.graph.permute import relabel, validate_permutation
from repro.ordering import base as registry
from repro.ordering.compression import bits_per_edge
from repro.ordering.gorder import DEFAULT_WINDOW
from repro.ordering.metrics import (
    average_gap,
    bandwidth,
    gorder_score,
    minla_energy,
)


@dataclass(frozen=True)
class OrderingEvaluation:
    """All quality numbers for one arrangement of one graph."""

    ordering: str
    gorder_f: int  # the paper's objective (higher is better)
    minla: int  # linear arrangement energy (lower is better)
    average_gap: float
    bandwidth: int
    bits_per_edge: float  # compression estimate (lower is better)
    l1_miss_rate: float  # NQ probe on the simulated hierarchy
    cache_miss_rate: float
    probe_cycles: float
    #: Measured wall-time of computing the arrangement; NaN when the
    #: arrangement was supplied rather than computed.
    ordering_seconds: float = float("nan")

    def as_row(self) -> list:
        seconds = (
            "-" if math.isnan(self.ordering_seconds)
            else f"{self.ordering_seconds:.3f}"
        )
        return [
            self.ordering,
            self.gorder_f,
            self.minla,
            f"{self.average_gap:.0f}",
            self.bandwidth,
            f"{self.bits_per_edge:.2f}",
            f"{100 * self.l1_miss_rate:.1f}%",
            f"{100 * self.cache_miss_rate:.1f}%",
            f"{self.probe_cycles / 1e6:.2f}M",
            seconds,
        ]

    @staticmethod
    def headers() -> list[str]:
        return [
            "ordering", "F(pi)", "E_LA", "avg-gap", "bandwidth",
            "bits/edge", "L1-mr", "Cache-mr", "NQ cycles", "order-s",
        ]


def probe_arrangement(
    graph: CSRGraph,
    perm: np.ndarray,
    cache_backend: str = "step",
    algo_backend: str = "runtime",
):
    """Run the NQ cache probe for one arrangement.

    Returns ``(total_cycles, stats)`` for the relabelled graph on the
    scaled hierarchy, using the requested simulator and algorithm
    backends instead of hard-coding the scalar step path.
    """
    memory = Memory(scaled_hierarchy(), cache_backend=cache_backend)
    traced = algorithms.traced_fn(algorithms.spec("nq"), algo_backend)
    traced(relabel(graph, perm), memory)
    return memory.cost().total_cycles, memory.stats()


def evaluate_ordering(
    graph: CSRGraph,
    perm: np.ndarray,
    name: str = "custom",
    window: int = DEFAULT_WINDOW,
    cache_backend: str = "step",
    algo_backend: str = "runtime",
    ordering_seconds: float = float("nan"),
) -> OrderingEvaluation:
    """Evaluate one arrangement on every quality axis."""
    perm = validate_permutation(perm, graph.num_nodes)
    probe_cycles, stats = probe_arrangement(
        graph, perm,
        cache_backend=cache_backend, algo_backend=algo_backend,
    )
    return OrderingEvaluation(
        ordering=name,
        gorder_f=gorder_score(graph, perm, window=window),
        minla=minla_energy(graph, perm),
        average_gap=average_gap(graph, perm),
        bandwidth=bandwidth(graph, perm),
        bits_per_edge=bits_per_edge(graph, perm),
        l1_miss_rate=stats.l1_miss_rate,
        cache_miss_rate=stats.cache_miss_rate,
        probe_cycles=probe_cycles,
        ordering_seconds=ordering_seconds,
    )


def evaluate_all(
    graph: CSRGraph,
    ordering_names=None,
    seed: int = 0,
    window: int = DEFAULT_WINDOW,
    cache_backend: str = "step",
    algo_backend: str = "runtime",
    ordering_params: dict | None = None,
) -> list[OrderingEvaluation]:
    """Evaluate several registered orderings; best probe first.

    Each ordering's computation is timed and the wall-time recorded in
    its evaluation, so the resulting table doubles as the selector's
    cost/quality input.
    """
    names = (
        tuple(ordering_names)
        if ordering_names is not None
        else registry.ORDERING_NAMES
    )
    params = dict(ordering_params or {})
    evaluations = []
    for name in names:
        start = time.perf_counter()
        perm = registry.compute_ordering(
            name, graph, seed=seed, **params
        )
        seconds = time.perf_counter() - start
        evaluations.append(
            evaluate_ordering(
                graph,
                perm,
                name=name,
                window=window,
                cache_backend=cache_backend,
                algo_backend=algo_backend,
                ordering_seconds=seconds,
            )
        )
    evaluations.sort(key=lambda evaluation: evaluation.probe_cycles)
    return evaluations
