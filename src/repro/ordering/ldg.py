"""Linear Deterministic Greedy (LDG) streaming-partition ordering.

LDG [Stanton & Kliot 2012] streams nodes in their original order into
``ceil(n / k)`` bins of capacity ``k`` and places each node in the bin
maximising ``(1 + |N(u) ∩ B|) * (1 - |B| / k)`` — neighbours attract,
fullness repels.  The paper uses ``k = 64`` so one bin of node data
fits a cache line's worth of 4-byte entries per property array.

The arrangement concatenates the bins; in both the paper and the
replication this ordering performs poorly (barely better than random),
and reproducing *that* is part of reproducing the result.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.graph.permute import permutation_from_sequence

#: Paper's bin size: 64 node entries per bin.
DEFAULT_BIN_SIZE = 64


def ldg_order(
    graph: CSRGraph, seed: int = 0, bin_size: int = DEFAULT_BIN_SIZE
) -> np.ndarray:
    """Compute the LDG arrangement with bins of ``bin_size`` nodes."""
    del seed  # deterministic (streams in original order)
    if bin_size < 1:
        raise InvalidParameterError(
            f"bin_size must be positive, got {bin_size}"
        )
    undirected = graph.undirected()
    n = undirected.num_nodes
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    offsets = undirected.offsets
    adjacency = undirected.adjacency
    num_bins = (n + bin_size - 1) // bin_size
    bins: list[list[int]] = [[] for _ in range(num_bins)]
    sizes = np.zeros(num_bins, dtype=np.int64)
    bin_of = np.full(n, -1, dtype=np.int64)
    for u in range(n):
        # Count already-placed neighbours per bin.
        neighbor_bins = bin_of[adjacency[offsets[u]:offsets[u + 1]]]
        neighbor_bins = neighbor_bins[neighbor_bins >= 0]
        counts: dict[int, int] = {}
        for b in neighbor_bins:
            b = int(b)
            counts[b] = counts.get(b, 0) + 1
        best_bin = -1
        best_score = -1.0
        for b, shared in counts.items():
            if sizes[b] >= bin_size:
                continue
            score = (1.0 + shared) * (1.0 - sizes[b] / bin_size)
            if score > best_score:
                best_score = score
                best_bin = b
        # A neighbour-free bin scores (1)(1 - |B|/k); the emptiest
        # such bin is the best fallback candidate.
        emptiest = int(np.argmin(sizes))
        if sizes[emptiest] < bin_size:
            score = 1.0 - sizes[emptiest] / bin_size
            if score > best_score:
                best_score = score
                best_bin = emptiest
        if best_bin < 0:  # every bin full (can't happen with ceil bins)
            best_bin = emptiest
        bins[best_bin].append(u)
        sizes[best_bin] += 1
        bin_of[u] = best_bin
    sequence = np.array(
        [u for bin_nodes in bins for u in bin_nodes], dtype=np.int64
    )
    return permutation_from_sequence(sequence)
