"""The *unit heap*: Gorder's priority queue.

The greedy GO algorithm (Algorithm 2 of the paper) repeatedly extracts
the candidate node with the maximum proximity score to the current
window, under a stream of **unit** updates: every event changes one
node's key by exactly ±1.  The paper exploits this with a linked
bucket structure giving O(1) updates; this implementation keeps the
authoritative state in two flat arrays (``_keys``, ``_present``) and
makes two further changes that unlock the batched numpy kernel:

* **State-functional tie-break.**  ``pop_max`` returns the *smallest
  item id* among the maximal-key items.  Unlike FIFO-within-bucket,
  this is a pure function of the current ``(keys, present)`` state —
  independent of the order in which the key deltas arrived — so a
  vectorised kernel that applies a whole step's events as one net
  delta pops byte-identical sequences to the one-event-at-a-time loop.
* **Array-wise lazy entries.**  Every key change records one packed
  entry ``key * span + (span - 1 - item)``; maximising the packed code
  is exactly "maximal key, then minimal id".  Entries live in a small
  collection of **sorted numpy runs** (merged geometrically, LSM
  style), so a batch update is: deduplicate events, scatter-add the
  net deltas into ``_keys``, pack, one ``sort`` — no per-event Python.
  Scalar updates append to a plain-list buffer that is sorted into a
  run at the next pop.  Entries are *lazy*: an entry is valid only if
  it still matches ``_keys``/``_present``; ``pop_max`` discards stale
  tops, and a periodic compaction (rebuilding the runs from the live
  keys once garbage exceeds a small multiple of the live size) bounds
  memory at O(n) under arbitrary churn.

Amortised costs: scalar updates are O(1) list appends plus their
share of run merging (O(log n) comparisons, all inside C sorts);
batch updates are O(k log k) vectorised for k events; ``pop_max``
scans the run tails (a handful of Python ints) and pays one discard
per stale entry that surfaces, bounded by the total update count.
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.errors import InvalidParameterError


class UnitHeap:
    """Max-priority structure over items ``0 .. n-1`` with unit updates.

    All items start present with key 0.  ``pop_max`` removes and
    returns an item of maximal key; updates addressed at removed items
    are ignored (exactly what Gorder needs — placed nodes keep
    receiving score events that must not resurrect them).

    Ties are broken deterministically: the **smallest item id** among
    the maximal-key items.  This is a pure function of the heap state,
    so any sequence of updates with the same net effect leaves the pop
    order unchanged — the property the batched Gorder kernel relies on
    for byte-identical output versus the event-loop kernel.
    """

    #: Fresh runs buffered before a collapse into the merge ladder.
    #: Bounds the tail scan in ``pop_max`` while amortising the
    #: geometric merges over many updates.
    _MAX_FRESH_RUNS = 8

    __slots__ = (
        "_keys", "_present", "_size", "_span",
        "_runs", "_tails", "_ladder", "_pending", "_entries",
    )

    def __init__(
        self,
        num_items: int,
        candidates: np.ndarray | None = None,
    ) -> None:
        """Build the heap over ``num_items`` item ids.

        ``candidates``, when given, restricts the heap to that subset:
        every other id starts *removed* (updates addressed at it are
        ignored, it can never be popped) at zero construction cost —
        the bulk mask replaces a per-item ``remove`` loop, which is
        what keeps incremental extension proportional to the batch
        rather than the whole graph.
        """
        if num_items < 0:
            raise InvalidParameterError(
                f"num_items must be non-negative, got {num_items}"
            )
        self._keys = np.zeros(num_items, dtype=np.int64)
        self._span = max(num_items, 1)
        if candidates is None:
            self._present = np.ones(num_items, dtype=bool)
            self._size = num_items
            # With every key 0 the packed codes are span-1-item, i.e.
            # an ascending arange — already one sorted run.
            self._runs: list[np.ndarray] = (
                [np.arange(num_items, dtype=np.int64)]
                if num_items else []
            )
        else:
            candidates = self._as_batch(candidates)
            if candidates.shape[0] and (
                int(candidates.min()) < 0
                or int(candidates.max()) >= num_items
            ):
                raise InvalidParameterError(
                    f"candidates must lie in [0, {num_items})"
                )
            self._present = np.zeros(num_items, dtype=bool)
            self._present[candidates] = True
            self._size = int(np.count_nonzero(self._present))
            # Key 0 packs to span-1-item: sorted codes are the live
            # items in descending id order.
            codes = self._span - 1 - (
                np.unique(candidates).astype(np.int64)[::-1]
            )
            self._runs = [np.ascontiguousarray(codes)] if (
                codes.shape[0]
            ) else []
        self._tails = (
            [int(self._runs[0][-1])] if self._runs else []
        )
        # Runs below this index form the geometric merge ladder;
        # beyond it sit the fresh, not-yet-merged runs.
        self._ladder = 1 if self._runs else 0
        self._pending: list[int] = []
        self._entries = self._size

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, item: int) -> bool:
        return bool(self._present[item])

    def key_of(self, item: int) -> int:
        """Current key of ``item``.

        Meaningful only while the item is present: batch updates
        addressed at a removed item are ignored for ordering purposes
        but may still drift its stored key.
        """
        return int(self._keys[item])

    # ------------------------------------------------------------------
    # Run maintenance
    # ------------------------------------------------------------------
    @staticmethod
    def _merge_sorted(a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Merge two sorted arrays in three linear passes.

        ``np.searchsorted`` places every element of the smaller array,
        then two scatter writes interleave both — much cheaper than
        re-sorting the concatenation, which is what keeps the
        geometric run-merging affordable.
        """
        if a.shape[0] < b.shape[0]:
            a, b = b, a
        merged = np.empty(a.shape[0] + b.shape[0], dtype=np.int64)
        slots = np.searchsorted(a, b) + np.arange(b.shape[0])
        keep = np.ones(merged.shape[0], dtype=bool)
        keep[slots] = False
        merged[slots] = b
        merged[keep] = a
        return merged

    def _add_run(self, codes: np.ndarray) -> None:
        """Buffer a sorted code run, collapsing the buffer when full.

        Merging every new (small) run straight into the ladder costs
        a handful of numpy calls per run; buffering and collapsing
        :data:`_MAX_FRESH_RUNS` at a time pays that price once per
        batch while ``pop_max`` keeps scanning the buffered tails.
        """
        self._runs.append(codes)
        self._tails.append(int(codes[-1]))
        if len(self._runs) - self._ladder >= self._MAX_FRESH_RUNS:
            self._collapse_fresh()

    def _collapse_fresh(self) -> None:
        """Sort the fresh runs into one and merge it up the ladder."""
        runs = self._runs
        tails = self._tails
        ladder = self._ladder
        fresh = runs[ladder:]
        del runs[ladder:]
        del tails[ladder:]
        if len(fresh) == 1:
            codes = fresh[0]
        else:
            codes = np.concatenate(fresh)
            codes.sort()
        # Geometric cascade: absorb every ladder run not much bigger
        # than the incoming one, so each entry is merged O(log) times.
        while ladder and runs[ladder - 1].shape[0] <= 2 * codes.shape[0]:
            ladder -= 1
            codes = self._merge_sorted(runs.pop(ladder), codes)
            tails.pop(ladder)
        runs.append(codes)
        tails.append(int(codes[-1]))
        self._ladder = len(runs)

    def _flush_pending(self) -> None:
        pending = self._pending
        if pending:
            codes = np.array(pending, dtype=np.int64)
            pending.clear()
            codes.sort()
            self._add_run(codes)

    def _maybe_compact(self) -> None:
        if self._entries > 64 + 4 * self._size:
            self._compact()

    def _compact(self) -> None:
        """Rebuild the runs from the authoritative key vector.

        Drops every stale entry in one vectorised pass; the result is
        a single sorted run of exactly the live items.  Compaction is
        the heap's single heaviest internal operation (an O(n) rebuild
        triggered by garbage growth), so it is a profiled phase —
        amortisation cost attribution needs it visible; when telemetry
        is off the hook is one no-op context manager per compaction
        (rare: garbage must exceed 4x the live size).
        """
        with obs.profile(
            "gorder.heap_compact",
            entries=self._entries, live=self._size,
        ):
            self._pending.clear()
            items = np.flatnonzero(self._present)
            self._entries = int(items.shape[0])
            if not items.shape[0]:
                self._runs = []
                self._tails = []
                self._ladder = 0
                return
            codes = self._keys[items] * self._span + (
                self._span - 1 - items
            )
            codes.sort()
            self._runs = [codes]
            self._tails = [int(codes[-1])]
            self._ladder = 1

    # ------------------------------------------------------------------
    # Scalar updates
    # ------------------------------------------------------------------
    def increase(self, item: int) -> None:
        """Add 1 to ``item``'s key.  No-op if the item was removed."""
        if not self._present[item]:
            return
        key = int(self._keys[item]) + 1
        self._keys[item] = key
        self._pending.append(key * self._span + self._span - 1 - item)
        self._entries += 1
        self._maybe_compact()

    def decrease(self, item: int) -> None:
        """Subtract 1 from ``item``'s key.  No-op if removed."""
        if not self._present[item]:
            return
        key = int(self._keys[item]) - 1
        self._keys[item] = key
        self._pending.append(key * self._span + self._span - 1 - item)
        self._entries += 1
        self._maybe_compact()

    # ------------------------------------------------------------------
    # Batched updates
    # ------------------------------------------------------------------
    @staticmethod
    def _as_batch(items) -> np.ndarray:
        items = np.asarray(items)
        if items.ndim != 1:
            raise InvalidParameterError(
                f"batch items must be one-dimensional, got shape "
                f"{items.shape}"
            )
        if items.shape[0] and items.dtype.kind not in "iu":
            raise InvalidParameterError(
                f"batch items must be integers, got dtype {items.dtype}"
            )
        return items

    def increase_batch(
        self, items: np.ndarray, counts: np.ndarray | None = None
    ) -> None:
        """Add to many keys at once.

        ``items`` may contain duplicates (each occurrence is one +1
        event) and removed items (silently ignored).  ``counts``, when
        given, must align with ``items`` and give the non-negative
        delta per entry instead of the implicit 1.
        """
        self._update_batch(items, counts, 1)

    def decrease_batch(
        self, items: np.ndarray, counts: np.ndarray | None = None
    ) -> None:
        """Subtract from many keys at once (mirror of increase_batch)."""
        self._update_batch(items, counts, -1)

    def _update_batch(
        self, items: np.ndarray, counts: np.ndarray | None, sign: int
    ) -> int:
        """Apply the summed deltas; return the number of moved items."""
        items = self._as_batch(items)
        if counts is None:
            if not items.shape[0]:
                return 0
            items, deltas = np.unique(items, return_counts=True)
        else:
            counts = np.asarray(counts)
            if counts.shape != items.shape:
                raise InvalidParameterError(
                    f"counts shape {counts.shape} does not match items "
                    f"shape {items.shape}"
                )
            if counts.shape[0] and int(counts.min()) < 0:
                raise InvalidParameterError(
                    "batch counts must be non-negative"
                )
            if not items.shape[0]:
                return 0
            # Collapse duplicate items so each gets one summed delta.
            items, inverse = np.unique(items, return_inverse=True)
            deltas = np.bincount(
                inverse, weights=counts, minlength=items.shape[0]
            ).astype(np.int64)
        if sign < 0:
            deltas = -deltas
        return self._apply_deltas(items, deltas)

    def apply_step(
        self, enter_events: np.ndarray, exit_events: np.ndarray
    ) -> int:
        """Net-apply one window slide in a single pass.

        Every occurrence in ``enter_events`` is a +1 and every one in
        ``exit_events`` a −1.  Equivalent to
        ``increase_batch(enter_events)`` followed by
        ``decrease_batch(exit_events)`` (no pop may occur between the
        two, which is exactly Gorder's window slide), but with far
        fewer array passes: the duplicate-aware scatter-adds land the
        net keys directly, and one sort extracts the unique touched
        items whose fresh entries need recording.  Returns the number
        of live candidates touched.
        """
        enter_events = self._as_batch(enter_events)
        exit_events = self._as_batch(exit_events)
        total = enter_events.shape[0] + exit_events.shape[0]
        if not total:
            return 0
        keys = self._keys
        np.add.at(keys, enter_events, 1)
        np.subtract.at(keys, exit_events, 1)
        touched = np.concatenate((enter_events, exit_events))
        touched.sort()
        boundary = np.empty(total, dtype=bool)
        boundary[0] = True
        np.not_equal(touched[1:], touched[:-1], out=boundary[1:])
        items = touched[boundary]
        items = items[self._present[items]]
        if not items.shape[0]:
            return 0
        codes = keys[items] * self._span + (self._span - 1 - items)
        codes.sort()
        self._add_run(codes)
        self._entries += codes.shape[0]
        self._maybe_compact()
        return int(items.shape[0])

    def _apply_deltas(
        self, items: np.ndarray, deltas: np.ndarray
    ) -> int:
        """Scatter signed deltas of unique ``items``; push new entries."""
        moved = self._present[items] & (deltas != 0)
        items = items[moved]
        if not items.shape[0]:
            return 0
        deltas = deltas[moved]
        self._keys[items] += deltas
        codes = self._keys[items] * self._span + (
            self._span - 1 - items
        )
        codes.sort()
        self._add_run(codes)
        self._entries += codes.shape[0]
        self._maybe_compact()
        return int(items.shape[0])

    # ------------------------------------------------------------------
    # Removal and extraction
    # ------------------------------------------------------------------
    def remove(self, item: int) -> None:
        """Delete ``item`` from the heap (subsequent updates ignored)."""
        if not self._present[item]:
            return
        self._present[item] = False
        self._size -= 1

    def pop_max(self) -> int:
        """Remove and return the smallest-id item with the maximal key.

        Raises
        ------
        IndexError
            If the heap is empty.
        """
        if self._size == 0:
            # Container protocol: empty-pop mirrors list.pop.
            raise IndexError(  # repro: noqa[REP006]
                "pop from an empty UnitHeap"
            )
        self._flush_pending()
        runs = self._runs
        tails = self._tails
        keys = self._keys
        present = self._present
        span = self._span
        while True:
            # max()/index() run at C speed over the few run tails.
            best_tail = max(tails)
            best = tails.index(best_tail)
            run = runs[best]
            if run.shape[0] == 1:
                runs.pop(best)
                tails.pop(best)
                if best < self._ladder:
                    self._ladder -= 1
            else:
                run = run[:-1]
                runs[best] = run
                tails[best] = int(run[-1])
            self._entries -= 1
            key, remainder = divmod(best_tail, span)
            item = span - 1 - remainder
            if present[item] and keys[item] == key:
                present[item] = False
                self._size -= 1
                return item

    def peek_max_key(self) -> int:
        """Maximal key among present items (empty heap raises)."""
        if self._size == 0:
            # Container protocol: empty-peek mirrors list indexing.
            raise IndexError(  # repro: noqa[REP006]
                "peek on an empty UnitHeap"
            )
        self._flush_pending()
        runs = self._runs
        tails = self._tails
        keys = self._keys
        present = self._present
        span = self._span
        while True:
            best_tail = max(tails)
            key, remainder = divmod(best_tail, span)
            item = span - 1 - remainder
            if present[item] and keys[item] == key:
                return key
            # Discard the stale top, exactly as pop_max would.
            best = tails.index(best_tail)
            run = runs[best]
            if run.shape[0] == 1:
                runs.pop(best)
                tails.pop(best)
                if best < self._ladder:
                    self._ladder -= 1
            else:
                run = run[:-1]
                runs[best] = run
                tails[best] = int(run[-1])
            self._entries -= 1


class MeteredUnitHeap(UnitHeap):
    """A :class:`UnitHeap` that counts its own operations.

    The telemetry backend for Gorder: when tracing is on the greedy
    loop swaps this in for the plain heap and publishes the totals as
    counters afterwards.  Keeping the plain class untouched keeps the
    telemetry-disabled path at exactly its original cost.

    ``increases``/``decreases`` count unit events — one per scalar
    call, one per batch entry (weighted by ``counts``) — so the totals
    agree between the loop and batched Gorder kernels.
    ``batched_moves`` counts deduplicated live items refreshed per
    batch call (per window step for the fused :meth:`apply_step`), the
    measure of how much work vectorisation collapses.
    """

    __slots__ = (
        "increases", "decreases", "pops", "removes", "batched_moves"
    )

    def __init__(
        self,
        num_items: int,
        candidates: np.ndarray | None = None,
    ) -> None:
        super().__init__(num_items, candidates=candidates)
        self.increases = 0
        self.decreases = 0
        self.pops = 0
        self.removes = 0
        self.batched_moves = 0

    @staticmethod
    def _units(items, counts) -> int:
        if counts is not None:
            return int(np.sum(counts))
        return int(np.asarray(items).shape[0])

    def increase(self, item: int) -> None:
        self.increases += 1
        super().increase(item)

    def decrease(self, item: int) -> None:
        self.decreases += 1
        super().decrease(item)

    def increase_batch(
        self, items: np.ndarray, counts: np.ndarray | None = None
    ) -> None:
        self.increases += self._units(items, counts)
        self.batched_moves += self._update_batch(items, counts, 1)

    def decrease_batch(
        self, items: np.ndarray, counts: np.ndarray | None = None
    ) -> None:
        self.decreases += self._units(items, counts)
        self.batched_moves += self._update_batch(items, counts, -1)

    def apply_step(
        self, enter_events: np.ndarray, exit_events: np.ndarray
    ) -> int:
        # Counting must not change the kernel being measured: run the
        # fused fast path and attribute costs arithmetically (one unit
        # per raw event; batched_moves = the step's live touched items,
        # the fused call's return value).
        moved = super().apply_step(enter_events, exit_events)
        self.increases += int(np.asarray(enter_events).shape[0])
        self.decreases += int(np.asarray(exit_events).shape[0])
        self.batched_moves += moved
        return moved

    def remove(self, item: int) -> None:
        self.removes += 1
        super().remove(item)

    def pop_max(self) -> int:
        self.pops += 1
        return super().pop_max()

    @property
    def priority_updates(self) -> int:
        """Total key-change events (the paper's unit updates)."""
        return self.increases + self.decreases
