"""The *unit heap*: Gorder's priority queue.

The greedy GO algorithm (Algorithm 2 of the paper) repeatedly extracts
the candidate node with the maximum proximity score to the current
window, under a stream of **unit** updates: every event changes one
node's key by exactly ±1.  The paper exploits this with a linked
bucket structure giving O(1) updates; we implement the same idea with
one ordered-``dict`` bucket per key value and a moving ``max_key``
pointer.

Amortised costs: ``increase``/``decrease``/``remove`` are O(1);
``pop_max`` pays for scanning empty buckets downwards, but ``max_key``
only ever rises through ``increase`` calls, so the total scan work is
bounded by the total number of increments — O(1) amortised.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError


class UnitHeap:
    """Max-priority structure over items ``0 .. n-1`` with unit updates.

    All items start present with key 0.  ``pop_max`` removes and
    returns an item of maximal key; updates addressed at removed items
    are ignored (exactly what Gorder needs — placed nodes keep
    receiving score events that must not resurrect them).

    Ties are broken deterministically: the item that reached its
    current key earliest (FIFO within a bucket).
    """

    __slots__ = ("_keys", "_present", "_buckets", "_max_key", "_size")

    def __init__(self, num_items: int) -> None:
        if num_items < 0:
            raise InvalidParameterError(
                f"num_items must be non-negative, got {num_items}"
            )
        self._keys = np.zeros(num_items, dtype=np.int64)
        self._present = np.ones(num_items, dtype=bool)
        self._buckets: dict[int, dict[int, None]] = {
            0: dict.fromkeys(range(num_items))
        }
        self._max_key = 0
        self._size = num_items

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return self._size

    def __contains__(self, item: int) -> bool:
        return bool(self._present[item])

    def key_of(self, item: int) -> int:
        """Current key of ``item`` (valid even after removal)."""
        return int(self._keys[item])

    # ------------------------------------------------------------------
    def increase(self, item: int) -> None:
        """Add 1 to ``item``'s key.  No-op if the item was removed."""
        if not self._present[item]:
            return
        key = int(self._keys[item])
        bucket = self._buckets[key]
        del bucket[item]
        key += 1
        self._keys[item] = key
        target = self._buckets.get(key)
        if target is None:
            target = {}
            self._buckets[key] = target
        target[item] = None
        if key > self._max_key:
            self._max_key = key

    def decrease(self, item: int) -> None:
        """Subtract 1 from ``item``'s key.  No-op if removed."""
        if not self._present[item]:
            return
        key = int(self._keys[item])
        bucket = self._buckets[key]
        del bucket[item]
        key -= 1
        self._keys[item] = key
        target = self._buckets.get(key)
        if target is None:
            target = {}
            self._buckets[key] = target
        target[item] = None

    def remove(self, item: int) -> None:
        """Delete ``item`` from the heap (subsequent updates ignored)."""
        if not self._present[item]:
            return
        self._present[item] = False
        del self._buckets[int(self._keys[item])][item]
        self._size -= 1

    def pop_max(self) -> int:
        """Remove and return an item with the maximal key.

        Raises
        ------
        IndexError
            If the heap is empty.
        """
        if self._size == 0:
            raise IndexError("pop from an empty UnitHeap")
        buckets = self._buckets
        key = self._max_key
        bucket = buckets.get(key)
        while not bucket:
            if bucket is not None:
                del buckets[key]
            key -= 1
            bucket = buckets.get(key)
        self._max_key = key
        item = next(iter(bucket))
        del bucket[item]
        self._present[item] = False
        self._size -= 1
        return item

    def peek_max_key(self) -> int:
        """Maximal key among present items (empty heap raises)."""
        if self._size == 0:
            raise IndexError("peek on an empty UnitHeap")
        key = self._max_key
        while not self._buckets.get(key):
            key -= 1
        return key


class MeteredUnitHeap(UnitHeap):
    """A :class:`UnitHeap` that counts its own operations.

    The telemetry backend for Gorder: when tracing is on the greedy
    loop swaps this in for the plain heap and publishes the totals as
    counters afterwards.  Keeping the plain class untouched keeps the
    telemetry-disabled path at exactly its original cost.
    """

    __slots__ = ("increases", "decreases", "pops", "removes")

    def __init__(self, num_items: int) -> None:
        super().__init__(num_items)
        self.increases = 0
        self.decreases = 0
        self.pops = 0
        self.removes = 0

    def increase(self, item: int) -> None:
        self.increases += 1
        super().increase(item)

    def decrease(self, item: int) -> None:
        self.decreases += 1
        super().decrease(item)

    def remove(self, item: int) -> None:
        self.removes += 1
        super().remove(item)

    def pop_max(self) -> int:
        self.pops += 1
        return super().pop_max()

    @property
    def priority_updates(self) -> int:
        """Total key-change events (the paper's unit updates)."""
        return self.increases + self.decreases
