"""Adaptive ordering selection on the cost/quality frontier.

The paper's Gorder wins on locality but pays a heavyweight ordering
cost; the lightweight passes of :mod:`repro.ordering.lightweight`
recover much of the benefit at a fraction of the cost, and which one
wins depends on the graph.  This module closes the loop with an
explicit amortisation model:

    total_seconds(candidate) = ordering_seconds(candidate)
        + query_volume * probe_cycles(candidate) / clock_hz

Each candidate configuration (ordering + kernel backend + window) is
actually run — its wall-time measured, its locality probed with the
simulated-cache NQ probe of :mod:`repro.ordering.evaluation` — and
the selector picks the configuration minimising modelled total cost
for the stated query volume.  Structural predictors
(:mod:`repro.ordering.predictors`) gate the expensive part: a
heavyweight candidate is only probed when the predicted recoverable
locality at this query volume could plausibly repay its cost.

The selector is exposed as the registry ordering ``auto`` (hence
``--ordering auto`` everywhere a CLI accepts an ordering, and as a
logical key in the runner memo and serve daemon stores).  Probe
cycles are deterministic, so the decision is stable except when two
candidates' modelled costs sit within wall-clock measurement noise —
in which case either choice is equivalent under the model.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import InvalidParameterError
from repro.graph.csr import CSRGraph
from repro.ordering import base as registry
from repro.ordering.evaluation import probe_arrangement
from repro.ordering.gorder import DEFAULT_WINDOW
from repro.ordering.predictors import (
    StructuralPredictors,
    compute_predictors,
    predicted_gain_fraction,
)

#: Clock used to convert simulated cycles into seconds for
#: amortisation (a mid-range 2.6 GHz core, like the replication's).
DEFAULT_CLOCK_HZ = 2.6e9

#: Default modelled workload: a query-heavy serving deployment.  High
#: enough that on the acceptance datasets the cycle term dominates
#: ordering cost, so the default decision tracks the locality oracle.
DEFAULT_QUERY_VOLUME = 100_000

#: Orderings whose cost is large enough to deserve a predictor gate.
HEAVYWEIGHT_ORDERINGS = frozenset(
    {"gorder", "gorder-lazy", "gorder-part", "minla", "minloga"}
)

#: A heavyweight ordering costs at least this multiple of the
#: cheapest measured lightweight pass — the optimistic floor the
#: predictor gate compares against the modelled gain.
HEAVY_COST_MULTIPLE = 10.0


@dataclass(frozen=True)
class CandidateConfig:
    """One configuration the selector may pick.

    ``window``/``backend``/``workers`` are forwarded to the ordering
    through the registry's signature filter, so each knob reaches
    exactly the orderings that declare it.
    """

    ordering: str
    window: int | None = None
    backend: str | None = None
    workers: int | None = None

    @property
    def label(self) -> str:
        parts = []
        if self.window is not None:
            parts.append(f"w={self.window}")
        if self.backend is not None:
            parts.append(f"{self.backend}")
        if not parts:
            return self.ordering
        return f"{self.ordering}[{','.join(parts)}]"

    def ordering_params(self) -> dict:
        params: dict = {}
        if self.window is not None:
            params["window"] = self.window
        if self.backend is not None:
            params["backend"] = self.backend
        if self.workers is not None:
            params["workers"] = self.workers
        return params


@dataclass(frozen=True)
class CandidateProbe:
    """Measured cost/quality point for one candidate."""

    ordering: str
    label: str
    window: int | None
    backend: str | None
    ordering_seconds: float
    probe_cycles: float
    #: Modelled total seconds at the decision's query volume.
    amortised_seconds: float
    #: Queries needed before this candidate beats the baseline
    #: arrangement; 0 for the baseline itself, ``inf`` when the
    #: candidate never catches up.
    break_even_queries: float

    def as_dict(self) -> dict:
        return {
            "ordering": self.ordering,
            "label": self.label,
            "window": self.window,
            "backend": self.backend,
            "ordering_seconds": self.ordering_seconds,
            "probe_cycles": self.probe_cycles,
            "amortised_seconds": self.amortised_seconds,
            # JSON has no Infinity; null = never catches up.
            "break_even_queries": (
                self.break_even_queries
                if math.isfinite(self.break_even_queries)
                else None
            ),
        }


@dataclass(frozen=True)
class SelectionDecision:
    """The full record of one adaptive selection."""

    dataset: str
    query_volume: float
    clock_hz: float
    predictors: StructuralPredictors
    probes: tuple[CandidateProbe, ...]
    #: Candidate labels skipped by the predictor gate.
    pruned: tuple[str, ...]
    chosen: CandidateProbe
    #: Label of the minimum-probe-cycles candidate among those
    #: measured (the locality oracle the selector is judged against).
    oracle: str
    selection_seconds: float

    @property
    def oracle_probe(self) -> CandidateProbe:
        for probe in self.probes:
            if probe.label == self.oracle:
                return probe
        raise InvalidParameterError(  # pragma: no cover - invariant
            f"oracle {self.oracle!r} missing from probes"
        )

    def as_dict(self) -> dict:
        return {
            "dataset": self.dataset,
            "query_volume": self.query_volume,
            "clock_hz": self.clock_hz,
            "predictors": self.predictors.as_dict(),
            "probes": [probe.as_dict() for probe in self.probes],
            "pruned": list(self.pruned),
            "chosen": self.chosen.as_dict(),
            "oracle": self.oracle,
            "selection_seconds": self.selection_seconds,
        }


def default_candidates(
    window: int = DEFAULT_WINDOW,
    gorder_backend: str = "batched",
    workers: int | None = None,
) -> tuple[CandidateConfig, ...]:
    """The default frontier: baseline, lightweights, Gorder.

    ``original`` must come first — it is the amortisation baseline.
    """
    return (
        CandidateConfig("original"),
        CandidateConfig("hubcluster"),
        CandidateConfig("hubsort"),
        CandidateConfig("dbg"),
        CandidateConfig("boba", workers=workers),
        CandidateConfig(
            "gorder", window=window, backend=gorder_backend,
        ),
    )


def _probe_candidate(
    graph: CSRGraph,
    config: CandidateConfig,
    seed: int,
    cache_backend: str,
    algo_backend: str,
) -> tuple[np.ndarray, float, float]:
    """``(perm, ordering_seconds, probe_cycles)`` for one candidate."""
    start = time.perf_counter()
    perm = registry.compute_ordering(
        config.ordering, graph, seed=seed, **config.ordering_params()
    )
    ordering_seconds = time.perf_counter() - start
    cycles, _ = probe_arrangement(
        graph, perm,
        cache_backend=cache_backend, algo_backend=algo_backend,
    )
    return perm, ordering_seconds, float(cycles)


def _select(
    graph: CSRGraph,
    query_volume: float = DEFAULT_QUERY_VOLUME,
    candidates: tuple[CandidateConfig, ...] | None = None,
    seed: int = 0,
    cache_backend: str = "replay",
    algo_backend: str = "runtime",
    clock_hz: float = DEFAULT_CLOCK_HZ,
    dataset: str = "",
) -> tuple[SelectionDecision, np.ndarray]:
    """Run the selection; return the decision and the chosen perm."""
    if query_volume < 0:
        raise InvalidParameterError(
            f"query_volume must be non-negative, got {query_volume}"
        )
    if clock_hz <= 0:
        raise InvalidParameterError(
            f"clock_hz must be positive, got {clock_hz}"
        )
    configs = tuple(
        candidates if candidates is not None else default_candidates()
    )
    if not configs:
        raise InvalidParameterError(
            "the selector needs at least one candidate"
        )
    name = dataset or graph.name or "graph"
    started = time.perf_counter()
    with obs.span(
        "ordering.select",
        dataset=name, n=graph.num_nodes, m=graph.num_edges,
        query_volume=query_volume, candidates=len(configs),
    ):
        predictors = compute_predictors(graph)
        gain = predicted_gain_fraction(predictors)

        probes: list[CandidateProbe] = []
        perms: dict[str, np.ndarray] = {}
        pruned: list[str] = []
        baseline_cycles: float | None = None
        cheapest_seconds = float("inf")
        for config in configs:
            heavy = config.ordering in HEAVYWEIGHT_ORDERINGS
            if (
                heavy
                and baseline_cycles is not None
                and cheapest_seconds < float("inf")
            ):
                # Optimistic repayment check: even at the predicted
                # gain, a heavyweight pass costing at least
                # HEAVY_COST_MULTIPLE measured lightweight passes
                # cannot pay for itself below this volume — skip
                # probing it.
                gain_seconds = (
                    query_volume * gain * baseline_cycles / clock_hz
                )
                floor = HEAVY_COST_MULTIPLE * cheapest_seconds
                if gain_seconds < floor:
                    pruned.append(config.label)
                    obs.event(
                        "ordering.select.pruned",
                        dataset=name, candidate=config.label,
                        gain_seconds=round(gain_seconds, 6),
                        cost_floor=round(floor, 6),
                    )
                    continue
            perm, seconds, cycles = _probe_candidate(
                graph, config, seed, cache_backend, algo_backend
            )
            if baseline_cycles is None:
                baseline_cycles = cycles
            if config.ordering != "original":
                # "original" is free; only real passes inform the
                # heavyweight cost floor.
                cheapest_seconds = min(cheapest_seconds, seconds)
            saved_per_query = (baseline_cycles - cycles) / clock_hz
            if probes and saved_per_query > 0:
                break_even = seconds / saved_per_query
            elif probes:
                break_even = float("inf")
            else:
                break_even = 0.0
            probe = CandidateProbe(
                ordering=config.ordering,
                label=config.label,
                window=config.window,
                backend=config.backend,
                ordering_seconds=seconds,
                probe_cycles=cycles,
                amortised_seconds=(
                    seconds + query_volume * cycles / clock_hz
                ),
                break_even_queries=break_even,
            )
            probes.append(probe)
            perms[config.label] = perm

        chosen = probes[0]
        for probe in probes[1:]:
            if probe.amortised_seconds < chosen.amortised_seconds:
                chosen = probe
        oracle = min(probes, key=lambda probe: probe.probe_cycles)
        decision = SelectionDecision(
            dataset=name,
            query_volume=float(query_volume),
            clock_hz=clock_hz,
            predictors=predictors,
            probes=tuple(probes),
            pruned=tuple(pruned),
            chosen=chosen,
            oracle=oracle.label,
            selection_seconds=time.perf_counter() - started,
        )
        obs.inc("select.decisions")
        obs.event(
            "ordering.select.decision",
            dataset=name,
            chosen=chosen.label,
            oracle=oracle.label,
            probe_cycles=chosen.probe_cycles,
            break_even_queries=chosen.break_even_queries,
            query_volume=float(query_volume),
            probed=len(probes),
            pruned=len(pruned),
            seconds=round(decision.selection_seconds, 6),
        )
    return decision, perms[chosen.label]


def select_ordering(
    graph: CSRGraph,
    query_volume: float = DEFAULT_QUERY_VOLUME,
    candidates: tuple[CandidateConfig, ...] | None = None,
    seed: int = 0,
    cache_backend: str = "replay",
    algo_backend: str = "runtime",
    clock_hz: float = DEFAULT_CLOCK_HZ,
    dataset: str = "",
) -> SelectionDecision:
    """Pick the best ordering configuration for this workload."""
    decision, _ = _select(
        graph,
        query_volume=query_volume,
        candidates=candidates,
        seed=seed,
        cache_backend=cache_backend,
        algo_backend=algo_backend,
        clock_hz=clock_hz,
        dataset=dataset,
    )
    return decision


#: Keyword knobs ``auto_order`` understands; sweep-wide parameters
#: outside this set are dropped, mirroring the registry's signature
#: filter (the registry cannot filter for ``auto`` itself because
#: its wrapper accepts ``**params``).
_AUTO_KNOBS = frozenset(
    {
        "query_volume", "clock_hz", "cache_backend", "algo_backend",
        "window", "backend", "workers", "candidates", "dataset",
    }
)


def auto_order(graph: CSRGraph, seed: int = 0, **params) -> np.ndarray:
    """The registry ordering ``auto``: select, then arrange.

    Accepts the selector knobs (``query_volume``, ``clock_hz``,
    ``cache_backend``, ``algo_backend``, ``candidates``, ``dataset``)
    plus the sweep-wide ordering knobs ``window``/``backend``/
    ``workers``, which parameterise the candidate set.  Unknown
    parameters are dropped.  Returns the chosen arrangement — the
    permutation computed during probing, not a recomputation.
    """
    knobs = {
        key: value for key, value in params.items()
        if key in _AUTO_KNOBS
    }
    candidates = knobs.pop("candidates", None)
    if candidates is None:
        candidates = default_candidates(
            window=knobs.pop("window", DEFAULT_WINDOW),
            gorder_backend=knobs.pop("backend", "batched"),
            workers=knobs.pop("workers", None),
        )
    else:
        for key in ("window", "backend", "workers"):
            knobs.pop(key, None)
        candidates = tuple(candidates)
    _, perm = _select(graph, candidates=candidates, seed=seed, **knobs)
    return perm
