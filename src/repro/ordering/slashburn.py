"""Simplified SlashBurn ordering.

The replication's variant of SlashBurn [Lim, Kang & Faloutsos 2014]:
iteratively *slash* the highest-degree remaining node (it goes to the
next free slot at the **front** of the arrangement) and *burn* every
node this isolates (they go to the free slots at the **back**).  The
process repeats on the shrinking middle until nothing remains, placing
hubs together at the front and the low-degree fringe at the back.

Degrees are maintained on the undirected view with a
:class:`~repro.ordering.unit_heap.UnitHeap` — removals decrement each
neighbour's degree by exactly 1, so the unit-update structure applies
and the whole ordering runs in O(m) amortised.
"""

from __future__ import annotations

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.permute import permutation_from_sequence
from repro.ordering.unit_heap import UnitHeap


def slashburn_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Compute the simplified-SlashBurn arrangement."""
    del seed  # deterministic (smallest-id tie-break among equal-degree hubs)
    undirected = graph.undirected()
    n = undirected.num_nodes
    offsets = undirected.offsets
    adjacency = undirected.adjacency
    heap = UnitHeap(n)
    for u in range(n):
        degree = int(offsets[u + 1] - offsets[u])
        for _ in range(degree):
            heap.increase(u)
    front: list[int] = []
    back_chunks: list[list[int]] = []
    # Nodes isolated from the start burn immediately (first back chunk).
    initial_isolated = [u for u in range(n) if heap.key_of(u) == 0]
    if initial_isolated:
        for u in initial_isolated:
            heap.remove(u)
        back_chunks.append(initial_isolated)
    while len(heap):
        hub = heap.pop_max()
        front.append(hub)
        burned: list[int] = []
        for v in adjacency[offsets[hub]:offsets[hub + 1]]:
            v = int(v)
            if v in heap:
                heap.decrease(v)
                if heap.key_of(v) == 0:
                    heap.remove(v)
                    burned.append(v)
        if burned:
            back_chunks.append(burned)
    # Front chunks fill forward; back chunks fill the tail backwards,
    # so the latest chunk sits left of earlier ones.
    back: list[int] = []
    for chunk in reversed(back_chunks):
        back.extend(chunk)
    sequence = np.array(front + back, dtype=np.int64)
    return permutation_from_sequence(sequence)
