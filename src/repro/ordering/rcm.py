"""Reverse Cuthill-McKee ordering.

A breadth-first search over the undirected view that visits neighbours
in ascending degree and starts each component from a minimum-degree
node; the visit sequence is then reversed.  Classic bandwidth-reduction
ordering [Cuthill & McKee 1969] — and, in the replication, the single
best ordering for the BFS, SP and Diameter benchmarks.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.graph.csr import CSRGraph
from repro.graph.permute import permutation_from_sequence


def rcm_order(graph: CSRGraph, seed: int = 0) -> np.ndarray:
    """Compute the RCM arrangement of ``graph`` (undirected view)."""
    del seed  # deterministic
    undirected = graph.undirected()
    n = undirected.num_nodes
    offsets = undirected.offsets
    adjacency = undirected.adjacency
    degrees = np.diff(offsets)
    visited = np.zeros(n, dtype=bool)
    sequence = np.empty(n, dtype=np.int64)
    filled = 0
    # Roots in ascending degree so each component starts peripheral.
    roots = np.argsort(degrees, kind="stable")
    for root in roots:
        if visited[root]:
            continue
        visited[root] = True
        queue = deque([int(root)])
        while queue:
            u = queue.popleft()
            sequence[filled] = u
            filled += 1
            neighbors = adjacency[offsets[u]:offsets[u + 1]]
            unvisited = neighbors[~visited[neighbors]]
            if unvisited.shape[0]:
                by_degree = unvisited[
                    np.argsort(degrees[unvisited], kind="stable")
                ]
                visited[by_degree] = True
                queue.extend(int(v) for v in by_degree)
    return permutation_from_sequence(sequence[::-1].copy())
