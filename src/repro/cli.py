"""Command-line interface: ``python -m repro`` / ``repro-gorder``.

Subcommands map onto the paper's artifacts and common library tasks::

    repro-gorder datasets                 # Table 1
    repro-gorder order --dataset flickr --ordering gorder -o perm.txt
    repro-gorder order --input edges.txt --ordering rcm
    repro-gorder run --dataset pokec --algorithm pr --ordering gorder
    repro-gorder speedup --profile quick  # Figure 5 panels
    repro-gorder ranking --profile quick  # Figure 6
    repro-gorder stall --dataset sdarc    # Figure 1
    repro-gorder cache-stats --dataset flickr   # Table 3
    repro-gorder ordering-time --profile quick  # Table 2
    repro-gorder window --dataset flickr  # Figure 4 sweep
    repro-gorder annealing                # Figure 3 sweep
    repro-gorder bench --quick            # Gorder kernel benchmark
    repro-gorder bench --suite cache      # cache replay benchmark
    repro-gorder bench --quick --append-history bench_history.jsonl
    repro-gorder trends --check           # bench regression gate
    repro-gorder telemetry summary trace.jsonl
    repro-gorder telemetry tree trace.jsonl
    repro-gorder telemetry critical-path trace.jsonl
    repro-gorder telemetry diff a.jsonl b.jsonl
    repro-gorder telemetry flamegraph trace.jsonl -o trace.folded
    repro-gorder sweep run --profile quick --checkpoint ck.jsonl
    repro-gorder sweep status ck.jsonl    # inspect a checkpoint
    repro-gorder serve --port 8571 --store-root /var/lib/repro
    repro-gorder serve --socket /tmp/repro.sock --workers 4

``repro-gorder telemetry TRACE`` (no action) is kept as an alias for
``telemetry summary TRACE``.

Every subcommand accepts the telemetry flags ``--log-level LEVEL``
(text events on stderr; ``-v`` is an alias for ``--log-level info``)
and ``--log-json PATH`` (machine-readable JSONL trace; see
``docs/telemetry.md``).

Commands that compute orderings accept ``--ordering-backend
batched|loop`` (the Gorder kernel) and ``--workers N`` (process pool
for partitioned orderings); commands that simulate accept
``--cache-backend step|replay`` (scalar stepping vs vectorised trace
replay); see ``docs/performance.md``.

The matrix commands (``speedup``, ``ranking``, ``sweep run``) run
through the fault-tolerant sweep engine and accept ``--checkpoint``/
``--resume`` plus the per-cell budget flags ``--cell-timeout``,
``--retries``, ``--backoff``, ``--isolate`` and ``--strict`` (see
``docs/robustness.md``).  Ctrl-C exits with code 130 after the
checkpoint is flushed; resume with ``--resume``.
"""

from __future__ import annotations

import argparse
import os
import sys
from dataclasses import replace


from repro import obs, perf
from repro.algorithms import ALGORITHM_NAMES
from repro.errors import ReproError
from repro.graph import datasets, read_edge_list
from repro.graph.csr import CSRGraph
from repro.ordering import (
    ALL_ORDERING_NAMES,
    ORDERING_NAMES,
    compute_ordering,
)
from repro.perf import report


def _load_graph(args: argparse.Namespace) -> CSRGraph:
    if getattr(args, "input", None):
        return read_edge_list(args.input)
    return datasets.load(args.dataset)


def _ordering_params(args: argparse.Namespace) -> dict:
    """The ordering knobs given on the command line, as kwargs.

    Forwarded through the signature-filtered
    :func:`repro.ordering.compute_ordering`, so each knob only reaches
    the orderings that declare it (``backend`` → the Gorder kernels,
    ``workers`` → the partitioned Gorder).
    """
    params: dict = {}
    backend = getattr(args, "ordering_backend", None)
    if backend is not None:
        params["backend"] = backend
    workers = getattr(args, "workers", None)
    if workers is not None:
        params["workers"] = workers
    query_volume = getattr(args, "query_volume", None)
    if query_volume is not None:
        params["query_volume"] = query_volume
    return params


def _profile_from_args(args: argparse.Namespace) -> "perf.Profile":
    """The requested profile, with any CLI simulation knobs applied."""
    profile = perf.get_profile(getattr(args, "profile", None))
    params = _ordering_params(args)
    if params:
        profile = replace(
            profile, ordering_params=tuple(sorted(params.items()))
        )
    cache_backend = getattr(args, "cache_backend", None)
    if cache_backend is not None:
        profile = replace(profile, cache_backend=cache_backend)
    algo_backend = getattr(args, "algo_backend", None)
    if algo_backend is not None:
        profile = replace(profile, algo_backend=algo_backend)
    return profile


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = perf.dataset_table()
    print(
        report.render_table(
            list(rows[0].keys()),
            [list(row.values()) for row in rows],
            title="Table 1: dataset analogues",
        )
    )
    return 0


def _cmd_order(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    perm = compute_ordering(
        args.ordering, graph, seed=args.seed, **_ordering_params(args)
    )
    if args.output:
        from repro.graph.io import save_permutation

        save_permutation(perm, args.output)
        print(f"wrote arrangement of {graph.num_nodes} nodes to "
              f"{args.output}")
    else:
        for new_index in perm:
            print(int(new_index))
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    profile = _profile_from_args(args)
    params = perf.algorithm_params(args.algorithm, graph, profile)
    result = perf.run_cell(
        graph,
        args.algorithm,
        args.ordering,
        seed=profile.seed,
        params=params,
        hierarchy=profile.hierarchy(),
        ordering_params=_ordering_params(args),
        cache_backend=profile.cache_backend,
        algo_backend=profile.algo_backend,
    )
    stats = result.stats
    print(f"dataset     : {result.dataset}")
    print(f"algorithm   : {result.algorithm}")
    print(f"ordering    : {result.ordering}")
    print(f"cycles      : {result.cycles:,.0f}")
    print(f"  execute   : {result.cost.execute_cycles:,.0f}")
    print(f"  stall     : {result.cost.stall_cycles:,.0f} "
          f"({100 * result.cost.stall_fraction:.1f}%)")
    print(f"L1 miss rate: {100 * stats.l1_miss_rate:.2f}%")
    print(f"cache-mr    : {100 * stats.cache_miss_rate:.2f}%")
    print(f"ordering    : {result.ordering_seconds:.3f}s to compute")
    return 0


def _engine_from_args(args: argparse.Namespace) -> "perf.SweepEngine":
    """Build a fault-tolerant engine from the sweep budget flags."""
    guards = perf.SweepGuards(
        cell_timeout=getattr(args, "cell_timeout", None),
        retries=getattr(args, "retries", 0),
        backoff_seconds=getattr(args, "backoff", 0.0),
        isolate=getattr(args, "isolate", False),
        strict=getattr(args, "strict", False),
    )
    specs = tuple(
        perf.parse_fault_spec(text)
        for text in (getattr(args, "inject", None) or ())
    )
    return perf.SweepEngine(guards=guards, plan=perf.FaultPlan(specs))


def _run_sweep_outcome(
    args: argparse.Namespace, profile
) -> "perf.SweepOutcome":
    engine = _engine_from_args(args)
    return engine.run(
        profile,
        checkpoint=getattr(args, "checkpoint", None),
        resume=getattr(args, "resume", False),
    )


def _print_speedup_panels(profile, outcome) -> None:
    matrix = outcome.matrix()
    failed = outcome.failed_cells()
    relative = perf.relative_to_gorder(matrix)
    for algorithm in profile.algorithms:
        for dataset in profile.datasets:
            series = {
                ordering: relative.get(
                    (dataset, algorithm, ordering)
                )
                for ordering in profile.orderings
            }
            print(
                report.render_speedup_series(
                    f"{algorithm} on {dataset} "
                    f"(relative to Gorder = 1.0)",
                    series,
                )
            )
            print()
    if failed:
        print(
            report.render_failures(
                f"{len(failed)} cell(s) failed (rendered as gaps "
                "above)",
                list(failed.values()),
            )
        )
        print()


def _cmd_speedup(args: argparse.Namespace) -> int:
    profile = _profile_from_args(args)
    outcome = _run_sweep_outcome(args, profile)
    _print_speedup_panels(profile, outcome)
    return 0


def _cmd_ranking(args: argparse.Namespace) -> int:
    profile = _profile_from_args(args)
    outcome = _run_sweep_outcome(args, profile)
    histogram = perf.rank_orderings(outcome.matrix())
    print(
        report.render_rank_histogram(
            "Figure 6: ordering rank histogram "
            f"({len(profile.datasets) * len(profile.algorithms)} series)",
            histogram,
        )
    )
    failed = outcome.failed_cells()
    if failed:
        print()
        print(
            report.render_failures(
                f"{len(failed)} cell(s) missing from the ranking",
                list(failed.values()),
            )
        )
    return 0


def _cmd_sweep_run(args: argparse.Namespace) -> int:
    profile = _profile_from_args(args)
    outcome = _run_sweep_outcome(args, profile)
    ok = len(outcome.results)
    failed = len(outcome.failures)
    print(
        f"sweep       : profile={profile.name} "
        f"cells={ok + failed} ok={ok} failed={failed} "
        f"resumed={outcome.resumed_cells}"
    )
    if args.checkpoint:
        print(f"checkpoint  : {args.checkpoint}")
    if args.save:
        perf.save_results(
            outcome.matrix(),
            args.save,
            metadata={
                "profile": profile.name,
                "cache_backend": profile.cache_backend,
                "algo_backend": profile.algo_backend,
            },
            manifest=obs.run_manifest(
                profile=profile.name, seed=profile.seed,
                command="sweep run",
            ),
            failures=list(outcome.failures.values()),
        )
        print(f"archive     : {args.save}")
        print(f"digest      : {perf.archive_digest(args.save)}")
    if outcome.failures:
        print()
        print(
            report.render_failures(
                "Failed cells", list(outcome.failures.values())
            )
        )
    return 0


def _cmd_sweep_status(args: argparse.Namespace) -> int:
    status = perf.checkpoint_status(args.checkpoint)
    print(f"checkpoint  : {status.path}")
    print(f"profile     : {status.profile}")
    print(f"fingerprint : {status.fingerprint}")
    print(
        f"cells       : {status.ok} ok, {status.failed} failed, "
        f"{status.pending} pending (of {status.total_cells})"
    )
    if status.failures:
        print()
        print(
            report.render_failures("Failed cells", status.failures)
        )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from repro.serve import ServeConfig, serve

    specs = tuple(
        perf.parse_fault_spec(text)
        for text in (getattr(args, "inject", None) or ())
    )
    preload = tuple(
        part.strip()
        for part in (args.preload or "").split(",")
        if part.strip()
    )
    config = ServeConfig(
        host=args.host,
        port=args.port,
        socket_path=args.socket,
        workers=args.serve_workers,
        queue_capacity=args.queue_capacity,
        default_deadline_seconds=args.default_deadline,
        max_deadline_seconds=args.max_deadline,
        retries=args.retries,
        backoff_seconds=args.backoff,
        store_root=args.store_root,
        drain_timeout_seconds=args.drain_timeout,
        plan=perf.FaultPlan(specs),
        preload=preload,
    )
    return serve(config)


def _cmd_stall(args: argparse.Namespace) -> int:
    profile = _profile_from_args(args)
    results = perf.cache_stall_split(profile, dataset_name=args.dataset)
    for ordering in ("original", "gorder"):
        block = {
            algorithm: results[(algorithm, ordering)]
            for algorithm in profile.algorithms
        }
        print(
            report.render_stall_split(
                f"Figure 1 ({ordering} order, {args.dataset})", block
            )
        )
        print()
    return 0


def _cmd_cache_stats(args: argparse.Namespace) -> int:
    profile = _profile_from_args(args)
    results = perf.cache_stats_table(profile, args.dataset)
    print(
        report.render_cache_stats(
            f"Table 3: PageRank cache statistics on {args.dataset}",
            results,
        )
    )
    return 0


def _cmd_ordering_time(args: argparse.Namespace) -> int:
    profile = _profile_from_args(args)
    times = perf.ordering_times(profile)
    headers = ["Ordering"] + list(profile.datasets)
    rows = [
        [ordering]
        + [f"{times[(ordering, ds)]:.2f}" for ds in profile.datasets]
        for ordering in profile.orderings
    ]
    print(
        report.render_table(
            headers, rows, title="Table 2: ordering time (seconds)"
        )
    )
    return 0


def _cmd_window(args: argparse.Namespace) -> int:
    profile = _profile_from_args(args)
    results = perf.window_sweep(profile, dataset_name=args.dataset)
    headers = ["window", "cycles(M)", "L1-mr", "order-time(s)"]
    rows = [
        [
            window,
            f"{result.cycles / 1e6:.2f}",
            f"{100 * result.stats.l1_miss_rate:.1f}%",
            f"{result.ordering_seconds:.2f}",
        ]
        for window, result in results.items()
    ]
    print(
        report.render_table(
            headers, rows,
            title=f"Figure 4: window sweep (PR on {args.dataset})",
        )
    )
    return 0


def _cmd_evaluate(args: argparse.Namespace) -> int:
    from repro.ordering import OrderingEvaluation, evaluate_all

    graph = _load_graph(args)
    evaluations = evaluate_all(graph, seed=args.seed)
    print(
        report.render_table(
            OrderingEvaluation.headers(),
            [evaluation.as_row() for evaluation in evaluations],
            title=f"Ordering quality on {graph.name} "
            "(fastest probe first)",
        )
    )
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    from repro.graph.stats import summarize

    headers = [
        "dataset", "nodes", "edges", "avg-deg", "max-in", "max-out",
        "reciprocity", "skew", "locality",
    ]
    if args.dataset or getattr(args, "input", None):
        graphs = [_load_graph(args)]
    else:
        graphs = [datasets.load(name) for name in datasets.DATASET_NAMES]
    rows = [summarize(graph).as_row() for graph in graphs]
    print(report.render_table(headers, rows,
                              title="Graph structural statistics"))
    return 0


def _cmd_compress(args: argparse.Namespace) -> int:
    from repro.ordering import bits_per_edge

    graph = _load_graph(args)
    rows = []
    for name in ORDERING_NAMES:
        perm = compute_ordering(name, graph, seed=args.seed)
        rows.append([name, f"{bits_per_edge(graph, perm):.2f}"])
    rows.sort(key=lambda row: float(row[1]))
    print(
        report.render_table(
            ["ordering", "bits/edge"],
            rows,
            title=f"Gap-encoding cost of {graph.name} per ordering",
        )
    )
    return 0


def _cmd_reuse(args: argparse.Namespace) -> int:
    from repro.algorithms import spec as algorithm_spec
    from repro.cache import (
        Memory,
        RecordingHierarchy,
        median_reuse_distance,
        miss_curve,
        reuse_distances,
        scaled_hierarchy,
    )
    from repro.graph import relabel

    graph = _load_graph(args)
    perm = compute_ordering(args.ordering, graph, seed=0)
    recorder = RecordingHierarchy(scaled_hierarchy())
    algorithm_spec(args.algorithm).traced(
        relabel(graph, perm), Memory(recorder)
    )
    distances = reuse_distances(recorder.trace())
    curve = miss_curve(distances, [16, 64, 256, 1024])
    print(f"dataset   : {graph.name}")
    print(f"algorithm : {args.algorithm}")
    print(f"ordering  : {args.ordering}")
    print(f"accesses  : {distances.shape[0]} (line granularity)")
    print(f"median RD : {median_reuse_distance(distances):.0f} lines")
    for capacity, rate in curve.items():
        print(f"LRU {capacity:5d} lines -> miss rate {100 * rate:.1f}%")
    return 0


def _cmd_annealing(args: argparse.Namespace) -> int:
    results = perf.annealing_sweep(dataset_name=args.dataset)
    headers = ["steps_x", "k_x", "energy"]
    rows = [
        [s, k, f"{energy:,.0f}"]
        for (s, k), energy in sorted(results.items())
    ]
    print(
        report.render_table(
            headers, rows,
            title=f"Figure 3: annealing sweep on {args.dataset} "
            "(steps/energy as factors of defaults)",
        )
    )
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    if args.suite == "algos":
        base = (
            perf.quick_algos_config() if args.quick
            else perf.AlgosBenchConfig()
        )
        overrides = {
            name: value
            for name, value in [
                ("dataset", args.dataset),
                ("iterations", args.iterations),
                ("hierarchy", args.hierarchy),
                ("num_sources", args.num_sources),
                ("repeats", args.repeats),
            ]
            if value is not None
        }
        config = replace(base, **overrides)
        payload = perf.run_algos_bench(config)
        print(perf.render_algos_bench(payload))
        out = args.out or "BENCH_algos.json"
    elif args.suite == "cache":
        base = (
            perf.quick_cache_config() if args.quick
            else perf.CacheBenchConfig()
        )
        overrides = {
            name: value
            for name, value in [
                ("dataset", args.dataset),
                ("iterations", args.iterations),
                ("hierarchy", args.hierarchy),
                ("repeats", args.repeats),
            ]
            if value is not None
        }
        config = replace(base, **overrides)
        payload = perf.run_cache_bench(config)
        print(perf.render_cache_bench(payload))
        out = args.out or "BENCH_cache.json"
    elif args.suite == "frontier":
        base = (
            perf.quick_frontier_config() if args.quick
            else perf.FrontierBenchConfig()
        )
        overrides = {
            name: value
            for name, value in [
                (
                    "datasets",
                    (args.dataset,) if args.dataset else None,
                ),
                ("query_volume", args.query_volume),
                ("seed", args.seed),
            ]
            if value is not None
        }
        config = replace(base, **overrides)
        payload = perf.run_frontier_bench(config)
        print(perf.render_frontier_bench(payload))
        out = args.out or "BENCH_selector.json"
    else:
        base = (
            perf.quick_config() if args.quick
            else perf.GorderBenchConfig()
        )
        overrides = {
            name: value
            for name, value in [
                ("nodes", args.nodes),
                ("edges_per_node", args.edges_per_node),
                ("window", args.window),
                ("num_parts", args.num_parts),
                ("workers", args.workers),
                ("seed", args.seed),
                ("repeats", args.repeats),
            ]
            if value is not None
        }
        if args.skip_partitioned:
            overrides["include_partitioned"] = False
        config = replace(base, **overrides)
        payload = perf.run_gorder_bench(config)
        print(perf.render_gorder_bench(payload))
        out = args.out or "BENCH_gorder.json"
    path = perf.write_bench_json(payload, out)
    print(f"wrote       : {path}")
    if args.append_history:
        record = perf.append_history(payload, args.append_history)
        quick = " quick" if record["quick"] else ""
        print(
            f"history     : {args.append_history} "
            f"(+1 {record['bench']}{quick} record)"
        )
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    from repro.analysis import (
        DEFAULT_BASELINE,
        DEFAULT_PATHS,
        AnalysisError,
        Baseline,
        rule_versions,
        run_lint,
        run_project_lint,
    )
    from repro.ioutil import atomic_write_text

    paths = tuple(args.paths) or DEFAULT_PATHS
    baseline_path = None if args.no_baseline else (
        args.baseline or DEFAULT_BASELINE
    )
    project = getattr(args, "project", False)
    cache_path = getattr(args, "cache", None) if project else None
    try:
        if args.write_baseline:
            if project:
                report = run_project_lint(
                    paths, baseline_path=None, cache_path=cache_path
                )
            else:
                report = run_lint(paths, baseline_path=None)
            target = args.baseline or DEFAULT_BASELINE
            Baseline.from_findings(
                report.findings, rule_versions=rule_versions()
            ).save(target)
            print(
                f"wrote {len(report.findings)} grandfathered "
                f"finding(s) to {target}"
            )
            return 0
        if project:
            report = run_project_lint(
                paths,
                baseline_path=baseline_path,
                strict=args.strict,
                cache_path=cache_path,
            )
        else:
            report = run_lint(
                paths, baseline_path=baseline_path, strict=args.strict
            )
    except AnalysisError as exc:
        print(f"lint error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(report.render_json())
    else:
        print(report.render_text())
    if args.out:
        atomic_write_text(args.out, report.render_json() + "\n")
    if args.exit_zero:
        return 0
    return report.exit_code()


def _cmd_deps(args: argparse.Namespace) -> int:
    from repro.analysis import AnalysisError, ProjectAnalysis

    try:
        project = ProjectAnalysis.build(
            tuple(args.paths) or ("src/repro",),
            cache_path=getattr(args, "cache", None),
        )
    except AnalysisError as exc:
        print(f"deps error: {exc}", file=sys.stderr)
        return 2
    graph = project.import_graph()
    cycles = project.import_cycles()
    deferred = project.deferred_edges()
    edge_count = sum(len(targets) for targets in graph.values())
    print(
        f"modules     : {len(graph)} "
        f"({project.files_parsed} parsed, "
        f"{project.files_cached} from cache)"
    )
    print(f"edges       : {edge_count} import-time, "
          f"{len(deferred)} deferred (function-level)")
    if args.show_graph:
        for module in sorted(graph):
            for target in sorted(graph[module]):
                print(f"  {module} -> {target}")
    if deferred and args.show_deferred:
        for importer, imported in deferred:
            print(f"  {importer} ~> {imported} (deferred)")
    if cycles:
        print(f"cycles      : {len(cycles)}")
        for component in cycles:
            print("  " + " <-> ".join(component))
    else:
        print("cycles      : none")
    if args.check_cycles and cycles:
        return 1
    return 0


def _cmd_telemetry_summary(args: argparse.Namespace) -> int:
    summary = obs.summarize_trace(args.trace)
    print(f"trace       : {summary.path}")
    print(f"events      : {summary.num_events}")
    if summary.manifest:
        manifest = summary.manifest
        sha = manifest.get("git_sha") or "unknown"
        print(
            f"produced by : repro {manifest.get('repro_version', '?')} "
            f"@ {str(sha)[:12]}, python {manifest.get('python', '?')}, "
            f"numpy {manifest.get('numpy', '?')}"
        )
        if manifest.get("profile") or manifest.get("seed") is not None:
            print(
                f"run         : profile={manifest.get('profile')} "
                f"seed={manifest.get('seed')}"
            )
    if summary.unclosed:
        print(f"warning     : {summary.unclosed} span(s) never closed")
    if summary.spans:
        rows = [
            [
                span.name,
                span.count,
                f"{span.total_seconds:.4f}",
                f"{1e3 * span.mean_seconds:.2f}",
                f"{1e3 * span.max_seconds:.2f}",
            ]
            for span in summary.spans[: args.top]
        ]
        print()
        print(
            report.render_table(
                ["span", "count", "total(s)", "mean(ms)", "max(ms)"],
                rows,
                title=f"Top spans by total time (of {len(summary.spans)})",
            )
        )
    if summary.counters:
        print()
        print(
            report.render_table(
                ["counter", "total"],
                [
                    [name, value]
                    for name, value in sorted(summary.counters.items())
                ],
                title="Counter totals",
            )
        )
    if not summary.spans and not summary.counters:
        print("no spans or counters in this trace")
    return 0


def _cmd_telemetry_tree(args: argparse.Namespace) -> int:
    from repro.obs.trace import build_span_tree, render_tree

    tree = build_span_tree(args.trace)
    print(
        render_tree(
            tree, max_depth=args.depth, min_seconds=args.min_seconds
        )
    )
    return 0


def _cmd_telemetry_critical_path(args: argparse.Namespace) -> int:
    from repro.obs.trace import build_span_tree, render_critical_path

    print(render_critical_path(build_span_tree(args.trace)))
    return 0


def _cmd_telemetry_diff(args: argparse.Namespace) -> int:
    from repro.obs.trace import diff_traces, render_diff

    print(render_diff(diff_traces(args.a, args.b), top=args.top))
    return 0


def _cmd_telemetry_flamegraph(args: argparse.Namespace) -> int:
    from repro.obs.trace import (
        build_span_tree,
        folded_stacks,
        render_folded,
    )

    tree = build_span_tree(args.trace)
    folded = render_folded(folded_stacks(tree, weight=args.weight))
    if args.output:
        from repro.ioutil import atomic_write_text

        atomic_write_text(args.output, folded + "\n" if folded else "")
        stacks = folded.count("\n") + 1 if folded else 0
        print(f"wrote       : {args.output} ({stacks} stack(s))")
    elif folded:
        print(folded)
    return 0


def _cmd_trends(args: argparse.Namespace) -> int:
    import json

    history_path = args.history or perf.DEFAULT_HISTORY
    for bench_json in args.ingest or ():
        try:
            with open(bench_json, encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError) as exc:
            print(
                f"error: cannot read {bench_json}: {exc}",
                file=sys.stderr,
            )
            return 2
        record = perf.append_history(payload, history_path)
        quick = " quick" if record["quick"] else ""
        print(
            f"ingested    : {bench_json} -> {history_path} "
            f"({record['bench']}{quick})"
        )
    trend = perf.check_trends(
        history_path,
        threshold=(
            args.threshold if args.threshold is not None
            else perf.DEFAULT_TREND_THRESHOLD
        ),
        window=(
            args.window if args.window is not None
            else perf.DEFAULT_TREND_WINDOW
        ),
    )
    print(perf.render_trends(trend))
    if args.check and not trend.ok:
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-gorder",
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    # Telemetry flags are accepted by every subcommand (argparse only
    # resolves flags placed after the subcommand via parents=).
    telemetry_flags = argparse.ArgumentParser(add_help=False)
    group = telemetry_flags.add_argument_group("telemetry")
    group.add_argument(
        "--log-level",
        choices=sorted(obs.LEVELS),
        default=None,
        help="emit telemetry events to stderr at this level",
    )
    group.add_argument(
        "--log-json",
        metavar="PATH",
        default=None,
        help="write a JSONL telemetry trace to PATH",
    )
    group.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="alias for --log-level info",
    )
    # Ordering-kernel flags (forwarded signature-filtered, so they
    # only reach the orderings that declare them).
    ordering_flags = argparse.ArgumentParser(add_help=False)
    group = ordering_flags.add_argument_group("ordering kernel")
    group.add_argument(
        "--ordering-backend",
        choices=("batched", "loop"),
        default=None,
        help="Gorder priority-queue kernel (default: batched)",
    )
    group.add_argument(
        "--workers",
        type=int,
        metavar="N",
        default=None,
        help="process-pool size for partitioned orderings",
    )
    group.add_argument(
        "--query-volume",
        type=float,
        metavar="Q",
        default=None,
        help="modelled queries for `--ordering auto` amortisation "
             "(default 100000)",
    )
    # Cache-simulation flags shared by the simulating commands.
    cache_flags = argparse.ArgumentParser(add_help=False)
    group = cache_flags.add_argument_group("cache simulation")
    group.add_argument(
        "--cache-backend",
        choices=("step", "replay"),
        default=None,
        help="cache simulator: vectorised trace replay (profile "
             "default) or scalar stepping",
    )
    group.add_argument(
        "--algo-backend",
        choices=("runtime", "scalar"),
        default=None,
        help="trace emitter: vectorised frontier runtime (default) "
             "or the scalar-loop oracle (counter-identical)",
    )
    # Sweep-engine flags shared by the matrix commands.
    sweep_flags = argparse.ArgumentParser(add_help=False)
    group = sweep_flags.add_argument_group("fault tolerance")
    group.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="journal completed cells to PATH (JSONL)",
    )
    group.add_argument(
        "--resume",
        action="store_true",
        help="replay completed cells from --checkpoint",
    )
    group.add_argument(
        "--cell-timeout",
        type=float,
        metavar="SEC",
        default=None,
        help="wall-clock budget per cell attempt",
    )
    group.add_argument(
        "--retries",
        type=int,
        metavar="N",
        default=0,
        help="re-attempts for a failed/timed-out cell",
    )
    group.add_argument(
        "--backoff",
        type=float,
        metavar="SEC",
        default=0.0,
        help="base backoff between retries (doubles per attempt)",
    )
    group.add_argument(
        "--isolate",
        action="store_true",
        help="run each cell in a spawned subprocess",
    )
    group.add_argument(
        "--strict",
        action="store_true",
        help="abort on the first failed cell (fail-fast)",
    )
    group.add_argument(
        "--inject",
        action="append",
        metavar="SPEC",
        default=None,
        help="inject a deterministic fault (testing; see "
             "docs/robustness.md)",
    )

    sub = parser.add_subparsers(dest="command", required=True)

    def add(name, func, **kwargs):
        p = sub.add_parser(name, parents=[telemetry_flags], **kwargs)
        p.set_defaults(func=func)
        return p

    add("datasets", _cmd_datasets, help="list the dataset analogues")

    p = sub.add_parser(
        "order", parents=[telemetry_flags, ordering_flags],
        help="compute a node arrangement",
    )
    p.set_defaults(func=_cmd_order)
    p.add_argument("--dataset", default="epinion",
                   help="dataset analogue name")
    p.add_argument("--input", help="edge-list file instead of a dataset")
    p.add_argument("--ordering", default="gorder",
                   choices=ALL_ORDERING_NAMES)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", help="write the arrangement here")

    p = sub.add_parser(
        "run", parents=[telemetry_flags, ordering_flags, cache_flags],
        help="simulate one algorithm run",
    )
    p.set_defaults(func=_cmd_run)
    p.add_argument("--dataset", default="pokec")
    p.add_argument("--input", help="edge-list file instead of a dataset")
    p.add_argument("--algorithm", default="pr", choices=ALGORITHM_NAMES)
    p.add_argument("--ordering", default="gorder",
                   choices=ALL_ORDERING_NAMES)
    p.add_argument("--profile", default=None)

    for name, func, help_text in [
        ("speedup", _cmd_speedup, "Figure 5: relative runtimes"),
        ("ranking", _cmd_ranking, "Figure 6: rank histogram"),
    ]:
        p = sub.add_parser(
            name,
            parents=[
                telemetry_flags, sweep_flags, ordering_flags, cache_flags
            ],
            help=help_text,
        )
        p.set_defaults(func=func)
        p.add_argument("--profile", default=None)

    p = sub.add_parser(
        "ordering-time", parents=[telemetry_flags, ordering_flags],
        help="Table 2: ordering time",
    )
    p.set_defaults(func=_cmd_ordering_time)
    p.add_argument("--profile", default=None)

    p = add("sweep", _cmd_sweep_run,
            help="fault-tolerant matrix sweep (run/status)")
    sweep_sub = p.add_subparsers(dest="sweep_command", required=True)
    p = sweep_sub.add_parser(
        "run",
        parents=[
            telemetry_flags, sweep_flags, ordering_flags, cache_flags
        ],
        help="run the speedup matrix through the sweep engine",
    )
    p.set_defaults(func=_cmd_sweep_run)
    p.add_argument("--profile", default=None)
    p.add_argument("--save", metavar="PATH", default=None,
                   help="write the archive (schema v3) to PATH")
    p = sweep_sub.add_parser(
        "status", parents=[telemetry_flags],
        help="summarise a sweep checkpoint journal",
    )
    p.set_defaults(func=_cmd_sweep_status)
    p.add_argument("checkpoint", help="path to a checkpoint journal")

    p = add("serve", _cmd_serve,
            help="ordering-as-a-service daemon (see docs/serving.md)")
    p.add_argument("--host", default="127.0.0.1",
                   help="bind address (default 127.0.0.1)")
    p.add_argument("--port", type=int, default=0,
                   help="TCP port (default 0 = ephemeral, printed)")
    p.add_argument("--socket", metavar="PATH", default=None,
                   help="serve on a unix socket instead of TCP")
    p.add_argument("--workers", dest="serve_workers", type=int,
                   default=2, metavar="N",
                   help="compute worker threads (default 2)")
    p.add_argument("--queue-capacity", type=int, default=8,
                   metavar="N",
                   help="waiting requests before 429 (default 8)")
    p.add_argument("--default-deadline", type=float, default=30.0,
                   metavar="SEC",
                   help="deadline when a request names none")
    p.add_argument("--max-deadline", type=float, default=300.0,
                   metavar="SEC",
                   help="ceiling on any request deadline")
    p.add_argument("--retries", type=int, default=1, metavar="N",
                   help="re-attempts after transient worker failures")
    p.add_argument("--backoff", type=float, default=0.05,
                   metavar="SEC",
                   help="base backoff between retries (doubles)")
    p.add_argument("--store-root", metavar="DIR", default=None,
                   help="ordering spill directory (crash-safe warm "
                        "set; default: memory only)")
    p.add_argument("--drain-timeout", type=float, default=5.0,
                   metavar="SEC",
                   help="drain wait before cancelling in-flight work")
    p.add_argument("--preload", metavar="DATASETS", default=None,
                   help="comma-separated datasets to load at startup")
    p.add_argument("--inject", action="append", metavar="SPEC",
                   default=None,
                   help="inject a deterministic fault (testing; see "
                        "docs/robustness.md)")

    p = sub.add_parser(
        "stall", parents=[telemetry_flags, cache_flags],
        help="Figure 1: execute vs stall",
    )
    p.set_defaults(func=_cmd_stall)
    p.add_argument("--dataset", default="sdarc")
    p.add_argument("--profile", default=None)

    p = sub.add_parser(
        "cache-stats", parents=[telemetry_flags, cache_flags],
        help="Table 3: PR cache statistics",
    )
    p.set_defaults(func=_cmd_cache_stats)
    p.add_argument("--dataset", default="flickr")
    p.add_argument("--profile", default=None)

    p = sub.add_parser(
        "window", parents=[telemetry_flags, cache_flags],
        help="Figure 4: window sweep",
    )
    p.set_defaults(func=_cmd_window)
    p.add_argument("--dataset", default="flickr")
    p.add_argument("--profile", default=None)

    p = add("annealing", _cmd_annealing, help="Figure 3: SA sweep")
    p.add_argument("--dataset", default="epinion")

    p = add("evaluate", _cmd_evaluate,
            help="compare every ordering's quality on one graph")
    p.add_argument("--dataset", default="epinion")
    p.add_argument("--input", help="edge-list file instead of a dataset")
    p.add_argument("--seed", type=int, default=0)

    p = add("stats", _cmd_stats,
            help="structural statistics of datasets")
    p.add_argument("--dataset", default=None)
    p.add_argument("--input", help="edge-list file instead of a dataset")

    p = add("compress", _cmd_compress,
            help="gap-encoding cost per ordering")
    p.add_argument("--dataset", default="epinion")
    p.add_argument("--input", help="edge-list file instead of a dataset")
    p.add_argument("--seed", type=int, default=0)

    p = add("reuse", _cmd_reuse,
            help="reuse-distance profile of one run")
    p.add_argument("--dataset", default="epinion")
    p.add_argument("--input", help="edge-list file instead of a dataset")
    p.add_argument("--algorithm", default="nq", choices=ALGORITHM_NAMES)
    p.add_argument("--ordering", default="gorder",
                   choices=ALL_ORDERING_NAMES)

    p = add("bench", _cmd_bench,
            help="perf benchmarks (Gorder kernel / cache replay / "
                 "frontier runtime)")
    p.add_argument("--suite",
                   choices=("gorder", "cache", "algos", "frontier"),
                   default="gorder",
                   help="gorder: ordering kernel (BENCH_gorder.json); "
                        "cache: trace-replay simulator backend "
                        "(BENCH_cache.json); algos: frontier-runtime "
                        "vs scalar emitters (BENCH_algos.json); "
                        "frontier: adaptive ordering selector "
                        "(BENCH_selector.json)")
    p.add_argument("--quick", action="store_true",
                   help="small smoke configuration (CI bench job)")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="output JSON path (default BENCH_<suite>.json)")
    p.add_argument("--dataset", default=None,
                   help="cache/algos/frontier suites: dataset for "
                        "the runs")
    p.add_argument("--query-volume", type=float, default=None,
                   help="frontier suite: modelled queries for the "
                        "amortisation decision")
    p.add_argument("--iterations", type=int, default=None,
                   help="cache/algos suites: traced sweep iterations")
    p.add_argument("--hierarchy", choices=("paper", "scaled"),
                   default=None,
                   help="cache/algos suites: simulated hierarchy")
    p.add_argument("--num-sources", type=int, default=None,
                   help="algos suite: diameter SP repetitions")
    p.add_argument("--nodes", type=int, default=None,
                   help="benchmark graph size (default 50000)")
    p.add_argument("--edges-per-node", type=int, default=None,
                   help="average out-degree of the benchmark graph")
    p.add_argument("--window", type=int, default=None,
                   help="Gorder window (default 5)")
    p.add_argument("--num-parts", type=int, default=None,
                   help="partitions for the partitioned section")
    p.add_argument("--workers", type=int, default=None,
                   help="worker processes for the partitioned section")
    p.add_argument("--seed", type=int, default=None,
                   help="benchmark graph seed")
    p.add_argument("--repeats", type=int, default=None,
                   help="timing repeats per kernel (best-of)")
    p.add_argument("--skip-partitioned", action="store_true",
                   help="skip the partitioned workers comparison")
    p.add_argument("--append-history", metavar="PATH", default=None,
                   help="also append the result to this trend-history "
                        "journal (see `trends`)")

    p = add("trends", _cmd_trends,
            help="bench trend report and regression gate")
    p.add_argument("--history", metavar="PATH", default=None,
                   help="history journal (default bench_history.jsonl)")
    p.add_argument("--ingest", action="append", metavar="BENCH_JSON",
                   default=None,
                   help="append bench JSON payload(s) to the history "
                        "before reporting (repeatable)")
    p.add_argument("--check", action="store_true",
                   help="exit 1 when any metric regresses past the "
                        "gate")
    p.add_argument("--threshold", type=float, default=None,
                   help="regression gate as a fraction (default 0.20)")
    p.add_argument("--window", type=int, default=None,
                   help="rolling-baseline window (default 5 entries)")

    p = add("lint", _cmd_lint,
            help="repo-invariant static analysis (REP rules)")
    p.add_argument("paths", nargs="*",
                   help="files/directories to lint (default src/repro)")
    p.add_argument("--format", choices=("text", "json"),
                   default="text", help="report format on stdout")
    p.add_argument("--out", metavar="PATH", default=None,
                   help="also write the JSON report to PATH")
    p.add_argument("--baseline", metavar="PATH", default=None,
                   help="baseline file (default lint_baseline.json "
                        "when present)")
    p.add_argument("--no-baseline", action="store_true",
                   help="ignore any baseline file")
    p.add_argument("--write-baseline", action="store_true",
                   help="grandfather current findings into the "
                        "baseline and exit 0")
    p.add_argument("--strict", action="store_true",
                   help="fail on warnings and stale baseline entries "
                        "too")
    p.add_argument("--exit-zero", action="store_true",
                   help="report findings but always exit 0")
    p.add_argument("--project", action="store_true",
                   help="whole-program mode: also run the "
                        "cross-module rules (REP008-REP010) over the "
                        "project graph")
    p.add_argument("--cache", metavar="PATH", default=None,
                   help="incremental fact cache for --project "
                        "(e.g. .repro-lint-cache.json)")

    p = add("deps", _cmd_deps,
            help="project import graph: layering, cycles, deferred "
                 "edges")
    p.add_argument("paths", nargs="*",
                   help="directories to analyse (default src/repro)")
    p.add_argument("--show-graph", action="store_true",
                   help="print every import-time edge")
    p.add_argument("--show-deferred", action="store_true",
                   help="print function-level (deferred) edges")
    p.add_argument("--check-cycles", action="store_true",
                   help="exit 1 when any import cycle exists")
    p.add_argument("--cache", metavar="PATH", default=None,
                   help="incremental fact cache (shared with "
                        "lint --project)")

    p = add("telemetry", _cmd_telemetry_summary,
            help="trace analytics: summary, span tree, critical "
                 "path, diff, flamegraph")
    tele_sub = p.add_subparsers(
        dest="telemetry_command", required=True
    )
    p = tele_sub.add_parser(
        "summary", parents=[telemetry_flags],
        help="per-span totals and counter table",
    )
    p.set_defaults(func=_cmd_telemetry_summary)
    p.add_argument("trace", help="path to a JSONL trace file")
    p.add_argument("--top", type=int, default=15,
                   help="show this many spans (default 15)")
    p = tele_sub.add_parser(
        "tree", parents=[telemetry_flags],
        help="reconstructed span tree with self/total time",
    )
    p.set_defaults(func=_cmd_telemetry_tree)
    p.add_argument("trace", help="path to a JSONL trace file")
    p.add_argument("--depth", type=int, default=None,
                   help="only show spans this deep (default: all)")
    p.add_argument("--min-seconds", type=float, default=0.0,
                   help="hide spans with total time below this")
    p = tele_sub.add_parser(
        "critical-path", parents=[telemetry_flags],
        help="heaviest root-to-leaf span chain",
    )
    p.set_defaults(func=_cmd_telemetry_critical_path)
    p.add_argument("trace", help="path to a JSONL trace file")
    p = tele_sub.add_parser(
        "diff", parents=[telemetry_flags],
        help="counter and span-time deltas between two traces",
    )
    p.set_defaults(func=_cmd_telemetry_diff)
    p.add_argument("a", help="baseline JSONL trace")
    p.add_argument("b", help="comparison JSONL trace")
    p.add_argument("--top", type=int, default=15,
                   help="show this many span deltas (default 15)")
    p = tele_sub.add_parser(
        "flamegraph", parents=[telemetry_flags],
        help="folded stacks (flamegraph.pl / speedscope input)",
    )
    p.set_defaults(func=_cmd_telemetry_flamegraph)
    p.add_argument("trace", help="path to a JSONL trace file")
    p.add_argument("--weight", choices=("wall", "cpu"),
                   default="wall",
                   help="frame weight: wall-clock or CPU self time")
    p.add_argument("-o", "--output", metavar="PATH", default=None,
                   help="write folded stacks here instead of stdout")

    return parser


def _configure_telemetry(args: argparse.Namespace) -> bool:
    """Enable telemetry when any log flag was given.  True if enabled."""
    level = getattr(args, "log_level", None)
    if level is None and getattr(args, "verbose", False):
        level = "info"
    jsonl_path = getattr(args, "log_json", None)
    if level is None and jsonl_path is None:
        return False
    obs.configure(
        level=level or "info",
        jsonl_path=jsonl_path,
        text_stream=sys.stderr if level is not None else None,
    )
    obs.emit_manifest(
        profile=getattr(args, "profile", None),
        seed=getattr(args, "seed", None),
        command=args.command,
    )
    return True


_TELEMETRY_ACTIONS = frozenset(
    ("summary", "tree", "critical-path", "diff", "flamegraph")
)


def _normalise_argv(argv: list[str]) -> list[str]:
    """``telemetry TRACE`` still means ``telemetry summary TRACE``.

    The analytics actions arrived after ``repro-gorder telemetry
    trace.jsonl`` had shipped; when the first non-flag token after
    ``telemetry`` is not a known action, ``summary`` is inserted so
    recorded invocations keep working.
    """
    for position, token in enumerate(argv):
        if token.startswith("-"):
            continue
        if token != "telemetry":
            return argv
        for following in argv[position + 1:]:
            if following in ("-h", "--help"):
                return argv
            if following.startswith("-"):
                continue
            if following in _TELEMETRY_ACTIONS:
                return argv
            return (
                argv[: position + 1]
                + ["summary"]
                + argv[position + 1:]
            )
        return argv
    return argv


def main(argv: list[str] | None = None) -> int:
    from repro.perf import SweepKill

    parser = build_parser()
    args = parser.parse_args(_normalise_argv(
        sys.argv[1:] if argv is None else list(argv)
    ))
    configured = False
    try:
        configured = _configure_telemetry(args)
        return args.func(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except KeyboardInterrupt:
        # Completed cells were flushed to the checkpoint per cell; no
        # traceback, conventional 128+SIGINT exit code.
        checkpoint = getattr(args, "checkpoint", None)
        hint = (
            f" — resume with --resume --checkpoint {checkpoint}"
            if checkpoint
            else ""
        )
        print(f"interrupted; completed cells are saved{hint}",
              file=sys.stderr)
        return 130
    except SweepKill as exc:
        # Injected hard kill (fault-injection harness / CI smoke).
        print(f"sweep killed: {exc}", file=sys.stderr)
        return 137
    except BrokenPipeError:
        # Output piped into a pager/head that exited early.  Point
        # stdout at devnull so the interpreter's shutdown flush does
        # not raise a second time, and exit with the SIGPIPE code.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 141
    finally:
        if configured:
            obs.emit_counters()
            obs.shutdown()


if __name__ == "__main__":
    raise SystemExit(main())
