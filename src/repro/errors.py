"""Exception hierarchy shared by every repro subpackage.

All errors raised deliberately by this library derive from
:class:`ReproError`, so callers can catch one type at an API boundary
without swallowing genuine programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class GraphFormatError(ReproError):
    """An edge-list file or array could not be parsed into a graph."""


class InvalidPermutationError(ReproError):
    """A node arrangement is not a valid permutation of ``range(n)``."""


class InvalidParameterError(ReproError):
    """A parameter value is outside its documented domain."""


class UnknownOrderingError(ReproError):
    """An ordering name was not found in the ordering registry."""


class UnknownDatasetError(ReproError):
    """A dataset name was not found in the dataset registry."""


class UnknownAlgorithmError(ReproError):
    """An algorithm name was not found in the algorithm registry."""
