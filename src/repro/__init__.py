"""repro — reproduction of "Speedup Graph Processing by Graph Ordering".

Wei, Yu, Lu & Lin (SIGMOD 2016), cross-checked against the ReScience
replication by Lécuyer, Danisch & Tabourier (2021).

The package has six layers:

* :mod:`repro.graph` — CSR graphs, builders, I/O, synthetic dataset
  analogues of the paper's benchmarks.
* :mod:`repro.cache` — the set-associative multi-level cache simulator
  and cycle cost model that stand in for the paper's hardware
  counters (see DESIGN.md for the substitution argument).
* :mod:`repro.ordering` — Gorder (the paper's contribution) and the
  nine baseline orderings.
* :mod:`repro.algorithms` — the nine benchmark graph algorithms, each
  in a pure and a cache-traced variant.
* :mod:`repro.perf` — the experiment harness reproducing every table
  and figure.
* :mod:`repro.obs` — telemetry: structured events, spans, counters
  and run manifests (off by default, see ``docs/telemetry.md``).

Quickstart::

    from repro import datasets, gorder_order, relabel, pagerank
    graph = datasets.load("flickr")
    ordered = relabel(graph, gorder_order(graph))
    ranks = pagerank(ordered)
"""

from repro import algorithms, cache, graph, obs, ordering, perf
from repro.algorithms import (
    breadth_first_search,
    core_decomposition,
    depth_first_search,
    diameter,
    dominating_set,
    neighbor_query,
    pagerank,
    shortest_paths,
    strongly_connected_components,
)
from repro.cache import (
    CacheHierarchy,
    CacheLevel,
    CostModel,
    Memory,
    RunCost,
    paper_hierarchy,
    scaled_hierarchy,
)
from repro.errors import (
    GraphFormatError,
    InvalidParameterError,
    InvalidPermutationError,
    ReproError,
    UnknownAlgorithmError,
    UnknownDatasetError,
    UnknownOrderingError,
)
from repro.graph import (
    CSRGraph,
    datasets,
    from_edges,
    read_edge_list,
    relabel,
)
from repro.ordering import (
    compute_ordering,
    gorder_order,
    gorder_score,
    minla_energy,
)

__version__ = "1.0.0"

__all__ = [
    "graph",
    "cache",
    "ordering",
    "algorithms",
    "perf",
    "obs",
    "datasets",
    "CSRGraph",
    "from_edges",
    "read_edge_list",
    "relabel",
    "compute_ordering",
    "gorder_order",
    "gorder_score",
    "minla_energy",
    "neighbor_query",
    "breadth_first_search",
    "depth_first_search",
    "strongly_connected_components",
    "shortest_paths",
    "pagerank",
    "dominating_set",
    "core_decomposition",
    "diameter",
    "Memory",
    "CacheLevel",
    "CacheHierarchy",
    "CostModel",
    "RunCost",
    "paper_hierarchy",
    "scaled_hierarchy",
    "ReproError",
    "GraphFormatError",
    "InvalidPermutationError",
    "InvalidParameterError",
    "UnknownOrderingError",
    "UnknownDatasetError",
    "UnknownAlgorithmError",
    "__version__",
]
