"""The REP rule pack: this repo's reproducibility invariants, as code.

Each rule mechanises a convention the reproduction depends on — the
conventions whose violations previous PRs had to fix by hand after
the fact.  Severity ``ERROR`` findings fail the lint gate outright;
``WARNING`` findings fail only under ``--strict``.

See ``docs/static_analysis.md`` for a bad/good example per rule.
"""

from __future__ import annotations

import ast
import builtins

from repro.analysis.core import (
    FileContext,
    Finding,
    Rule,
    RuleVisitor,
    Severity,
    register,
)
from repro.analysis.imports import ImportMap, attr_root, call_name

#: numpy dtypes too narrow to accumulate edge/trace counts into.
NARROW_DTYPES = frozenset({
    "int8", "int16", "int32", "uint8", "uint16", "uint32",
})

#: Builtin exceptions that are legitimate to raise directly.
ALLOWED_BUILTIN_RAISES = frozenset({
    "SystemExit",
    "KeyboardInterrupt",
    "GeneratorExit",
    "StopIteration",
    "StopAsyncIteration",
    "NotImplementedError",
})

#: Every builtin exception name (computed once at import).
BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)


def _narrow_dtype(node: ast.AST, imports: ImportMap) -> str | None:
    """The narrow-dtype name an expression denotes, else ``None``.

    Recognises ``np.int32`` / ``numpy.uint16`` attribute chains and
    the ``"int32"`` string spelling.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value if node.value in NARROW_DTYPES else None
    resolved = imports.resolve(node)
    if resolved and resolved.startswith("numpy."):
        name = resolved.split(".")[-1]
        return name if name in NARROW_DTYPES else None
    return None


def _keyword(node: ast.Call, name: str) -> ast.expr | None:
    for keyword in node.keywords:
        if keyword.arg == name:
            return keyword.value
    return None


@register
class UnseededRandomRule(Rule):
    """REP001: every random stream must come from a seeded generator."""

    id = "REP001"
    title = "unseeded or legacy random number generation"
    severity = Severity.ERROR
    rationale = (
        "The paper's experiments are only comparable across runs and "
        "machines if every random draw is reproducible.  Legacy "
        "``numpy.random.*`` functions and unseeded generators pull "
        "from hidden global state, so two runs of the same cell can "
        "diverge silently.  All randomness must flow from "
        "``numpy.random.default_rng(seed)`` with an explicit seed."
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        imports = ImportMap(ctx.tree)
        visitor = _RandomVisitor(self, ctx, imports)
        visitor.visit(ctx.tree)
        return visitor.findings


class _RandomVisitor(RuleVisitor):
    def __init__(
        self, rule: Rule, ctx: FileContext, imports: ImportMap
    ) -> None:
        super().__init__(rule, ctx)
        self.imports = imports

    def visit_Call(self, node: ast.Call) -> None:
        resolved = self.imports.resolve(node.func)
        if resolved is not None:
            if resolved.startswith("numpy.random."):
                self._check_numpy(node, resolved)
            elif resolved.startswith("random."):
                self._check_stdlib(node, resolved)
        self.generic_visit(node)

    def _unseeded(self, node: ast.Call) -> bool:
        return not node.args and not node.keywords

    def _check_numpy(self, node: ast.Call, resolved: str) -> None:
        name = resolved.removeprefix("numpy.random.")
        if name == "default_rng":
            if self._unseeded(node):
                self.report(
                    node,
                    "default_rng() without a seed is irreproducible; "
                    "pass an explicit seed",
                )
        elif name == "Generator":
            pass  # wrapping an explicit BitGenerator is fine
        else:
            self.report(
                node,
                f"legacy numpy.random.{name} uses hidden global "
                "state; use numpy.random.default_rng(seed)",
            )

    def _check_stdlib(self, node: ast.Call, resolved: str) -> None:
        name = resolved.removeprefix("random.")
        if "." in name:
            return  # method on random.Random instance via alias: fine
        if name == "Random":
            if self._unseeded(node):
                self.report(
                    node,
                    "random.Random() without a seed is "
                    "irreproducible; pass an explicit seed",
                )
        else:
            self.report(
                node,
                f"module-level random.{name} uses hidden global "
                "state; use random.Random(seed) or "
                "numpy.random.default_rng(seed)",
            )


@register
class NonAtomicWriteRule(Rule):
    """REP002: truncating writes must go through the atomic helper."""

    id = "REP002"
    title = "non-atomic truncating write"
    severity = Severity.ERROR
    rationale = (
        "A kill mid-write must never leave a truncated archive, "
        "permutation or checkpoint for the next run to trip over — "
        "the sweep engine's resume guarantees are stated in those "
        "terms.  Truncating writes (`open(path, 'w')`, `np.save`) "
        "must go through ``repro.ioutil.atomic_open`` (temp file + "
        "``os.replace``).  Append-mode journal writes are exempt: the "
        "checkpoint journal is torn-tail tolerant by design."
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        imports = ImportMap(ctx.tree)
        visitor = _WriteScopeVisitor(imports)
        visitor.visit(ctx.tree)
        findings: list[Finding] = []
        for call, atomic_scope, message in visitor.writes:
            if atomic_scope:
                continue
            findings.append(self.finding(ctx, call, message))
        return findings


class _WriteScopeVisitor(ast.NodeVisitor):
    """Assign each write call to its nearest enclosing scope.

    A scope (module or function) that also calls ``os.replace`` /
    ``Path.replace(target)`` is performing the tmp-then-replace dance
    itself — its writes are the atomic implementation, not violations.
    """

    def __init__(self, imports: ImportMap) -> None:
        self.imports = imports
        #: (call node, scope-was-atomic, message) per write found.
        self.writes: list[tuple[ast.Call, bool, str]] = []
        self._frames: list[dict] = []

    def _in_scope(self, node: ast.AST) -> None:
        frame: dict = {"atomic": False, "writes": []}
        self._frames.append(frame)
        self.generic_visit(node)
        self._frames.pop()
        for call, message in frame["writes"]:
            self.writes.append((call, frame["atomic"], message))

    def visit_Module(self, node: ast.Module) -> None:
        self._in_scope(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._in_scope(node)

    def visit_AsyncFunctionDef(
        self, node: ast.AsyncFunctionDef
    ) -> None:
        self._in_scope(node)

    def visit_Call(self, node: ast.Call) -> None:
        frame = self._frames[-1]
        if self._is_atomic_marker(node):
            frame["atomic"] = True
        message = self._violation(node)
        if message is not None:
            frame["writes"].append((node, message))
        self.generic_visit(node)

    def _is_atomic_marker(self, node: ast.Call) -> bool:
        """A call proving the scope does the tmp-then-replace dance."""
        name = call_name(node)
        if name is not None and name.startswith("atomic_"):
            return True  # repro.ioutil.atomic_open / atomic_write_*
        if self.imports.resolve(node.func) == "os.replace":
            return True
        return (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "replace"
            and len(node.args) == 1
            and not node.keywords
        )  # pathlib.Path.replace(target); str.replace takes two args

    def _violation(self, node: ast.Call) -> str | None:
        imports = self.imports
        resolved = imports.resolve(node.func)
        if resolved in (
            "numpy.save", "numpy.savez", "numpy.savez_compressed"
        ):
            return (
                f"{resolved} writes in place; write via "
                "repro.ioutil.atomic_open (tmp + os.replace)"
            )
        name = call_name(node)
        if name in ("write_text", "write_bytes") and isinstance(
            node.func, ast.Attribute
        ):
            if self._mentions_tmp(node.func.value):
                return None
            return (
                f"Path.{name} truncates in place; use "
                "repro.ioutil.atomic_write_text/bytes"
            )
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "open"
        ):
            mode = self._open_mode(node)
            if mode is None:
                return None
            if any(flag in mode for flag in ("w", "x", "+")):
                target = node.args[0] if node.args else None
                if target is not None and self._mentions_tmp(target):
                    return None  # writing the temp side of the dance
                return (
                    f"open(..., {mode!r}) truncates in place; use "
                    "repro.ioutil.atomic_open (tmp + os.replace)"
                )
        return None

    def _open_mode(self, node: ast.Call) -> str | None:
        mode = (
            node.args[1]
            if len(node.args) >= 2
            else _keyword(node, "mode")
        )
        if isinstance(mode, ast.Constant) and isinstance(
            mode.value, str
        ):
            return mode.value
        return None

    def _mentions_tmp(self, node: ast.AST) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Name) and "tmp" in child.id:
                return True
            if (
                isinstance(child, ast.Attribute)
                and "tmp" in child.attr
            ):
                return True
            if isinstance(child, ast.Constant) and isinstance(
                child.value, str
            ):
                if "tmp" in child.value:
                    return True
        return False


@register
class SwallowedExceptionRule(Rule):
    """REP003: broad handlers must re-raise, record or report."""

    id = "REP003"
    title = "silently swallowed exception"
    severity = Severity.ERROR
    rationale = (
        "A swallowed exception turns a broken cell into a silently "
        "wrong number in the archive.  ``except:`` and ``except "
        "Exception:`` bodies must re-raise, emit a telemetry event "
        "(``obs.event``/``obs.inc``), or convert the failure into a "
        "structured ``CellFailure`` record — the sweep engine's "
        "graceful-degradation contract."
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        imports = ImportMap(ctx.tree)
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            label = self._broad_label(node)
            if label is None:
                continue
            if self._mitigated(node, imports):
                continue
            findings.append(
                self.finding(
                    ctx,
                    node,
                    f"{label} without re-raise, telemetry event or "
                    "CellFailure record swallows errors silently",
                )
            )
        return findings

    def _broad_label(self, node: ast.ExceptHandler) -> str | None:
        if node.type is None:
            return "bare except"
        names = []
        if isinstance(node.type, ast.Tuple):
            names = [
                element.id
                for element in node.type.elts
                if isinstance(element, ast.Name)
            ]
        elif isinstance(node.type, ast.Name):
            names = [node.type.id]
        for name in names:
            if name in ("Exception", "BaseException"):
                return f"except {name}"
        return None

    def _mitigated(
        self, node: ast.ExceptHandler, imports: ImportMap
    ) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Raise):
                return True
            if not isinstance(child, ast.Call):
                continue
            resolved = imports.resolve(child.func)
            if resolved is not None and resolved.startswith(
                "repro.obs"
            ):
                return True
            root = attr_root(child.func)
            if root in ("obs", "telemetry", "TELEMETRY"):
                return True
            name = call_name(child)
            if name is not None and name.endswith("Failure"):
                return True
            if name == "exception":  # logger.exception(...)
                return True
        return False


@register
class NarrowDtypeRule(Rule):
    """REP004: edge/trace counts must not accumulate in 32 bits."""

    id = "REP004"
    title = "narrow numpy dtype on an accumulator"
    severity = Severity.WARNING
    rationale = (
        "Edge counts, trace lengths and cycle totals exceed 2**31 on "
        "production-scale graphs; accumulating them in int32 "
        "overflows silently (numpy wraps around rather than raising)."
        "  Reductions must widen explicitly, and accumulator buffers "
        "must be int64 unless a guard proves the narrow dtype safe."
    )

    #: Reduction calls whose dtype= argument sets the accumulator.
    REDUCTIONS = frozenset({"sum", "cumsum", "prod", "dot", "trace"})
    #: Creation calls checked when the target name looks accumulator-ish.
    CREATIONS = frozenset(
        {"zeros", "empty", "ones", "full", "arange", "array"}
    )
    #: Name fragments that mark a buffer as a running total.
    ACCUMULATOR_TOKENS = ("count", "total", "accum", "cycles")

    def check(self, ctx: FileContext) -> list[Finding]:
        imports = ImportMap(ctx.tree)
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                finding = self._check_reduction(ctx, node, imports)
                if finding is not None:
                    findings.append(finding)
            elif isinstance(node, ast.Assign):
                finding = self._check_creation(ctx, node, imports)
                if finding is not None:
                    findings.append(finding)
        return findings

    def _check_reduction(
        self, ctx: FileContext, node: ast.Call, imports: ImportMap
    ) -> Finding | None:
        name = call_name(node)
        if name not in self.REDUCTIONS:
            return None
        dtype_expr = _keyword(node, "dtype")
        if dtype_expr is None:
            return None
        dtype = _narrow_dtype(dtype_expr, imports)
        if dtype is None:
            return None
        return self.finding(
            ctx,
            node,
            f"{name}(dtype={dtype}) accumulates in {dtype} and wraps "
            "past 2**31; accumulate in int64",
        )

    def _check_creation(
        self, ctx: FileContext, node: ast.Assign, imports: ImportMap
    ) -> Finding | None:
        if len(node.targets) != 1 or not isinstance(
            node.targets[0], ast.Name
        ):
            return None
        target = node.targets[0].id.lower()
        if not any(
            token in target for token in self.ACCUMULATOR_TOKENS
        ):
            return None
        value = node.value
        if not isinstance(value, ast.Call):
            return None
        resolved = imports.resolve(value.func)
        if resolved is None or not resolved.startswith("numpy."):
            return None
        if resolved.split(".")[-1] not in self.CREATIONS:
            return None
        dtype_expr = _keyword(value, "dtype")
        if dtype_expr is None:
            return None
        dtype = _narrow_dtype(dtype_expr, imports)
        if dtype is None:
            return None
        return self.finding(
            ctx,
            node.targets[0],
            f"accumulator {node.targets[0].id!r} created as {dtype}; "
            "running totals overflow 32 bits on large graphs",
        )


@register
class TelemetryDisciplineRule(Rule):
    """REP005: spans are context managers; one registry per process."""

    id = "REP005"
    title = "telemetry discipline violation"
    severity = Severity.ERROR
    rationale = (
        "A span (or profiled phase) that is not used as a context "
        "manager never closes, so traces report unclosed spans and "
        "aggregates go missing.  A second ``Telemetry()`` registry "
        "splits counters across instances, and fully dynamic names "
        "cannot be enumerated by the trace summariser.  Spans and "
        "``obs.profile`` phases must be entered with ``with``; "
        "counters live on ``repro.obs.TELEMETRY``; counter, event "
        "and phase names keep at least one literal segment."
    )

    #: The registry implementation itself is exempt.
    EXEMPT_PATH_FRAGMENT = "repro/obs/"

    def check(self, ctx: FileContext) -> list[Finding]:
        if self.EXEMPT_PATH_FRAGMENT in ctx.path:
            return []
        imports = ImportMap(ctx.tree)
        managed = self._context_managed_nodes(ctx.tree)
        returned = self._returned_nodes(ctx.tree)
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            if self._is_span_call(node, imports):
                if id(node) not in managed and id(node) not in returned:
                    called = call_name(node)
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            f"{called or 'span'} not used as a "
                            "context manager; it will never close "
                            f"(with obs.{called or 'span'}(...):)",
                        )
                    )
                if self._is_obs_call(node, imports, "profile"):
                    finding = self._check_phase_name(ctx, node)
                    if finding is not None:
                        findings.append(finding)
            elif self._is_registry_instantiation(node, imports):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        "Telemetry() instantiated outside the "
                        "registry; use repro.obs.TELEMETRY",
                    )
                )
            else:
                finding = self._check_counter_name(ctx, node, imports)
                if finding is not None:
                    findings.append(finding)
        return findings

    def _context_managed_nodes(self, tree: ast.Module) -> set[int]:
        nodes: set[int] = set()
        for node in ast.walk(tree):
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    for child in ast.walk(item.context_expr):
                        nodes.add(id(child))
        return nodes

    def _returned_nodes(self, tree: ast.Module) -> set[int]:
        """Calls forwarded by a wrapper: ``return obs.span(...)``."""
        return {
            id(node.value)
            for node in ast.walk(tree)
            if isinstance(node, ast.Return) and node.value is not None
        }

    def _is_obs_call(
        self, node: ast.Call, imports: ImportMap, attr: str
    ) -> bool:
        resolved = imports.resolve(node.func)
        if resolved is not None:
            if resolved in (f"repro.obs.{attr}", f"obs.{attr}"):
                return True
            if resolved.startswith("repro.obs.") and resolved.endswith(
                f".{attr}"
            ):
                return True
        if call_name(node) != attr:
            return False
        return attr_root(node.func) in ("obs", "telemetry", "TELEMETRY")

    def _is_span_call(
        self, node: ast.Call, imports: ImportMap
    ) -> bool:
        return self._is_obs_call(
            node, imports, "span"
        ) or self._is_obs_call(node, imports, "profile")

    def _is_registry_instantiation(
        self, node: ast.Call, imports: ImportMap
    ) -> bool:
        resolved = imports.resolve(node.func)
        if resolved is not None:
            return resolved.endswith(".Telemetry")
        return (
            isinstance(node.func, ast.Name)
            and node.func.id == "Telemetry"
        )

    @staticmethod
    def _has_literal_segment(name: ast.expr) -> bool:
        """A literal string, or an f-string with a literal piece."""
        if isinstance(name, ast.Constant) and isinstance(
            name.value, str
        ):
            return True
        return isinstance(name, ast.JoinedStr) and any(
            isinstance(part, ast.Constant)
            and isinstance(part.value, str)
            and part.value.strip(". ")
            for part in name.values
        )  # a literal segment keeps the name greppable

    def _check_phase_name(
        self, ctx: FileContext, node: ast.Call
    ) -> Finding | None:
        if not node.args or self._has_literal_segment(node.args[0]):
            return None
        return self.finding(
            ctx,
            node,
            f"obs.{call_name(node)} name is fully dynamic; profiled "
            "phase names need a literal segment so traces can be "
            "summarised",
        )

    def _check_counter_name(
        self, ctx: FileContext, node: ast.Call, imports: ImportMap
    ) -> Finding | None:
        for attr in ("inc", "event", "progress"):
            if self._is_obs_call(node, imports, attr):
                break
        else:
            return None
        if not node.args or self._has_literal_segment(node.args[0]):
            return None
        return self.finding(
            ctx,
            node,
            f"obs.{call_name(node)} name is fully dynamic; counter "
            "and event names need a literal segment so traces can be "
            "summarised",
        )


@register
class ScalarTouchLoopRule(Rule):
    """REP007: algorithm loops must not touch one element at a time."""

    id = "REP007"
    title = "per-element touch loop in an algorithm"
    severity = Severity.WARNING
    #: v2: alias tracking follows tuple unpacking (``ta, tb = ...``).
    version = 2
    rationale = (
        "A ``TracedArray.touch`` call inside a Python loop costs one "
        "interpreter round-trip per simulated reference — the exact "
        "overhead the frontier runtime (``repro.algorithms.runtime``) "
        "exists to remove.  Algorithm code should batch accesses "
        "through ``touch_many``/``touch_runs`` or assemble whole "
        "per-step blocks with the runtime's ``TraceEmitter``.  The "
        "scalar oracle paths that define counter-identity are the "
        "deliberate exception; they carry inline noqa markers."
    )

    #: Only algorithm code is held to the batching convention; the
    #: cache layer and tests touch single elements legitimately.
    PATH_FRAGMENT = "repro/algorithms/"

    def check(self, ctx: FileContext) -> list[Finding]:
        if self.PATH_FRAGMENT not in ctx.path:
            return []
        aliases = self._touch_aliases(ctx.tree)
        visitor = _TouchLoopVisitor(self, ctx, aliases)
        visitor.visit(ctx.tree)
        return visitor.findings

    def _touch_aliases(self, tree: ast.Module) -> frozenset[str]:
        """Names bound to a ``.touch`` method.

        Handles both the direct spelling (``t = arr.touch``) and
        tuple unpacking (``ta, tb = a.touch, b.touch``) — the latter
        used to slip through and silently skip per-element loops.
        """
        names: set[str] = set()

        def bind(target: ast.AST, value: ast.AST) -> None:
            if (
                isinstance(value, ast.Attribute)
                and value.attr == "touch"
                and isinstance(target, ast.Name)
            ):
                names.add(target.id)
            elif (
                isinstance(target, (ast.Tuple, ast.List))
                and isinstance(value, (ast.Tuple, ast.List))
                and len(target.elts) == len(value.elts)
            ):
                for sub_target, sub_value in zip(
                    target.elts, value.elts
                ):
                    if isinstance(sub_target, ast.Starred):
                        continue
                    bind(sub_target, sub_value)

        for node in ast.walk(tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                bind(target, node.value)
        return frozenset(names)


class _TouchLoopVisitor(RuleVisitor):
    def __init__(
        self, rule: Rule, ctx: FileContext, aliases: frozenset[str]
    ) -> None:
        super().__init__(rule, ctx)
        self.aliases = aliases
        self._loop_depth = 0

    def _visit_loop(self, node: ast.AST) -> None:
        self._loop_depth += 1
        self.generic_visit(node)
        self._loop_depth -= 1

    visit_For = _visit_loop
    visit_AsyncFor = _visit_loop
    visit_While = _visit_loop

    def visit_Call(self, node: ast.Call) -> None:
        if self._loop_depth > 0:
            spelled = self._touch_spelling(node)
            if spelled is not None:
                self.report(
                    node,
                    f"per-element {spelled} inside a loop; batch via "
                    "TracedArray.touch_many/touch_runs or the "
                    "frontier runtime's TraceEmitter",
                )
        self.generic_visit(node)

    def _touch_spelling(self, node: ast.Call) -> str | None:
        func = node.func
        if isinstance(func, ast.Attribute) and func.attr == "touch":
            return ".touch()"
        if isinstance(func, ast.Name) and func.id in self.aliases:
            return f"{func.id}() (bound .touch)"
        return None


@register
class ForeignExceptionRule(Rule):
    """REP006: deliberate errors derive from repro.errors.ReproError."""

    id = "REP006"
    title = "builtin exception raised instead of a ReproError"
    severity = Severity.ERROR
    rationale = (
        "Callers catch ``ReproError`` at API boundaries (the CLI "
        "maps it to exit code 1) without swallowing genuine "
        "programming errors.  Raising bare builtins (``ValueError``, "
        "``RuntimeError``) breaks that contract: the CLI turns them "
        "into tracebacks and the sweep engine cannot distinguish a "
        "documented-domain error from a bug."
    )

    def check(self, ctx: FileContext) -> list[Finding]:
        findings: list[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            name = self._raised_name(node.exc)
            if name is None:
                continue
            if (
                name in BUILTIN_EXCEPTIONS
                and name not in ALLOWED_BUILTIN_RAISES
            ):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"raise {name} leaks a builtin through the "
                        "repro.errors hierarchy; raise a ReproError "
                        "subclass",
                    )
                )
        return findings

    def _raised_name(self, node: ast.expr) -> str | None:
        if isinstance(node, ast.Call):
            node = node.func
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute) and isinstance(
            node.value, ast.Name
        ):
            if node.value.id == "builtins":
                return node.attr
        return None
