"""Run the rule pack over files and fold the results into a report.

The engine is both the implementation of ``repro-gorder lint`` and a
pytest-importable API::

    from repro.analysis import run_lint

    report = run_lint(["src/repro"], baseline_path="lint_baseline.json")
    assert report.exit_code() == 0, report.render_text()

Exit-code contract (shared with the CLI):

* ``0`` — no new findings (warnings allowed unless ``--strict``).
* ``1`` — new error-severity findings; under ``--strict`` also new
  warnings or stale baseline entries.
* ``2`` — the analysis itself failed (unreadable file, syntax error,
  malformed baseline) — distinct so CI can tell "dirty" from
  "broken".
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.baseline import Baseline, BaselineMatch
from repro.analysis.core import (
    AnalysisError,
    FileContext,
    Finding,
    Rule,
    Severity,
    all_rules,
    noqa_directives,
    suppressed,
)

#: Directory names never descended into.
SKIP_DIRS = frozenset({
    "__pycache__", ".git", ".venv", "venv", ".eggs", "build", "dist",
    "node_modules",
})

#: Default target: the library itself.
DEFAULT_PATHS = ("src/repro",)

#: Conventional baseline location at the repo root.
DEFAULT_BASELINE = "lint_baseline.json"


def iter_python_files(paths: list[str] | tuple[str, ...]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    files: list[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.extend(
                candidate
                for candidate in sorted(path.rglob("*.py"))
                if not SKIP_DIRS.intersection(candidate.parts)
            )
        elif path.is_file():
            files.append(path)
        else:
            raise AnalysisError(f"no such file or directory: {raw}")
    unique = sorted(set(files))
    return unique


def _display_path(path: Path) -> str:
    """Repo-relative posix path when possible (baseline stability)."""
    try:
        return path.resolve().relative_to(Path.cwd()).as_posix()
    except ValueError:
        return path.as_posix()


def analyze_source(
    source: str,
    path: str = "<string>",
    rules: list[Rule] | None = None,
) -> list[Finding]:
    """Lint one source string; inline noqa suppression applied."""
    ctx = FileContext.parse(path, source)
    directives = noqa_directives(ctx.lines)
    findings: list[Finding] = []
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(ctx):
            if not suppressed(finding, directives):
                findings.append(finding)
    return sorted(findings)


def analyze_file(
    path: str | os.PathLike, rules: list[Rule] | None = None
) -> list[Finding]:
    """Lint one file on disk."""
    file_path = Path(path)
    try:
        source = file_path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        raise AnalysisError(f"cannot read {path}: {exc}") from exc
    return analyze_source(
        source, path=_display_path(file_path), rules=rules
    )


@dataclass
class LintReport:
    """Everything one lint run produced."""

    #: Findings not covered by the baseline, sorted.
    findings: list[Finding] = field(default_factory=list)
    #: Findings the baseline grandfathered.
    baselined: list[Finding] = field(default_factory=list)
    #: Baseline identities that matched nothing (pay-down complete).
    stale_baseline: list[tuple[str, str, str]] = field(
        default_factory=list
    )
    files_checked: int = 0
    strict: bool = False
    #: Whole-program mode (``lint --project``) bookkeeping.
    project: bool = False
    files_parsed: int = 0
    files_cached: int = 0

    # -- outcome -------------------------------------------------------
    def errors(self) -> list[Finding]:
        return [
            finding
            for finding in self.findings
            if finding.severity >= Severity.ERROR
        ]

    def exit_code(self) -> int:
        if self.errors():
            return 1
        if self.strict and (self.findings or self.stale_baseline):
            return 1
        return 0

    # -- rendering -----------------------------------------------------
    def summary_line(self) -> str:
        by_severity: dict[str, int] = {}
        for finding in self.findings:
            label = finding.severity.label
            by_severity[label] = by_severity.get(label, 0) + 1
        parts = [f"{self.files_checked} file(s) checked"]
        if self.project:
            parts[-1] += (
                f" (project mode: {self.files_parsed} parsed, "
                f"{self.files_cached} from cache)"
            )
        if self.findings:
            breakdown = ", ".join(
                f"{count} {label}(s)"
                for label, count in sorted(by_severity.items())
            )
            parts.append(f"{len(self.findings)} finding(s): {breakdown}")
        else:
            parts.append("no findings")
        if self.baselined:
            parts.append(f"{len(self.baselined)} baselined")
        if self.stale_baseline:
            parts.append(
                f"{len(self.stale_baseline)} stale baseline entr(y/ies)"
            )
        return "; ".join(parts)

    def render_text(self) -> str:
        lines = [finding.describe() for finding in self.findings]
        for rule, path, snippet in self.stale_baseline:
            lines.append(
                f"{path}: stale baseline entry for {rule} "
                f"({snippet!r} no longer found) — remove it or "
                "regenerate with --write-baseline"
            )
        lines.append(self.summary_line())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "version": 1,
            "files_checked": self.files_checked,
            "strict": self.strict,
            "project": self.project,
            "files_parsed": self.files_parsed,
            "files_cached": self.files_cached,
            "exit_code": self.exit_code(),
            "findings": [
                finding.to_dict() for finding in self.findings
            ],
            "baselined": [
                finding.to_dict() for finding in self.baselined
            ],
            "stale_baseline": [
                {"rule": rule, "path": path, "snippet": snippet}
                for rule, path, snippet in self.stale_baseline
            ],
            "summary": self.summary_line(),
        }

    def render_json(self) -> str:
        return json.dumps(self.to_dict(), indent=1)


def run_lint(
    paths: list[str] | tuple[str, ...] = DEFAULT_PATHS,
    baseline_path: str | os.PathLike | None = None,
    strict: bool = False,
    rules: list[Rule] | None = None,
) -> LintReport:
    """Lint ``paths`` and fold in the baseline; the library entry point.

    ``baseline_path`` may name a missing file — that simply means an
    empty baseline (a *malformed* file still raises).
    """
    files = iter_python_files(paths)
    findings: list[Finding] = []
    for file_path in files:
        findings.extend(analyze_file(file_path, rules=rules))
    versions = {
        rule.id: rule.version
        for rule in (rules if rules is not None else all_rules())
    }
    match = BaselineMatch(new=sorted(findings))
    if baseline_path is not None and Path(baseline_path).exists():
        match = Baseline.load(baseline_path).apply(
            findings, rule_versions=versions
        )
    return LintReport(
        findings=match.new,
        baselined=match.suppressed,
        stale_baseline=match.stale,
        files_checked=len(files),
        strict=strict,
    )


def run_project_lint(
    paths: list[str] | tuple[str, ...] = DEFAULT_PATHS,
    baseline_path: str | os.PathLike | None = None,
    strict: bool = False,
    cache_path: str | os.PathLike | None = None,
    rules: list[Rule] | None = None,
    project_rules: list | None = None,
) -> LintReport:
    """Whole-program lint: per-file rules plus REP008/REP009/REP010.

    Parses (or cache-loads, when ``cache_path`` is given) every file
    under ``paths`` into project facts, replays the cached per-file
    findings, evaluates every registered project rule over the
    cross-module facts, and folds the union through the baseline with
    rule-version expiry.
    """
    from repro.analysis.project import (
        ProjectAnalysis,
        all_project_rules,
        rule_versions,
    )

    project = ProjectAnalysis.build(
        paths, cache_path=cache_path, rules=rules
    )
    findings = sorted(
        project.file_findings()
        + project.project_findings(project_rules)
    )
    versions = rule_versions()
    if rules is not None:
        versions = {rule.id: rule.version for rule in rules}
        versions.update(
            {
                rule.id: rule.version
                for rule in (
                    project_rules
                    if project_rules is not None
                    else all_project_rules()
                )
            }
        )
    match = BaselineMatch(new=findings)
    if baseline_path is not None and Path(baseline_path).exists():
        match = Baseline.load(baseline_path).apply(
            findings, rule_versions=versions
        )
    return LintReport(
        findings=match.new,
        baselined=match.suppressed,
        stale_baseline=match.stale,
        files_checked=len(project.facts),
        strict=strict,
        project=True,
        files_parsed=project.files_parsed,
        files_cached=project.files_cached,
    )
