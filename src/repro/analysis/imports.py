"""Resolve names in one module back to the dotted paths they import.

Rules need to know that ``np.random.rand`` means
``numpy.random.rand`` and that ``default_rng`` came from
``numpy.random`` — without executing the file.  :class:`ImportMap`
records every ``import`` / ``from ... import`` binding in a parsed
module and resolves attribute chains against them.

Only static, top-level-style bindings are tracked (aliased modules
and imported names); attribute chains rooted in local variables
resolve to ``None``, which rules treat as "not the thing I police".
"""

from __future__ import annotations

import ast


class ImportMap:
    """Name bindings created by the import statements of one module."""

    def __init__(self, tree: ast.Module) -> None:
        #: local alias -> module dotted path (``np`` -> ``numpy``).
        self.modules: dict[str, str] = {}
        #: local name -> imported dotted path
        #: (``default_rng`` -> ``numpy.random.default_rng``).
        self.names: dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
                    else:
                        root = alias.name.split(".", 1)[0]
                        self.modules[root] = root
            elif isinstance(node, ast.ImportFrom):
                if node.level or node.module is None:
                    continue  # relative imports: outside our scope
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self.names[local] = f"{node.module}.{alias.name}"

    def resolve(self, node: ast.AST) -> str | None:
        """Dotted path of an attribute chain, or ``None``.

        ``np.random.rand`` resolves to ``numpy.random.rand`` when the
        module did ``import numpy as np``; chains rooted in anything
        that is not an imported binding resolve to ``None``.
        """
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        root = node.id
        if root in self.names:
            base = self.names[root]
        elif root in self.modules:
            base = self.modules[root]
        else:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


def attr_root(node: ast.AST) -> str | None:
    """The root ``Name`` id of an attribute chain (``obs.span`` -> ``obs``)."""
    while isinstance(node, ast.Attribute):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def call_name(node: ast.Call) -> str | None:
    """The final segment of the called expression (``x.y.f()`` -> ``f``)."""
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None
