"""Committed baseline of grandfathered findings.

A baseline lets the gate turn on *today* while pre-existing findings
are paid down over time: every finding recorded in the baseline file
is suppressed, anything new fails.  Entries match on
``(rule, path, snippet)`` — deliberately **not** on line number — so
unrelated edits that shift code around neither break the build nor
resurrect grandfathered findings.

Multiplicity is respected: a baseline entry suppresses as many
findings as it was recorded with, no more.  Entries that no longer
match anything are *stale*; ``--strict`` fails on them so the
baseline only ever shrinks.

Schema v2 records the version of the rule each entry was written
against.  When a rule's detection logic is bumped
(:attr:`~repro.analysis.core.Rule.version`), its old entries *expire*:
they stop suppressing — the new logic must be re-reviewed, not
grandfathered by a fossil — and show up as stale so the baseline gets
regenerated.  v1 files (no per-entry version) still load; their
entries are treated as current and upgraded on the next save.
"""

from __future__ import annotations

import json
import os
from collections import Counter
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.core import AnalysisError, Finding
from repro.ioutil import atomic_write_text

#: Format marker written into every baseline file.
BASELINE_VERSION = 2

#: Older formats :meth:`Baseline.load` still accepts.
SUPPORTED_BASELINE_VERSIONS = (1, 2)


@dataclass
class BaselineMatch:
    """Outcome of filtering findings through a baseline."""

    new: list[Finding] = field(default_factory=list)
    suppressed: list[Finding] = field(default_factory=list)
    #: ``(rule, path, snippet)`` keys with unused suppressions left,
    #: including entries expired by a rule-version bump.
    stale: list[tuple[str, str, str]] = field(default_factory=list)
    #: The subset of ``stale`` expired because the rule version moved.
    expired: list[tuple[str, str, str]] = field(default_factory=list)


class Baseline:
    """A multiset of grandfathered finding identities."""

    def __init__(
        self, entries: list[dict] | None = None, path: str | None = None
    ) -> None:
        self.entries = list(entries or [])
        self.path = path

    def __len__(self) -> int:
        return len(self.entries)

    def _split_counts(
        self, rule_versions: dict[str, int] | None
    ) -> tuple[Counter, set]:
        """(active suppression counts, expired entry keys)."""
        active: Counter[tuple[str, str, str]] = Counter()
        expired: set[tuple[str, str, str]] = set()
        for entry in self.entries:
            key = (
                entry["rule"],
                entry["path"],
                entry.get("snippet", ""),
            )
            recorded = entry.get("rule_version")
            current = (rule_versions or {}).get(entry["rule"])
            if (
                recorded is not None
                and current is not None
                and recorded != current
            ):
                expired.add(key)
            else:
                active[key] += 1
        return active, expired

    @classmethod
    def from_findings(
        cls,
        findings: list[Finding],
        rule_versions: dict[str, int] | None = None,
    ) -> "Baseline":
        versions = rule_versions or {}
        entries = [
            {
                "rule": finding.rule,
                "path": finding.path,
                "line": finding.line,
                "snippet": finding.snippet,
                "rule_version": versions.get(finding.rule, 1),
            }
            for finding in sorted(findings)
        ]
        return cls(entries)

    @classmethod
    def load(cls, path: str | os.PathLike) -> "Baseline":
        """Read a baseline file; schema errors raise cleanly."""
        try:
            payload = json.loads(Path(path).read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise AnalysisError(
                f"cannot read baseline {path}: {exc}"
            ) from exc
        if (
            not isinstance(payload, dict)
            or payload.get("version") not in SUPPORTED_BASELINE_VERSIONS
            or not isinstance(payload.get("findings"), list)
        ):
            raise AnalysisError(
                f"{path}: not a version-{BASELINE_VERSION} lint "
                "baseline (regenerate with --write-baseline)"
            )
        entries = []
        for entry in payload["findings"]:
            if (
                not isinstance(entry, dict)
                or not isinstance(entry.get("rule"), str)
                or not isinstance(entry.get("path"), str)
                or not isinstance(
                    entry.get("rule_version", 0), int
                )
            ):
                raise AnalysisError(
                    f"{path}: malformed baseline entry {entry!r}"
                )
            entries.append(entry)
        return cls(entries, path=str(path))

    def save(self, path: str | os.PathLike) -> None:
        """Write the baseline atomically (it is a committed artifact)."""
        payload = {
            "version": BASELINE_VERSION,
            "comment": (
                "Grandfathered findings; matched on (rule, path, "
                "snippet), line numbers are informational.  Entries "
                "expire when their rule's version bumps.  "
                "Regenerate with: repro-gorder lint --write-baseline"
            ),
            "findings": self.entries,
        }
        atomic_write_text(path, json.dumps(payload, indent=1) + "\n")

    def apply(
        self,
        findings: list[Finding],
        rule_versions: dict[str, int] | None = None,
    ) -> BaselineMatch:
        """Split findings into new vs baselined; report stale entries.

        ``rule_versions`` (``rule id -> current version``) drives v2
        expiry: an entry recorded against an older rule version never
        suppresses and is reported both stale and expired.
        """
        remaining, expired = self._split_counts(rule_versions)
        match = BaselineMatch()
        for finding in sorted(findings):
            if remaining.get(finding.key, 0) > 0:
                remaining[finding.key] -= 1
                match.suppressed.append(finding)
            else:
                match.new.append(finding)
        match.expired = sorted(expired)
        match.stale = sorted(
            set(
                key
                for key, count in remaining.items()
                if count > 0
            )
            | expired
        )
        return match
