"""Declarative registry of config knobs and their required surfaces.

Every experiment/serve knob in this repo must travel in lockstep
through a fixed set of *surfaces*: the runner memo key (or results
would alias across configurations), the sweep engine (or profiles
would silently ignore it), the CLI (or users could not set it), the
serve protocol (or the daemon would diverge from batch runs), and
the archive metadata (or saved results would be unreproducible).
PRs 3/4/8/9 each plumbed one knob through all of them by hand — and
PR 8's ``algo_backend`` missed several.

:class:`Knob` entries below make the contract checkable: REP009
(:mod:`repro.analysis.project_rules`) verifies that every dataclass
field of the classes in :data:`KNOB_CLASSES` is registered here, that
every declared surface token actually appears in the named scope, and
that no registry entry outlives its field.  Adding a field to
``Profile``/``OrderRequest``/``RunRequest`` without a registry entry
is a lint error by design — see CONTRIBUTING.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class KnobSurface:
    """One place a knob's value must reach.

    ``token`` must appear in the token set of ``scope`` (a qualified
    function/class name inside ``module``; ``''`` means anywhere in
    the module).  Tokens are identifiers, attribute/keyword names, or
    string literals — so ``"--cache-backend"`` checks the CLI flag
    and ``"cache_backend"`` checks a keyword argument.
    """

    name: str
    module: str
    scope: str
    token: str


@dataclass(frozen=True)
class Knob:
    """One configuration field and the surfaces it must reach.

    Structural fields (dataset lists, profile names) declare no
    surfaces: registering them is an explicit statement that they
    need no plumbing, reviewed like any other code change.
    """

    name: str
    declared_in: str
    surfaces: tuple[KnobSurface, ...] = field(default_factory=tuple)


#: Dataclasses whose every field must have a :class:`Knob` entry.
KNOB_CLASSES: tuple[str, ...] = (
    "repro.perf.experiments.Profile",
    "repro.serve.protocol.OrderRequest",
    "repro.serve.protocol.RunRequest",
)


def _surface(name: str, module: str, scope: str, token: str) -> KnobSurface:
    return KnobSurface(name=name, module=module, scope=scope, token=token)


_PROFILE = "repro.perf.experiments.Profile"
_ORDER_REQUEST = "repro.serve.protocol.OrderRequest"
_RUN_REQUEST = "repro.serve.protocol.RunRequest"


KNOBS: tuple[Knob, ...] = (
    # ------------------------------------------------------------------
    # Profile — the batch experiment configuration.
    # ------------------------------------------------------------------
    Knob(name="name", declared_in=_PROFILE),
    Knob(name="datasets", declared_in=_PROFILE),
    Knob(name="orderings", declared_in=_PROFILE),
    Knob(name="algorithms", declared_in=_PROFILE),
    Knob(
        name="pr_iterations",
        declared_in=_PROFILE,
        surfaces=(
            _surface(
                "algorithm params",
                "repro.perf.experiments",
                "algorithm_params",
                "pr_iterations",
            ),
        ),
    ),
    Knob(
        name="diam_num_sources",
        declared_in=_PROFILE,
        surfaces=(
            _surface(
                "algorithm params",
                "repro.perf.experiments",
                "algorithm_params",
                "diam_num_sources",
            ),
        ),
    ),
    Knob(name="seed", declared_in=_PROFILE),
    Knob(name="random_seeds", declared_in=_PROFILE),
    Knob(
        name="ordering_params",
        declared_in=_PROFILE,
        surfaces=(
            _surface(
                "runner memo key",
                "repro.perf.runner",
                "run_cell",
                "ordering_params",
            ),
            _surface(
                "sweep-engine cell",
                "repro.perf.engine",
                "_execute_cell_body",
                "ordering_params",
            ),
            _surface(
                "representative run",
                "repro.perf.experiments",
                "_representative_run",
                "ordering_params",
            ),
            _surface(
                "CLI profile plumbing",
                "repro.cli",
                "_profile_from_args",
                "ordering_params",
            ),
            _surface(
                "serve protocol",
                "repro.serve.protocol",
                "",
                "ordering_params",
            ),
            _surface(
                "ordering-store key",
                "repro.serve.server",
                "OrderingService._ordering_entry",
                "ordering_params",
            ),
        ),
    ),
    Knob(
        name="cache_backend",
        declared_in=_PROFILE,
        surfaces=(
            _surface(
                "runner dispatch",
                "repro.perf.runner",
                "run_cell",
                "cache_backend",
            ),
            _surface(
                "sweep-engine cell",
                "repro.perf.engine",
                "_execute_cell_body",
                "cache_backend",
            ),
            _surface(
                "representative run",
                "repro.perf.experiments",
                "_representative_run",
                "cache_backend",
            ),
            _surface(
                "CLI flag", "repro.cli", "", "--cache-backend"
            ),
            _surface(
                "serve protocol",
                "repro.serve.protocol",
                "",
                "cache_backend",
            ),
            _surface(
                "archive metadata",
                "repro.cli",
                "_cmd_sweep_run",
                "cache_backend",
            ),
        ),
    ),
    Knob(
        name="algo_backend",
        declared_in=_PROFILE,
        surfaces=(
            _surface(
                "runner dispatch",
                "repro.perf.runner",
                "run_cell",
                "algo_backend",
            ),
            _surface(
                "sweep-engine cell",
                "repro.perf.engine",
                "_execute_cell_body",
                "algo_backend",
            ),
            _surface(
                "representative run",
                "repro.perf.experiments",
                "_representative_run",
                "algo_backend",
            ),
            _surface(
                "CLI flag", "repro.cli", "", "--algo-backend"
            ),
            _surface(
                "serve protocol",
                "repro.serve.protocol",
                "",
                "algo_backend",
            ),
            _surface(
                "serve dispatch",
                "repro.serve.server",
                "OrderingService.handle_run",
                "algo_backend",
            ),
            _surface(
                "archive metadata",
                "repro.cli",
                "_cmd_sweep_run",
                "algo_backend",
            ),
        ),
    ),
    # ------------------------------------------------------------------
    # OrderRequest — the serve-daemon ordering request.
    # ------------------------------------------------------------------
    Knob(name="dataset", declared_in=_ORDER_REQUEST),
    Knob(name="ordering", declared_in=_ORDER_REQUEST),
    Knob(name="seed", declared_in=_ORDER_REQUEST),
    Knob(
        name="ordering_params",
        declared_in=_ORDER_REQUEST,
        surfaces=(
            _surface(
                "ordering-store key",
                "repro.serve.server",
                "OrderingService._ordering_entry",
                "ordering_params",
            ),
        ),
    ),
    Knob(name="include_permutation", declared_in=_ORDER_REQUEST),
    Knob(name="deadline_seconds", declared_in=_ORDER_REQUEST),
    # ------------------------------------------------------------------
    # RunRequest — the serve-daemon traced-run request.
    # ------------------------------------------------------------------
    Knob(name="dataset", declared_in=_RUN_REQUEST),
    Knob(name="algorithm", declared_in=_RUN_REQUEST),
    Knob(name="ordering", declared_in=_RUN_REQUEST),
    Knob(name="seed", declared_in=_RUN_REQUEST),
    Knob(
        name="ordering_params",
        declared_in=_RUN_REQUEST,
        surfaces=(
            _surface(
                "serve dispatch",
                "repro.serve.server",
                "OrderingService.handle_run",
                "ordering_params",
            ),
        ),
    ),
    Knob(
        name="cache_backend",
        declared_in=_RUN_REQUEST,
        surfaces=(
            _surface(
                "serve dispatch",
                "repro.serve.server",
                "OrderingService.handle_run",
                "cache_backend",
            ),
        ),
    ),
    Knob(
        name="algo_backend",
        declared_in=_RUN_REQUEST,
        surfaces=(
            _surface(
                "serve dispatch",
                "repro.serve.server",
                "OrderingService.handle_run",
                "algo_backend",
            ),
        ),
    ),
    Knob(name="profile", declared_in=_RUN_REQUEST),
    Knob(name="deadline_seconds", declared_in=_RUN_REQUEST),
)


def knobs_for(declared_in: str) -> dict[str, Knob]:
    """Registered knobs of one declaring class, keyed by field name."""
    return {
        knob.name: knob
        for knob in KNOBS
        if knob.declared_in == declared_in
    }
