"""Static-analysis core: findings, rules, visitors and suppression.

The engine (:mod:`repro.analysis.engine`) parses each file once into
an :class:`ast.Module`, wraps it in a :class:`FileContext`, and hands
the context to every registered :class:`Rule`.  Rules walk the tree
with :class:`RuleVisitor` subclasses and report :class:`Finding`
objects; the engine then applies inline ``# repro: noqa[RULE]``
suppression and the committed baseline before anything reaches the
user.

Rules register themselves with the :func:`register` decorator, so
importing :mod:`repro.analysis.rules` populates :data:`RULES` — the
same shape as the repo's ordering and algorithm registries.
"""

from __future__ import annotations

import ast
import enum
import re
from dataclasses import dataclass, field
from pathlib import PurePosixPath

from repro.errors import ReproError


class AnalysisError(ReproError):
    """A file or baseline could not be analysed (I/O, syntax, schema)."""


#: Version of the analysis engine itself.  Bumped when the fact
#: extraction or finding semantics change in a way that invalidates
#: cached project facts (see :mod:`repro.analysis.project`).
ENGINE_VERSION = 2


class Severity(enum.IntEnum):
    """How bad a finding is; ordering follows the numeric value."""

    INFO = 10
    WARNING = 20
    ERROR = 30

    @property
    def label(self) -> str:
        """Lower-case name used in reports and JSON."""
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Severity":
        try:
            return cls[label.upper()]
        except KeyError:
            known = ", ".join(s.label for s in cls)
            raise AnalysisError(
                f"unknown severity {label!r}; known: {known}"
            ) from None


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    ``snippet`` is the stripped source line — it doubles as the
    location-independent identity the baseline matches on, so moving
    code around does not resurrect grandfathered findings.
    """

    path: str
    line: int
    rule: str
    message: str
    snippet: str = ""
    severity: Severity = Severity.ERROR

    @property
    def key(self) -> tuple[str, str, str]:
        """Baseline identity: where (modulo line number) and what."""
        return (self.rule, self.path, self.snippet)

    def describe(self) -> str:
        """One-line ``path:line: RULE [severity] message`` rendering."""
        return (
            f"{self.path}:{self.line}: {self.rule} "
            f"[{self.severity.label}] {self.message}"
        )

    def to_dict(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "rule": self.rule,
            "severity": self.severity.label,
            "message": self.message,
            "snippet": self.snippet,
        }


@dataclass
class FileContext:
    """Everything a rule may inspect about one parsed file."""

    path: str
    source: str
    tree: ast.Module
    lines: list[str] = field(default_factory=list)

    @classmethod
    def parse(cls, path: str, source: str) -> "FileContext":
        try:
            tree = ast.parse(source)
        except SyntaxError as exc:
            raise AnalysisError(
                f"{path}:{exc.lineno or 0}: cannot parse: {exc.msg}"
            ) from exc
        return cls(
            path=PurePosixPath(path).as_posix(),
            source=source,
            tree=tree,
            lines=source.splitlines(),
        )

    def snippet(self, line: int) -> str:
        """The stripped source text of 1-based ``line`` ('' if absent)."""
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Rule:
    """Base class: one invariant, one id, one severity.

    Subclasses set the class attributes and implement :meth:`check`.
    Most build a :class:`RuleVisitor` and return its findings.
    """

    id: str = ""
    title: str = ""
    severity: Severity = Severity.ERROR
    #: One-paragraph rationale shown in ``docs/static_analysis.md``.
    rationale: str = ""
    #: Bumped whenever the rule's detection logic changes.  Baseline
    #: entries record the version they were written against; an entry
    #: whose rule has since bumped is expired (stale) rather than
    #: silently suppressing findings the new logic would surface.
    version: int = 1

    def check(self, ctx: FileContext) -> list[Finding]:
        raise NotImplementedError

    def finding(
        self,
        ctx: FileContext,
        node: ast.AST,
        message: str,
    ) -> Finding:
        """A :class:`Finding` anchored at ``node`` in ``ctx``."""
        line = getattr(node, "lineno", 0)
        return Finding(
            path=ctx.path,
            line=line,
            rule=self.id,
            message=message,
            snippet=ctx.snippet(line),
            severity=self.severity,
        )


class RuleVisitor(ast.NodeVisitor):
    """AST visitor that collects findings for one rule on one file."""

    def __init__(self, rule: Rule, ctx: FileContext) -> None:
        self.rule = rule
        self.ctx = ctx
        self.findings: list[Finding] = []

    def report(self, node: ast.AST, message: str) -> None:
        self.findings.append(self.rule.finding(self.ctx, node, message))


#: Registry of every known rule, keyed by id (``REP001`` ...).
RULES: dict[str, Rule] = {}


def register(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding one rule instance to :data:`RULES`."""
    rule = cls()
    if not re.fullmatch(r"REP\d{3}", rule.id):
        raise AnalysisError(
            f"rule id {rule.id!r} does not match REPnnn"
        )
    if rule.id in RULES:
        raise AnalysisError(f"duplicate rule id {rule.id}")
    RULES[rule.id] = rule
    return cls


def all_rules() -> list[Rule]:
    """Every registered rule, ordered by id."""
    from repro.analysis import rules as _rules  # noqa: F401  (registers)

    return [RULES[rule_id] for rule_id in sorted(RULES)]


#: ``# repro: noqa`` or ``# repro: noqa[REP001,REP002]``.
_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<rules>[A-Z0-9,\s]+)\])?",
    re.IGNORECASE,
)

#: Sentinel set meaning "suppress every rule on this line".
ALL_RULES = frozenset({"*"})


def noqa_directives(lines: list[str]) -> dict[int, frozenset[str]]:
    """Per-line suppression: 1-based line -> rule ids (or ALL_RULES)."""
    directives: dict[int, frozenset[str]] = {}
    for number, text in enumerate(lines, start=1):
        if "#" not in text:
            continue
        match = _NOQA.search(text)
        if match is None:
            continue
        names = match.group("rules")
        if names is None:
            directives[number] = ALL_RULES
        else:
            directives[number] = frozenset(
                name.strip().upper()
                for name in names.split(",")
                if name.strip()
            )
    return directives


def suppressed(
    finding: Finding, directives: dict[int, frozenset[str]]
) -> bool:
    """True if an inline noqa on the finding's line covers its rule."""
    rules = directives.get(finding.line)
    if rules is None:
        return False
    return rules is ALL_RULES or "*" in rules or finding.rule in rules
