"""Cross-module rules: lock-guard races, knob plumbing, oracle purity.

These rules run over a :class:`~repro.analysis.project.ProjectAnalysis`
rather than a single file — each encodes an invariant that spans
modules:

====== ==============================================================
REP008 A ``self`` attribute mutated under ``with self._lock:``
       somewhere must be guarded everywhere (lock-held helpers are
       inferred from their call sites).
REP009 Every config knob (``Profile``/``OrderRequest``/``RunRequest``
       field) is registered in :mod:`repro.analysis.knobs` and its
       declared surface tokens all resolve.
REP010 Reference/traced-scalar oracles are transitively free of RNG,
       I/O, telemetry mutation, and numpy in-place ops.
====== ==============================================================
"""

from __future__ import annotations

from collections import deque

from repro.analysis.core import Finding, Severity
from repro.analysis.knobs import KNOB_CLASSES, KNOBS, Knob
from repro.analysis.project import (
    ClassFacts,
    FileFacts,
    ProjectAnalysis,
    ProjectRule,
    register_project,
)


# ----------------------------------------------------------------------
# REP008 — lock-guard inference
# ----------------------------------------------------------------------
@register_project
class LockGuardRule(ProjectRule):
    """Guarded-elsewhere-but-not-here mutations of shared state.

    For every class that owns a ``threading`` lock, each ``self``
    attribute's mutation sites are split into guarded (under a
    ``with self.<lock>:`` block, directly or via a lock-held helper)
    and unguarded.  An attribute with at least one guarded site makes
    every unguarded site a finding: either the guard is missing (a
    race) or the attribute is not actually shared (then no site
    should take the lock).

    Lock-held helpers are inferred by fixpoint: a method is
    lock-held if it is called at least once within the class and
    every intra-class call site runs under the lock (directly or
    from another lock-held method).  This keeps the
    ``OrderingCache._lookup``/``_evict_over_caps`` idiom — private
    helpers whose callers hold the lock — free of false positives.
    """

    id = "REP008"
    title = "lock-guarded attribute mutated without its lock"
    severity = Severity.ERROR
    version = 1
    rationale = (
        "PR 7 hand-fixed OrderingCache races that this inference "
        "catches mechanically: once any mutation site of an "
        "attribute takes a lock, an unguarded site is a data race "
        "waiting for a second thread."
    )

    def check_project(self, project: ProjectAnalysis) -> list[Finding]:
        findings: list[Finding] = []
        for module in project.modules():
            facts = project.facts[module]
            for name in sorted(facts.classes):
                findings.extend(
                    self._check_class(facts, facts.classes[name])
                )
        return findings

    # -- per-class inference -------------------------------------------
    def _canonical_lock(
        self, cls: ClassFacts, guard: str | None
    ) -> str | None:
        """Resolve a guard attr to the lock it holds (None if not one)."""
        if guard is None:
            return None
        seen = set()
        while guard in cls.lock_aliases and guard not in seen:
            seen.add(guard)
            guard = cls.lock_aliases[guard]
        return guard if guard in cls.lock_attrs else None

    def _lock_held_methods(self, cls: ClassFacts) -> dict[str, str]:
        """Method name -> lock it provably always runs under."""
        sites_by_callee: dict[str, list] = {}
        for call in cls.self_calls:
            sites_by_callee.setdefault(call.callee, []).append(call)
        held: dict[str, str] = {}
        changed = True
        while changed:
            changed = False
            for callee, sites in sites_by_callee.items():
                if callee in held or callee not in cls.methods:
                    continue
                locks = set()
                for site in sites:
                    lock = self._canonical_lock(cls, site.guard)
                    if lock is None:
                        lock = held.get(site.method)
                    locks.add(lock)
                if len(locks) == 1 and None not in locks:
                    held[callee] = locks.pop()
                    changed = True
        return held

    def _check_class(
        self, facts: FileFacts, cls: ClassFacts
    ) -> list[Finding]:
        if not cls.lock_attrs:
            return []
        held = self._lock_held_methods(cls)
        ignore = set(cls.lock_attrs) | set(cls.lock_aliases)
        by_attr: dict[str, list] = {}
        for site in cls.mutations:
            if site.attr in ignore:
                continue
            by_attr.setdefault(site.attr, []).append(site)
        findings = []
        for attr in sorted(by_attr):
            sites = by_attr[attr]
            guarded, unguarded = [], []
            for site in sites:
                lock = self._canonical_lock(cls, site.guard)
                if lock is None:
                    lock = held.get(site.method)
                (guarded if lock is not None else unguarded).append(
                    (site, lock)
                )
            if not guarded or not unguarded:
                continue
            example_site, example_lock = guarded[0]
            for site, _ in unguarded:
                findings.append(
                    self.project_finding(
                        facts.path,
                        site.line,
                        site.snippet,
                        f"{cls.name}.{site.method} mutates "
                        f"self.{attr} ({site.kind}) without holding "
                        f"self.{example_lock}, but "
                        f"{len(guarded)} other site(s) guard it "
                        f"(e.g. {cls.name}.{example_site.method} "
                        f"line {example_site.line})",
                    )
                )
        return findings


# ----------------------------------------------------------------------
# REP009 — knob-plumbing completeness
# ----------------------------------------------------------------------
@register_project
class KnobPlumbingRule(ProjectRule):
    """Every config knob registered, every surface token present.

    Checks three directions against :data:`repro.analysis.knobs.KNOBS`:
    an unregistered dataclass field of a knob class, a registered
    surface whose token is missing from its scope, and a registry
    entry whose declaring field no longer exists.  Classes whose
    module is outside the analysed tree are skipped, so partial-path
    lints do not fabricate findings.
    """

    id = "REP009"
    title = "config knob missing from a required surface"
    severity = Severity.ERROR
    version = 1
    rationale = (
        "Each knob must travel through runner memo key, sweep "
        "engine, CLI, serve protocol, and archive metadata in "
        "lockstep; a missed surface silently aliases results "
        "across configurations (PR 8's algo_backend missed three)."
    )

    def __init__(
        self,
        registry: tuple[Knob, ...] | None = None,
        classes: tuple[str, ...] | None = None,
    ) -> None:
        self.registry = KNOBS if registry is None else registry
        self.classes = KNOB_CLASSES if classes is None else classes

    def check_project(self, project: ProjectAnalysis) -> list[Finding]:
        findings: list[Finding] = []
        for declared_in in self.classes:
            module, _, class_name = declared_in.rpartition(".")
            facts = project.module(module)
            if facts is None:
                continue
            cls = facts.classes.get(class_name)
            if cls is None:
                findings.append(
                    self.project_finding(
                        facts.path,
                        1,
                        "",
                        f"knob class {declared_in} not found; update "
                        f"KNOB_CLASSES in repro.analysis.knobs",
                    )
                )
                continue
            findings.extend(
                self._check_class(project, facts, cls, declared_in)
            )
        return findings

    def _check_class(
        self,
        project: ProjectAnalysis,
        facts: FileFacts,
        cls: ClassFacts,
        declared_in: str,
    ) -> list[Finding]:
        findings = []
        registered = {
            knob.name: knob
            for knob in self.registry
            if knob.declared_in == declared_in
        }
        fields = {entry["name"]: entry for entry in cls.fields}
        for name in sorted(set(fields) - set(registered)):
            entry = fields[name]
            findings.append(
                self.project_finding(
                    facts.path,
                    entry["line"],
                    entry["snippet"],
                    f"field {name!r} of {declared_in} has no entry in "
                    f"the knob registry (repro.analysis.knobs); "
                    f"declare its surfaces, or register it with no "
                    f"surfaces if it is structural",
                )
            )
        for name in sorted(set(registered) - set(fields)):
            findings.append(
                self.project_finding(
                    facts.path,
                    cls.line,
                    cls.snippet,
                    f"knob {name!r} is registered for {declared_in} "
                    f"but the field no longer exists; remove the "
                    f"stale registry entry",
                )
            )
        for name in sorted(set(registered) & set(fields)):
            knob = registered[name]
            entry = fields[name]
            for surface in knob.surfaces:
                problem = self._check_surface(project, surface)
                if problem is None:
                    continue
                findings.append(
                    self.project_finding(
                        facts.path,
                        entry["line"],
                        entry["snippet"],
                        f"knob {name!r} ({declared_in}) does not "
                        f"reach surface {surface.name!r}: {problem}",
                    )
                )
        return findings

    def _check_surface(
        self, project: ProjectAnalysis, surface
    ) -> str | None:
        facts = project.module(surface.module)
        if facts is None:
            return None  # surface module outside the analysed paths
        if surface.scope and surface.scope not in facts.scope_tokens:
            return (
                f"scope {surface.scope!r} not found in "
                f"{surface.module}"
            )
        if surface.token not in facts.tokens(surface.scope):
            where = surface.scope or "module scope"
            return (
                f"token {surface.token!r} not found in "
                f"{surface.module}:{where}"
            )
        return None


# ----------------------------------------------------------------------
# REP010 — oracle purity
# ----------------------------------------------------------------------
@register_project
class OraclePurityRule(ProjectRule):
    """Reference oracles must stay transitively pure.

    Roots are ``*_reference``/``*_traced_scalar`` functions plus
    anything bound via a ``traced_scalar=`` keyword.  A breadth-first
    walk of the approximate call graph from each root collects the
    impurity markers (RNG, I/O, telemetry mutation, numpy in-place)
    the fact extractor recorded; each impure site reachable from an
    oracle is a finding, annotated with the call path that reaches
    it.
    """

    id = "REP010"
    title = "reference oracle transitively impure"
    severity = Severity.ERROR
    version = 1
    rationale = (
        "The scalar oracles are the ground truth the vectorised "
        "runtime is checked against (counter-identical backends); "
        "hidden RNG, I/O, or telemetry mutation makes that ground "
        "truth flaky or order-dependent."
    )

    def check_project(self, project: ProjectAnalysis) -> list[Finding]:
        table = project.symbol_table()
        graph = project.call_graph()
        roots = self._roots(project, table)
        # site identity -> (first root, call path, site, facts)
        reported: dict[tuple[str, int], tuple] = {}
        for root in sorted(roots):
            for node, path in self._walk(graph, root):
                facts, scope = self._locate(project, table, node)
                if facts is None:
                    continue
                for site in facts.purity.get(scope, ()):
                    identity = (facts.path, site.line)
                    if identity not in reported:
                        reported[identity] = (root, path, site, facts)
        findings = []
        for identity in sorted(reported):
            root, path, site, facts = reported[identity]
            via = " -> ".join(path)
            findings.append(
                self.project_finding(
                    facts.path,
                    site.line,
                    site.snippet,
                    f"oracle {root} {site.what} "
                    f"(call path: {via})",
                )
            )
        return findings

    def _roots(
        self, project: ProjectAnalysis, table: dict[str, dict]
    ) -> set[str]:
        roots = set()
        for module, facts in project.facts.items():
            for entry in facts.oracle_roots:
                if entry.startswith("@local:"):
                    candidates = (
                        f"{module}.{entry.removeprefix('@local:')}",
                    )
                else:
                    # Definition-site roots are module-relative
                    # qualnames; kwarg-bound roots may already be
                    # fully qualified via the import map.
                    candidates = (f"{module}.{entry}", entry)
                for candidate in candidates:
                    if candidate in table:
                        roots.add(candidate)
                        break
        return roots

    def _walk(self, graph: dict[str, set[str]], root: str):
        """Yield (node, call path from root) in BFS order."""
        queue = deque([(root, (root,))])
        seen = {root}
        while queue:
            node, path = queue.popleft()
            yield node, path
            for callee in sorted(graph.get(node, ())):
                if callee in seen:
                    continue
                seen.add(callee)
                queue.append((callee, path + (callee,)))

    def _locate(
        self,
        project: ProjectAnalysis,
        table: dict[str, dict],
        node: str,
    ) -> tuple[FileFacts | None, str]:
        info = table.get(node)
        if info is None:
            return None, ""
        module = info["module"]
        facts = project.module(module)
        scope = node[len(module) + 1:] if facts is not None else ""
        return facts, scope
