"""Whole-program analysis: per-file facts, project graphs, caching.

The per-file engine (:mod:`repro.analysis.engine`) sees one module at
a time; the invariants that actually bite — a mutation missing the
lock every *other* method takes, a config knob plumbed through four
of its five surfaces, an oracle that transitively calls the RNG —
span modules.  This layer parses all of ``src/repro`` once into:

* a **project symbol table** (qualified classes/functions per module),
* an **import graph** (top-level edges for cycle detection, deferred
  function-level edges reported separately),
* an **approximate call graph** (resolved imports, local calls and
  ``self.`` method calls), and
* per-class **lock facts**: which attributes hold ``threading`` locks,
  which attribute mutations happen under which ``with self._lock:``
  guard.

Everything a cross-module rule needs is distilled into a JSON-
serialisable :class:`FileFacts` per file, so the expensive part —
parsing and fact extraction — is cached on disk keyed by content
hash.  A warm run loads facts (and the cached per-file findings)
without touching :mod:`ast` at all; only the cheap cross-module rule
evaluation re-runs.  The cache signature folds in the engine version
and every rule's version, so bumping a rule invalidates stale facts
instead of silently replaying old findings.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import asdict, dataclass, field
from pathlib import Path

from repro.analysis.core import (
    ENGINE_VERSION,
    AnalysisError,
    FileContext,
    Finding,
    Rule,
    Severity,
    all_rules,
    noqa_directives,
    suppressed,
)
from repro.analysis.imports import ImportMap, attr_root, call_name
from repro.ioutil import atomic_write_text

#: Version of the fact-extraction schema below.  Bumped whenever
#: :class:`FileFacts` gains/changes fields, invalidating disk caches.
FACTS_VERSION = 1

#: Conventional on-disk cache location at the repo root.
DEFAULT_PROJECT_CACHE = ".repro-lint-cache.json"

#: ``threading`` constructors that create a lock-like object.
LOCK_CONSTRUCTORS = frozenset({
    "Lock", "RLock", "Condition", "Semaphore", "BoundedSemaphore",
})

#: Container methods that mutate the receiver in place.
MUTATING_METHODS = frozenset({
    "append", "appendleft", "extend", "extendleft", "insert",
    "remove", "discard", "pop", "popleft", "popitem", "clear",
    "update", "setdefault", "move_to_end", "add", "sort", "reverse",
})

#: Maximum string-constant length recorded as a scope token.
_TOKEN_MAX_LEN = 80


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def module_name_for(path: Path) -> str:
    """Dotted module name from package structure (``''`` if loose).

    Walks up from the file while each parent directory holds an
    ``__init__.py`` — so any copy of the tree (a tmp fixture, a CI
    checkout) names its modules identically regardless of where the
    tree sits on disk.
    """
    parts: list[str] = []
    if path.name != "__init__.py":
        parts.append(path.stem)
    parent = path.parent
    while (parent / "__init__.py").exists():
        parts.append(parent.name)
        parent = parent.parent
    return ".".join(reversed(parts))


# ----------------------------------------------------------------------
# Per-file facts
# ----------------------------------------------------------------------
@dataclass
class ImportEdge:
    """One import statement, resolved to an absolute module path."""

    target: str
    names: list[str] = field(default_factory=list)
    deferred: bool = False
    line: int = 0


@dataclass
class MutationSite:
    """One mutation of a ``self.<attr>`` inside a class method."""

    attr: str
    method: str
    line: int
    snippet: str
    kind: str
    #: ``self.<X>`` attribute named by the nearest enclosing ``with``
    #: (classified against the class's lock attrs later), or ``None``.
    guard: str | None = None


@dataclass
class SelfCall:
    """An intra-class ``self.method(...)`` call site."""

    method: str
    callee: str
    line: int
    guard: str | None = None


@dataclass
class ClassFacts:
    """Everything REP008/REP009 need to know about one class."""

    name: str
    line: int
    snippet: str
    #: Attributes assigned a ``threading`` lock-like object.
    lock_attrs: list[str] = field(default_factory=list)
    #: Lock aliases: ``Condition(self._lock)`` guards ``_lock`` too.
    lock_aliases: dict[str, str] = field(default_factory=dict)
    #: Dataclass-style annotated fields declared in the class body.
    fields: list[dict] = field(default_factory=list)
    mutations: list[MutationSite] = field(default_factory=list)
    self_calls: list[SelfCall] = field(default_factory=list)
    methods: list[str] = field(default_factory=list)


@dataclass
class PuritySite:
    """One impure operation inside a function body."""

    line: int
    snippet: str
    what: str


@dataclass
class FileFacts:
    """The JSON-serialisable distillate of one parsed file."""

    path: str
    module: str
    sha: str
    imports: list[ImportEdge] = field(default_factory=list)
    #: Qualified name -> {kind, line, snippet}.
    symbols: dict[str, dict] = field(default_factory=dict)
    classes: dict[str, ClassFacts] = field(default_factory=dict)
    #: Function qualname -> called targets (dotted / @self:attr /
    #: @local:name markers, resolved at project level).
    calls: dict[str, list[str]] = field(default_factory=dict)
    purity: dict[str, list[PuritySite]] = field(default_factory=dict)
    oracle_roots: list[str] = field(default_factory=list)
    #: Scope qualname ('' = whole module) -> sorted token list.
    scope_tokens: dict[str, list[str]] = field(default_factory=dict)
    #: 1-based line (as str, JSON keys) -> suppressed rule ids.
    noqa: dict[str, list[str]] = field(default_factory=dict)
    #: Per-file rule findings (already noqa-filtered), as dicts.
    findings: list[dict] = field(default_factory=list)

    # -- serialisation -------------------------------------------------
    def to_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "FileFacts":
        facts = cls(
            path=payload["path"],
            module=payload["module"],
            sha=payload["sha"],
        )
        facts.imports = [
            ImportEdge(**entry) for entry in payload.get("imports", [])
        ]
        facts.symbols = dict(payload.get("symbols", {}))
        for name, raw in payload.get("classes", {}).items():
            cf = ClassFacts(
                name=raw["name"],
                line=raw["line"],
                snippet=raw["snippet"],
                lock_attrs=list(raw.get("lock_attrs", [])),
                lock_aliases=dict(raw.get("lock_aliases", {})),
                fields=list(raw.get("fields", [])),
                methods=list(raw.get("methods", [])),
            )
            cf.mutations = [
                MutationSite(**site)
                for site in raw.get("mutations", [])
            ]
            cf.self_calls = [
                SelfCall(**site) for site in raw.get("self_calls", [])
            ]
            facts.classes[name] = cf
        facts.calls = {
            name: list(targets)
            for name, targets in payload.get("calls", {}).items()
        }
        facts.purity = {
            name: [PuritySite(**site) for site in sites]
            for name, sites in payload.get("purity", {}).items()
        }
        facts.oracle_roots = list(payload.get("oracle_roots", []))
        facts.scope_tokens = {
            name: list(tokens)
            for name, tokens in payload.get("scope_tokens", {}).items()
        }
        facts.noqa = {
            line: list(rules)
            for line, rules in payload.get("noqa", {}).items()
        }
        facts.findings = list(payload.get("findings", []))
        return facts

    # -- queries -------------------------------------------------------
    def tokens(self, scope: str) -> frozenset[str]:
        """Token set of ``scope`` ('' = the whole module)."""
        return frozenset(self.scope_tokens.get(scope, ()))

    def noqa_rules(self, line: int) -> frozenset[str]:
        return frozenset(self.noqa.get(str(line), ()))

    def suppresses(self, rule_id: str, line: int) -> bool:
        rules = self.noqa_rules(line)
        return "*" in rules or rule_id in rules


# ----------------------------------------------------------------------
# Fact extraction
# ----------------------------------------------------------------------
class _FactExtractor(ast.NodeVisitor):
    """One traversal collecting every fact the project layer needs."""

    def __init__(self, ctx: FileContext, module: str) -> None:
        self.ctx = ctx
        self.module = module
        self.imports = ImportMap(ctx.tree)
        self.facts = FileFacts(path=ctx.path, module=module, sha="")
        #: (kind, name) scope stack; kinds: class | function.
        self._scopes: list[tuple[str, str]] = []
        #: ``self.<attr>`` guard stack inside the current method.
        self._guards: list[str] = []
        self._class_stack: list[ClassFacts] = []
        self._function_depth = 0

    # -- helpers -------------------------------------------------------
    def _qualname(self, name: str | None = None) -> str:
        parts = [scope_name for _, scope_name in self._scopes]
        if name is not None:
            parts.append(name)
        return ".".join(parts)

    def _current_function(self) -> str | None:
        for kind, name in reversed(self._scopes):
            if kind == "function":
                return self._qualname()
        return None

    def _current_method(self) -> tuple[ClassFacts, str] | None:
        """(class facts, method name) when directly inside a method."""
        if not self._class_stack:
            return None
        for kind, name in reversed(self._scopes):
            if kind == "function":
                return self._class_stack[-1], name
            if kind == "class":
                return None
        return None

    def _self_attr(self, node: ast.AST) -> str | None:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        return None

    def _snippet(self, node: ast.AST) -> str:
        return self.ctx.snippet(getattr(node, "lineno", 0))

    # -- imports -------------------------------------------------------
    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            self.facts.imports.append(
                ImportEdge(
                    target=alias.name,
                    deferred=self._function_depth > 0,
                    line=node.lineno,
                )
            )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        target = node.module or ""
        if node.level:
            # Resolve ``from . import x`` against our own module.
            base = self.module.split(".")
            if Path(self.ctx.path).name != "__init__.py":
                base = base[:-1]
            cut = node.level - 1
            if cut:
                base = base[:-cut]
            target = ".".join(base + ([node.module] if node.module else []))
        names = [
            alias.name for alias in node.names if alias.name != "*"
        ]
        self.facts.imports.append(
            ImportEdge(
                target=target,
                names=names,
                deferred=self._function_depth > 0,
                line=node.lineno,
            )
        )
        self.generic_visit(node)

    # -- scopes --------------------------------------------------------
    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        qualname = self._qualname(node.name)
        self.facts.symbols[qualname] = {
            "kind": "class",
            "line": node.lineno,
            "snippet": self._snippet(node),
        }
        cls = ClassFacts(
            name=qualname,
            line=node.lineno,
            snippet=self._snippet(node),
        )
        self.facts.classes[qualname] = cls
        # Annotated class-body targets = dataclass-style fields.
        for stmt in node.body:
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                cls.fields.append(
                    {
                        "name": stmt.target.id,
                        "line": stmt.lineno,
                        "snippet": self.ctx.snippet(stmt.lineno),
                    }
                )
        self._scopes.append(("class", node.name))
        self._class_stack.append(cls)
        self._collect_scope_tokens(node, qualname)
        self.generic_visit(node)
        self._class_stack.pop()
        self._scopes.pop()

    def _visit_function(self, node) -> None:
        qualname = self._qualname(node.name)
        self.facts.symbols[qualname] = {
            "kind": "function",
            "line": node.lineno,
            "snippet": self._snippet(node),
        }
        if self._class_stack and self._scopes[-1][0] == "class":
            self._class_stack[-1].methods.append(node.name)
        if node.name.endswith(("_reference", "_traced_scalar")):
            self.facts.oracle_roots.append(qualname)
        self._scopes.append(("function", node.name))
        self._function_depth += 1
        guards = self._guards
        self._guards = []  # guards never span function boundaries
        self._collect_scope_tokens(node, qualname)
        self.generic_visit(node)
        self._guards = guards
        self._function_depth -= 1
        self._scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    # -- guard tracking ------------------------------------------------
    def _guard_attrs(self, node) -> list[str]:
        attrs = []
        for item in node.items:
            attr = self._self_attr(item.context_expr)
            if attr is not None:
                attrs.append(attr)
        return attrs

    def _visit_with(self, node) -> None:
        attrs = self._guard_attrs(node)
        self._guards.extend(attrs)
        self.generic_visit(node)
        for _ in attrs:
            self._guards.pop()

    visit_With = _visit_with
    visit_AsyncWith = _visit_with

    def _active_guard(self) -> str | None:
        return self._guards[-1] if self._guards else None

    # -- mutations and lock discovery ----------------------------------
    def _record_mutation(
        self, attr: str, node: ast.AST, kind: str
    ) -> None:
        located = self._current_method()
        if located is None:
            return
        cls, method = located
        if method == "__init__":
            return  # pre-publication construction is single-threaded
        cls.mutations.append(
            MutationSite(
                attr=attr,
                method=method,
                line=getattr(node, "lineno", 0),
                snippet=self._snippet(node),
                kind=kind,
                guard=self._active_guard(),
            )
        )

    def _lock_constructor(self, value: ast.AST) -> ast.Call | None:
        if not isinstance(value, ast.Call):
            return None
        resolved = self.imports.resolve(value.func)
        if resolved is not None:
            root, _, last = resolved.rpartition(".")
            if root == "threading" and last in LOCK_CONSTRUCTORS:
                return value
            return None
        name = call_name(value)
        if (
            name in LOCK_CONSTRUCTORS
            and attr_root(value.func) in (None, "threading")
        ):
            return value
        return None

    def _record_lock_assign(
        self, target_attr: str, value: ast.AST
    ) -> None:
        call = self._lock_constructor(value)
        if call is None or not self._class_stack:
            return
        cls = self._class_stack[-1]
        if target_attr not in cls.lock_attrs:
            cls.lock_attrs.append(target_attr)
        # Condition(self._lock) aliases the wrapped lock: holding
        # either guards the state both protect.
        if call.args:
            wrapped = self._self_attr(call.args[0])
            if wrapped is not None:
                cls.lock_aliases[target_attr] = wrapped

    def _handle_assign_target(
        self, target: ast.AST, node: ast.AST, kind: str
    ) -> None:
        attr = self._self_attr(target)
        if attr is not None:
            self._record_mutation(attr, node, kind)
            return
        if isinstance(target, ast.Subscript):
            attr = self._self_attr(target.value)
            if attr is not None:
                self._record_mutation(attr, node, f"{kind} (item)")
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._handle_assign_target(element, node, kind)

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            attr = self._self_attr(target)
            if attr is not None:
                self._record_lock_assign(attr, node.value)
            self._handle_assign_target(target, node, "assignment")
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            attr = self._self_attr(node.target)
            if attr is not None:
                self._record_lock_assign(attr, node.value)
            self._handle_assign_target(
                node.target, node, "assignment"
            )
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._handle_assign_target(
            node.target, node, "augmented assignment"
        )
        self.generic_visit(node)

    def visit_Delete(self, node: ast.Delete) -> None:
        for target in node.targets:
            attr = self._self_attr(target)
            if attr is None and isinstance(target, ast.Subscript):
                attr = self._self_attr(target.value)
            if attr is not None:
                self._record_mutation(attr, node, "del")
        self.generic_visit(node)

    # -- calls ---------------------------------------------------------
    def _call_target(self, node: ast.Call) -> str | None:
        resolved = self.imports.resolve(node.func)
        if resolved is not None:
            return resolved
        func = node.func
        if isinstance(func, ast.Name):
            return f"@local:{func.id}"
        if isinstance(func, ast.Attribute):
            attr = self._self_attr(func)
            if attr is not None:
                return f"@self:{attr}"
        return None

    def visit_Call(self, node: ast.Call) -> None:
        scope = self._current_function()
        target = self._call_target(node)
        if scope is not None and target is not None:
            self.facts.calls.setdefault(scope, [])
            if target not in self.facts.calls[scope]:
                self.facts.calls[scope].append(target)
        # Intra-class dispatch for lock-held helper inference.
        located = self._current_method()
        if located is not None and target is not None:
            cls, method = located
            if target.startswith("@self:"):
                cls.self_calls.append(
                    SelfCall(
                        method=method,
                        callee=target.removeprefix("@self:"),
                        line=node.lineno,
                        guard=self._active_guard(),
                    )
                )
        # Mutating container method on a self attribute?
        func = node.func
        if isinstance(func, ast.Attribute):
            if func.attr in MUTATING_METHODS:
                attr = self._self_attr(func.value)
                if attr is not None:
                    self._record_mutation(
                        attr, node, f".{func.attr}()"
                    )
        # Oracle registration hook: traced_scalar=<fn>.
        for keyword in node.keywords:
            if keyword.arg != "traced_scalar":
                continue
            value = keyword.value
            resolved = self.imports.resolve(value)
            if resolved is not None:
                self.facts.oracle_roots.append(resolved)
            elif isinstance(value, ast.Name):
                self.facts.oracle_roots.append(
                    f"@local:{value.id}"
                )
        if scope is not None:
            self._record_purity(scope, node)
        self.generic_visit(node)

    # -- purity --------------------------------------------------------
    _NUMPY_IO = frozenset({
        "numpy.load", "numpy.save", "numpy.savez",
        "numpy.savez_compressed", "numpy.loadtxt", "numpy.savetxt",
    })
    _NUMPY_INPLACE = frozenset({
        "numpy.copyto", "numpy.put", "numpy.place", "numpy.putmask",
    })
    _PATH_IO = frozenset({
        "read_text", "write_text", "read_bytes", "write_bytes",
    })
    _TELEMETRY_ATTRS = frozenset({
        "inc", "event", "progress", "span", "profile",
    })

    _SEEDED_RNG = frozenset({
        "numpy.random.default_rng", "numpy.random.seed",
        "random.Random", "random.seed",
    })

    def _purity_violation(self, node: ast.Call) -> str | None:
        resolved = self.imports.resolve(node.func)
        if resolved is not None:
            if resolved in self._SEEDED_RNG and (
                node.args or node.keywords
            ):
                # Explicitly seeded generators are deterministic;
                # REP001 polices the unseeded forms per file.
                pass
            elif resolved.startswith("numpy.random.") or (
                resolved == "random"
                or resolved.startswith("random.")
            ):
                return f"draws randomness via {resolved}"
            if resolved in self._NUMPY_IO:
                return f"performs I/O via {resolved}"
            if resolved in self._NUMPY_INPLACE or (
                resolved.startswith("numpy.")
                and resolved.endswith(".at")
            ):
                return f"mutates arrays in place via {resolved}"
            if resolved.startswith("repro.obs"):
                return f"mutates telemetry via {resolved}"
        name = call_name(node)
        root = attr_root(node.func)
        if isinstance(node.func, ast.Name):
            if name == "open":
                return "performs I/O via open()"
            if name == "print":
                return "performs I/O via print()"
        if name in self._PATH_IO and isinstance(
            node.func, ast.Attribute
        ):
            return f"performs I/O via .{name}()"
        if (
            name in self._TELEMETRY_ATTRS
            and root in ("obs", "telemetry", "TELEMETRY")
        ):
            return f"mutates telemetry via {root}.{name}()"
        if resolved is not None and resolved.startswith("numpy."):
            for keyword in node.keywords:
                if keyword.arg == "out":
                    return (
                        f"mutates arrays in place via "
                        f"{resolved}(out=...)"
                    )
        return None

    def _record_purity(self, scope: str, node: ast.Call) -> None:
        what = self._purity_violation(node)
        if what is None:
            return
        self.facts.purity.setdefault(scope, []).append(
            PuritySite(
                line=node.lineno,
                snippet=self._snippet(node),
                what=what,
            )
        )

    # -- tokens --------------------------------------------------------
    def _collect_scope_tokens(self, node: ast.AST, scope: str) -> None:
        tokens: set[str] = set()
        for child in ast.walk(node):
            if isinstance(child, ast.Name):
                tokens.add(child.id)
            elif isinstance(child, ast.Attribute):
                tokens.add(child.attr)
            elif isinstance(child, ast.keyword) and child.arg:
                tokens.add(child.arg)
            elif isinstance(child, ast.arg):
                tokens.add(child.arg)
            elif isinstance(child, ast.Constant) and isinstance(
                child.value, str
            ):
                if 0 < len(child.value) <= _TOKEN_MAX_LEN:
                    tokens.add(child.value)
        self.facts.scope_tokens[scope] = sorted(tokens)


def extract_facts(
    ctx: FileContext,
    module: str,
    sha: str,
    rules: list[Rule] | None = None,
) -> FileFacts:
    """Distill one parsed file into :class:`FileFacts`.

    Runs the per-file rule pack as part of extraction so cached files
    replay their findings without re-parsing.
    """
    extractor = _FactExtractor(ctx, module)
    extractor._collect_scope_tokens(ctx.tree, "")
    extractor.visit(ctx.tree)
    facts = extractor.facts
    facts.sha = sha
    directives = noqa_directives(ctx.lines)
    facts.noqa = {
        str(line): sorted(rule_ids)
        for line, rule_ids in directives.items()
    }
    for rule in rules if rules is not None else all_rules():
        for finding in rule.check(ctx):
            if not suppressed(finding, directives):
                facts.findings.append(finding.to_dict())
    return facts


# ----------------------------------------------------------------------
# Project rules
# ----------------------------------------------------------------------
class ProjectRule(Rule):
    """A rule evaluated over the whole project's facts at once.

    Subclasses implement :meth:`check_project`; the per-file
    :meth:`~Rule.check` is inert so project rules can share the
    registry plumbing (ids, severities, versions, docs) without being
    run file-by-file.
    """

    def check(self, ctx: FileContext) -> list[Finding]:
        return []

    def check_project(
        self, project: "ProjectAnalysis"
    ) -> list[Finding]:
        raise NotImplementedError

    def project_finding(
        self,
        path: str,
        line: int,
        snippet: str,
        message: str,
    ) -> Finding:
        return Finding(
            path=path,
            line=line,
            rule=self.id,
            message=message,
            snippet=snippet,
            severity=self.severity,
        )


#: Registry of project-wide rules, keyed by id.
PROJECT_RULES: dict[str, ProjectRule] = {}


def register_project(cls: type[ProjectRule]) -> type[ProjectRule]:
    """Class decorator adding one project rule to the registry."""
    rule = cls()
    if rule.id in PROJECT_RULES:
        raise AnalysisError(f"duplicate project rule id {rule.id}")
    PROJECT_RULES[rule.id] = rule
    return cls


def all_project_rules() -> list[ProjectRule]:
    """Every registered project rule, ordered by id."""
    from repro.analysis import project_rules as _rules  # noqa: F401

    return [PROJECT_RULES[rule_id] for rule_id in sorted(PROJECT_RULES)]


def rule_versions() -> dict[str, int]:
    """``rule id -> version`` over file *and* project rules."""
    versions = {rule.id: rule.version for rule in all_rules()}
    versions.update(
        {rule.id: rule.version for rule in all_project_rules()}
    )
    return versions


def _cache_signature() -> str:
    payload = {
        "engine": ENGINE_VERSION,
        "facts": FACTS_VERSION,
        "rules": rule_versions(),
    }
    return _sha256(json.dumps(payload, sort_keys=True))


# ----------------------------------------------------------------------
# The project itself
# ----------------------------------------------------------------------
@dataclass
class ProjectAnalysis:
    """All facts of one source tree, plus its derived graphs."""

    #: Module name -> facts (files outside any package key by path).
    facts: dict[str, FileFacts] = field(default_factory=dict)
    files_parsed: int = 0
    files_cached: int = 0

    # -- construction --------------------------------------------------
    @classmethod
    def build(
        cls,
        paths: list[str] | tuple[str, ...],
        cache_path: str | os.PathLike | None = None,
        rules: list[Rule] | None = None,
    ) -> "ProjectAnalysis":
        """Parse (or cache-load) every python file under ``paths``."""
        from repro.analysis.engine import (
            _display_path,
            iter_python_files,
        )

        project = cls()
        signature = _cache_signature()
        cached_files: dict[str, dict] = {}
        if cache_path is not None and Path(cache_path).exists():
            cached_files = _load_cache(cache_path, signature)
        for file_path in iter_python_files(paths):
            display = _display_path(file_path)
            try:
                source = file_path.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                raise AnalysisError(
                    f"cannot read {file_path}: {exc}"
                ) from exc
            sha = _sha256(source)
            entry = cached_files.get(display)
            if entry is not None and entry.get("sha") == sha:
                facts = FileFacts.from_dict(entry["facts"])
                project.files_cached += 1
            else:
                ctx = FileContext.parse(display, source)
                module = module_name_for(file_path)
                facts = extract_facts(ctx, module, sha, rules=rules)
                project.files_parsed += 1
            project.facts[facts.module or facts.path] = facts
        if cache_path is not None:
            project.save_cache(cache_path, signature)
        return project

    def save_cache(
        self, cache_path: str | os.PathLike, signature: str | None = None
    ) -> None:
        payload = {
            "version": 1,
            "signature": signature or _cache_signature(),
            "files": {
                facts.path: {"sha": facts.sha, "facts": facts.to_dict()}
                for facts in self.facts.values()
            },
        }
        atomic_write_text(
            cache_path, json.dumps(payload, sort_keys=True)
        )

    # -- queries -------------------------------------------------------
    def module(self, name: str) -> FileFacts | None:
        return self.facts.get(name)

    def modules(self) -> list[str]:
        return sorted(self.facts)

    def symbol_table(self) -> dict[str, dict]:
        """Fully-qualified name -> symbol info across the project."""
        table: dict[str, dict] = {}
        for module, facts in self.facts.items():
            for qualname, info in facts.symbols.items():
                table[f"{module}.{qualname}"] = dict(
                    info, module=module, path=facts.path
                )
        return table

    def _resolve_import(
        self, edge: ImportEdge
    ) -> list[str]:
        """Internal modules one import statement pulls in.

        ``from pkg import submodule`` depends on the *submodule*, not
        on ``pkg``'s ``__init__`` — charging the package too would
        weld every registry-style package (whose ``__init__`` imports
        its submodules) into one giant fake cycle.  The package edge
        is kept only when a name resolves to a re-exported symbol
        rather than a submodule.
        """
        targets: list[str] = []
        symbol_names = 0
        for name in edge.names:
            candidate = f"{edge.target}.{name}"
            if candidate in self.facts:
                targets.append(candidate)
            else:
                symbol_names += 1
        if edge.target in self.facts and (
            symbol_names or not edge.names
        ):
            targets.append(edge.target)
        return targets

    def import_graph(
        self, include_deferred: bool = False
    ) -> dict[str, set[str]]:
        """Module -> internal modules it imports (top-level edges).

        Function-level (deferred) imports are excluded by default:
        they cannot create import-time cycles — that is exactly why
        the code deferred them — but :meth:`deferred_edges` reports
        them so the layering stays visible.
        """
        graph: dict[str, set[str]] = {
            module: set() for module in self.facts
        }
        for module, facts in self.facts.items():
            for edge in facts.imports:
                if edge.deferred and not include_deferred:
                    continue
                for target in self._resolve_import(edge):
                    if target != module:
                        graph[module].add(target)
        return graph

    def deferred_edges(self) -> list[tuple[str, str]]:
        """Function-level internal imports as (importer, imported)."""
        edges: set[tuple[str, str]] = set()
        for module, facts in self.facts.items():
            for edge in facts.imports:
                if not edge.deferred:
                    continue
                for target in self._resolve_import(edge):
                    if target != module:
                        edges.add((module, target))
        return sorted(edges)

    def import_cycles(self) -> list[list[str]]:
        """Strongly connected components of size > 1 (import cycles)."""
        graph = self.import_graph()
        return [
            sorted(component)
            for component in _strongly_connected(graph)
            if len(component) > 1
        ]

    # -- call graph ----------------------------------------------------
    def call_graph(self) -> dict[str, set[str]]:
        """Project-qualified caller -> callee edges (approximate).

        Resolves ``@local:name`` against the caller's module,
        ``@self:attr`` against the caller's class, and dotted paths
        against the project symbol table (with a module ``__init__``
        re-export fallback: ``repro.ordering.compute_ordering`` finds
        ``repro.ordering.base.compute_ordering``).
        """
        table = self.symbol_table()
        by_suffix: dict[str, list[str]] = {}
        for qualname in table:
            module, _, symbol = qualname.rpartition(".")
            by_suffix.setdefault(symbol, []).append(qualname)
        graph: dict[str, set[str]] = {}
        for module, facts in self.facts.items():
            for scope, targets in facts.calls.items():
                caller = f"{module}.{scope}"
                edges = graph.setdefault(caller, set())
                for target in targets:
                    for callee in self._resolve_call(
                        module, scope, target, table, by_suffix
                    ):
                        edges.add(callee)
        return graph

    def _resolve_call(
        self,
        module: str,
        scope: str,
        target: str,
        table: dict[str, dict],
        by_suffix: dict[str, list[str]],
    ) -> list[str]:
        if target.startswith("@local:"):
            name = target.removeprefix("@local:")
            qualname = f"{module}.{name}"
            return [qualname] if qualname in table else []
        if target.startswith("@self:"):
            attr = target.removeprefix("@self:")
            # scope is Class.method (possibly nested); find the class.
            parts = scope.split(".")
            for cut in range(len(parts) - 1, 0, -1):
                owner = ".".join(parts[:cut])
                candidate = f"{module}.{owner}.{attr}"
                if candidate in table:
                    return [candidate]
            return []
        if target in table:
            return [target]
        # Re-export through a package __init__: resolve by symbol
        # name when the dotted prefix is an internal package.
        prefix, _, symbol = target.rpartition(".")
        if prefix in self.facts:
            candidates = [
                qualname
                for qualname in by_suffix.get(symbol, ())
                if qualname.startswith(prefix.rsplit(".", 1)[0])
            ]
            if len(candidates) == 1:
                return candidates
        return []

    # -- findings ------------------------------------------------------
    def file_findings(self) -> list[Finding]:
        """Per-file rule findings replayed from the (cached) facts."""
        findings = []
        for facts in self.facts.values():
            for payload in facts.findings:
                findings.append(
                    Finding(
                        path=payload["path"],
                        line=payload["line"],
                        rule=payload["rule"],
                        message=payload["message"],
                        snippet=payload.get("snippet", ""),
                        severity=Severity.from_label(
                            payload.get("severity", "error")
                        ),
                    )
                )
        return findings

    def project_findings(
        self, project_rules: list[ProjectRule] | None = None
    ) -> list[Finding]:
        """Cross-module findings, with per-line noqa applied."""
        by_path = {
            facts.path: facts for facts in self.facts.values()
        }
        findings: list[Finding] = []
        rules = (
            project_rules
            if project_rules is not None
            else all_project_rules()
        )
        for rule in rules:
            for finding in rule.check_project(self):
                facts = by_path.get(finding.path)
                if facts is not None and facts.suppresses(
                    finding.rule, finding.line
                ):
                    continue
                findings.append(finding)
        return sorted(findings)


def _load_cache(
    cache_path: str | os.PathLike, signature: str
) -> dict[str, dict]:
    """Cached per-file entries, or ``{}`` on any mismatch.

    A malformed or stale cache silently degrades to a cold run —
    the cache is an accelerator, never a correctness input.
    """
    try:
        payload = json.loads(Path(cache_path).read_text())
    except (OSError, json.JSONDecodeError, UnicodeDecodeError):
        return {}
    if (
        not isinstance(payload, dict)
        or payload.get("version") != 1
        or payload.get("signature") != signature
        or not isinstance(payload.get("files"), dict)
    ):
        return {}
    return payload["files"]


def _strongly_connected(
    graph: dict[str, set[str]],
) -> list[list[str]]:
    """Tarjan's SCC, iteratively (the tree is deep enough to care)."""
    index_of: dict[str, int] = {}
    lowlink: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    components: list[list[str]] = []
    counter = 0

    for root in sorted(graph):
        if root in index_of:
            continue
        work: list[tuple[str, list[str], int]] = [
            (root, sorted(graph.get(root, ())), 0)
        ]
        while work:
            node, successors, position = work.pop()
            if position == 0:
                index_of[node] = lowlink[node] = counter
                counter += 1
                stack.append(node)
                on_stack.add(node)
            advanced = False
            for offset in range(position, len(successors)):
                successor = successors[offset]
                if successor not in index_of:
                    work.append((node, successors, offset + 1))
                    work.append(
                        (
                            successor,
                            sorted(graph.get(successor, ())),
                            0,
                        )
                    )
                    advanced = True
                    break
                if successor in on_stack:
                    lowlink[node] = min(
                        lowlink[node], index_of[successor]
                    )
            if advanced:
                continue
            if lowlink[node] == index_of[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                components.append(component)
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(
                    lowlink[parent], lowlink[node]
                )
    return components
