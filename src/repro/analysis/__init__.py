"""Project-aware static analysis: the ``repro.analysis`` rule engine.

An AST-based lint engine whose rules encode *this repo's* invariants
— the conventions the reproduction's correctness rests on and that
generic linters cannot know about:

========  ==========================================================
REP001    unseeded / legacy random number generation
REP002    non-atomic truncating writes outside ``repro.ioutil``
REP003    silently swallowed exceptions (bare/broad ``except``)
REP004    narrow numpy dtypes on accumulators (int32 overflow)
REP005    telemetry discipline (spans as context managers, one
          registry, greppable counter names)
REP006    builtin exceptions raised instead of ``ReproError``
REP007    per-element ``touch`` loops in algorithm code
REP008    lock-guarded attribute mutated without its lock *
REP009    config knob missing from a required surface *
REP010    reference oracle transitively impure *
========  ==========================================================

Rules marked ``*`` are whole-program rules: they run over the
project layer (:mod:`repro.analysis.project`), which parses all of
``src/repro`` once into a symbol table, import graph, and
approximate call graph, cached on disk by content hash.

Use it from the command line (``repro-gorder lint`` /
``repro-gorder lint --project`` / ``repro-gorder deps``), from CI
(the blocking ``lint`` job), or from tests::

    from repro.analysis import analyze_source, run_lint

    findings = analyze_source("import numpy as np\\nnp.random.rand(3)\\n")
    assert findings[0].rule == "REP001"

Suppress a finding inline with ``# repro: noqa[REP001]`` (bare
``# repro: noqa`` suppresses every rule on that line), or grandfather
it in the committed ``lint_baseline.json`` (see
:mod:`repro.analysis.baseline`).  ``docs/static_analysis.md`` walks
through every rule with bad/good examples.
"""

from repro.analysis.baseline import (
    BASELINE_VERSION,
    Baseline,
    BaselineMatch,
)
from repro.analysis.core import (
    ALL_RULES,
    ENGINE_VERSION,
    RULES,
    AnalysisError,
    FileContext,
    Finding,
    Rule,
    RuleVisitor,
    Severity,
    all_rules,
    noqa_directives,
    register,
    suppressed,
)
from repro.analysis.engine import (
    DEFAULT_BASELINE,
    DEFAULT_PATHS,
    LintReport,
    analyze_file,
    analyze_source,
    iter_python_files,
    run_lint,
    run_project_lint,
)
from repro.analysis.imports import ImportMap
from repro.analysis.project import (
    DEFAULT_PROJECT_CACHE,
    PROJECT_RULES,
    FileFacts,
    ProjectAnalysis,
    ProjectRule,
    all_project_rules,
    register_project,
    rule_versions,
)

__all__ = [
    "ALL_RULES",
    "AnalysisError",
    "BASELINE_VERSION",
    "Baseline",
    "BaselineMatch",
    "DEFAULT_BASELINE",
    "DEFAULT_PATHS",
    "DEFAULT_PROJECT_CACHE",
    "ENGINE_VERSION",
    "FileContext",
    "FileFacts",
    "Finding",
    "ImportMap",
    "LintReport",
    "PROJECT_RULES",
    "ProjectAnalysis",
    "ProjectRule",
    "RULES",
    "Rule",
    "RuleVisitor",
    "Severity",
    "all_project_rules",
    "all_rules",
    "analyze_file",
    "analyze_source",
    "iter_python_files",
    "noqa_directives",
    "register",
    "register_project",
    "rule_versions",
    "run_lint",
    "run_project_lint",
    "suppressed",
]
