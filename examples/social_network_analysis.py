"""Social-network analysis under a cache-friendly ordering.

A product-analytics style workload on a social-graph analogue:
influencer scoring (PageRank), engagement cores (k-core), reachability
(BFS/SCC) and friend-of-friend statistics (NQ).  Shows that analysis
*results* are pure graph properties — identical under any node
ordering — while the memory behaviour of the whole batch improves
under Gorder.

Run:  python examples/social_network_analysis.py
"""

import numpy as np

from repro import Memory
from repro.algorithms import (
    REGISTRY,
    core_decomposition,
    neighbor_query,
    pagerank,
    strongly_connected_components,
)
from repro.graph import generators, relabel
from repro.ordering import gorder_order


def main() -> None:
    grown = generators.social_graph(
        3000, edges_per_node=12, reciprocity=0.5, seed=99,
        name="community",
    )
    # Production exports rarely arrive in a friendly order: user ids
    # are hashes/UUIDs, so the on-disk layout is effectively random.
    # Model that by shuffling the ids before the analysis starts.
    scramble = np.random.default_rng(1).permutation(
        grown.num_nodes
    ).astype(np.int64)
    network = relabel(grown, scramble, name="community-hashed")
    print(f"social network: {network.num_nodes} users, "
          f"{network.num_edges} follows (hash-ordered ids)\n")

    # --- Analysis on the original layout --------------------------
    ranks = pagerank(network, iterations=40)
    cores = core_decomposition(network)
    components = strongly_connected_components(network)
    friend_degrees = neighbor_query(network)

    top = np.argsort(ranks)[::-1][:5]
    print("top influencers (PageRank):")
    for user in top:
        print(
            f"  user {int(user):5d}: rank {ranks[user]:.5f}, "
            f"core {int(cores[user])}, "
            f"friends-of-friends weight {int(friend_degrees[user])}"
        )
    largest_scc = np.bincount(components).max()
    print(f"largest strongly connected community: {largest_scc} users")
    print(f"deepest engagement core: {int(cores.max())}\n")

    # --- Same analysis after Gorder: identical answers ------------
    perm = gorder_order(network)
    ordered = relabel(network, perm)
    ranks_after = pagerank(ordered, iterations=40)
    assert np.allclose(ranks, ranks_after[perm])
    cores_after = core_decomposition(ordered)
    assert np.array_equal(cores, cores_after[perm])
    print("re-ran the analysis under Gorder: identical results")

    # --- ...but the batch runs with far fewer cache misses --------
    def batch_cost(graph) -> tuple[float, float]:
        total = 0.0
        misses = 0
        refs = 0
        for name in ("nq", "pr", "bfs", "kcore"):
            memory = Memory()
            params = {"iterations": 3} if name == "pr" else {}
            REGISTRY[name].traced(graph, memory, **params)
            total += memory.cost().total_cycles
            stats = memory.stats()
            misses += stats.l1_misses
            refs += stats.l1_refs
        return total, misses / refs

    base_cycles, base_mr = batch_cost(network)
    fast_cycles, fast_mr = batch_cost(ordered)
    print(
        f"analysis batch, original order: {base_cycles / 1e6:.1f}M "
        f"cycles, L1 miss rate {100 * base_mr:.1f}%"
    )
    print(
        f"analysis batch, Gorder:         {fast_cycles / 1e6:.1f}M "
        f"cycles, L1 miss rate {100 * fast_mr:.1f}%"
    )
    print(f"speedup: {base_cycles / fast_cycles:.2f}x")


if __name__ == "__main__":
    main()
