"""Reorder an on-disk edge list — the downstream user's workflow.

Takes a SNAP-style edge-list file, computes an ordering, and writes
the relabeled edge list plus the permutation, exactly what you would
feed into an existing C++/Rust graph engine to get the cache benefit
without changing the engine.

Run:  python examples/reorder_edge_list.py [input.txt] [ordering]

Without arguments it demonstrates the flow on a generated file.
"""

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro.graph import (
    generators,
    read_edge_list,
    relabel,
    write_edge_list,
)
from repro.ordering import ORDERING_NAMES, compute_ordering, gorder_score


def reorder_file(input_path: Path, ordering: str) -> None:
    graph = read_edge_list(input_path)
    print(f"read {input_path}: {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges")

    perm = compute_ordering(ordering, graph, seed=0)
    ordered = relabel(graph, perm)

    output_path = input_path.with_suffix(f".{ordering}.txt")
    perm_path = input_path.with_suffix(f".{ordering}.perm.txt")
    write_edge_list(ordered, output_path)
    np.savetxt(perm_path, perm, fmt="%d")

    before = gorder_score(graph, np.arange(graph.num_nodes))
    after = gorder_score(graph, perm)
    print(f"ordering      : {ordering}")
    print(f"locality score: F = {before} -> {after}")
    print(f"reordered list: {output_path}")
    print(f"permutation   : {perm_path} "
          "(line u holds the new id of old node u)")


def main() -> None:
    if len(sys.argv) >= 2:
        input_path = Path(sys.argv[1])
        ordering = sys.argv[2] if len(sys.argv) >= 3 else "gorder"
        if ordering not in ORDERING_NAMES:
            raise SystemExit(
                f"unknown ordering {ordering!r}; "
                f"choose from {', '.join(ORDERING_NAMES)}"
            )
        reorder_file(input_path, ordering)
        return

    # Demo mode: generate a small web graph, write it, reorder it.
    with tempfile.TemporaryDirectory() as tmp:
        demo = Path(tmp) / "crawl.txt"
        graph = generators.web_graph(
            800, pages_per_host=40, out_degree=8, seed=5, name="demo"
        )
        write_edge_list(graph, demo)
        print("demo mode: generated", demo)
        reorder_file(demo, "gorder")


if __name__ == "__main__":
    main()
