"""Evolving graphs: keep the ordering fresh without recomputation.

The replication's closing discussion: Gorder's hours-long computation
"can only be amortised if algorithms are run thousands of times", and
evolving networks would need the ordering adapted "without running the
whole process again".  This example demonstrates the library's
incremental extension: a social network grows in batches, and
`gorder_extend` integrates each batch into the existing arrangement at
a fraction of a full recomputation, staying close to full-Gorder
quality.

Run:  python examples/evolving_graph.py
"""

import time

import numpy as np

from repro.graph import from_arrays, generators
from repro.ordering import (
    append_identity,
    gorder_extend,
    gorder_order,
    gorder_score,
)


def grow(graph, batch, rng):
    """Append `batch` users.

    New users arrive socially: each follows a few existing accounts,
    closes triangles with their followees' followees, and befriends
    recent arrivals from the same signup wave.
    """
    sources, targets = graph.edge_array()
    new_sources, new_targets = [], []
    for i in range(batch):
        u = graph.num_nodes + i
        for _ in range(3):
            v = int(rng.integers(0, graph.num_nodes))
            new_sources.append(u)
            new_targets.append(v)
            # Triadic closure: also follow one of v's followees.
            row = graph.out_neighbors(v)
            if row.shape[0]:
                new_sources.append(u)
                new_targets.append(
                    int(row[rng.integers(0, row.shape[0])])
                )
        for _ in range(2):  # same signup wave
            if i:
                new_sources.append(u)
                new_targets.append(
                    graph.num_nodes + int(rng.integers(0, i))
                )
    return from_arrays(
        np.concatenate([sources, np.array(new_sources, np.int64)]),
        np.concatenate([targets, np.array(new_targets, np.int64)]),
        num_nodes=graph.num_nodes + batch,
        name="evolving",
    )


def main() -> None:
    rng = np.random.default_rng(7)
    graph = generators.social_graph(
        1200, edges_per_node=8, seed=7, name="evolving"
    )
    perm = gorder_order(graph)
    print(f"day 0: {graph.num_nodes} users, full Gorder computed\n")
    print(f"{'day':>4s} {'users':>6s} {'extend':>8s} {'full':>8s} "
          f"{'F(extend)':>10s} {'F(full)':>9s} {'F(naive)':>9s}")

    for day in range(1, 4):
        graph = grow(graph, 150, rng)

        start = time.perf_counter()
        extended = gorder_extend(graph, perm)
        extend_seconds = time.perf_counter() - start

        start = time.perf_counter()
        full = gorder_order(graph)
        full_seconds = time.perf_counter() - start

        naive = append_identity(perm, graph.num_nodes)
        print(
            f"{day:4d} {graph.num_nodes:6d} {extend_seconds:7.3f}s "
            f"{full_seconds:7.3f}s {gorder_score(graph, extended):10d} "
            f"{gorder_score(graph, full):9d} "
            f"{gorder_score(graph, naive):9d}"
        )
        perm = extended  # carry the incremental arrangement forward

    print(
        "\nThe incremental extension costs a fraction of the full"
        "\nrecomputation, scores far above naively appending new ids,"
        "\nand stays within reach of the from-scratch Gorder score."
    )


if __name__ == "__main__":
    main()
