"""Web-graph pipeline: choosing an ordering for a crawl workload.

The paper's motivating scenario: a search-engine pipeline repeatedly
runs PageRank, SCC condensation and diameter probes over a web crawl.
This example builds a web-graph analogue, evaluates every ordering on
that workload mix, and prints a recommendation table including the
*amortisation point* — how many pipeline runs it takes for the
ordering's one-off cost to pay for itself (the question raised by
"When is Graph Reordering an Optimization?", discussed in the
replication's Section 4).

Run:  python examples/web_crawl_pipeline.py
"""

from repro.graph import generators
from repro.ordering import ORDERING_NAMES
from repro.perf import Workload, amortization_table


def main() -> None:
    crawl = generators.web_graph(
        4000, pages_per_host=120, out_degree=14, seed=11,
        name="crawl",
    )
    print(f"crawl graph: {crawl.num_nodes} pages, "
          f"{crawl.num_edges} links\n")

    pipeline = Workload.of(
        "nightly-pipeline",
        ("pr", {"iterations": 3}),
        "scc",
        ("diam", {"sources": [0, 1]}),
    )
    rows = amortization_table(
        pipeline, crawl, ORDERING_NAMES, baseline="original", seed=1
    )
    print(f"{'ordering':>10s} {'pipeline':>9s} {'speedup':>8s} "
          f"{'order-cost':>10s} {'pays off after':>14s}")
    for row in rows:
        if row.break_even_runs < float("inf"):
            pays_off = f"{row.break_even_runs:8.0f} runs"
        else:
            pays_off = "     never"
        print(
            f"{row.ordering:>10s} {row.cycles / 1e6:8.1f}M "
            f"{row.speedup:7.2f}x {row.ordering_seconds:9.2f}s "
            f"{pays_off:>14s}"
        )

    print(
        "\nInterpretation: Gorder gives the fastest pipeline, but its"
        "\nordering cost is the largest - it only pays off for"
        "\nworkloads that re-run the pipeline many times (the"
        "\nreplication's closing observation).  Simpler orders like"
        "\nChDFS amortise almost immediately."
    )


if __name__ == "__main__":
    main()
