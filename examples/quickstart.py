"""Quickstart: order a graph with Gorder and measure the cache win.

Loads the flickr analogue, computes the Gorder arrangement, relabels
the graph, and compares PageRank's simulated cache behaviour before
and after — the end-to-end workflow of the paper in ~30 lines.

Run:  python examples/quickstart.py
"""

from repro import Memory, datasets, gorder_order, pagerank, relabel
from repro.algorithms import pagerank_traced

import numpy as np


def main() -> None:
    graph = datasets.load("wiki")
    print(f"loaded {graph.name}: {graph.num_nodes} nodes, "
          f"{graph.num_edges} edges")

    # 1. Compute the Gorder arrangement (the paper's contribution).
    perm = gorder_order(graph, window=5)
    ordered = relabel(graph, perm)

    # 2. Results are invariant: PageRank scores match after mapping.
    before = pagerank(graph, iterations=30)
    after = pagerank(ordered, iterations=30)
    assert np.allclose(before, after[perm])
    print("PageRank results identical under the new ordering")

    # 3. Performance is not: compare simulated cache behaviour.
    for label, candidate in (("original", graph), ("gorder", ordered)):
        memory = Memory()
        pagerank_traced(candidate, memory, iterations=3)
        cost = memory.cost()
        stats = memory.stats()
        print(
            f"{label:>9s}: {cost.total_cycles / 1e6:6.1f}M cycles "
            f"({100 * cost.stall_fraction:.0f}% stall), "
            f"L1 miss rate {100 * stats.l1_miss_rate:.1f}%, "
            f"memory miss rate {100 * stats.cache_miss_rate:.1f}%"
        )

    memory_original = Memory()
    pagerank_traced(graph, memory_original, iterations=3)
    memory_gorder = Memory()
    pagerank_traced(ordered, memory_gorder, iterations=3)
    speedup = (
        memory_original.cost().total_cycles
        / memory_gorder.cost().total_cycles
    )
    print(f"Gorder speedup over the original order: {speedup:.2f}x")


if __name__ == "__main__":
    main()
