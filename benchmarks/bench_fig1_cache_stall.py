"""F1 — Figure 1: CPU execution vs cache stall, Original vs Gorder.

The paper's motivating figure: for all nine algorithms on the largest
dataset, most of the runtime is cache stall, and Gorder cuts the stall
while leaving CPU-execute time unchanged.
"""

import pytest

from repro.perf import cache_stall_split, render_stall_split


def test_fig1_cache_stall(benchmark, profile, record):
    dataset = profile.datasets[-1]  # largest available in the profile
    results = benchmark.pedantic(
        cache_stall_split,
        args=(profile,),
        kwargs={"dataset_name": dataset},
        rounds=1,
        iterations=1,
    )
    blocks = []
    for ordering in ("original", "gorder"):
        block = {
            algorithm: results[(algorithm, ordering)]
            for algorithm in profile.algorithms
        }
        blocks.append(
            render_stall_split(
                f"Figure 1 ({ordering} order, {dataset})", block
            )
        )
    record("fig1_cache_stall", "\n\n".join(blocks))

    for algorithm in profile.algorithms:
        original = results[(algorithm, "original")]
        gorder = results[(algorithm, "gorder")]
        # Same logical work: execute cycles within a small tolerance
        # (queue/stack traffic shifts slightly with the visit order).
        assert gorder.cost.execute_cycles == pytest.approx(
            original.cost.execute_cycles, rel=0.15
        )
        # Stall dominates the runtime under the original order for at
        # least the random-access-heavy algorithms.
        assert original.cost.stall_fraction > 0.3
        # Gorder must not stall more than Original (the headline).
        assert gorder.cost.stall_cycles <= original.cost.stall_cycles * 1.05

    # Across the whole suite, Gorder reduces total stall.
    total_original = sum(
        results[(a, "original")].cost.stall_cycles
        for a in profile.algorithms
    )
    total_gorder = sum(
        results[(a, "gorder")].cost.stall_cycles
        for a in profile.algorithms
    )
    assert total_gorder < total_original
