"""T1 — replication Table 1: dataset features.

Regenerates the dataset summary (category, sizes, paper sizes) for the
nine synthetic analogues and asserts the structural properties the
experiments rely on (sparsity, skew, monotone sizes).
"""

import numpy as np

from repro.graph import datasets
from repro.perf import dataset_table, render_table


def test_table1_datasets(benchmark, record):
    rows = benchmark.pedantic(dataset_table, rounds=1, iterations=1)
    text = render_table(
        list(rows[0].keys()),
        [list(row.values()) for row in rows],
        title="Table 1: datasets (synthetic analogues of the paper's)",
    )
    record("table1_datasets", text)

    # Paper shape: sizes ascend, epinion smallest, sdarc largest.
    edges = [row["edges"] for row in rows]
    assert edges == sorted(edges)
    assert rows[0]["dataset"] == "epinion"
    assert rows[-1]["dataset"] == "sdarc"

    for row in rows:
        graph = datasets.load(str(row["dataset"]))
        n, m = graph.num_nodes, graph.num_edges
        # Sparse (m << n^2) like every dataset in the paper.
        assert m < 0.1 * n * n
        # Skewed degree distribution.
        degrees = graph.in_degrees()
        assert degrees.max() > 3 * max(degrees.mean(), 1)
        # Small diameter regime: the BFS tree from a hub is shallow.
        from repro.algorithms import shortest_paths, INFINITY

        hub = int(np.argmax(graph.out_degrees()))
        distance = shortest_paths(graph, hub)
        finite = distance[distance != INFINITY]
        assert finite.max() < 40
