"""S1 — replication Figure S1: speedups grouped by ordering.

The same data as Figure 5, but each panel fixes an (algorithm,
ordering) pair and shows the relative runtime across datasets —
emphasising each ordering's overall behaviour.
"""

from repro.perf import relative_to_gorder, render_speedup_series

from benchmarks.conftest import ensure_matrix


def test_figS1_grouped_by_ordering(benchmark, profile, record,
                                   matrix_holder):
    matrix = ensure_matrix(matrix_holder, profile)
    relative = benchmark.pedantic(
        relative_to_gorder, args=(matrix,), rounds=1, iterations=1
    )

    panels = []
    for algorithm in profile.algorithms:
        for ordering in profile.orderings:
            series = {
                dataset: relative[(dataset, algorithm, ordering)]
                for dataset in profile.datasets
            }
            panels.append(
                render_speedup_series(
                    f"{algorithm} / {ordering} across datasets "
                    "(relative to Gorder)",
                    series,
                )
            )
    record("figS1_by_ordering", "\n\n".join(panels))

    # Grouped view must carry exactly the Figure 5 data: the gorder
    # row is identically 1.0 everywhere.
    for algorithm in profile.algorithms:
        for dataset in profile.datasets:
            assert relative[(dataset, algorithm, "gorder")] == 1.0
