"""A1 — ablation: Gorder's design choices.

Two design points DESIGN.md calls out:

* the unit-heap priority queue vs the naive rescan greedy — the
  paper's practicality claim rests on the O(1) updates;
* the hub threshold in the sibling expansion — skipping very-high-
  degree common in-neighbours bounds the per-step cost at a small
  quality loss.
"""

import time

from repro.graph import generators
from repro.ordering import (
    gorder_naive,
    gorder_order,
    gorder_score,
)
from repro.perf import render_table


def test_ablation_unit_heap_vs_naive(benchmark, record):
    graph = generators.social_graph(
        220, edges_per_node=6, seed=3, name="ablation"
    )

    def measure():
        start = time.perf_counter()
        fast_perm = gorder_order(graph)
        fast_seconds = time.perf_counter() - start
        start = time.perf_counter()
        naive_perm = gorder_naive(graph)
        naive_seconds = time.perf_counter() - start
        return fast_perm, fast_seconds, naive_perm, naive_seconds

    fast_perm, fast_seconds, naive_perm, naive_seconds = (
        benchmark.pedantic(measure, rounds=1, iterations=1)
    )
    fast_score = gorder_score(graph, fast_perm)
    naive_score = gorder_score(graph, naive_perm)
    record(
        "ablation_gorder_heap",
        render_table(
            ["variant", "seconds", "F(pi)"],
            [
                ["unit-heap", f"{fast_seconds:.3f}", fast_score],
                ["naive rescan", f"{naive_seconds:.3f}", naive_score],
            ],
            title="A1a: Gorder with unit heap vs naive greedy "
            f"(n={graph.num_nodes}, m={graph.num_edges})",
        ),
    )
    # The unit heap is dramatically faster at equal greedy quality
    # (scores differ only through tie-breaking).
    assert fast_seconds < naive_seconds / 3
    assert fast_score >= naive_score * 0.9


def test_ablation_hub_threshold(benchmark, record):
    graph = generators.web_graph(
        2500, pages_per_host=80, out_degree=12, seed=3,
        name="ablation-web",
    )
    thresholds = (2, 8, 32, None)

    def measure():
        rows = []
        for threshold in thresholds:
            start = time.perf_counter()
            perm = gorder_order(graph, hub_threshold=threshold)
            seconds = time.perf_counter() - start
            rows.append(
                (threshold, seconds, gorder_score(graph, perm))
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        "ablation_gorder_hub",
        render_table(
            ["hub threshold", "seconds", "F(pi)"],
            [
                [
                    "none (exact)" if t is None else t,
                    f"{s:.3f}",
                    score,
                ]
                for t, s, score in rows
            ],
            title="A1b: Gorder hub-threshold ablation "
            f"(n={graph.num_nodes}, m={graph.num_edges})",
        ),
    )
    by_threshold = {t: (s, score) for t, s, score in rows}
    exact_seconds, exact_score = by_threshold[None]
    tight_seconds, tight_score = by_threshold[2]
    # Skipping hubs saves time and loses only bounded quality.
    assert tight_seconds <= exact_seconds
    assert tight_score <= exact_score
    assert tight_score >= 0.3 * exact_score
    # Raising the threshold recovers quality monotonically-ish.
    scores = [score for _, _, score in rows]
    assert scores[-1] == max(scores)
