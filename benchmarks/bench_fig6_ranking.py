"""F6 — replication Figure 6: ranking of ordering methods.

Aggregates the Figure 5 matrix into a rank histogram: for each
(algorithm, dataset) series, orderings are ranked by runtime; the
figure counts how often each ordering achieves each rank.  The
paper's shape: Gorder collects the most first places; Random collects
the most last places.
"""

from repro.perf import rank_orderings, render_rank_histogram

from benchmarks.conftest import ensure_matrix


def test_fig6_ranking(benchmark, profile, record, matrix_holder):
    matrix = ensure_matrix(matrix_holder, profile)
    histogram = benchmark.pedantic(
        rank_orderings, args=(matrix,), rounds=1, iterations=1
    )
    series_count = len(profile.datasets) * len(profile.algorithms)
    record(
        "fig6_ranking",
        render_rank_histogram(
            f"Figure 6: ordering ranks over {series_count} series",
            histogram,
        ),
    )

    def mean_rank(name):
        counts = histogram[name]
        return sum(r * c for r, c in enumerate(counts)) / sum(counts)

    # Gorder has the best (lowest) mean rank of all orderings.
    gorder_rank = mean_rank("gorder")
    assert gorder_rank == min(mean_rank(name) for name in histogram)

    # Gorder is first in a meaningful share of the series.
    assert histogram["gorder"][0] >= 0.25 * series_count

    # Random sits in the bottom half on average.
    num_orderings = len(histogram)
    assert mean_rank("random") > (num_orderings - 1) / 2

    # Every series hands out each rank exactly once.
    for rank in range(num_orderings):
        assert (
            sum(histogram[name][rank] for name in histogram)
            == series_count
        )
