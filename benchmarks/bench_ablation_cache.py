"""A2 — ablation: cache-geometry sensitivity of the Gorder speedup.

The paper claims the ordering helps "regardless of the exact hardware
specifications".  We vary the simulated hierarchy (capacity scale and
line size) and check the Gorder-vs-Random PageRank speedup survives
every geometry.
"""

from repro.algorithms import REGISTRY
from repro.cache import CacheHierarchy, CacheLevel, Memory
from repro.graph import datasets, relabel
from repro.ordering import gorder_order, random_order
from repro.perf import render_table

GEOMETRIES = {
    "default (1K/4K/16K, 64B)": (1024, 4096, 16384, 64, "lru"),
    "double capacity": (2048, 8192, 32768, 64, "lru"),
    "half capacity": (512, 2048, 8192, 64, "lru"),
    "32B lines": (1024, 4096, 16384, 32, "lru"),
    "128B lines": (1024, 4096, 16384, 128, "lru"),
    "FIFO replacement": (1024, 4096, 16384, 64, "fifo"),
    "random replacement": (1024, 4096, 16384, 64, "random"),
}


def _hierarchy(l1, l2, l3, line, policy):
    return CacheHierarchy(
        [
            CacheLevel(l1, line, 8, "L1", policy=policy),
            CacheLevel(l2, line, 8, "L2", policy=policy),
            CacheLevel(l3, line, 16, "L3", policy=policy),
        ]
    )


def test_ablation_cache_geometry(benchmark, profile, record):
    dataset = profile.datasets[-1]
    graph = datasets.load(dataset)
    gorder_graph = relabel(graph, gorder_order(graph))
    random_graph = relabel(graph, random_order(graph, seed=1))
    pagerank = REGISTRY["pr"].traced

    def measure():
        rows = []
        for name, geometry in GEOMETRIES.items():
            speedups = {}
            for label, relabeled in (
                ("gorder", gorder_graph),
                ("random", random_graph),
            ):
                memory = Memory(_hierarchy(*geometry))
                pagerank(relabeled, memory, iterations=2)
                speedups[label] = memory.cost().total_cycles
            rows.append(
                (name, speedups["random"] / speedups["gorder"])
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        "ablation_cache_geometry",
        render_table(
            ["geometry", "random/gorder speedup"],
            [[name, f"{ratio:.2f}x"] for name, ratio in rows],
            title=f"A2: geometry sensitivity (PR on {dataset})",
        ),
    )
    # The ordering advantage survives every geometry.
    for name, ratio in rows:
        assert ratio > 1.1, f"no speedup under geometry {name!r}"
