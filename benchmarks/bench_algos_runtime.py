"""Frontier-runtime benchmark — the traced algorithms' perf gate.

Runs :func:`repro.perf.run_algos_bench` at the profile-selected scale:
every runtime-ported traced algorithm executes twice over the same
dataset — once through its scalar per-touch oracle, once through the
vectorised frontier runtime (:mod:`repro.algorithms.runtime`) — and
the harness asserts what the runtime must never trade away: identical
results *and* identical per-level cache counters for every algorithm
(``run_algos_bench`` itself raises ``BenchRegressionError`` on any
divergence).  ``BENCH_algos.json`` is recorded under
``benchmarks/results/<profile>/``.

The headline ratio covers trace *materialisation* (algorithm body +
touch recording + buffer freeze); the downstream LRU simulation is
identical work for both emitters and is reported separately in the
payload's ``with_simulation`` section.

Scale (via ``REPRO_PROFILE``):

* ``quick``    — epinion, 2 PR/LP sweeps, the CI smoke size
* ``standard`` — sdarc with 2 sweeps
* ``full``     — the acceptance workload: sdarc, 5 sweeps, where the
  runtime must hold its >= 3x emission advantage
"""

import json

from repro.perf import (
    AlgosBenchConfig,
    quick_algos_config,
    render_algos_bench,
    run_algos_bench,
    write_bench_json,
)

#: Per-profile benchmark shapes (full == the acceptance configuration).
CONFIGS = {
    "quick": quick_algos_config(),
    "standard": AlgosBenchConfig(iterations=2, num_sources=2),
    "full": AlgosBenchConfig(),
}

#: Emission speedup floors.  The quick dataset is too small to fully
#: amortise per-sweep numpy pass costs, so it guards against the
#: runtime *losing*; the acceptance bar applies at full scale.
SPEEDUP_FLOORS = {"quick": 1.0, "standard": 2.0, "full": 3.0}


def test_algos_runtime_bench(profile, results_dir, record):
    config = CONFIGS[profile.name]
    payload = run_algos_bench(config)

    # Correctness gates (run_algos_bench itself raises on divergence;
    # asserted again so the recorded artifact is self-certifying).
    assert payload["identical"] is True
    for name, entry in payload["algorithms"].items():
        assert entry["identical"] is True, name

    speedup = payload["speedup_runtime_vs_scalar"]
    assert speedup >= SPEEDUP_FLOORS[profile.name], (
        f"frontier runtime regressed: {speedup:.2f}x vs scalar "
        f"(floor {SPEEDUP_FLOORS[profile.name]}x at {profile.name})"
    )

    path = write_bench_json(payload, results_dir / "BENCH_algos.json")
    record("bench_algos_runtime", render_algos_bench(payload))
    assert json.loads(path.read_text())["bench"] == "algos_runtime"
