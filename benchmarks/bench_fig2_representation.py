"""F2 — paper Figure 2: CSR vs linked adjacency list.

The paper motivates its CSR storage as "an equivalent but more
compact format which allows for faster memory access" than the
pointer-based adjacency list.  This bench measures exactly that on
the cache simulator, for the neighbour-query workload, including the
fragmented-heap case a dynamically built adjacency list degrades to.
"""

from repro.algorithms import neighbor_query_traced
from repro.cache import Memory
from repro.graph import datasets
from repro.graph.adjlist import (
    AdjacencyListLayout,
    neighbor_query_adjlist_traced,
)
from repro.perf import render_table


def test_fig2_representation(benchmark, profile, record):
    dataset = profile.datasets[-1]
    graph = datasets.load(dataset)

    def measure():
        rows = []
        memory = Memory()
        neighbor_query_traced(graph, memory)
        rows.append(("CSR", memory))
        for order in ("grouped", "interleaved"):
            layout = AdjacencyListLayout(graph, order=order, seed=1)
            memory = Memory()
            neighbor_query_adjlist_traced(layout, memory)
            rows.append((f"adjacency list ({order})", memory))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    csr_cycles = rows[0][1].cost().total_cycles
    record(
        "fig2_representation",
        render_table(
            ["representation", "NQ cycles (M)", "vs CSR", "L1-mr"],
            [
                [
                    label,
                    f"{memory.cost().total_cycles / 1e6:.2f}",
                    f"{memory.cost().total_cycles / csr_cycles:.2f}x",
                    f"{100 * memory.stats().l1_miss_rate:.1f}%",
                ]
                for label, memory in rows
            ],
            title=f"Figure 2: graph representations (NQ on {dataset})",
        ),
    )

    cycles = [memory.cost().total_cycles for _, memory in rows]
    # CSR < grouped list < fragmented list — the paper's ordering.
    assert cycles[0] < cycles[1] < cycles[2]
    # Fragmentation costs at least 1.5x over CSR.
    assert cycles[2] > 1.5 * cycles[0]
