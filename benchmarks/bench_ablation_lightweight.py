"""A5 — extension: lightweight reorderings vs Gorder.

Reproduces the trade-off at the heart of "When is Graph Reordering an
Optimization?" [Balaji & Lucia 2018], which the replication's
discussion leans on: HubSort / HubCluster / DBG cost ~sorting time and
recover part of Gorder's benefit.  Their value proposition is the
ratio (speedup achieved) / (ordering cost paid).
"""

import time

from repro.algorithms import REGISTRY
from repro.cache import Memory
from repro.graph import datasets, relabel
from repro.ordering import compute_ordering
from repro.perf import render_table

ORDERINGS = (
    "original", "hubcluster", "hubsort", "dbg", "indegsort", "gorder",
)


def test_ablation_lightweight(benchmark, profile, record):
    dataset = profile.datasets[-1]
    graph = datasets.load(dataset)
    pagerank = REGISTRY["pr"].traced

    def measure():
        rows = {}
        for name in ORDERINGS:
            start = time.perf_counter()
            perm = compute_ordering(name, graph, seed=1)
            ordering_seconds = time.perf_counter() - start
            memory = Memory()
            pagerank(relabel(graph, perm), memory, iterations=2)
            rows[name] = (
                memory.cost().total_cycles, ordering_seconds
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    base = rows["original"][0]
    record(
        "ablation_lightweight",
        render_table(
            ["ordering", "PR cycles (M)", "speedup vs original",
             "ordering time (s)"],
            [
                [
                    name,
                    f"{cycles / 1e6:.1f}",
                    f"{base / cycles:.2f}x",
                    f"{seconds:.3f}",
                ]
                for name, (cycles, seconds) in rows.items()
            ],
            title=f"A5: lightweight reorderings vs Gorder "
            f"(PR on {dataset})",
        ),
    )

    gorder_cycles, gorder_seconds = rows["gorder"]
    # Gorder achieves the best runtime...
    assert gorder_cycles == min(cycles for cycles, _ in rows.values())
    # ...but costs far more to compute than every lightweight order.
    for name in ("hubsort", "hubcluster", "dbg"):
        cycles, seconds = rows[name]
        assert seconds < gorder_seconds / 10
        # Lightweight orders must stay valid (not catastrophically
        # worse than the original layout).
        assert cycles < 2.5 * base
