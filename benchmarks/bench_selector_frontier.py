"""Cost/quality frontier benchmark for the adaptive selector.

Runs :func:`repro.perf.run_frontier_bench` at the profile-selected
scale: the selector probes every candidate ordering on each dataset,
models amortised cost at the configured query volume, and must land
within the regret tolerance of the locality oracle (the benchmark
itself raises otherwise).  Records ``BENCH_selector.json`` under
``benchmarks/results/<profile>/`` with the full per-dataset frontier —
ordering seconds, probe cycles and break-even query volume per
candidate.

Scale (via ``REPRO_PROFILE``):

* ``quick``    — epinion only, the CI smoke size (sub-second)
* ``standard`` — epinion + pokec
* ``full``     — the acceptance trio epinion/pokec/wiki, matching the
  committed ``BENCH_selector.json`` snapshot
"""

import json

from repro.perf import (
    FrontierBenchConfig,
    quick_frontier_config,
    render_frontier_bench,
    run_frontier_bench,
    write_bench_json,
)

CONFIGS = {
    "quick": quick_frontier_config(),
    "standard": FrontierBenchConfig(datasets=("epinion", "pokec")),
    "full": FrontierBenchConfig(),
}


def test_selector_frontier_bench(profile, results_dir, record):
    config = CONFIGS[profile.name]
    payload = run_frontier_bench(config)

    # run_frontier_bench raises past the tolerance; asserted again so
    # the recorded artifact is self-certifying.
    assert payload["within_tolerance"] is True
    assert payload["max_regret"] <= config.tolerance
    for name, entry in payload["datasets"].items():
        # Every dataset must report a full frontier, baseline first.
        assert entry["probes"][0]["ordering"] == "original", name
        assert entry["selected"]["amortised_seconds"] == min(
            probe["amortised_seconds"] for probe in entry["probes"]
        )

    path = write_bench_json(
        payload, results_dir / "BENCH_selector.json"
    )
    record("bench_selector_frontier", render_frontier_bench(payload))
    assert (
        json.loads(path.read_text())["bench"] == "selector_frontier"
    )
