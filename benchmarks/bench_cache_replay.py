"""Cache trace-replay benchmark — the simulator's perf-regression gate.

Runs :func:`repro.perf.run_cache_bench` at the profile-selected scale:
a traced PageRank records one access trace, then the scalar step path
(:meth:`CacheHierarchy.step_trace`) and the vectorised replay path
(:meth:`CacheHierarchy.replay`) both simulate that same frozen trace.
The harness asserts what the simulator must never trade away — both
backends byte-identical in serving levels, per-level counters and
assembled level counts (``run_cache_bench`` itself raises
``BenchRegressionError`` on any divergence) — and records
``BENCH_cache.json`` under ``benchmarks/results/<profile>/``.

Scale (via ``REPRO_PROFILE``):

* ``quick``    — epinion x2 on the scaled hierarchy, the CI smoke size
* ``standard`` — sdarc x2 on the paper hierarchy
* ``full``     — the acceptance workload: PageRank x5 on sdarc against
  the paper hierarchy, where replay must hold its >= 3x advantage
"""

import json

from repro.perf import (
    CacheBenchConfig,
    quick_cache_config,
    render_cache_bench,
    run_cache_bench,
    write_bench_json,
)

#: Per-profile benchmark shapes (full == the acceptance configuration).
CONFIGS = {
    "quick": quick_cache_config(),
    "standard": CacheBenchConfig(iterations=2),
    "full": CacheBenchConfig(),
}

#: Speedup floors the harness enforces.  The quick trace is too short
#: to amortise the classifier's fixed numpy pass costs, so it only
#: guards against replay *losing*; the acceptance bar applies at full
#: scale.
SPEEDUP_FLOORS = {"quick": 1.0, "standard": 2.0, "full": 3.0}


def test_cache_replay_bench(profile, results_dir, record):
    config = CONFIGS[profile.name]
    payload = run_cache_bench(config)

    # Correctness gates (run_cache_bench itself raises on divergence;
    # asserted again so the recorded artifact is self-certifying).
    assert payload["identical"] is True
    assert payload["end_to_end"]["identical"] is True

    speedup = payload["speedup_replay_vs_step"]
    assert speedup >= SPEEDUP_FLOORS[profile.name], (
        f"replay backend regressed: {speedup:.2f}x vs step "
        f"(floor {SPEEDUP_FLOORS[profile.name]}x at {profile.name})"
    )

    path = write_bench_json(payload, results_dir / "BENCH_cache.json")
    record("bench_cache_replay", render_cache_bench(payload))
    assert json.loads(path.read_text())["bench"] == "cache_replay"
