"""A3 — extension: orderings as a graph-compression preprocessor.

The papers' discussion proposes feeding Gorder into WebGraph-style
compressors.  This bench estimates gap-encoded adjacency size under
every ordering (Elias-gamma bits per edge) and checks the expected
shape: locality-aware orderings (Gorder, MinLogA — whose objective
*is* the log-gap sum) compress best, Random worst.
"""

from repro.graph import datasets
from repro.ordering import ORDERING_NAMES, bits_per_edge, compute_ordering
from repro.perf import render_table


def test_ablation_compression(benchmark, profile, record):
    dataset = profile.datasets[-1]
    graph = datasets.load(dataset)

    def measure():
        return {
            name: bits_per_edge(
                graph, compute_ordering(name, graph, seed=1)
            )
            for name in ORDERING_NAMES
        }

    bits = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = sorted(bits.items(), key=lambda item: item[1])
    record(
        "ablation_compression",
        render_table(
            ["ordering", "bits/edge (gamma gap coding)"],
            [[name, f"{value:.2f}"] for name, value in rows],
            title=f"A3: compression effect of orderings on {dataset}",
        ),
    )

    # Locality objectives compress best; random worst.
    assert bits["random"] == max(bits.values())
    best = min(bits.values())
    # The two locality objectives (log-gap sum and windowed proximity)
    # lead the field; either may win.
    assert bits["minloga"] <= best * 1.25
    assert bits["gorder"] <= best * 1.25
    assert bits["gorder"] <= bits["random"] * 0.8
