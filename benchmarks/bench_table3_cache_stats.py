"""T3 — replication Tables 3a/3b / original Tables 3-4: cache stats.

PageRank cache statistics per ordering on a social dataset (flickr in
the paper) and the largest web dataset (sdarc).  Asserts the
mechanism claims: L1 references are ordering-invariant, Gorder's miss
rates are (near-)lowest, Random's are (near-)highest, and the
miss-rate ranking explains the runtime ranking.
"""


from repro.perf import cache_stats_table, render_cache_stats


def _datasets_for(profile):
    social = "flickr" if "flickr" in profile.datasets else (
        profile.datasets[0]
    )
    web = "sdarc" if "sdarc" in profile.datasets else (
        profile.datasets[-1]
    )
    return social, web


def test_table3_cache_stats(benchmark, profile, record):
    social, web = _datasets_for(profile)

    def compute():
        return {
            name: cache_stats_table(profile, name)
            for name in {social, web}
        }

    tables = benchmark.pedantic(compute, rounds=1, iterations=1)
    blocks = [
        render_cache_stats(
            f"Table 3 ({name}): PageRank cache statistics", rows
        )
        for name, rows in tables.items()
    ]
    record("table3_cache_stats", "\n\n".join(blocks))

    for name, rows in tables.items():
        l1_refs = [r.stats.l1_refs for r in rows.values()]
        # "First-level cache references are similar for all
        # orderings" — same logical work.
        assert max(l1_refs) <= min(l1_refs) * 1.1

        miss_rates = {
            ordering: r.stats.l1_miss_rate for ordering, r in rows.items()
        }
        # Gorder has the lowest (or within 10% of lowest) L1-mr.
        best = min(miss_rates.values())
        assert miss_rates["gorder"] <= max(best * 1.1, best + 0.02)
        # Random has the highest (or within 5% of highest) L1-mr.
        worst = max(miss_rates.values())
        assert miss_rates["random"] >= worst * 0.95

        # Runtime ranking is explained by stall, which is dominated by
        # the references served from main memory: the fastest ordering
        # must sit near the bottom of the Cache-mr column.
        cycles = {o: r.cycles for o, r in rows.items()}
        memory_rates = {
            o: r.stats.cache_miss_rate for o, r in rows.items()
        }
        fastest = min(cycles, key=cycles.get)
        best_memory = min(memory_rates.values())
        worst_memory = max(memory_rates.values())
        span = worst_memory - best_memory
        assert memory_rates[fastest] <= best_memory + 0.35 * span

    # Web graphs overflow the LLC harder than the similar-size social
    # check only when both paper datasets are in the profile.
    if {social, web} == {"flickr", "sdarc"}:
        flickr_gorder = tables["flickr"]["gorder"].stats
        sdarc_gorder = tables["sdarc"]["gorder"].stats
        assert (
            sdarc_gorder.cache_miss_rate > flickr_gorder.cache_miss_rate * 0.3
        )
