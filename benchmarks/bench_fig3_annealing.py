"""F3 — replication Figure 3: tuning simulated annealing.

Sweeps the step budget S and standard energy k of the MinLA annealer
on the epinion analogue and reproduces the replication's observations:
(a) more steps -> lower energy, (b) huge k accepts everything and
degenerates to a random arrangement, (c) any small k behaves like pure
local search (k = 0).
"""

from repro.perf import annealing_sweep, render_table


def test_fig3_annealing(benchmark, record):
    step_factors = (0.25, 1.0, 4.0)
    energy_factors = (0.0, 0.01, 1.0, 1e6)
    results = benchmark.pedantic(
        annealing_sweep,
        kwargs={
            "dataset_name": "epinion",
            "step_factors": step_factors,
            "energy_factors": energy_factors,
        },
        rounds=1,
        iterations=1,
    )
    rows = [
        [s, k, f"{results[(s, k)]:,.0f}"]
        for s in step_factors
        for k in energy_factors
    ]
    record(
        "fig3_annealing",
        render_table(
            ["steps (x m)", "k (x m/n)", "final MinLA energy"],
            rows,
            title="Figure 3: simulated-annealing tuning on epinion",
        ),
    )

    # (a) More steps help (monotone at fixed k = 0, within noise).
    assert results[(4.0, 0.0)] <= results[(0.25, 0.0)]
    # (b) Huge k = accept everything = worst energy of its row.
    for s in step_factors:
        row = [results[(s, k)] for k in energy_factors]
        assert results[(s, 1e6)] == max(row)
    # (c) Small k is within a few percent of pure local search.
    for s in step_factors:
        local = results[(s, 0.0)]
        assert results[(s, 0.01)] <= local * 1.05
