"""A7 — ablation: speedup vs graph scale at fixed cache size.

Both papers observe that ordering matters more on bigger graphs
(epinion's spreads stay within ~40 % while the billion-edge sets reach
200 %+): once the working set fits in the last-level cache, layout is
irrelevant.  This bench sweeps generated web graphs across sizes at a
fixed hierarchy and locates that transition.
"""

from repro.algorithms import REGISTRY
from repro.cache import Memory
from repro.graph import generators, relabel
from repro.ordering import gorder_order, random_order
from repro.perf import render_table

SIZES = (500, 1000, 2000, 4000, 8000)


def test_ablation_scale(benchmark, record):
    def measure():
        rows = []
        for n in SIZES:
            graph = generators.web_graph(
                n,
                pages_per_host=max(20, n // 80),
                out_degree=10,
                seed=37,
                name=f"web-{n}",
            )
            cycles = {}
            for label, perm in (
                ("gorder", gorder_order(graph)),
                ("random", random_order(graph, seed=1)),
            ):
                memory = Memory()
                REGISTRY["pr"].traced(
                    relabel(graph, perm), memory, iterations=2
                )
                cycles[label] = memory.cost().total_cycles
            rows.append(
                (n, graph.num_edges, cycles["random"] / cycles["gorder"])
            )
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        "ablation_scale",
        render_table(
            ["nodes", "edges", "random/gorder speedup"],
            [[n, m, f"{ratio:.2f}x"] for n, m, ratio in rows],
            title="A7: ordering benefit vs graph scale "
            "(PR, fixed 1K/4K/16K hierarchy)",
        ),
    )

    ratios = [ratio for _, _, ratio in rows]
    # The benefit grows with scale (allowing small local dips).
    assert ratios[-1] > ratios[0]
    assert ratios[-1] > 1.5
    # Smallest graph: the 4 B property array (2 KB) sits inside L3,
    # so the spread stays modest — the epinion effect.
    assert ratios[0] < ratios[-1] * 0.75
