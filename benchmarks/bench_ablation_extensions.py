"""A6 — extension: does Gorder speed up algorithms beyond the nine?

The replication closes with "its consistent efficiency on all
algorithms and datasets suggests that it could speed up other graph
algorithms as well."  This bench tests that forward-looking claim on
three algorithms the paper never ran: weakly connected components
(union-find pointer chasing), triangle counting (sorted-list
intersections) and label propagation (per-edge label reads).
"""

from repro.algorithms import REGISTRY
from repro.cache import Memory
from repro.graph import datasets, relabel
from repro.ordering import compute_ordering
from repro.perf import render_table

EXTENSION_ALGORITHMS = ("wcc", "tc", "lp")
ORDERINGS = ("original", "random", "gorder")


def test_ablation_extension_algorithms(benchmark, profile, record):
    dataset = profile.datasets[-1]
    graph = datasets.load(dataset)

    def measure():
        cells = {}
        for ordering in ORDERINGS:
            perm = compute_ordering(ordering, graph, seed=1)
            relabeled = relabel(graph, perm)
            for algorithm in EXTENSION_ALGORITHMS:
                memory = Memory()
                params = (
                    {"iterations": 3} if algorithm == "lp" else {}
                )
                REGISTRY[algorithm].traced(relabeled, memory, **params)
                cells[(algorithm, ordering)] = (
                    memory.cost().total_cycles
                )
        return cells

    cells = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = []
    for algorithm in EXTENSION_ALGORITHMS:
        gorder = cells[(algorithm, "gorder")]
        rows.append(
            [
                algorithm,
                f"{cells[(algorithm, 'original')] / gorder:.2f}x",
                f"{cells[(algorithm, 'random')] / gorder:.2f}x",
            ]
        )
    record(
        "ablation_extensions",
        render_table(
            ["algorithm", "original/gorder", "random/gorder"],
            rows,
            title="A6: Gorder on algorithms beyond the paper's nine "
            f"({dataset})",
        ),
    )

    # The claim: Gorder helps (>= no harm vs original, clear win vs
    # random) on every extension algorithm.
    for algorithm in EXTENSION_ALGORITHMS:
        gorder = cells[(algorithm, "gorder")]
        assert cells[(algorithm, "random")] > 1.1 * gorder
        assert cells[(algorithm, "original")] > 0.9 * gorder
