"""Gorder kernel benchmark — the perf-regression gate for this repo.

Runs :func:`repro.perf.run_gorder_bench` at the profile-selected
scale, asserts the invariants a perf harness must never trade away
(batched byte-identical to loop, partitioned worker-count invariant,
batched not slower than loop), and records ``BENCH_gorder.json`` under
``benchmarks/results/<profile>/`` so every change leaves a perf
trajectory behind.

Scale (via ``REPRO_PROFILE``):

* ``quick``    — 2k nodes, the CI smoke size (seconds)
* ``standard`` — 20k nodes (tens of seconds)
* ``full``     — the 50k-node / ~700k-edge acceptance graph, where the
  batched kernel must hold its >= 3x advantage over the loop kernel
"""

import json

from repro.perf import (
    GorderBenchConfig,
    quick_config,
    render_gorder_bench,
    run_gorder_bench,
    write_bench_json,
)

#: Per-profile benchmark shapes (full == the acceptance configuration).
CONFIGS = {
    "quick": quick_config(),
    "standard": GorderBenchConfig(nodes=20_000, workers=2),
    "full": GorderBenchConfig(),
}

#: Speedup floors the harness enforces.  The quick graph is too small
#: to amortise numpy call overhead, so it only guards against the
#: batched kernel *losing*; the acceptance bar applies at full scale.
SPEEDUP_FLOORS = {"quick": 1.0, "standard": 1.5, "full": 3.0}


def test_gorder_kernel_bench(profile, results_dir, record):
    config = CONFIGS[profile.name]
    payload = run_gorder_bench(config)

    # Correctness gates (run_gorder_bench itself raises on divergence;
    # asserted again so the recorded artifact is self-certifying).
    assert payload["identical"] is True
    assert payload["partitioned"]["identical"] is True

    speedup = payload["speedup_batched_vs_loop"]
    assert speedup >= SPEEDUP_FLOORS[profile.name], (
        f"batched kernel regressed: {speedup:.2f}x vs loop "
        f"(floor {SPEEDUP_FLOORS[profile.name]}x at {profile.name})"
    )

    path = write_bench_json(payload, results_dir / "BENCH_gorder.json")
    record("bench_gorder_kernel", render_gorder_bench(payload))
    assert json.loads(path.read_text())["bench"] == "gorder_kernel"
