"""F4 — replication Figure 4 / original Figure 8: window-size tuning.

Builds Gorder with window sizes from 1 upwards, runs PageRank on the
flickr analogue under each, and reproduces the paper's observations:
small windows already capture most of the benefit (the curve is flat
within a few percent past w ~ 5), while the ordering cost grows with
the window.
"""

from repro.perf import render_table, window_sweep

WINDOWS = (1, 2, 3, 5, 8, 16, 64, 256)


def test_fig4_window_sweep(benchmark, profile, record):
    dataset = "flickr" if "flickr" in profile.datasets else (
        profile.datasets[-1]
    )
    results = benchmark.pedantic(
        window_sweep,
        args=(profile,),
        kwargs={"dataset_name": dataset, "windows": WINDOWS},
        rounds=1,
        iterations=1,
    )
    rows = [
        [
            window,
            f"{results[window].cycles / 1e6:.2f}",
            f"{100 * results[window].stats.l1_miss_rate:.1f}%",
            f"{results[window].ordering_seconds:.2f}",
        ]
        for window in WINDOWS
    ]
    record(
        "fig4_window",
        render_table(
            ["window w", "PR cycles (M)", "L1-mr", "Gorder time (s)"],
            rows,
            title=f"Figure 4: Gorder window sweep (PR on {dataset})",
        ),
    )

    cycles = {w: results[w].cycles for w in WINDOWS}
    best = min(cycles.values())
    # The plateau: every window from 5 up is within 20% of the best.
    for window in WINDOWS:
        if window >= 5:
            assert cycles[window] <= best * 1.2
    # w = 1 captures less locality than the best window.
    assert cycles[1] >= best
