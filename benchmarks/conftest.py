"""Shared fixtures for the paper-artifact benchmarks.

Each ``bench_*`` file regenerates one table or figure of the paper
(see DESIGN.md's per-experiment index).  Results are printed and also
written to ``benchmarks/results/`` so they survive pytest's output
capture.

The experiment scale is selected with ``REPRO_PROFILE``
(quick | standard | full); ``full`` reproduces the complete matrix of
the replication and takes tens of minutes.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.ioutil import atomic_write_text
from repro.perf import get_profile, speedup_matrix

RESULTS_ROOT = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def profile():
    return get_profile()


@pytest.fixture(scope="session")
def results_dir(profile):
    """Per-profile result directory, so a quick run never overwrites
    archived full-profile artifacts."""
    directory = RESULTS_ROOT / profile.name
    directory.mkdir(parents=True, exist_ok=True)
    return directory


@pytest.fixture(scope="session")
def record(results_dir):
    """Print a result block and persist it to results/<profile>/."""

    def _record(name: str, text: str) -> None:
        print()
        print(text)
        atomic_write_text(results_dir / f"{name}.txt", text + "\n")

    return _record


@pytest.fixture(scope="session")
def matrix_holder():
    """Lazy container for the shared speedup matrix (F5/F6/S1)."""
    return {"matrix": None}


def ensure_matrix(holder, profile):
    """Compute the speedup matrix once per session."""
    if holder["matrix"] is None:
        holder["matrix"] = speedup_matrix(profile)
    return holder["matrix"]
