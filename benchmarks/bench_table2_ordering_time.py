"""T2 — replication Table 2 / original Table 9: graph ordering time.

Times every ordering on every profile dataset (wall clock of our
Python implementations).  The paper's shape: DegSort and ChDFS are the
cheapest, RCM/SlashBurn/LDG moderate, and the annealers and Gorder the
most expensive — with Gorder's cost growing superlinearly in m.
"""

from repro.graph import datasets
from repro.perf import ordering_times, render_table

CHEAP = ("indegsort", "chdfs")
EXPENSIVE = ("minla", "minloga", "gorder")


def test_table2_ordering_time(benchmark, profile, record):
    times = benchmark.pedantic(
        ordering_times, args=(profile,), rounds=1, iterations=1
    )
    headers = ["Ordering"] + [
        f"{name} (m={datasets.load(name).num_edges // 1000}k)"
        for name in profile.datasets
    ]
    rows = [
        [ordering]
        + [f"{times[(ordering, name)]:.3f}" for name in profile.datasets]
        for ordering in profile.orderings
    ]
    record(
        "table2_ordering_time",
        render_table(
            headers, rows, title="Table 2: ordering time (seconds)"
        ),
    )

    largest = profile.datasets[-1]
    cheapest = min(times[(o, largest)] for o in CHEAP)
    for expensive in EXPENSIVE:
        # Gorder/MinLA/MinLogA cost at least an order of magnitude
        # more than the cheap degree/DFS orders (paper: seconds vs
        # hours at full scale).
        assert times[(expensive, largest)] > 5 * cheapest

    # Gorder is superlinear: cost per edge grows with dataset size
    # (paper: 380k edges/s on pokec down to 60k on sdarc).
    if len(profile.datasets) >= 2:
        small = profile.datasets[0]
        small_m = datasets.load(small).num_edges
        large_m = datasets.load(largest).num_edges
        per_edge_small = times[("gorder", small)] / small_m
        per_edge_large = times[("gorder", largest)] / large_m
        assert per_edge_large > 0.8 * per_edge_small
