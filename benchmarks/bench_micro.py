"""Micro-benchmarks of the library's own hot paths.

Unlike the paper-artifact benches (single-shot ``pedantic`` runs),
these use pytest-benchmark's normal multi-round measurement: they
track the throughput of the simulator and ordering kernels so
regressions in the *infrastructure* are visible independently of the
experiment results.
"""

import time

import numpy as np
import pytest

from repro import obs
from repro.algorithms import neighbor_query, neighbor_query_traced
from repro.cache import Memory, scaled_hierarchy
from repro.graph import datasets
from repro.ordering import UnitHeap, gorder_order, rcm_order


@pytest.fixture(scope="module")
def pokec():
    return datasets.load("pokec")


def test_micro_cache_access_throughput(benchmark):
    hierarchy = scaled_hierarchy()
    rng = np.random.default_rng(1)
    lines = rng.integers(0, 4096, size=20000).tolist()

    def run():
        access = hierarchy.access
        for line in lines:
            access(line)

    benchmark(run)


def test_micro_touch_run_throughput(benchmark):
    memory = Memory()
    array = memory.array("a", 200000, 4)

    def run():
        array.touch_run(0, 200000)

    benchmark(run)


def test_micro_unit_heap_churn(benchmark):
    def run():
        heap = UnitHeap(2000)
        for i in range(2000):
            for _ in range(i % 7):
                heap.increase(i)
        for _ in range(2000):
            heap.pop_max()

    benchmark(run)


def test_micro_gorder_pokec(benchmark, pokec):
    benchmark.pedantic(
        gorder_order, args=(pokec,), rounds=2, iterations=1
    )


def test_micro_rcm_pokec(benchmark, pokec):
    benchmark(rcm_order, pokec)


def test_micro_pure_nq(benchmark, pokec):
    benchmark(neighbor_query, pokec)


def test_micro_gorder_telemetry_disabled_overhead(pokec):
    """Guard: disabled telemetry must cost < 5% of the greedy loop.

    With telemetry off, one Gorder call pays a fixed number of no-op
    hooks (one ``enabled()`` check, one no-op span, the plain-heap
    branch) — per *call*, never per loop iteration.  Measure the
    kernel and the hooks separately and assert that even a hundred
    hook sites would stay inside the 5% budget of the seed timing.
    """
    assert not obs.enabled()
    kernel = min(
        _timed(lambda: gorder_order(pokec)) for _ in range(3)
    )

    hook_rounds = 10_000
    start = time.perf_counter()
    for _ in range(hook_rounds):
        if obs.enabled():  # the hoisted guard the kernels use
            pass
        with obs.span("bench.noop"):
            pass
        with obs.profile("bench.noop"):
            pass
        obs.inc("bench.noop")
    per_hook_site = (time.perf_counter() - start) / hook_rounds

    budget = 0.05 * kernel
    assert 100 * per_hook_site < budget, (
        f"disabled-telemetry hooks cost {per_hook_site * 1e6:.2f}us per "
        f"site; 100 sites would exceed 5% of the {kernel * 1e3:.1f}ms "
        "greedy kernel"
    )


def test_micro_gorder_enabled_vs_disabled(pokec):
    """Report (not gate) the cost of switching telemetry on."""
    disabled = min(
        _timed(lambda: gorder_order(pokec)) for _ in range(2)
    )
    obs.configure()  # registry only: counters + spans, no sinks
    try:
        enabled = min(
            _timed(lambda: gorder_order(pokec)) for _ in range(2)
        )
    finally:
        obs.reset()
    print(
        f"\ngorder greedy: disabled {disabled * 1e3:.1f}ms, "
        f"enabled {enabled * 1e3:.1f}ms "
        f"({enabled / disabled:.2f}x)"
    )


def _timed(fn):
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


def test_micro_traced_nq(benchmark, pokec):
    def run():
        neighbor_query_traced(pokec, Memory())

    benchmark.pedantic(run, rounds=3, iterations=1)
