"""Micro-benchmarks of the library's own hot paths.

Unlike the paper-artifact benches (single-shot ``pedantic`` runs),
these use pytest-benchmark's normal multi-round measurement: they
track the throughput of the simulator and ordering kernels so
regressions in the *infrastructure* are visible independently of the
experiment results.
"""

import numpy as np
import pytest

from repro.algorithms import neighbor_query, neighbor_query_traced
from repro.cache import Memory, scaled_hierarchy
from repro.graph import datasets
from repro.ordering import UnitHeap, gorder_order, rcm_order


@pytest.fixture(scope="module")
def pokec():
    return datasets.load("pokec")


def test_micro_cache_access_throughput(benchmark):
    hierarchy = scaled_hierarchy()
    rng = np.random.default_rng(1)
    lines = rng.integers(0, 4096, size=20000).tolist()

    def run():
        access = hierarchy.access
        for line in lines:
            access(line)

    benchmark(run)


def test_micro_touch_run_throughput(benchmark):
    memory = Memory()
    array = memory.array("a", 200000, 4)

    def run():
        array.touch_run(0, 200000)

    benchmark(run)


def test_micro_unit_heap_churn(benchmark):
    def run():
        heap = UnitHeap(2000)
        for i in range(2000):
            for _ in range(i % 7):
                heap.increase(i)
        for _ in range(2000):
            heap.pop_max()

    benchmark(run)


def test_micro_gorder_pokec(benchmark, pokec):
    benchmark.pedantic(
        gorder_order, args=(pokec,), rounds=2, iterations=1
    )


def test_micro_rcm_pokec(benchmark, pokec):
    benchmark(rcm_order, pokec)


def test_micro_pure_nq(benchmark, pokec):
    benchmark(neighbor_query, pokec)


def test_micro_traced_nq(benchmark, pokec):
    def run():
        neighbor_query_traced(pokec, Memory())

    benchmark.pedantic(run, rounds=3, iterations=1)
