"""F5 — replication Figure 5 / original Figure 9: speedup of Gorder.

The paper's headline experiment: every algorithm on every dataset
under every ordering, reported as runtime relative to Gorder.  Asserts
the headline claims — Gorder is the best or near-best ordering in
every series, and Random is (near-)worst.
"""

from repro.perf import (
    relative_to_gorder,
    render_speedup_series,
    save_results,
)

from benchmarks.conftest import ensure_matrix


def test_fig5_speedup(benchmark, profile, record, matrix_holder,
                      results_dir):
    matrix = benchmark.pedantic(
        ensure_matrix,
        args=(matrix_holder, profile),
        rounds=1,
        iterations=1,
    )
    relative = relative_to_gorder(matrix)
    save_results(
        matrix,
        results_dir / "fig5_speedup.json",
        metadata={"profile": profile.name},
    )

    panels = []
    for algorithm in profile.algorithms:
        for dataset in profile.datasets:
            series = {
                ordering: relative[(dataset, algorithm, ordering)]
                for ordering in profile.orderings
            }
            gorder_cycles = matrix[(dataset, algorithm, "gorder")].cycles
            panels.append(
                render_speedup_series(
                    f"{algorithm} on {dataset} "
                    f"(Gorder = {gorder_cycles / 1e6:.1f}M cycles)",
                    series,
                )
            )
    record("fig5_speedup", "\n\n".join(panels))

    wins = 0
    near_best = 0
    total_series = 0
    for algorithm in profile.algorithms:
        for dataset in profile.datasets:
            total_series += 1
            values = {
                ordering: relative[(dataset, algorithm, ordering)]
                for ordering in profile.orderings
            }
            best = min(values.values())
            if values["gorder"] == best:
                wins += 1
            if values["gorder"] <= best * 1.10:
                near_best += 1
            # Random never beats Gorder meaningfully.
            assert values["random"] >= 0.95

    # Gorder wins or nearly wins the large majority of series
    # (replication: best in half, second-best in most others).
    assert near_best >= 0.7 * total_series
    assert wins >= 0.3 * total_series

    # The headline speedup: on the largest dataset, Gorder beats the
    # original order by a clear margin for PageRank.
    largest = profile.datasets[-1]
    assert relative[(largest, "pr", "original")] > 1.1
    assert relative[(largest, "pr", "random")] > 1.3
