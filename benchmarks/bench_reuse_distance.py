"""A4 — extension: reuse-distance profiles per ordering.

A machine-independent view of the paper's mechanism: the reuse
distance distribution of an algorithm's trace fully determines its
LRU miss rate at *every* capacity.  This bench profiles the NQ trace
under each headline ordering and prints median distances plus the
derived miss curve — orderings that help must shift distances
downwards, independent of any particular hierarchy.
"""

from repro.algorithms import neighbor_query_traced
from repro.cache import (
    Memory,
    RecordingHierarchy,
    median_reuse_distance,
    miss_curve,
    reuse_distances,
    scaled_hierarchy,
)
from repro.graph import datasets, relabel
from repro.ordering import compute_ordering
from repro.perf import render_table

ORDERINGS = ("original", "random", "chdfs", "indegsort", "gorder")
CAPACITIES = (16, 64, 256)


def test_reuse_distance_profiles(benchmark, profile, record):
    dataset = profile.datasets[min(2, len(profile.datasets) - 1)]
    graph = datasets.load(dataset)

    def measure():
        profiles = {}
        for name in ORDERINGS:
            perm = compute_ordering(name, graph, seed=1)
            recorder = RecordingHierarchy(scaled_hierarchy())
            neighbor_query_traced(
                relabel(graph, perm), Memory(recorder)
            )
            distances = reuse_distances(recorder.trace())
            profiles[name] = (
                median_reuse_distance(distances),
                miss_curve(distances, CAPACITIES),
            )
        return profiles

    profiles = benchmark.pedantic(measure, rounds=1, iterations=1)
    rows = [
        [name, f"{median:.0f}"]
        + [f"{100 * curve[c]:.1f}%" for c in CAPACITIES]
        for name, (median, curve) in profiles.items()
    ]
    record(
        "reuse_distance",
        render_table(
            ["ordering", "median RD"]
            + [f"LRU {c}" for c in CAPACITIES],
            rows,
            title=f"A4: NQ reuse-distance profiles on {dataset}",
        ),
    )

    # Gorder shortens reuse distances relative to random.  At
    # capacities beyond the working set both curves flatten onto the
    # cold-miss floor, so allow noise-level slack there; below it the
    # gap must be decisive.
    _, gorder_curve = profiles["gorder"]
    _, random_curve = profiles["random"]
    for capacity in CAPACITIES:
        assert gorder_curve[capacity] <= random_curve[capacity] + 0.01
    smallest = CAPACITIES[0]
    assert gorder_curve[smallest] < 0.9 * random_curve[smallest]
    assert profiles["gorder"][0] <= profiles["random"][0]
