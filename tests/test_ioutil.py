"""The atomic-write layer: durability and failure cleanup."""

from __future__ import annotations

import pytest

from repro.errors import InvalidParameterError
from repro.ioutil import (
    atomic_open,
    atomic_write_bytes,
    atomic_write_text,
)


class TestAtomicOpen:
    def test_roundtrip(self, tmp_path):
        target = tmp_path / "out.txt"
        with atomic_open(target, "w") as handle:
            handle.write("payload")
        assert target.read_text() == "payload"
        assert not list(tmp_path.glob("*.tmp"))

    def test_binary_roundtrip(self, tmp_path):
        target = tmp_path / "out.bin"
        with atomic_open(target, "wb") as handle:
            handle.write(b"\x00\x01\x02")
        assert target.read_bytes() == b"\x00\x01\x02"

    def test_temp_removed_when_body_raises(self, tmp_path):
        target = tmp_path / "out.txt"
        target.write_text("original")
        with pytest.raises(RuntimeError, match="boom"):
            with atomic_open(target, "w") as handle:
                handle.write("partial garbage")
                raise RuntimeError("boom")
        # The failed write left no temp file behind and never
        # touched the target.
        assert not list(tmp_path.glob("*.tmp"))
        assert target.read_text() == "original"

    def test_new_target_absent_after_failed_write(self, tmp_path):
        target = tmp_path / "fresh.txt"
        with pytest.raises(ValueError):
            with atomic_open(target, "w") as handle:
                handle.write("half")
                raise ValueError("interrupted")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    @pytest.mark.parametrize("mode", ["r", "a", "w+", "rb", "ab"])
    def test_non_truncating_modes_rejected(self, tmp_path, mode):
        with pytest.raises(InvalidParameterError):
            with atomic_open(tmp_path / "out", mode):
                pass

    def test_replace_is_durable_visible(self, tmp_path):
        # Overwrite path: the old content stays readable right up to
        # the atomic replace.
        target = tmp_path / "state.json"
        atomic_write_text(target, "v1")
        with atomic_open(target, "w") as handle:
            handle.write("v2")
            assert target.read_text() == "v1"
        assert target.read_text() == "v2"


class TestHelpers:
    def test_atomic_write_text(self, tmp_path):
        target = tmp_path / "t.txt"
        atomic_write_text(target, "héllo")
        assert target.read_text(encoding="utf-8") == "héllo"

    def test_atomic_write_bytes(self, tmp_path):
        target = tmp_path / "t.bin"
        atomic_write_bytes(target, b"abc")
        assert target.read_bytes() == b"abc"
