"""Tests for reuse-distance analysis, including the LRU oracle."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache import (
    COLD,
    CacheLevel,
    Memory,
    RecordingHierarchy,
    lru_misses,
    median_reuse_distance,
    miss_curve,
    reuse_distances,
    scaled_hierarchy,
)
from repro.errors import InvalidParameterError


class TestReuseDistances:
    def test_cold_accesses(self):
        assert reuse_distances([1, 2, 3]).tolist() == [COLD] * 3

    def test_immediate_reuse(self):
        assert reuse_distances([7, 7]).tolist() == [COLD, 0]

    def test_classic_example(self):
        # a b c a: reuse distance of the final a is 2 (b, c).
        assert reuse_distances([0, 1, 2, 0]).tolist() == [
            COLD, COLD, COLD, 2,
        ]

    def test_repeated_interleaving(self):
        # a b a b: each warm access skips exactly one distinct line.
        assert reuse_distances([0, 1, 0, 1]).tolist() == [
            COLD, COLD, 1, 1,
        ]

    def test_duplicates_between_do_not_double_count(self):
        # a b b a: only one distinct line between the two a's.
        assert reuse_distances([0, 1, 1, 0]).tolist()[-1] == 1

    def test_empty_trace(self):
        assert reuse_distances([]).shape == (0,)


class TestLruOracle:
    """distance >= C  <=>  miss in a fully-associative LRU of size C —
    verified against the actual cache simulator."""

    @given(st.lists(st.integers(0, 15), min_size=1, max_size=300),
           st.integers(1, 16))
    def test_matches_simulator(self, trace, capacity):
        level = CacheLevel(capacity * 64, 64, capacity, "L")
        for line in trace:
            level.access(line)
        distances = reuse_distances(trace)
        assert lru_misses(distances, capacity) == level.misses

    def test_capacity_validation(self):
        with pytest.raises(InvalidParameterError):
            lru_misses(np.array([COLD]), 0)


class TestMissCurve:
    def test_monotone_in_capacity(self):
        rng = np.random.default_rng(3)
        trace = rng.integers(0, 50, size=2000)
        curve = miss_curve(reuse_distances(trace), [1, 2, 4, 8, 16, 64])
        values = list(curve.values())
        assert values == sorted(values, reverse=True)

    def test_big_cache_only_cold_misses(self):
        trace = [0, 1, 2, 0, 1, 2]
        curve = miss_curve(reuse_distances(trace), [100])
        assert curve[100] == pytest.approx(3 / 6)

    def test_empty_trace(self):
        assert miss_curve(np.array([], dtype=np.int64), [4]) == {4: 0.0}


class TestMedian:
    def test_value(self):
        distances = np.array([COLD, 1, 3, 5])
        assert median_reuse_distance(distances) == 3.0

    def test_all_cold(self):
        assert median_reuse_distance(np.array([COLD])) == float("inf")


class TestRecordingHierarchy:
    def test_records_all_accesses(self):
        recorder = RecordingHierarchy(scaled_hierarchy())
        memory = Memory(recorder)
        array = memory.array("a", 64, 4)
        array.touch(0)
        array.touch(32)
        array.touch(0)
        trace = recorder.trace()
        assert trace.shape == (3,)
        assert trace[0] == trace[2]

    def test_delegates_cache_behaviour(self):
        plain = scaled_hierarchy()
        recorded = RecordingHierarchy(scaled_hierarchy())
        for line in [0, 5, 0, 9, 5]:
            assert plain.access(line) == recorded.access(line)
        assert plain.snapshot() == recorded.snapshot()

    def test_touch_run_recorded_per_line(self):
        recorder = RecordingHierarchy(scaled_hierarchy())
        memory = Memory(recorder)
        array = memory.array("a", 64, 4)  # 4 lines
        array.touch_run(0, 64)
        assert recorder.trace().shape == (4,)

    def test_ordering_improves_median_reuse_distance(self):
        """End to end: Gorder's NQ trace has shorter reuse distances
        than Random's on a web graph."""
        from repro.algorithms import neighbor_query_traced
        from repro.graph import generators, relabel
        from repro.ordering import gorder_order, random_order

        graph = generators.web_graph(
            1200, pages_per_host=60, out_degree=8, seed=3
        )
        medians = {}
        for label, perm in (
            ("gorder", gorder_order(graph)),
            ("random", random_order(graph, seed=1)),
        ):
            recorder = RecordingHierarchy(scaled_hierarchy())
            neighbor_query_traced(relabel(graph, perm), Memory(recorder))
            medians[label] = median_reuse_distance(
                reuse_distances(recorder.trace())
            )
        assert medians["gorder"] < medians["random"]


class TestFenwickInternals:
    def test_prefix_sums(self):
        from repro.cache.reuse import _FenwickTree

        tree = _FenwickTree(10)
        tree.add(0, 1)
        tree.add(4, 2)
        tree.add(9, 3)
        assert tree.prefix_sum(0) == 1
        assert tree.prefix_sum(3) == 1
        assert tree.prefix_sum(4) == 3
        assert tree.prefix_sum(9) == 6
        tree.add(4, -2)
        assert tree.prefix_sum(9) == 4


class TestRecorderResetClearsTrace:
    """Regression: ``flush()``/``reset_statistics()`` used to keep the
    recorded lines, feeding later analysis a concatenation of
    unrelated measurement windows."""

    def test_flush_restarts_trace(self):
        recorder = RecordingHierarchy(scaled_hierarchy())
        memory = Memory(recorder)
        array = memory.array("a", 16, 8)
        array.touch(0)
        array.touch(8)
        assert recorder.trace().shape[0] == 2
        recorder.flush()
        assert recorder.trace().shape[0] == 0
        array.touch(0)
        assert recorder.trace().tolist() == [array.line_of(0)]

    def test_reset_statistics_restarts_trace(self):
        recorder = RecordingHierarchy(scaled_hierarchy())
        recorder.access(1)
        recorder.access(2)
        recorder.reset_statistics()
        assert recorder.trace().shape[0] == 0
        assert recorder.levels[0].refs == 0
