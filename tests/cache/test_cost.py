"""Unit tests for the cycle cost model."""

import pytest

from repro.cache import CostModel, RunCost
from repro.errors import InvalidParameterError


class TestCostModel:
    def test_default_latencies_ordered(self):
        model = CostModel()
        assert model.l1_stall <= model.l2_stall
        assert model.l2_stall <= model.l3_stall
        assert model.l3_stall <= model.memory_stall

    def test_disordered_latencies_rejected(self):
        with pytest.raises(InvalidParameterError, match="non-decreasing"):
            CostModel(l2_stall=50.0, l3_stall=10.0)

    def test_stall_for_level(self):
        model = CostModel()
        assert model.stall_for_level(0) == model.memory_stall
        assert model.stall_for_level(1) == model.l1_stall
        assert model.stall_for_level(2) == model.l2_stall
        assert model.stall_for_level(3) == model.l3_stall

    def test_unknown_level(self):
        with pytest.raises(InvalidParameterError, match="level"):
            CostModel().stall_for_level(4)

    def test_cost_arithmetic(self):
        model = CostModel(
            execute_per_ref=2.0,
            l1_stall=0.0,
            l2_stall=10.0,
            l3_stall=40.0,
            memory_stall=100.0,
        )
        # [memory, L1, L2, L3] = [1, 4, 2, 3]
        cost = model.cost([1, 4, 2, 3])
        assert cost.execute_cycles == 10 * 2.0
        assert cost.stall_cycles == 100 + 0 + 20 + 120

    def test_prefetched_refs_are_free(self):
        model = CostModel(execute_per_ref=1.0)
        cost = model.cost([0, 0, 0, 0], prefetched_refs=10)
        assert cost.execute_cycles == 0.0
        assert cost.stall_cycles == 0.0

    def test_extra_work(self):
        cost = CostModel().cost([0, 1, 0, 0], extra_work=50.0)
        assert cost.execute_cycles == CostModel().execute_per_ref + 50.0


class TestRunCost:
    def test_total_and_fraction(self):
        cost = RunCost(execute_cycles=30.0, stall_cycles=70.0)
        assert cost.total_cycles == 100.0
        assert cost.stall_fraction == 0.7

    def test_zero_cost(self):
        cost = RunCost()
        assert cost.total_cycles == 0.0
        assert cost.stall_fraction == 0.0

    def test_addition(self):
        total = RunCost(1.0, 2.0) + RunCost(3.0, 4.0)
        assert total.execute_cycles == 4.0
        assert total.stall_cycles == 6.0

    def test_speedup(self):
        fast = RunCost(10.0, 10.0)
        slow = RunCost(30.0, 30.0)
        assert fast.speedup_over(slow) == 3.0
        assert slow.speedup_over(fast) == pytest.approx(1 / 3)

    def test_speedup_of_zero_cost(self):
        zero = RunCost()
        assert zero.speedup_over(RunCost(1.0, 0.0)) == float("inf")
        assert zero.speedup_over(zero) == 1.0


class TestDeepHierarchyFolding:
    """Regression: ``cost()`` used to raise on hierarchies deeper than
    three levels while ``snapshot()`` folded them gracefully."""

    def test_stall_for_level_folds_middle_levels(self):
        model = CostModel()
        assert model.stall_for_level(2, num_levels=4) == model.l2_stall
        assert model.stall_for_level(3, num_levels=4) == model.l2_stall
        assert model.stall_for_level(4, num_levels=4) == model.l3_stall
        assert (
            model.stall_for_level(0, num_levels=4)
            == model.memory_stall
        )
        # A two-level stack's last level plays the L2 role.
        assert model.stall_for_level(2, num_levels=2) == model.l2_stall
        with pytest.raises(InvalidParameterError, match="level"):
            model.stall_for_level(5, num_levels=4)

    def test_cost_accepts_four_level_counts(self):
        model = CostModel()
        cost = model.cost([1, 1, 1, 1, 1])
        assert cost.stall_cycles == (
            model.memory_stall
            + model.l1_stall
            + model.l2_stall  # L2 keeps its latency
            + model.l2_stall  # L3 folds onto it
            + model.l3_stall  # the last level plays the L3 role
        )

    def test_memory_cost_through_four_level_hierarchy(self):
        from repro.cache import CacheHierarchy, CacheLevel, Memory

        hierarchy = CacheHierarchy(
            [
                CacheLevel(2 * 64 * 2, 64, 2, f"L{i + 1}")
                for i in range(4)
            ]
        )
        memory = Memory(hierarchy)
        array = memory.array("a", 64, 8)
        for index in (0, 8, 16, 24, 0, 8):
            array.touch(index)
        assert memory.cost().total_cycles > 0
