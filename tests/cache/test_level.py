"""Unit and property tests for a single cache level."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache import CacheLevel
from repro.errors import InvalidParameterError


def make_level(capacity=512, line=64, ways=2):
    return CacheLevel(capacity, line, ways, "test")


class TestGeometry:
    def test_derived_sets(self):
        level = CacheLevel(1024, 64, 8)
        assert level.num_sets == 2
        assert level.capacity == 1024

    def test_line_size_must_be_power_of_two(self):
        with pytest.raises(InvalidParameterError, match="power of two"):
            CacheLevel(1024, 48, 8)

    def test_associativity_positive(self):
        with pytest.raises(InvalidParameterError, match="associativity"):
            CacheLevel(1024, 64, 0)

    def test_capacity_fits_one_set(self):
        with pytest.raises(InvalidParameterError, match="capacity"):
            CacheLevel(64, 64, 8)

    def test_sets_power_of_two(self):
        with pytest.raises(InvalidParameterError, match="power of"):
            CacheLevel(3 * 64 * 2, 64, 2)

    def test_fully_associative(self):
        level = CacheLevel(512, 64, 8)
        assert level.num_sets == 1


class TestAccess:
    def test_first_access_misses(self):
        level = make_level()
        assert level.access(0) is False
        assert level.misses == 1
        assert level.refs == 1

    def test_second_access_hits(self):
        level = make_level()
        level.access(0)
        assert level.access(0) is True
        assert level.miss_rate == 0.5

    def test_lru_eviction_within_set(self):
        # 2-way, line 64: set index = line % num_sets (4 sets).
        level = make_level(capacity=512, line=64, ways=2)
        a, b, c = 0, 4, 8  # all map to set 0
        level.access(a)
        level.access(b)
        level.access(c)  # evicts a (LRU)
        assert not level.contains(a)
        assert level.contains(b)
        assert level.contains(c)

    def test_hit_refreshes_lru(self):
        level = make_level(capacity=512, line=64, ways=2)
        a, b, c = 0, 4, 8
        level.access(a)
        level.access(b)
        level.access(a)  # a becomes MRU
        level.access(c)  # evicts b, not a
        assert level.contains(a)
        assert not level.contains(b)

    def test_different_sets_do_not_conflict(self):
        level = make_level(capacity=512, line=64, ways=2)
        for line in range(4):  # one line per set
            level.access(line)
        assert all(level.contains(line) for line in range(4))

    def test_miss_rate_zero_when_unused(self):
        assert make_level().miss_rate == 0.0


class TestMaintenance:
    def test_reset_statistics_keeps_contents(self):
        level = make_level()
        level.access(0)
        level.reset_statistics()
        assert level.refs == 0
        assert level.contains(0)
        assert level.access(0) is True

    def test_flush_drops_contents(self):
        level = make_level()
        level.access(0)
        level.flush()
        assert level.refs == 0
        assert not level.contains(0)

    def test_resident_lines(self):
        level = make_level()
        level.access(3)
        level.access(9)
        assert level.resident_lines() == {3, 9}


class TestLruProperties:
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
    def test_inclusion_property(self, trace):
        """A bigger fully-associative LRU cache never misses more."""
        small = CacheLevel(4 * 64, 64, 4)
        large = CacheLevel(16 * 64, 64, 16)
        for line in trace:
            small.access(line)
            large.access(line)
        assert large.misses <= small.misses

    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
    def test_occupancy_bounded(self, trace):
        level = CacheLevel(8 * 64, 64, 2)
        for line in trace:
            level.access(line)
        assert len(level.resident_lines()) <= 8

    @given(st.lists(st.integers(0, 7), min_size=1, max_size=100))
    def test_working_set_within_capacity_stops_missing(self, trace):
        """Once 8 distinct lines are resident in a fully-associative
        8-way cache, no further reference to them can miss."""
        level = CacheLevel(8 * 64, 64, 8)
        for line in range(8):
            level.access(line)
        misses_after_warmup = level.misses
        for line in trace:
            level.access(line)
        assert level.misses == misses_after_warmup


class TestRandomPolicyFlushDeterminism:
    """Regression: ``flush()`` kept the advanced victim RNG, so two
    flushed runs of the same trace could evict differently — breaking
    the cold-start determinism archive digests rely on."""

    def test_flush_restarts_victim_stream(self):
        level = CacheLevel(
            4 * 64, 64, 2, "rnd", policy="random", seed=7
        )
        # All-even lines map to one 2-way set: constant eviction
        # pressure, so diverging RNG states diverge the verdicts.
        trace = [(i * 17) % 40 * 2 for i in range(300)]

        def run():
            level.flush()
            return [level.access(line) for line in trace]

        assert run() == run()
