"""Unit tests for the multi-level cache hierarchy."""

import pytest

from repro.cache import (
    MEMORY_LEVEL,
    CacheHierarchy,
    CacheLevel,
    paper_hierarchy,
    scaled_hierarchy,
)
from repro.errors import InvalidParameterError


def tiny_hierarchy():
    return CacheHierarchy(
        [
            CacheLevel(2 * 64, 64, 2, "L1"),
            CacheLevel(4 * 64, 64, 4, "L2"),
            CacheLevel(8 * 64, 64, 8, "L3"),
        ]
    )


class TestConstruction:
    def test_needs_levels(self):
        with pytest.raises(InvalidParameterError, match="at least one"):
            CacheHierarchy([])

    def test_line_sizes_must_match(self):
        with pytest.raises(InvalidParameterError, match="line size"):
            CacheHierarchy(
                [CacheLevel(512, 64, 8), CacheLevel(512, 32, 8)]
            )

    def test_standard_geometries(self):
        assert paper_hierarchy().num_levels == 3
        assert scaled_hierarchy().num_levels == 3
        assert scaled_hierarchy().line_size == 64


class TestAccess:
    def test_cold_miss_goes_to_memory(self):
        hierarchy = tiny_hierarchy()
        assert hierarchy.access(0) == MEMORY_LEVEL

    def test_warm_hit_in_l1(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        assert hierarchy.access(0) == 1

    def test_l1_eviction_falls_to_l2(self):
        hierarchy = tiny_hierarchy()
        # L1 is fully associative with 2 ways; 3 lines overflow it.
        hierarchy.access(0)
        hierarchy.access(1)
        hierarchy.access(2)  # evicts 0 from L1; 0 remains in L2
        assert hierarchy.access(0) == 2

    def test_access_address_maps_to_line(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access_address(0)
        # Address 63 shares line 0; address 64 does not.
        assert hierarchy.access_address(63) == 1
        assert hierarchy.access_address(64) == MEMORY_LEVEL

    def test_fill_propagates_to_all_levels(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        for level in hierarchy.levels:
            assert level.contains(0)


class TestSnapshot:
    def test_counts(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)  # miss everywhere
        hierarchy.access(0)  # L1 hit
        stats = hierarchy.snapshot()
        assert stats.l1_refs == 2
        assert stats.l1_misses == 1
        assert stats.l2_refs == 1
        assert stats.l3_refs == 1
        assert stats.l3_misses == 1
        assert stats.cache_miss_rate == 0.5

    def test_single_level_snapshot(self):
        hierarchy = CacheHierarchy([CacheLevel(512, 64, 8)])
        hierarchy.access(1)
        stats = hierarchy.snapshot()
        assert stats.l1_refs == 1
        assert stats.l3_refs == 1  # the only level is also the last

    def test_two_level_snapshot_has_no_middle(self):
        hierarchy = CacheHierarchy(
            [CacheLevel(128, 64, 2), CacheLevel(512, 64, 8)]
        )
        hierarchy.access(5)
        stats = hierarchy.snapshot()
        assert stats.l2_refs == 0
        assert stats.l3_refs == 1


class TestMaintenance:
    def test_flush(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        hierarchy.flush()
        assert hierarchy.snapshot().l1_refs == 0
        assert hierarchy.access(0) == MEMORY_LEVEL

    def test_reset_statistics_keeps_contents(self):
        hierarchy = tiny_hierarchy()
        hierarchy.access(0)
        hierarchy.reset_statistics()
        assert hierarchy.snapshot().l1_refs == 0
        assert hierarchy.access(0) == 1
