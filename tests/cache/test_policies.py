"""Tests for the FIFO and random replacement policies."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.cache import CacheLevel
from repro.errors import InvalidParameterError


class TestPolicyValidation:
    def test_unknown_policy(self):
        with pytest.raises(InvalidParameterError, match="policy"):
            CacheLevel(512, 64, 8, policy="mru")

    def test_known_policies_construct(self):
        for policy in CacheLevel.POLICIES:
            CacheLevel(512, 64, 8, policy=policy)


class TestFifo:
    def test_hit_does_not_promote(self):
        # Fully associative, 2 ways.
        level = CacheLevel(2 * 64, 64, 2, policy="fifo")
        level.access(0)
        level.access(1)
        level.access(0)  # hit; under FIFO, 0 stays oldest
        level.access(2)  # evicts 0 (oldest inserted)
        assert not level.contains(0)
        assert level.contains(1)

    def test_lru_differs_on_same_trace(self):
        trace = [0, 1, 0, 2, 0]
        fifo = CacheLevel(2 * 64, 64, 2, policy="fifo")
        lru = CacheLevel(2 * 64, 64, 2, policy="lru")
        fifo_hits = sum(fifo.access(line) for line in trace)
        lru_hits = sum(lru.access(line) for line in trace)
        assert lru_hits > fifo_hits

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=200))
    def test_occupancy_bounded(self, trace):
        level = CacheLevel(4 * 64, 64, 4, policy="fifo")
        for line in trace:
            level.access(line)
        assert len(level.resident_lines()) <= 4


class TestRandom:
    def test_deterministic_per_seed(self):
        trace = list(range(12)) * 4
        a = CacheLevel(4 * 64, 64, 4, policy="random", seed=7)
        b = CacheLevel(4 * 64, 64, 4, policy="random", seed=7)
        assert [a.access(x) for x in trace] == [
            b.access(x) for x in trace
        ]

    def test_different_seeds_can_differ(self):
        trace = list(range(12)) * 6
        a = CacheLevel(4 * 64, 64, 4, policy="random", seed=1)
        b = CacheLevel(4 * 64, 64, 4, policy="random", seed=2)
        assert [a.access(x) for x in trace] != [
            b.access(x) for x in trace
        ] or a.misses == b.misses  # allowed to coincide, rarely

    @given(st.lists(st.integers(0, 10), min_size=1, max_size=200))
    def test_occupancy_bounded(self, trace):
        level = CacheLevel(4 * 64, 64, 4, policy="random", seed=3)
        for line in trace:
            level.access(line)
        assert len(level.resident_lines()) <= 4

    @given(st.lists(st.integers(0, 3), min_size=1, max_size=100))
    def test_working_set_fits_never_misses_warm(self, trace):
        """With 4 lines in a 4-way set, no policy evicts anything."""
        level = CacheLevel(4 * 64, 64, 4, policy="random", seed=3)
        for line in range(4):
            level.access(line)
        warm_misses = level.misses
        for line in trace:
            level.access(line)
        assert level.misses == warm_misses


class TestPoliciesAgree:
    @given(st.lists(st.integers(0, 30), min_size=1, max_size=300))
    def test_all_policies_agree_on_cold_misses(self, trace):
        """Cold (first-touch) misses are policy-independent."""
        distinct = len(set(trace))
        for policy in CacheLevel.POLICIES:
            level = CacheLevel(64 * 64, 64, 64, policy=policy)
            for line in trace:
                level.access(line)
            # Cache larger than the footprint: only cold misses.
            assert level.misses == distinct
